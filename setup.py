"""Setup shim for environments without the ``wheel`` package.

``pip install -e . --no-build-isolation`` needs ``wheel`` for PEP 660
editable installs; this shim lets ``python setup.py develop`` work as a
fallback in fully offline environments.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
