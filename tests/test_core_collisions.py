"""Tests for repro.core.collisions."""


import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.collisions import (
    birthday_collision_probability,
    birthday_lower_bound_m,
    bucket_counts,
    collide,
    colliding_pairs,
    collision_count_matrix,
    collision_summary,
    has_bucket_collision,
    shared_heavy_rows,
)
from repro.sketch.countsketch import CountSketch


@pytest.fixture
def pi():
    # Columns 0 and 1 share heavy row 0; column 2 isolated; column 3
    # shares rows 1 and 2 with column 4.
    return np.array([
        [1.0, -1.0, 0.0, 0.0, 0.0],
        [0.0, 0.0, 1.0, 0.9, 0.8],
        [0.0, 0.0, 0.0, 0.7, -0.9],
    ])


class TestSharedHeavyRows:
    def test_single_shared_row(self, pi):
        assert list(shared_heavy_rows(pi, 0, 1, 0.5)) == [0]

    def test_two_shared_rows(self, pi):
        assert list(shared_heavy_rows(pi, 3, 4, 0.5)) == [1, 2]

    def test_no_shared_rows(self, pi):
        assert shared_heavy_rows(pi, 0, 2, 0.5).size == 0

    def test_collide_predicate(self, pi):
        assert collide(pi, 0, 1, 0.5)
        assert not collide(pi, 0, 2, 0.5)


class TestCollisionCountMatrix:
    def test_counts(self, pi):
        counts = collision_count_matrix(pi, 0.5).toarray()
        assert counts[0, 1] == 1
        assert counts[3, 4] == 2
        assert counts[0, 2] == 0
        assert counts[0, 0] == 1  # own heavy count on the diagonal

    def test_column_restriction(self, pi):
        counts = collision_count_matrix(pi, 0.5, columns=[3, 4]).toarray()
        assert counts.shape == (2, 2)
        assert counts[0, 1] == 2

    def test_colliding_pairs(self, pi):
        assert colliding_pairs(pi, 0.5) == [(0, 1), (2, 3), (2, 4), (3, 4)]

    def test_summary(self, pi):
        summary = collision_summary(pi, 0.5)
        assert summary.columns == 5
        assert summary.colliding_pairs == 4
        assert summary.max_shared_rows == 2
        assert summary.mean_shared_rows == pytest.approx((1 + 1 + 1 + 2) / 4)

    def test_summary_no_collisions(self):
        summary = collision_summary(np.eye(3), 0.5)
        assert summary.colliding_pairs == 0
        assert summary.mean_shared_rows == 0.0


class TestBucketCounts:
    def test_counting(self):
        pi = np.zeros((4, 6))
        pi[0, 0] = pi[0, 1] = 1.0  # two chosen columns in bucket 0
        pi[2, 2] = -1.0
        pi[3, 3] = 0.5  # out of [low, high]
        counts = bucket_counts(pi, [0, 1, 2, 3], 0.9, 1.1)
        assert list(counts) == [2, 0, 1, 0]

    def test_has_bucket_collision(self):
        pi = np.zeros((2, 3))
        pi[0, 0] = pi[0, 1] = 1.0
        assert has_bucket_collision(pi, [0, 1], 0.9, 1.1)
        assert not has_bucket_collision(pi, [0, 2], 0.9, 1.1)

    def test_countsketch_bucket_counts_sum(self):
        sketch = CountSketch(m=16, n=40).sample(0)
        counts = bucket_counts(sketch.matrix, list(range(40)), 0.9, 1.1)
        assert counts.sum() == 40


class TestBirthdayFormulas:
    def test_exact_small_case(self):
        # Two throws into m buckets collide with probability 1/m.
        assert birthday_collision_probability(2, 10) == pytest.approx(0.1)

    def test_q_exceeding_m(self):
        assert birthday_collision_probability(11, 10) == 1.0

    def test_monotone_in_q(self):
        probs = [birthday_collision_probability(q, 100) for q in (2, 5, 10)]
        assert probs == sorted(probs)

    def test_monotone_decreasing_in_m(self):
        probs = [birthday_collision_probability(10, m) for m in (50, 200, 1000)]
        assert probs == sorted(probs, reverse=True)

    def test_classic_birthday(self):
        # 23 people, 365 days: ~50.7%.
        assert birthday_collision_probability(23, 365) == pytest.approx(
            0.5073, abs=1e-3
        )

    def test_lower_bound_m_consistency(self):
        # At the returned m, the collision probability is close to delta.
        q, delta = 20, 0.2
        m = int(birthday_lower_bound_m(q, delta))
        prob = birthday_collision_probability(q, m)
        assert prob == pytest.approx(delta, abs=0.05)

    def test_lower_bound_single_throw(self):
        assert birthday_lower_bound_m(1, 0.5) == 1.0

    @given(
        q=st.integers(min_value=2, max_value=60),
        m=st.integers(min_value=2, max_value=5000),
    )
    @settings(max_examples=50)
    def test_probability_in_unit_interval(self, q, m):
        p = birthday_collision_probability(q, m)
        assert 0.0 <= p <= 1.0

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=20, deadline=None)
    def test_empirical_birthday_agreement(self, seed):
        rng = np.random.default_rng(seed)
        q, m = 8, 64
        trials = 300
        hits = sum(
            1 for _ in range(trials)
            if len(set(rng.integers(0, m, size=q).tolist())) < q
        )
        empirical = hits / trials
        predicted = birthday_collision_probability(q, m)
        assert abs(empirical - predicted) < 0.12
