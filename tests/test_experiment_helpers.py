"""Tests for the helper constructions inside experiment modules."""

import numpy as np
import pytest

from repro.core.witness import escape_probability
from repro.experiments.e03_column_norms import ScaledCountSketch
from repro.experiments.e05_lemma3 import (
    antipodal_set,
    random_sphere_set,
    shrunken_ball_set,
    simplex_set,
)
from repro.experiments.e06_lemma4_witness import planted_pi_and_draw
from repro.utils.rng import as_generator


class TestScaledCountSketch:
    def test_scaling_applied(self):
        sketch = ScaledCountSketch(m=32, n=64, c=0.7).sample(0)
        data = np.abs(sketch.dense().ravel())
        nonzero = data[data > 0]
        assert np.allclose(nonzero, 0.7)

    def test_zero_c_rejected(self):
        with pytest.raises(ValueError):
            ScaledCountSketch(m=4, n=4, c=0.0)

    def test_with_m_preserves_c(self):
        fam = ScaledCountSketch(m=8, n=16, c=1.2).with_m(32)
        assert fam.c == pytest.approx(1.2)
        assert fam.m == 32

    def test_name(self):
        assert "c=0.9" in ScaledCountSketch(m=4, n=4, c=0.9).name


class TestLemma3Sets:
    def test_simplex_inner_products(self):
        size = 5
        vectors = simplex_set(size)
        gram = vectors @ vectors.T
        off = gram[~np.eye(size, dtype=bool)]
        assert np.allclose(off, -1.0 / (size - 1))
        assert np.allclose(np.diag(gram), 1.0)

    def test_simplex_size_validation(self):
        with pytest.raises(ValueError):
            simplex_set(1)

    def test_antipodal_set_structure(self):
        rng = as_generator(0)
        vectors = antipodal_set(10, 6, rng)
        assert vectors.shape == (10, 6)
        assert np.allclose(vectors[:5], -vectors[5:])

    def test_antipodal_requires_even(self):
        with pytest.raises(ValueError):
            antipodal_set(5, 4, as_generator(0))

    def test_sphere_set_unit_norms(self):
        vectors = random_sphere_set(12, 8, as_generator(1))
        assert np.allclose(np.linalg.norm(vectors, axis=1), 1.0)

    def test_ball_set_in_ball(self):
        vectors = shrunken_ball_set(20, 8, as_generator(2))
        norms = np.linalg.norm(vectors, axis=1)
        assert np.all(norms <= 1.0 + 1e-12)


class TestPlantedPiAndDraw:
    @pytest.mark.parametrize("case", ["distinct", "same_block",
                                      "distinct_noisy"])
    def test_planted_inner_product(self, case):
        lam, epsilon = 4.0, 0.05
        pi, draw, p, q = planted_pi_and_draw(
            case, lam, epsilon, n=256, d=6, rng=as_generator(0)
        )
        beta = 1.0 / draw.reps
        c1 = pi[:, draw.rows[p]]
        c2 = pi[:, draw.rows[q]]
        assert float(c1 @ c2) == pytest.approx(lam * epsilon / beta)
        assert np.linalg.norm(c1) == pytest.approx(1.0)
        assert np.linalg.norm(c2) == pytest.approx(1.0)

    def test_unknown_case_rejected(self):
        with pytest.raises(ValueError):
            planted_pi_and_draw("bogus", 3.0, 0.05, 64, 4,
                                as_generator(0))

    def test_overlarge_target_rejected(self):
        with pytest.raises(ValueError):
            # lam*eps/beta = 30*0.05*2 = 3 > 1 for same_block.
            planted_pi_and_draw("same_block", 30.0, 0.05, 64, 4,
                                as_generator(0))

    def test_escape_wired_through(self):
        pi, draw, p, q = planted_pi_and_draw(
            "distinct", 6.0, 0.05, n=256, d=6, rng=as_generator(1)
        )
        est = escape_probability(pi, draw, p, q, 0.05)
        assert est.point >= 0.25


class TestExperimentResultNumpyJson:
    """Regression: numpy scalars in metrics/rows crashed save_json.

    ``json.dumps({"x": np.int64(3)})`` raises ``TypeError``, so a result
    whose metrics or table rows held numpy scalars made ``--json-dir``
    fail *after* a completed run.  ``to_dict`` now coerces to builtins.
    """

    def _numpy_result(self):
        from repro.experiments.harness import ExperimentResult
        from repro.utils.tables import TextTable

        result = ExperimentResult(experiment_id="ET", title="numpy json")
        result.metrics["int64"] = np.int64(3)
        result.metrics["float32"] = np.float32(1.5)
        result.metrics["float64"] = np.float64(2.25)
        table = TextTable(title="raw", columns=["a", "b"])
        # Rows assigned directly (as from_dict does) can carry raw numpy
        # scalars that add_row's formatting would otherwise absorb.
        table.rows = [[np.int64(7), np.float32(0.5)]]
        result.tables.append(table)
        result.notes.append("plain note")
        result.elapsed_seconds = np.float64(0.125)
        return result

    def test_to_dict_coerces_numpy_scalars(self):
        import json

        payload = self._numpy_result().to_dict()
        text = json.dumps(payload)  # must not raise TypeError
        loaded = json.loads(text)
        assert loaded["metrics"] == {"int64": 3, "float32": 1.5,
                                     "float64": 2.25}
        assert loaded["tables"][0]["rows"] == [[7, 0.5]]
        # Wall-clock is deliberately not serialized: JSON artifacts must
        # be byte-identical across re-runs (checkpoint/resume diffs them).
        assert "elapsed_seconds" not in loaded

    def test_save_json_round_trips(self, tmp_path):
        from repro.experiments.harness import ExperimentResult

        result = self._numpy_result()
        path = result.save_json(tmp_path / "ET.json")
        loaded = ExperimentResult.load_json(path)
        assert loaded.metrics == {"int64": 3, "float32": 1.5,
                                  "float64": 2.25}
        assert loaded.experiment_id == "ET"

    def test_from_dict_accepts_legacy_elapsed_field(self):
        from repro.experiments.harness import ExperimentResult

        payload = self._numpy_result().to_dict()
        payload["elapsed_seconds"] = 0.125  # written by older versions
        loaded = ExperimentResult.from_dict(payload)
        assert loaded.elapsed_seconds == pytest.approx(0.125)

    def test_to_builtin_helper(self):
        from repro.utils.serialization import json_default, to_builtin

        assert to_builtin(np.int64(3)) == 3
        assert type(to_builtin(np.int64(3))) is int
        assert to_builtin(np.float32(0.5)) == pytest.approx(0.5)
        assert type(to_builtin(np.float32(0.5))) is float
        assert to_builtin({np.int64(1): [np.float64(2.0), (np.int8(3),)]}) \
            == {1: [2.0, [3]]}
        assert to_builtin(np.arange(3)) == [0, 1, 2]
        assert json_default(np.int64(5)) == 5
        with pytest.raises(TypeError):
            json_default(object())


class TestFromDictRowValidation:
    """Regression: ``from_dict`` assigned rows with no arity check.

    A corrupt or hand-edited JSON whose row count didn't match the column
    count used to load silently and fail (or render shifted columns) far
    from the source; the loader now raises immediately, naming the table.
    """

    def _payload(self, rows):
        return {
            "experiment_id": "ET",
            "title": "arity",
            "tables": [
                {"title": "shape", "columns": ["a", "b", "c"], "rows": rows}
            ],
        }

    def test_valid_rows_load(self):
        from repro.experiments.harness import ExperimentResult

        result = ExperimentResult.from_dict(
            self._payload([[1, 2, 3], [4, 5, 6]])
        )
        assert result.tables[0].rows == [[1, 2, 3], [4, 5, 6]]

    @pytest.mark.parametrize("bad_row", [[1, 2], [1, 2, 3, 4], []])
    def test_wrong_arity_raises_naming_table(self, bad_row):
        from repro.experiments.harness import ExperimentResult

        with pytest.raises(ValueError) as excinfo:
            ExperimentResult.from_dict(self._payload([[1, 2, 3], bad_row]))
        message = str(excinfo.value)
        assert "'shape'" in message
        assert "'ET'" in message
        assert "row 1" in message
        assert f"{len(bad_row)} cells" in message
        assert "expected 3" in message

    def test_error_survives_render_free(self):
        # The loaded-but-valid result must still render (no partial state).
        from repro.experiments.harness import ExperimentResult

        result = ExperimentResult.from_dict(self._payload([["x", "y", "z"]]))
        assert "shape" in result.render()
