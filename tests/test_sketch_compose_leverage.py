"""Tests for repro.sketch.compose and repro.sketch.leverage_sampling."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.apps.regression import sketched_lstsq
from repro.experiments.workloads import regression_problem
from repro.linalg.distortion import distortion
from repro.linalg.subspace import random_subspace
from repro.sketch.compose import StackedSketch, TwoStageSketch
from repro.sketch.countsketch import CountSketch
from repro.sketch.gaussian import GaussianSketch
from repro.sketch.leverage_sampling import LeverageSampling


class TestTwoStageSketch:
    def test_dimension_checks(self):
        with pytest.raises(ValueError):
            TwoStageSketch(CountSketch(m=64, n=256),
                           GaussianSketch(m=16, n=128))

    def test_shape_and_metadata(self):
        fam = TwoStageSketch(CountSketch(m=128, n=512),
                             GaussianSketch(m=32, n=128))
        assert fam.m == 32
        assert fam.n == 512
        assert "TwoStage" in fam.name
        sketch = fam.sample(0)
        assert sketch.shape == (32, 512)

    def test_apply_matches_materialized_matrix(self):
        fam = TwoStageSketch(CountSketch(m=64, n=256),
                             GaussianSketch(m=16, n=64))
        sketch = fam.sample(1)
        x = np.random.default_rng(2).standard_normal((256, 3))
        assert np.allclose(sketch.apply(x), sketch.matrix @ x)

    def test_with_m_resizes_outer(self):
        fam = TwoStageSketch(CountSketch(m=64, n=256),
                             GaussianSketch(m=16, n=64))
        resized = fam.with_m(24)
        assert resized.m == 24
        assert resized.inner.m == 64

    def test_embeds_random_subspace(self):
        n, d, eps = 1024, 4, 0.3
        fam = TwoStageSketch(
            CountSketch(m=512, n=n),
            GaussianSketch(m=GaussianSketch.recommended_m(d, eps, 0.1),
                           n=512),
        )
        u = random_subspace(n, d, rng=0)
        # Composition of two embeddings: distortions add approximately.
        assert distortion(fam.sample(1).matrix, u) <= 2 * eps

    def test_apply_cost_sums_stages(self):
        fam = TwoStageSketch(CountSketch(m=64, n=256),
                             GaussianSketch(m=16, n=64))
        sketch = fam.sample(3)
        x = np.ones((256, 2))
        # Inner CountSketch: nnz(x) = 512; outer Gaussian on a dense
        # 64 x 2 intermediate: 16 * 64 * 2 = 2048.
        assert sketch.apply_cost(x) == 512 + 2048

    def test_works_in_regression(self):
        n, d = 512, 4
        a, b = regression_problem(n, d, rng=0)
        fam = TwoStageSketch(CountSketch(m=256, n=n),
                             GaussianSketch(m=96, n=256))
        res = sketched_lstsq(a, b, fam, rng=1)
        assert res.ratio is not None
        assert res.ratio < 2.0


class TestStackedSketch:
    def test_requires_nonempty(self):
        with pytest.raises(ValueError):
            StackedSketch([])

    def test_requires_matching_n(self):
        with pytest.raises(ValueError):
            StackedSketch([CountSketch(m=8, n=64),
                           CountSketch(m=8, n=32)])

    def test_total_rows(self):
        fam = StackedSketch([CountSketch(m=8, n=64),
                             CountSketch(m=16, n=64)])
        assert fam.m == 24
        assert fam.sample(0).shape == (24, 64)

    def test_sparse_stack_stays_sparse(self):
        fam = StackedSketch([CountSketch(m=8, n=64),
                             CountSketch(m=8, n=64)])
        assert sp.issparse(fam.sample(1).matrix)

    def test_mixed_stack_densifies(self):
        fam = StackedSketch([CountSketch(m=8, n=64),
                             GaussianSketch(m=8, n=64)])
        assert isinstance(fam.sample(2).matrix, np.ndarray)

    def test_preserves_expected_norm(self):
        # Stacking k unit-column sketches scaled 1/sqrt(k) keeps
        # E||Pi x||^2 = ||x||^2; check column norms stay 1 for
        # CountSketch blocks (each column: k entries of 1/sqrt(k)).
        fam = StackedSketch([CountSketch(m=32, n=64)] * 4)
        sketch = fam.sample(3)
        norms2 = np.asarray(
            sketch.matrix.multiply(sketch.matrix).sum(axis=0)
        ).ravel()
        assert np.allclose(norms2, 1.0)

    def test_stacking_reduces_variance(self):
        n, d = 256, 4
        u = random_subspace(n, d, rng=0)
        single = CountSketch(m=64, n=n)
        stacked = StackedSketch([CountSketch(m=64, n=n)] * 8)
        d_single = [distortion(single.sample(s).matrix, u)
                    for s in range(20)]
        d_stacked = [distortion(stacked.sample(s).matrix, u)
                     for s in range(20)]
        assert np.median(d_stacked) < np.median(d_single)


class TestLeverageSampling:
    def test_probability_validation(self):
        with pytest.raises(ValueError):
            LeverageSampling(m=4, n=3, probabilities=[0.5, 0.5, 0.5])
        with pytest.raises(ValueError):
            LeverageSampling(m=4, n=2, probabilities=[1.5, -0.5])

    def test_unbiased_second_moment(self):
        # E[Pi^T Pi] = I: check the average over many samples.
        p = np.array([0.1, 0.2, 0.3, 0.4])
        fam = LeverageSampling(m=64, n=4, probabilities=p)
        total = np.zeros((4, 4))
        for seed in range(200):
            mat = fam.sample(seed).matrix.toarray()
            total += mat.T @ mat
        assert np.allclose(total / 200, np.eye(4), atol=0.15)

    def test_for_matrix_spiked_rows_sampled(self):
        rng = np.random.default_rng(0)
        a = 0.01 * rng.standard_normal((256, 3))
        a[5] = [10.0, 0.0, 0.0]
        fam = LeverageSampling.for_matrix(a, m=32, uniform_mix=0.0)
        assert fam.probabilities[5] > 0.2

    def test_for_matrix_solves_coherent_regression(self):
        n, d = 1024, 4
        a, b = regression_problem(n, d, coherent=True, rng=1)
        fam = LeverageSampling.for_matrix(
            np.column_stack([a, b]), m=256
        )
        res = sketched_lstsq(a, b, fam, rng=2)
        assert res.ratio is not None
        assert res.ratio < 1.6  # where uniform sampling blows up

    def test_with_m(self):
        fam = LeverageSampling(m=8, n=4,
                               probabilities=[0.25] * 4).with_m(16)
        assert fam.m == 16

    def test_uniform_mix_validation(self):
        with pytest.raises(ValueError):
            LeverageSampling.for_matrix(np.eye(4), m=2, uniform_mix=2.0)

    def test_zero_scores_rejected(self):
        with pytest.raises(ValueError):
            LeverageSampling.for_matrix(
                np.eye(4), m=2, scores=np.zeros(4)
            )
