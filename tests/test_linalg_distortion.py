"""Tests for repro.linalg.distortion."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg.distortion import (
    distortion,
    distortion_of_product,
    distortion_report,
    distortions_of_products,
    is_subspace_embedding_for,
    sketched_basis,
    vector_distortion,
    worst_vector,
)
from repro.linalg.subspace import random_subspace


class TestSketchedBasis:
    def test_dense_product(self):
        pi = np.array([[1.0, 0.0], [0.0, 2.0]])
        u = np.array([[1.0], [1.0]])
        assert np.allclose(sketched_basis(pi, u), [[1.0], [2.0]])

    def test_sparse_product_matches_dense(self):
        rng = np.random.default_rng(0)
        pi = rng.standard_normal((10, 20))
        pi[np.abs(pi) < 1.0] = 0.0
        u = rng.standard_normal((20, 3))
        dense = sketched_basis(pi, u)
        sparse = sketched_basis(sp.csc_matrix(pi), u)
        assert np.allclose(dense, sparse)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            sketched_basis(np.eye(3), np.ones((4, 2)))


class TestDistortion:
    def test_identity_sketch_zero_distortion(self):
        u = random_subspace(10, 3, rng=0)
        assert distortion(np.eye(10), u) == pytest.approx(0.0, abs=1e-10)

    def test_scaled_sketch_distortion(self):
        u = random_subspace(10, 3, rng=1)
        assert distortion(1.5 * np.eye(10), u) == pytest.approx(0.5)

    def test_annihilating_sketch(self):
        u = np.eye(4)[:, :2]  # spans e1, e2
        pi = np.zeros((3, 4))
        pi[0, 0] = 1.0  # kills the e2 direction entirely
        assert distortion(pi, u) == pytest.approx(1.0)

    def test_fewer_rows_than_d_gives_full_distortion(self):
        u = random_subspace(10, 4, rng=2)
        pi = np.random.default_rng(0).standard_normal((2, 10))
        assert distortion(pi, u) >= 1.0

    def test_product_variant_agrees(self):
        rng = np.random.default_rng(3)
        pi = rng.standard_normal((8, 12)) / np.sqrt(8)
        u = random_subspace(12, 3, rng=4)
        assert distortion(pi, u) == pytest.approx(
            distortion_of_product(pi @ u)
        )


class TestDistortionReport:
    def test_pass_within_epsilon(self):
        u = random_subspace(12, 3, rng=0)
        report = distortion_report(np.eye(12), u, 0.1)
        assert report.ok
        assert report.distortion == pytest.approx(0.0, abs=1e-10)

    def test_fail_outside_epsilon(self):
        u = random_subspace(12, 3, rng=0)
        report = distortion_report(1.3 * np.eye(12), u, 0.1)
        assert not report.ok
        assert "FAIL" in str(report)

    def test_squared_interval(self):
        u = random_subspace(12, 2, rng=1)
        report = distortion_report(2.0 * np.eye(12), u, 0.5)
        lo, hi = report.squared_interval
        assert lo == pytest.approx(4.0)
        assert hi == pytest.approx(4.0)

    def test_is_subspace_embedding_for(self):
        u = random_subspace(12, 3, rng=2)
        assert is_subspace_embedding_for(np.eye(12), u, 0.05)
        assert not is_subspace_embedding_for(0.5 * np.eye(12), u, 0.05)


class TestWorstVector:
    def test_worst_vector_achieves_distortion(self):
        rng = np.random.default_rng(5)
        pi = rng.standard_normal((6, 15)) / np.sqrt(6)
        u = random_subspace(15, 4, rng=6)
        x = worst_vector(pi, u)
        assert np.linalg.norm(x) == pytest.approx(1.0)
        achieved = vector_distortion(pi, u, x)
        assert achieved == pytest.approx(distortion(pi, u), abs=1e-8)

    def test_annihilated_direction_found(self):
        u = np.eye(5)[:, :2]
        pi = np.zeros((4, 5))
        pi[0, 0] = 1.0
        x = worst_vector(pi, u)
        assert vector_distortion(pi, u, x) == pytest.approx(1.0)


class TestVectorDistortion:
    def test_zero_vector_raises(self):
        u = random_subspace(8, 2, rng=0)
        with pytest.raises(ValueError):
            vector_distortion(np.eye(8), u, np.zeros(2))

    def test_scale_invariant(self):
        rng = np.random.default_rng(7)
        pi = rng.standard_normal((5, 8))
        u = random_subspace(8, 2, rng=8)
        x = rng.standard_normal(2)
        assert vector_distortion(pi, u, x) == pytest.approx(
            vector_distortion(pi, u, 7.0 * x)
        )

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=25)
    def test_distortion_bounds_any_vector(self, seed):
        rng = np.random.default_rng(seed)
        pi = rng.standard_normal((7, 12)) / np.sqrt(7)
        u = random_subspace(12, 3, rng=rng)
        x = rng.standard_normal(3)
        # The sup-distortion bounds the distortion of any vector, as long
        # as sigma stays within [1 - dist, 1 + dist].
        assert vector_distortion(pi, u, x) <= distortion(pi, u) + 1e-9


class TestDistortionsOfProducts:
    """The batched reduction must agree with the per-product scalar path."""

    def _stack(self, batch, k, d, seed):
        rng = np.random.default_rng(seed)
        return rng.standard_normal((batch, k, d)) / np.sqrt(k)

    def test_matches_scalar_path_tall(self):
        # k > 2d exercises the Gram-reduced branch.
        products = self._stack(6, 40, 5, seed=0)
        batched = distortions_of_products(products)
        serial = [distortion_of_product(p) for p in products]
        np.testing.assert_allclose(batched, serial, rtol=1e-9, atol=1e-12)

    def test_matches_scalar_path_near_square(self):
        # k <= 2d takes the direct rectangular-SVD branch.
        products = self._stack(6, 8, 5, seed=1)
        batched = distortions_of_products(products)
        serial = [distortion_of_product(p) for p in products]
        np.testing.assert_allclose(batched, serial, rtol=1e-12, atol=0.0)

    def test_rows_below_d_forces_annihilation(self):
        # A compacted stack whose true row count is below d has sigma_min
        # exactly 0, whatever the compacted k suggests.
        products = self._stack(4, 12, 5, seed=2)
        out = distortions_of_products(products, rows=3)
        hi = np.linalg.svd(products, compute_uv=False).max(axis=1)
        np.testing.assert_allclose(out, np.maximum(1.0, hi - 1.0))

    def test_rank_deficient_trial_recomputed_exactly(self):
        # One trial annihilates a direction: its Gram spectrum trips the
        # ratio floor and must be recomputed from the rectangular product.
        products = self._stack(5, 40, 4, seed=3)
        rng = np.random.default_rng(4)
        basis = np.linalg.qr(rng.standard_normal((40, 3)))[0]
        products[2] = basis @ rng.standard_normal((3, 4))
        batched = distortions_of_products(products)
        serial = [distortion_of_product(p) for p in products]
        np.testing.assert_allclose(batched, serial, rtol=1e-9, atol=1e-12)
        assert batched[2] >= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            distortions_of_products(np.ones((3, 4)))
        with pytest.raises(ValueError):
            distortions_of_products(np.ones((2, 0, 3)))
