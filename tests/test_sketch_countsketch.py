"""Tests for repro.sketch.countsketch (and the shared Sketch/Family base)."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg.subspace import random_subspace
from repro.linalg.distortion import distortion
from repro.sketch.countsketch import CountSketch


class TestConstruction:
    def test_dimensions(self):
        fam = CountSketch(m=16, n=100)
        assert fam.m == 16
        assert fam.n == 100

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            CountSketch(m=0, n=10)
        with pytest.raises(ValueError):
            CountSketch(m=10, n=-1)

    def test_repr(self):
        assert "CountSketch" in repr(CountSketch(m=4, n=8))

    def test_with_m(self):
        fam = CountSketch(m=16, n=100).with_m(64)
        assert fam.m == 64
        assert fam.n == 100
        assert isinstance(fam, CountSketch)


class TestSample:
    def test_exactly_one_nonzero_per_column(self):
        sketch = CountSketch(m=32, n=200).sample(0)
        assert sketch.column_sparsity == 1
        assert sketch.nnz == 200

    def test_values_are_pm1(self):
        sketch = CountSketch(m=32, n=200).sample(1)
        data = sketch.matrix.tocsc().data
        assert set(np.unique(data)) <= {-1.0, 1.0}

    def test_deterministic_given_seed(self):
        a = CountSketch(m=8, n=50).sample(3)
        b = CountSketch(m=8, n=50).sample(3)
        assert (a.matrix != b.matrix).nnz == 0

    def test_sparse_format(self):
        sketch = CountSketch(m=8, n=50).sample(0)
        assert sp.issparse(sketch.matrix)

    def test_apply_matches_matrix_product(self):
        sketch = CountSketch(m=8, n=50).sample(0)
        x = np.random.default_rng(1).standard_normal((50, 3))
        assert np.allclose(sketch.apply(x), sketch.matrix @ x)

    def test_apply_shape_mismatch(self):
        sketch = CountSketch(m=8, n=50).sample(0)
        with pytest.raises(ValueError):
            sketch.apply(np.ones(49))

    def test_column_norms_exactly_one(self):
        sketch = CountSketch(m=16, n=64).sample(5)
        norms = np.sqrt(
            np.asarray(sketch.matrix.multiply(sketch.matrix).sum(axis=0))
        ).ravel()
        assert np.allclose(norms, 1.0)

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=20, deadline=None)
    def test_rows_within_bounds(self, seed):
        sketch = CountSketch(m=7, n=30).sample(seed)
        coo = sketch.matrix.tocoo()
        assert coo.row.min() >= 0
        assert coo.row.max() < 7


class TestEmbeddingBehaviour:
    def test_embeds_random_subspace_at_recommended_m(self):
        d, eps, delta = 4, 0.25, 0.2
        n = 512
        m = CountSketch.recommended_m(d, eps, delta)
        fam = CountSketch(m=min(m, 10_000), n=n)
        failures = 0
        for seed in range(20):
            u = random_subspace(n, d, rng=seed)
            sketch = fam.sample(1000 + seed)
            if distortion(sketch.matrix, u) > eps:
                failures += 1
        assert failures <= 4  # generous delta slack

    def test_tiny_m_fails_often(self):
        n, d, eps = 512, 6, 0.1
        fam = CountSketch(m=8, n=n)
        failures = 0
        for seed in range(10):
            u = random_subspace(n, d, rng=seed)
            sketch = fam.sample(seed)
            if distortion(sketch.matrix, u) > eps:
                failures += 1
        assert failures >= 8


class TestBounds:
    def test_recommended_m_formula(self):
        m = CountSketch.recommended_m(10, 0.1, 0.1, constant=2.0)
        assert m == int(np.ceil(2.0 * 100 / (0.1 * 0.01)))

    def test_lower_bound_formula(self):
        value = CountSketch.lower_bound_m(10, 0.1, 0.1)
        assert value == pytest.approx(100 / (0.01 * 0.1))

    def test_recommended_m_rejects_bad_eps(self):
        with pytest.raises(ValueError):
            CountSketch.recommended_m(10, 1.5, 0.1)
