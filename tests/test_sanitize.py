"""Tests for :mod:`repro.sanitize` — the determinism race detector.

Covers the recorder/diff layer (stream traces, double-consumption,
draw-count drift), the ``sanitized=`` re-execution hook on the three
probes, and seeded fault injection: each of the historical failure modes
(double-consumed child streams, a cache spec missing a result-shaping
field, NaN reaching a JSON emit site) must be caught with the right
diagnostic.  Run alone with ``pytest -m sanitize``.
"""

import numpy as np
import pytest

from repro.cache import ProbeCache
from repro.core import tester
from repro.core.tester import distortion_samples, failure_estimate, minimal_m
from repro.experiments.harness import ExperimentResult
from repro.sanitize import (
    DeterminismError,
    StreamTraceRecorder,
    cache_events,
    canonical_event,
    check_trace,
    diff_traces,
    record_cache_event,
    replay_generator,
    sanitized_rerun,
    stream_events,
)
from repro.sanitize.__main__ import main as sanitize_main
from repro.sketch.countsketch import CountSketch
from repro.sketch.gaussian import GaussianSketch
from repro.hardinstances.dbeta import DBeta
from repro.utils.parallel import ShardSpec
from repro.utils.rng import seed_fingerprint, spawn, spawn_seeds, spawn_slice

pytestmark = pytest.mark.sanitize


def _family():
    return CountSketch(m=40, n=64)


def _instance():
    return DBeta(n=64, d=4, reps=1)


def _spawn_event(base, count=2, entropy=7, spawn_key=(), **extra):
    event = {
        "channel": "stream", "kind": "spawn", "entropy": entropy,
        "spawn_key": list(spawn_key), "base": base, "count": count,
    }
    event.update(extra)
    return event


class TestRecorder:
    def test_nothing_recorded_outside_activation(self):
        recorder = StreamTraceRecorder(label="idle")
        spawn_seeds(np.random.default_rng(7), 3)
        assert len(recorder) == 0

    def test_spawn_events_carry_tree_position_and_counter(self):
        recorder = StreamTraceRecorder(label="t")
        with recorder.activate():
            spawn_seeds(np.random.default_rng(7), 3)
            spawn_slice(np.random.default_rng(9), 1, 3, total=6)
        events = stream_events(recorder.trace())
        assert [e["kind"] for e in events] == ["spawn", "spawn_slice"]
        first, second = events
        assert first["entropy"] == 7
        assert first["spawn_key"] == []
        assert first["base"] == 0 and first["count"] == 3
        assert second["entropy"] == 9
        assert (second["start"], second["stop"], second["total"]) == (1, 3, 6)

    def test_spawn_counter_advances_across_calls(self):
        recorder = StreamTraceRecorder(label="t")
        gen = np.random.default_rng(3)
        with recorder.activate():
            spawn_seeds(gen, 2)
            spawn_seeds(gen, 2)
        bases = [e["base"] for e in stream_events(recorder.trace())]
        assert bases == [0, 2]

    def test_stack_provenance_attached_but_not_compared(self):
        recorder = StreamTraceRecorder(label="t")
        with recorder.activate():
            spawn(np.random.default_rng(0))
        event = stream_events(recorder.trace())[0]
        assert event["stack"], "expected captured provenance frames"
        assert any("test_sanitize" in frame for frame in event["stack"])
        assert "stack" not in canonical_event(event)

    def test_cache_channel_recorded_separately(self):
        recorder = StreamTraceRecorder(label="t")
        with recorder.activate():
            record_cache_event("cache_miss", cache_kind="failure_estimate",
                               key="abc123")
        trace = recorder.trace()
        assert stream_events(trace) == []
        [event] = cache_events(trace)
        assert event["kind"] == "cache_miss" and event["key"] == "abc123"

    def test_probe_cache_lookups_reach_the_recorder(self, tmp_path):
        cache = ProbeCache(tmp_path)
        recorder = StreamTraceRecorder(label="t")
        with recorder.activate():
            failure_estimate(_family(), _instance(), 0.3, 6,
                             rng=np.random.default_rng(1), cache=cache)
        kinds = {e["kind"] for e in cache_events(recorder.trace())}
        assert "cache_miss" in kinds and "cache_put" in kinds


class TestCheckTrace:
    def test_one_live_parent_never_overlaps(self):
        recorder = StreamTraceRecorder(label="t")
        gen = np.random.default_rng(3)
        with recorder.activate():
            spawn_seeds(gen, 4)
            spawn_seeds(gen, 4)
        assert check_trace(recorder.trace()) == []

    def test_rebuilt_parent_double_consumption_detected(self):
        # Two distinct SeedSequence objects at the same spawn-tree
        # position: the classic race that silently correlates trials.
        recorder = StreamTraceRecorder(label="t")
        with recorder.activate():
            spawn_seeds(np.random.default_rng(7), 2)
            spawn_seeds(np.random.default_rng(7), 2)
        faults = check_trace(recorder.trace())
        assert [fault.kind for fault in faults] == ["double-consumption"]
        assert "handed out twice" in faults[0].detail

    def test_disjoint_shard_slices_are_legitimate(self):
        recorder = StreamTraceRecorder(label="t")
        with recorder.activate():
            spawn_slice(np.random.default_rng(7), 0, 2, total=4)
            spawn_slice(np.random.default_rng(7), 2, 4, total=4)
        assert check_trace(recorder.trace()) == []

    def test_overlapping_shard_slices_detected(self):
        recorder = StreamTraceRecorder(label="t")
        with recorder.activate():
            spawn_slice(np.random.default_rng(7), 0, 3, total=4)
            spawn_slice(np.random.default_rng(7), 2, 4, total=4)
        faults = check_trace(recorder.trace())
        assert [fault.kind for fault in faults] == ["double-consumption"]
        assert "[2, 3)" in faults[0].detail


class TestDiffTraces:
    def test_identical_traces_agree(self):
        assert diff_traces([_spawn_event(0)], [_spawn_event(0)]) is None

    def test_provenance_differences_are_ignored(self):
        reference = [_spawn_event(0, stack=["cold.py:1:run"])]
        candidate = [_spawn_event(0, stack=["hit.py:9:replay"])]
        assert diff_traces(reference, candidate) is None

    def test_draw_count_drift_classified(self):
        divergence = diff_traces([_spawn_event(0)], [_spawn_event(2)],
                                 axis="workers=4")
        assert divergence is not None
        assert divergence.kind == "draw-count-drift"
        assert divergence.axis == "workers=4"
        assert "spawn counter 2 instead of 0" in divergence.detail

    def test_different_parent_is_stream_divergence(self):
        divergence = diff_traces([_spawn_event(0, entropy=7)],
                                 [_spawn_event(0, entropy=8)])
        assert divergence is not None
        assert divergence.kind == "stream-divergence"

    def test_length_mismatch_reported_at_first_missing_event(self):
        reference = [_spawn_event(0), _spawn_event(2)]
        divergence = diff_traces(reference, reference[:1])
        assert divergence is not None
        assert divergence.kind == "missing-events" and divergence.index == 1
        extra = diff_traces(reference[:1], reference)
        assert extra is not None and extra.kind == "extra-events"


class TestReplayGenerator:
    def test_replay_spawns_bit_identical_children(self):
        gen = np.random.default_rng(123)
        spawn(gen)
        spawn(gen)
        replay = replay_generator(seed_fingerprint(gen))
        expected = spawn(gen).integers(0, 2**63)
        assert spawn(replay).integers(0, 2**63) == expected

    def test_raw_state_generator_rejected(self, monkeypatch):
        monkeypatch.setattr("repro.sanitize.runtime.seed_fingerprint",
                            lambda gen: None)
        with pytest.raises(DeterminismError, match="raw bit-generator"):
            sanitized_rerun("probe", lambda gen, workers, cache: 0.0,
                            rng=np.random.default_rng(0))


class TestSanitizedHook:
    def test_failure_estimate_matches_plain_and_stream_transparent(self):
        family, instance = _family(), _instance()
        plain_rng = np.random.default_rng(42)
        plain = failure_estimate(family, instance, 0.3, 12, rng=plain_rng)
        sanitized_rng = np.random.default_rng(42)
        checked = failure_estimate(family, instance, 0.3, 12,
                                   rng=sanitized_rng, sanitized=True)
        assert checked == plain
        # The caller's generator ends in the same state either way.
        assert seed_fingerprint(sanitized_rng) == seed_fingerprint(plain_rng)

    def test_distortion_samples_sanitized_across_workers(self):
        family, instance = _family(), _instance()
        plain = distortion_samples(family, instance, 10,
                                   rng=np.random.default_rng(9))
        checked = distortion_samples(family, instance, 10,
                                     rng=np.random.default_rng(9),
                                     workers=2, sanitized=True)
        assert np.asarray(checked).tobytes() == np.asarray(plain).tobytes()

    def test_minimal_m_sanitized_matches_plain(self):
        family, instance = _family(), _instance()
        plain = minimal_m(family, instance, 0.5, 0.25, trials=8, m_min=8,
                          rng=np.random.default_rng(1))
        checked = minimal_m(family, instance, 0.5, 0.25, trials=8, m_min=8,
                            rng=np.random.default_rng(1), sanitized=True)
        assert checked == plain

    def test_sanitized_passes_on_warm_cache(self, tmp_path):
        family, instance = _family(), _instance()
        cache = ProbeCache(tmp_path)
        failure_estimate(family, instance, 0.3, 12,
                         rng=np.random.default_rng(5), cache=cache)
        checked = failure_estimate(family, instance, 0.3, 12,
                                   rng=np.random.default_rng(5), cache=cache,
                                   workers=2, sanitized=True)
        plain = failure_estimate(family, instance, 0.3, 12,
                                 rng=np.random.default_rng(5))
        assert checked == plain

    def test_sanitized_rejects_shard_passes(self):
        with pytest.raises(ValueError, match="sanitized= cannot be combined"):
            failure_estimate(_family(), _instance(), 0.3, 12,
                             rng=np.random.default_rng(0),
                             shard=ShardSpec(index=0, count=2),
                             sanitized=True)


class TestFaultInjection:
    def test_double_consumed_child_stream_caught(self):
        # A workload that rebuilds "the same" parent twice instead of
        # threading one generator: both spawns occupy spawn-tree slot 0.
        def racy(gen, workers, cache):
            first = spawn_seeds(np.random.default_rng(11), 2)
            second = spawn_seeds(np.random.default_rng(11), 2)
            return float(len(first) + len(second))

        with pytest.raises(DeterminismError,
                           match="double-consumed child stream"):
            sanitized_rerun("racy_probe", racy,
                            rng=np.random.default_rng(0))

    def test_dropped_spec_field_caught_as_result_mismatch(self, tmp_path,
                                                          monkeypatch):
        # Re-create the PR 6 bug class: a result-shaping parameter
        # (epsilon here) silently missing from the cache spec, so two
        # distinct probes collide on one key.  The sanitizer's serial
        # cache-off replay computes the true value and flags the stale
        # cached bytes.
        real_spec = tester._probe_spec

        def leaky_spec(family, instance, fingerprint, trials, **params):
            params.pop("epsilon", None)
            return real_spec(family, instance, fingerprint, trials, **params)

        monkeypatch.setattr(tester, "_probe_spec", leaky_spec)
        # A Gaussian sketch's distortions are continuous, so epsilon
        # genuinely shapes the estimate (CountSketch-on-DBeta distortion
        # is the binary collision indicator and would mask the fault).
        family, instance = GaussianSketch(m=12, n=64), _instance()
        cache = ProbeCache(tmp_path)
        polluting = failure_estimate(family, instance, 0.05, 12,
                                     rng=np.random.default_rng(3),
                                     cache=cache)
        honest = failure_estimate(family, instance, 0.9, 12,
                                  rng=np.random.default_rng(3))
        assert polluting != honest, "fixture epsilons must disagree"
        with pytest.raises(DeterminismError, match="results differ"):
            failure_estimate(family, instance, 0.9, 12,
                             rng=np.random.default_rng(3), cache=cache,
                             sanitized=True)

    def test_nan_metric_fails_at_the_emit_site(self, tmp_path):
        result = ExperimentResult(experiment_id="EX", title="nan probe")
        result.metrics["exponent"] = float("nan")
        with pytest.raises(ValueError):
            result.save_json(tmp_path / "result.json")


class TestCli:
    def test_nonpositive_axis_exits_two(self, capsys):
        assert sanitize_main(["run", "--workers", "0", "--", "E1"]) == 2
        assert "--workers" in capsys.readouterr().err

    def test_missing_experiment_exits_two(self, capsys):
        assert sanitize_main(["run", "--"]) == 2
        assert "no experiment selected" in capsys.readouterr().err

    def test_unknown_experiment_exits_two(self, capsys):
        assert sanitize_main(["run", "--", "E99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err
