"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import as_generator, spawn, spawn_many, stream


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = as_generator(42).integers(0, 1000, size=10)
        b = as_generator(42).integers(0, 1000, size=10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_generator(1).integers(0, 10**9)
        b = as_generator(2).integers(0, 10**9)
        assert a != b

    def test_generator_passthrough_is_identity(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(7)
        gen = as_generator(seq)
        assert isinstance(gen, np.random.Generator)

    def test_sequence_of_ints_accepted(self):
        gen = as_generator([1, 2, 3])
        assert isinstance(gen, np.random.Generator)


class TestSpawn:
    def test_spawn_never_aliases(self):
        gen = np.random.default_rng(0)
        child = spawn(gen)
        assert child is not gen

    def test_spawn_deterministic_given_parent_state(self):
        a = spawn(as_generator(5)).integers(0, 10**9)
        b = spawn(as_generator(5)).integers(0, 10**9)
        assert a == b

    def test_consecutive_spawns_differ(self):
        gen = np.random.default_rng(0)
        a = spawn(gen).integers(0, 10**9)
        b = spawn(gen).integers(0, 10**9)
        assert a != b

    def test_spawn_many_count(self):
        children = spawn_many(0, 5)
        assert len(children) == 5
        values = {child.integers(0, 10**9) for child in children}
        assert len(values) == 5  # all streams distinct

    def test_spawn_many_zero(self):
        assert spawn_many(0, 0) == []

    def test_spawn_many_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_many(0, -1)


class TestStream:
    def test_stream_yields_independent_generators(self):
        it = stream(3)
        values = [next(it).integers(0, 10**9) for _ in range(4)]
        assert len(set(values)) == 4

    def test_stream_deterministic(self):
        a = [next(stream(9)).integers(0, 10**9)]
        b = [next(stream(9)).integers(0, 10**9)]
        assert a == b
