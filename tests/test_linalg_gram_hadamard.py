"""Tests for repro.linalg.gram and repro.linalg.hadamard."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg.gram import (
    column_inner_product,
    column_norms,
    column_sparsities,
    columns_with_norm_in,
    gram_matrix,
    max_column_sparsity,
    offdiagonal_extreme,
)
from repro.linalg.hadamard import (
    fwht,
    hadamard_matrix,
    is_hadamard,
    next_power_of_two,
)


@pytest.fixture
def sample_matrix():
    return np.array([
        [1.0, 0.0, 2.0],
        [0.0, 3.0, 0.0],
        [0.0, 4.0, 0.0],
    ])


class TestColumnNorms:
    def test_dense(self, sample_matrix):
        norms = column_norms(sample_matrix)
        assert np.allclose(norms, [1.0, 5.0, 2.0])

    def test_sparse_matches_dense(self, sample_matrix):
        dense = column_norms(sample_matrix)
        sparse = column_norms(sp.csc_matrix(sample_matrix))
        assert np.allclose(dense, sparse)


class TestColumnSparsities:
    def test_dense(self, sample_matrix):
        assert list(column_sparsities(sample_matrix)) == [1, 2, 1]

    def test_sparse_with_stored_zero(self):
        a = sp.csc_matrix(np.array([[1.0, 0.0], [0.0, 0.0]]))
        a.data[0] = 1.0
        assert list(column_sparsities(a)) == [1, 0]

    def test_max(self, sample_matrix):
        assert max_column_sparsity(sample_matrix) == 2


class TestGram:
    def test_gram_matches_definition(self, sample_matrix):
        g = gram_matrix(sample_matrix)
        assert np.allclose(g, sample_matrix.T @ sample_matrix)

    def test_sparse_gram(self, sample_matrix):
        g = gram_matrix(sp.csc_matrix(sample_matrix))
        assert np.allclose(g, sample_matrix.T @ sample_matrix)

    def test_column_inner_product(self, sample_matrix):
        assert column_inner_product(sample_matrix, 0, 2) == pytest.approx(2.0)
        sparse = sp.csc_matrix(sample_matrix)
        assert column_inner_product(sparse, 0, 2) == pytest.approx(2.0)

    def test_inner_product_out_of_range(self, sample_matrix):
        with pytest.raises(IndexError):
            column_inner_product(sample_matrix, 0, 5)

    def test_offdiagonal_extreme(self, sample_matrix):
        value, (i, j) = offdiagonal_extreme(sample_matrix)
        assert (i, j) == (0, 2)
        assert value == pytest.approx(2.0)

    def test_offdiagonal_needs_two_columns(self):
        with pytest.raises(ValueError):
            offdiagonal_extreme(np.ones((3, 1)))


class TestColumnsWithNormIn:
    def test_selects_expected(self, sample_matrix):
        idx = columns_with_norm_in(sample_matrix, 0.5, 2.5)
        assert list(idx) == [0, 2]

    def test_bad_range_raises(self, sample_matrix):
        with pytest.raises(ValueError):
            columns_with_norm_in(sample_matrix, 2.0, 1.0)


class TestHadamard:
    @pytest.mark.parametrize("order", [1, 2, 4, 8, 16])
    def test_hadamard_property(self, order):
        assert is_hadamard(hadamard_matrix(order))

    def test_non_power_of_two_raises(self):
        with pytest.raises(ValueError):
            hadamard_matrix(6)

    def test_is_hadamard_rejects_non_pm1(self):
        assert not is_hadamard(np.eye(4))

    def test_is_hadamard_rejects_rectangular(self):
        assert not is_hadamard(np.ones((2, 4)))


class TestFWHT:
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 32])
    def test_matches_dense_transform(self, n):
        rng = np.random.default_rng(n)
        x = rng.standard_normal(n)
        assert np.allclose(fwht(x), hadamard_matrix(n) @ x)

    def test_matrix_input(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((16, 5))
        assert np.allclose(fwht(x), hadamard_matrix(16) @ x)

    def test_involution_up_to_n(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal(8)
        assert np.allclose(fwht(fwht(x)), 8 * x)

    def test_input_not_mutated(self):
        x = np.ones(8)
        fwht(x)
        assert np.allclose(x, 1.0)

    def test_non_power_of_two_raises(self):
        with pytest.raises(ValueError):
            fwht(np.ones(6))

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=25)
    def test_norm_scaling(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(32)
        # Unnormalized transform scales norms by sqrt(n).
        assert np.linalg.norm(fwht(x)) == pytest.approx(
            np.sqrt(32) * np.linalg.norm(x)
        )


class TestNextPowerOfTwo:
    @pytest.mark.parametrize("n,expected", [
        (1, 1), (2, 2), (3, 4), (5, 8), (17, 32), (1024, 1024),
    ])
    def test_values(self, n, expected):
        assert next_power_of_two(n) == expected

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            next_power_of_two(0)
