"""Tests for the observability layer (``repro.observe``).

Covers the counter arithmetic, the ledger's buffering/fork/no-op
contracts, trace spans, the deterministic-view guarantee (serial vs
``workers=4`` event payloads identical modulo timing fields), the
harness's ``count_*`` metrics, and the ``summarize`` renderer.
"""

import json
import math
import os

import numpy as np
import pytest

from repro.core.tester import distortion_samples, minimal_m
from repro.experiments.harness import Experiment
from repro.hardinstances.dbeta import DBeta
from repro.hardinstances.mixtures import section3_mixture
from repro.observe import (
    Counters,
    RunLedger,
    add_count,
    counters,
    current_ledger,
    deterministic_view,
    emit_event,
    read_events,
    trace,
    use_ledger,
)
from repro.observe.ledger import read_event_segments
from repro.observe.summarize import summarize, summarize_path, summarize_paths
from repro.sketch.countsketch import CountSketch
from repro.utils.stats import estimate_probability

pytestmark = pytest.mark.observe


class TestCounters:
    def test_increment_and_get(self):
        c = Counters()
        c.increment("x")
        c.increment("x", 4)
        assert c.get("x") == 5
        assert c.get("never") == 0

    def test_snapshot_diff(self):
        c = Counters({"a": 2})
        before = c.snapshot()
        c.increment("a", 3)
        c.increment("b")
        assert c.diff(before) == {"a": 3, "b": 1}
        # Unchanged counters do not appear in the delta.
        c2 = Counters({"a": 1})
        assert c2.diff(c2.snapshot()) == {}

    def test_merge_clear(self):
        c = Counters({"a": 1})
        c.merge({"a": 2, "b": 5})
        assert c.as_dict() == {"a": 3, "b": 5}
        c.clear()
        assert len(c) == 0

    def test_global_add_count(self):
        before = counters().snapshot()
        add_count("test_only_counter", 7)
        assert counters().diff(before) == {"test_only_counter": 7}


class TestRunLedger:
    def test_emit_without_ledger_is_noop(self):
        assert current_ledger() is None
        emit_event("probe", m=1)  # must not raise or record anywhere

    def test_context_installs_and_keeps_events(self):
        with RunLedger() as ledger:
            assert current_ledger() is ledger
            emit_event("probe", m=3, successes=1, trials=10)
        assert current_ledger() is None
        [event] = ledger.events
        assert event["kind"] == "probe" and event["m"] == 3
        assert "t" in event

    def test_closed_ledger_drops_events(self):
        with RunLedger() as ledger:
            pass
        ledger.emit("probe", m=1)
        assert ledger.events == []

    def test_foreign_pid_events_rejected(self):
        ledger = RunLedger()
        ledger._pid = os.getpid() + 1  # simulate a forked worker
        ledger.emit("probe", m=1)
        assert ledger.events == []

    def test_buffered_writes(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLedger(path, buffer_lines=2) as ledger:
            ledger.emit("a")
            assert not path.exists()  # still buffered
            ledger.emit("b")
            assert len(path.read_text().splitlines()) == 2
            ledger.emit("c")
        # close() flushes the tail.
        assert [e["kind"] for e in read_events(path)] == ["a", "b", "c"]

    def test_appends_across_runs(self, tmp_path):
        path = tmp_path / "run.jsonl"
        for kind in ("first", "second"):
            with RunLedger(path) as ledger:
                ledger.emit(kind)
        assert [e["kind"] for e in read_events(path)] == ["first", "second"]

    def test_numpy_fields_serialized(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLedger(path) as ledger:
            ledger.emit("probe", m=np.int64(8), rate=np.float32(0.5))
        [event] = read_events(path)
        assert event["m"] == 8
        assert event["rate"] == pytest.approx(0.5)

    def test_non_finite_fields_rejected(self, tmp_path):
        # allow_nan=False: a NaN/inf field must raise instead of writing
        # a bare-token line no strict JSON reader could parse back.
        path = tmp_path / "run.jsonl"
        with RunLedger(path) as ledger:
            ledger.emit("probe", m=4)
            for bad in (float("nan"), float("inf"), np.float64("nan")):
                with pytest.raises(ValueError):
                    ledger.emit("probe", rate=bad)
        assert [e["kind"] for e in read_events(path)] == ["probe"]

    def test_torn_trailing_line_tolerated(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"kind": "a"}\n{"kind": "b"')
        assert [e["kind"] for e in read_events(path)] == ["a"]

    def test_corrupt_middle_line_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"kind": "a"}\nnot json\n{"kind": "b"}\n')
        with pytest.raises(ValueError, match="line 2"):
            read_events(path)

    def test_use_ledger_does_not_close(self):
        ledger = RunLedger()
        with use_ledger(ledger):
            emit_event("x")
        emit_event("ignored")  # no longer installed
        ledger.emit("y")  # but still open
        assert [e["kind"] for e in ledger.events] == ["x", "y"]

    def test_bad_buffer_size_rejected(self):
        with pytest.raises(ValueError):
            RunLedger(buffer_lines=0)


class TestTrace:
    def test_trace_emits_elapsed(self):
        with RunLedger() as ledger:
            with trace("span", trials=12):
                pass
        [event] = ledger.events
        assert event["kind"] == "trace" and event["name"] == "span"
        assert event["trials"] == 12
        assert event["elapsed"] >= 0.0

    def test_trace_without_ledger_is_noop(self):
        with trace("span"):
            pass

    def test_trace_emits_on_exception(self):
        with RunLedger() as ledger:
            with pytest.raises(RuntimeError):
                with trace("span"):
                    raise RuntimeError("boom")
        assert [e["kind"] for e in ledger.events] == ["trace"]


class TestDeterministicView:
    def test_strips_timing_and_execution(self):
        events = [
            {"t": 1.0, "kind": "probe", "m": 8, "elapsed": 0.5},
            {"t": 2.0, "kind": "batch_done", "batch": 0, "worker": 123},
            {"t": 3.0, "kind": "experiment_start", "experiment": "E1",
             "workers": 4},
        ]
        assert deterministic_view(events) == [
            {"kind": "probe", "m": 8},
            {"kind": "experiment_start", "experiment": "E1"},
        ]


def _run_search_with_ledger(workers):
    inst = section3_mixture(n=512, d=4, epsilon=1 / 16)
    fam = CountSketch(m=8, n=512)
    with RunLedger() as ledger:
        result = minimal_m(
            fam, inst, 1 / 16, 0.2, trials=16, m_min=8, rng=11,
            workers=workers,
        )
    return result, ledger.events


class TestLedgerDeterminism:
    def test_serial_vs_parallel_payloads_identical(self):
        serial_result, serial_events = _run_search_with_ledger(workers=1)
        parallel_result, parallel_events = _run_search_with_ledger(workers=4)
        assert serial_result.m_star == parallel_result.m_star
        assert serial_result.evaluations == parallel_result.evaluations
        assert deterministic_view(serial_events) == \
            deterministic_view(parallel_events)
        # The parallel run has *more* raw events (per-chunk batch_done),
        # which is exactly what the deterministic view factors out.
        assert len(parallel_events) > len(serial_events)

    def test_probe_events_match_evaluations(self):
        result, events = _run_search_with_ledger(workers=1)
        probes = [e for e in events if e["kind"] == "probe"]
        assert [(p["m"], p["successes"], p["trials"]) for p in probes] == \
            [(m, est.successes, est.trials) for m, est in result.evaluations]
        assert all(p["decision"] == "point" for p in probes)
        assert {p["phase"] for p in probes} <= {"exponential", "bisection"}
        start = [e for e in events if e["kind"] == "minimal_m_start"]
        end = [e for e in events if e["kind"] == "minimal_m_end"]
        assert len(start) == 1 and len(end) == 1
        assert end[0]["m_star"] == result.m_star
        assert end[0]["probes"] == len(result.evaluations)

    def test_trial_loop_traces_emitted(self):
        inst = DBeta(n=128, d=4, reps=1)
        fam = CountSketch(m=16, n=128)
        with RunLedger() as ledger:
            distortion_samples(fam, inst, trials=6, rng=0)
            estimate_probability(lambda gen: gen.random() < 0.5, 8, rng=0)
        names = [e["name"] for e in ledger.events if e["kind"] == "trace"]
        assert names == ["distortion_samples", "estimate_probability"]
        batches = [e for e in ledger.events if e["kind"] == "batch_done"]
        assert sum(b["trials"] for b in batches) == 14

    def test_ledger_does_not_perturb_results(self):
        inst = DBeta(n=128, d=4, reps=1)
        fam = CountSketch(m=16, n=128)
        plain = distortion_samples(fam, inst, trials=8, rng=7)
        with RunLedger():
            observed = distortion_samples(fam, inst, trials=8, rng=7)
        np.testing.assert_array_equal(plain, observed)


class _CountingExperiment(Experiment):
    experiment_id = "EX"
    title = "counter fixture"
    paper_claim = "n/a"

    def _run(self, scale, rng):
        result = self._result()
        inst = DBeta(n=128, d=4, reps=1)
        distortion_samples(
            CountSketch(m=16, n=128), inst, trials=8, rng=0,
            workers=self.workers,
        )
        result.metrics["answer"] = 42.0
        return result


class TestExperimentCounters:
    def test_count_metrics_attached(self):
        result = _CountingExperiment().run(scale=1.0, rng=0)
        assert result.metrics["count_trials"] == 8
        assert result.metrics["count_sketch_samples"] == 8
        assert result.metrics["count_kernel_applies"] == 8
        assert result.metrics["answer"] == 42.0

    def test_count_metrics_identical_across_workers(self):
        serial = _CountingExperiment().run(scale=1.0, rng=0)
        parallel = _CountingExperiment().run(scale=1.0, rng=0, workers=2)
        assert serial.metrics == parallel.metrics

    def test_experiment_events_bracket_run(self):
        with RunLedger() as ledger:
            _CountingExperiment().run(scale=1.0, rng=0)
        kinds = [e["kind"] for e in ledger.events]
        assert kinds[0] == "experiment_start"
        assert kinds[-2:] == ["counters", "experiment_end"]
        end = ledger.events[-1]
        assert end["metrics"]["count_trials"] == 8
        counter_event = ledger.events[-2]
        assert counter_event["experiment"] == "EX"
        assert counter_event["trials"] == 8


class TestSummarize:
    def _ledger_events(self, tmp_path, workers=1):
        inst = section3_mixture(n=512, d=4, epsilon=1 / 16)
        fam = CountSketch(m=8, n=512)
        path = tmp_path / "run.jsonl"
        with RunLedger(path) as ledger:
            ledger.emit("cli_start", experiments=["E1"], scale=0.05,
                        seed=0, workers=workers)
            result = minimal_m(fam, inst, 1 / 16, 0.2, trials=16,
                               m_min=8, rng=11, workers=workers)
        return path, result

    def test_every_probe_reported(self, tmp_path):
        path, result = self._ledger_events(tmp_path)
        text = summarize_path(path)
        for m, est in result.evaluations:
            assert f"{m}" in text
        assert "minimal_m #1" in text
        assert f"m*={result.m_star}" in text
        assert "Wall-clock breakdown" in text

    def test_incomplete_run_is_diagnosable(self):
        # A crashed run: experiment and search started, no end events.
        events = [
            {"t": 0, "kind": "experiment_start", "experiment": "E3"},
            {"t": 1, "kind": "minimal_m_start", "m_min": 4, "m_max": 64,
             "decision": "point", "delta": 0.1},
            {"t": 2, "kind": "probe", "m": 4, "successes": 9, "trials": 10,
             "passed": False, "phase": "exponential", "elapsed": 0.5},
        ]
        text = summarize(events)
        assert "INCOMPLETE" in text
        assert "E3" in text
        assert "0.900" in text  # the probe's failure rate

    def test_empty_ledger(self):
        text = summarize([])
        assert "0 events" in text

    def test_counters_table(self):
        events = [
            {"t": 0, "kind": "experiment_start", "experiment": "E1"},
            {"t": 1, "kind": "counters", "experiment": "E1",
             "sketch_samples": 20, "trials": 20},
            {"t": 2, "kind": "experiment_end", "experiment": "E1",
             "elapsed": 1.0, "metrics": {}},
        ]
        text = summarize(events)
        assert "Counters (E1)" in text
        assert "sketch_samples" in text


class TestMonotonicStamps:
    def test_events_carry_both_clocks(self):
        with RunLedger() as ledger:
            emit_event("probe", m=4)
            emit_event("probe", m=8)
        first, second = ledger.events
        assert "t" in first and "mono" in first
        assert second["mono"] >= first["mono"]

    def test_mono_stripped_from_deterministic_view(self):
        with RunLedger() as ledger:
            emit_event("probe", m=4)
        [view] = deterministic_view(ledger.events)
        assert "mono" not in view and "t" not in view

    def test_mono_not_folded_into_counters_table(self):
        events = [
            {"t": 0, "mono": 12.5, "kind": "experiment_start",
             "experiment": "E1"},
            {"t": 1, "mono": 13.5, "kind": "counters", "experiment": "E1",
             "sketch_samples": 20},
            {"t": 2, "mono": 14.5, "kind": "experiment_end",
             "experiment": "E1", "elapsed": 1.0},
        ]
        text = summarize(events)
        assert "mono" not in text

    def test_concurrent_thread_emission_never_tears(self, tmp_path):
        # The estimation server emits from several compute threads into
        # one request-log ledger; every line must parse and none may drop.
        import threading

        path = tmp_path / "threads.jsonl"
        ledger = RunLedger(path, buffer_lines=2, keep_events=False)
        per_thread = 200

        def hammer(worker):
            for i in range(per_thread):
                ledger.emit("probe", worker=worker, i=i)

        threads = [
            threading.Thread(target=hammer, args=(w,)) for w in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        ledger.close()
        events = read_events(path)
        assert len(events) == 4 * per_thread


class TestNegativeIntervalClamping:
    def _events(self, elapsed):
        return [
            {"t": 100.0, "kind": "experiment_start", "experiment": "E1"},
            {"t": 90.0, "kind": "experiment_end", "experiment": "E1",
             "elapsed": elapsed},
            {"t": 91.0, "kind": "trace", "name": "span",
             "elapsed": elapsed},
        ]

    def test_negative_intervals_clamped_and_flagged(self):
        # A legacy ledger spanning an NTP step backwards: summarize must
        # neither render negative seconds nor pretend the data is clean.
        text = summarize(self._events(-5.0))
        assert "-5.0" not in text
        assert "negative interval" in text
        assert "2 negative interval(s)" in text

    def test_clean_ledger_not_flagged(self):
        text = summarize(self._events(5.0))
        assert "negative interval" not in text

    def test_mono_fallback_for_missing_elapsed(self):
        # An end event without elapsed (older emitter) still gets a
        # wall-clock figure when both events carry comparable mono stamps.
        events = [
            {"t": 0.0, "mono": 10.0, "pid": 1, "kind": "experiment_start",
             "experiment": "E1"},
            {"t": 1.0, "mono": 12.5, "pid": 1, "kind": "experiment_end",
             "experiment": "E1"},
        ]
        text = summarize(events)
        assert "2.50" in text

    def test_mono_span_guards(self):
        from repro.observe.summarize import _mono_span

        # different processes: mono epochs are incomparable
        assert _mono_span({"mono": 10.0, "pid": 1},
                          {"mono": 12.5, "pid": 2}) is None
        # backwards mono (corrupt/edited ledger) is not a duration
        assert _mono_span({"mono": 12.5, "pid": 1},
                          {"mono": 10.0, "pid": 1}) is None
        # missing stamps (legacy ledger) fall through to "?"
        assert _mono_span({"pid": 1}, {"mono": 10.0, "pid": 1}) is None
        span = _mono_span({"mono": 10.0, "pid": 1},
                          {"mono": 12.5, "pid": 1})
        assert span is not None and math.isclose(span, 2.5)


class TestScopedCounters:
    def test_use_counters_isolates_and_restores(self):
        from repro.observe import use_counters

        baseline = counters().get("scoped_test")
        scoped = Counters()
        with use_counters(scoped):
            add_count("scoped_test", 3)
            assert counters() is scoped
        assert scoped.get("scoped_test") == 3
        assert counters().get("scoped_test") == baseline

    def test_scope_is_thread_local_via_context_copy(self):
        # asyncio.to_thread copies the calling context; the scoped
        # aggregate must follow the copy while other threads keep the
        # global.  Exercised directly with contextvars.copy_context().
        import contextvars

        from repro.observe import use_counters

        scoped = Counters()
        with use_counters(scoped):
            context = contextvars.copy_context()
        baseline = counters().get("ctx_test")
        context.run(add_count, "ctx_test", 2)
        assert scoped.get("ctx_test") == 2
        assert counters().get("ctx_test") == baseline


class TestMultiStreamSummarize:
    """Ledgers written by several shard/pid streams must be regrouped
    per stream, never summarized as one interleaved run."""

    @staticmethod
    def _probe(t, m, shard=None, pid=None):
        event = {"t": t, "kind": "probe", "m": m, "successes": 1,
                 "trials": 10, "passed": True, "phase": "exponential",
                 "elapsed": 0.1}
        if shard is not None:
            event["shard"] = shard
        if pid is not None:
            event["pid"] = pid
        return event

    def _shard_events(self):
        # Interleaved in time, as concurrent shard appends would land.
        events = []
        for t, (shard, m) in enumerate([("0/3", 8), ("1/3", 8), ("2/3", 8),
                                        ("0/3", 16), ("2/3", 16),
                                        ("1/3", 16)]):
            events.append(self._probe(t, m, shard=shard, pid=100 + t % 3))
        return events

    def test_shard_streams_get_sections(self):
        text = summarize(self._shard_events())
        for label in ("shard 0/3", "shard 1/3", "shard 2/3"):
            assert f"=== {label}" in text
        assert "3 shard/pid streams" in text

    def test_sections_do_not_interleave(self):
        text = summarize(self._shard_events())
        # Each section holds exactly its own two probes: headers appear in
        # shard order and each section body mentions both probed m values.
        first = text.index("=== shard 0/3")
        second = text.index("=== shard 1/3")
        third = text.index("=== shard 2/3")
        assert first < second < third
        for lo, hi in ((first, second), (second, third), (third, len(text))):
            section = text[lo:hi]
            # Each shard stream holds exactly its own 2 events / 1 search.
            assert "(2 events)" in section
            assert "1 searches" in section

    def test_pid_grouping_without_shard_labels(self):
        events = [self._probe(0, 8, pid=41), self._probe(1, 8, pid=42),
                  self._probe(2, 16, pid=41)]
        text = summarize(events)
        assert "=== pid 41 (2 events)" in text
        assert "=== pid 42 (1 events)" in text

    def test_single_stream_renders_flat(self):
        # One pid = the pre-shard layout: no section headers.
        events = [self._probe(0, 8, pid=7), self._probe(1, 16, pid=7)]
        assert "===" not in summarize(events)

    def test_counters_fold_ignores_identity_fields(self):
        # pid/shard are stream identity, not counter payload: they must
        # not be summed into the counters table.  All events share one
        # pid, so the render stays flat and 4242 could only appear as a
        # (wrongly folded) counter row.
        events = [
            {"t": 0, "kind": "experiment_start", "experiment": "E1",
             "pid": 4242},
            {"t": 1, "kind": "counters", "experiment": "E1", "pid": 4242,
             "trials": 20},
            {"t": 2, "kind": "experiment_end", "experiment": "E1",
             "elapsed": 1.0, "metrics": {}, "pid": 4242},
        ]
        text = summarize(events)
        assert "===" not in text  # single stream: flat render
        assert "4242" not in text


class TestEventSegments:
    def test_segments_concatenate_in_order(self, tmp_path):
        paths = []
        for index, kind in enumerate(["a", "b"]):
            path = tmp_path / f"seg{index}.jsonl"
            path.write_text(json.dumps({"t": index, "kind": kind}) + "\n")
            paths.append(path)
        assert [e["kind"] for e in read_event_segments(paths)] == ["a", "b"]

    def test_torn_final_line_per_segment(self, tmp_path):
        # A shard killed mid-append leaves a torn *final* line in its own
        # segment; that must not poison the segments that follow it.
        first = tmp_path / "crashed.jsonl"
        first.write_text('{"t": 0, "kind": "a"}\n{"t": 1, "kind": "torn')
        second = tmp_path / "clean.jsonl"
        second.write_text('{"t": 2, "kind": "b"}\n')
        events = read_event_segments([first, second])
        assert [e["kind"] for e in events] == ["a", "b"]

    def test_missing_segment_is_empty(self, tmp_path):
        path = tmp_path / "only.jsonl"
        path.write_text('{"t": 0, "kind": "a"}\n')
        events = read_event_segments([tmp_path / "absent.jsonl", path])
        assert [e["kind"] for e in events] == ["a"]

    def test_summarize_paths_groups_segments(self, tmp_path):
        paths = []
        for index in range(2):
            path = tmp_path / f"shard{index}.jsonl"
            event = TestMultiStreamSummarize._probe(
                index, 8, shard=f"{index}/2", pid=50 + index)
            path.write_text(json.dumps(event) + "\n")
            paths.append(path)
        text = summarize_paths(paths)
        assert "=== shard 0/2" in text and "=== shard 1/2" in text


class TestShardLabelStamping:
    def test_events_carry_shard_and_pid(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLedger(path, shard="1/3") as ledger:
            ledger.emit("probe", m=8)
        [event] = read_events(path)
        assert event["shard"] == "1/3"
        assert event["pid"] == os.getpid()

    def test_no_shard_label_omits_field(self):
        with RunLedger() as ledger:
            ledger.emit("probe", m=8)
        [event] = ledger.events
        assert "shard" not in event
        assert event["pid"] == os.getpid()

    def test_explicit_field_wins_over_label(self):
        # An event that names its own shard (e.g. a merge report about
        # another shard's store) must not be overwritten by the label.
        with RunLedger(shard="0/2") as ledger:
            ledger.emit("shard_partial", shard="1/2")
        [event] = ledger.events
        assert event["shard"] == "1/2"


class TestResultJsonRoundTrip:
    def test_summarized_ledger_json_parseable(self, tmp_path):
        # Each ledger line individually parses as a JSON object.
        path, _ = TestSummarize()._ledger_events(tmp_path)
        for line in path.read_text().splitlines():
            assert isinstance(json.loads(line), dict)
