"""Tests for repro.core.algorithm1 (the greedy pair finder)."""

import math

import numpy as np
import pytest

from repro.core.algorithm1 import (
    GreedyPairFinder,
    run_algorithm1,
    run_algorithm2,
)
from repro.core.heavy import good_columns
from repro.hardinstances.dbeta import DBeta
from repro.sketch.hadamard_block import HadamardBlockSketch


def abundant_pi(m=64, n=512, block=4, seed=0):
    """A block-Hadamard matrix: every column good, collisions structured."""
    fam = HadamardBlockSketch(m=m, n=n, block_order=block, permute=True)
    return fam.sample(seed).matrix


class TestGreedyPairFinderValidation:
    def test_rejects_bad_theta(self):
        with pytest.raises(ValueError):
            GreedyPairFinder(np.eye(4), [0], [0, 1], theta=0.0,
                             phi_threshold=0.5, iterations=1)

    def test_rejects_bad_phi(self):
        with pytest.raises(ValueError):
            GreedyPairFinder(np.eye(4), [0], [0, 1], theta=0.5,
                             phi_threshold=0.0, iterations=1)

    def test_rejects_chosen_outside_good(self):
        with pytest.raises(ValueError):
            GreedyPairFinder(np.eye(4), [3], [0, 1], theta=0.5,
                             phi_threshold=0.5, iterations=1)


class TestGreedyPairFinderBehaviour:
    def test_finds_identical_column_pair(self):
        # Two chosen columns are identical: they must collide, and with
        # phi small the greedy branch pairs them.
        pi = np.zeros((8, 6))
        pi[0, 0] = pi[0, 1] = 1.0  # identical heavy columns 0, 1
        pi[1, 2], pi[2, 3], pi[3, 4], pi[4, 5] = 1.0, 1.0, 1.0, 1.0
        finder = GreedyPairFinder(
            pi, chosen_columns=[0, 1, 2], good_set=list(range(6)),
            theta=0.5, phi_threshold=0.9, iterations=3, rng=0,
        )
        result = finder.run()
        assert (0, 1) in result.pairs or (1, 0) in result.pairs

    def test_no_collisions_yields_no_pairs(self):
        pi = np.eye(8)
        finder = GreedyPairFinder(
            pi, chosen_columns=[0, 1, 2], good_set=list(range(8)),
            theta=0.5, phi_threshold=0.9, iterations=3, rng=0,
        )
        result = finder.run()
        assert result.pairs == []
        kinds = {e.kind for e in result.events}
        assert "no_collision" in kinds

    def test_pairs_are_disjoint(self):
        pi = abundant_pi()
        inst = DBeta(n=512, d=32, reps=1)
        draw = inst.sample_draw(1)
        theta = math.sqrt(8.0 / 32.0)
        good = good_columns(pi, 1 / 32, theta, 2)
        good_set = set(int(c) for c in good)
        chosen = [c for c in draw.rows if int(c) in good_set]
        result = run_algorithm1(pi, chosen, good, 1 / 32, d=32, rng=2)
        used = [c for pair in result.pairs for c in pair]
        assert len(used) == len(set(used))

    def test_event_bookkeeping(self):
        pi = abundant_pi()
        inst = DBeta(n=512, d=32, reps=1)
        draw = inst.sample_draw(3)
        theta = math.sqrt(8.0 / 32.0)
        good = good_columns(pi, 1 / 32, theta, 2)
        good_set = set(int(c) for c in good)
        chosen = [c for c in draw.rows if int(c) in good_set]
        result = run_algorithm1(pi, chosen, good, 1 / 32, d=32, rng=4)
        assert result.heavy_break_count + result.phi_break_count == \
            max(1, 32 // 16)
        assert result.final_good_count >= 0
        assert result.final_surviving <= len(chosen)

    def test_deterministic_given_rng(self):
        pi = abundant_pi()
        inst = DBeta(n=512, d=32, reps=1)
        draw = inst.sample_draw(5)
        theta = math.sqrt(8.0 / 32.0)
        good = good_columns(pi, 1 / 32, theta, 2)
        good_set = set(int(c) for c in good)
        chosen = [c for c in draw.rows if int(c) in good_set]
        r1 = run_algorithm1(pi, chosen, good, 1 / 32, d=32, rng=7)
        r2 = run_algorithm1(pi, chosen, good, 1 / 32, d=32, rng=7)
        assert r1.pairs == r2.pairs


class TestRunAlgorithm2:
    def test_runs_with_levels(self):
        pi = abundant_pi()
        inst = DBeta(n=512, d=32, reps=2)
        draw = inst.sample_draw(0)
        theta_level = 1  # heavy threshold sqrt(1/2)
        good = good_columns(pi, 1 / 32, math.sqrt(0.5), 1)
        good_set = set(int(c) for c in good)
        chosen = [c for c in draw.rows if int(c) in good_set]
        if len(chosen) >= 2:
            result = run_algorithm2(
                pi, chosen, good, epsilon=1 / 32, d=32, level=theta_level,
                level_prime=1, delta_prime=0.3, rng=1,
            )
            assert result.heavy_break_count + result.phi_break_count >= 1

    def test_validates_levels(self):
        with pytest.raises(ValueError):
            run_algorithm2(np.eye(4), [0], [0], epsilon=0.05, d=4,
                           level=-1, level_prime=0, delta_prime=0.3)


class TestHeavyRowBranch:
    """The Lemma 12 branch: a dominant heavy row triggers the
    while-loop's S'_k break and a same-row pair output."""

    def _dominant_row_pi(self, n=48, heavy_cols=24):
        # Row 0 is heavy in half the columns: phi is large for them.
        pi = np.zeros((heavy_cols + 8, n))
        theta = 0.9
        for j in range(heavy_cols):
            pi[0, j] = theta
            pi[1 + j % 4, j] = np.sqrt(1 - theta * theta)
        for j in range(heavy_cols, n):
            pi[5 + (j % (pi.shape[0] - 5)), j] = 1.0
        return pi

    def test_heavy_break_produces_same_row_pair(self):
        pi = self._dominant_row_pi()
        chosen = list(range(8))  # all heavy in row 0
        finder = GreedyPairFinder(
            pi, chosen_columns=chosen, good_set=list(range(48)),
            theta=0.8, phi_threshold=0.01, iterations=2, rng=0,
        )
        result = finder.run()
        assert result.heavy_break_count >= 1
        assert result.pairs, "expected a pair from the heavy row"
        kinds = {e.kind for e in result.events}
        assert "pair_heavy_row" in kinds
        # Both members of the pair are heavy in row 0.
        ci, cj = result.pairs[0]
        assert abs(pi[0, ci]) >= 0.8
        assert abs(pi[0, cj]) >= 0.8

    def test_single_heavy_survivor_retires_row(self):
        pi = self._dominant_row_pi()
        # Only one chosen column is heavy in row 0; the branch must
        # retire the row (output (l, bot)) instead of pairing.
        chosen = [0, 30, 31]
        finder = GreedyPairFinder(
            pi, chosen_columns=chosen, good_set=list(range(48)),
            theta=0.8, phi_threshold=0.01, iterations=1, rng=1,
        )
        result = finder.run()
        kinds = [e.kind for e in result.events]
        assert "row_removed" in kinds
        assert all(k != "pair_heavy_row" for k in kinds)
