"""Tests for repro.core.heavy."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.heavy import (
    average_heavy_count,
    column_mass_check,
    good_columns,
    heavy_budget_profile,
    heavy_counts_per_column,
    heavy_mask,
)
from repro.sketch.countsketch import CountSketch
from repro.sketch.osnap import OSNAP


@pytest.fixture
def matrix():
    return np.array([
        [0.9, 0.1, 0.0],
        [0.0, 0.5, 0.8],
        [0.3, 0.0, 0.6],
    ])


class TestHeavyMask:
    def test_dense(self, matrix):
        mask = heavy_mask(matrix, 0.5).toarray()
        expected = np.abs(matrix) >= 0.5
        assert np.array_equal(mask, expected)

    def test_sparse_matches_dense(self, matrix):
        sparse = heavy_mask(sp.csc_matrix(matrix), 0.5).toarray()
        dense = heavy_mask(matrix, 0.5).toarray()
        assert np.array_equal(sparse, dense)

    def test_does_not_mutate_input(self):
        a = sp.csc_matrix(np.array([[0.5, 0.2], [0.1, 0.9]]))
        before = a.toarray().copy()
        heavy_mask(a, 1.0)  # no entries heavy: triggers eliminate_zeros
        assert np.array_equal(a.toarray(), before)

    def test_threshold_must_be_positive(self, matrix):
        with pytest.raises(ValueError):
            heavy_mask(matrix, 0.0)


class TestHeavyCounts:
    def test_counts(self, matrix):
        counts = heavy_counts_per_column(matrix, 0.5)
        assert list(counts) == [1, 1, 2]

    def test_average(self, matrix):
        assert average_heavy_count(matrix, 0.5) == pytest.approx(4 / 3)

    def test_countsketch_has_one_heavy_entry(self):
        sketch = CountSketch(m=64, n=100).sample(0)
        assert average_heavy_count(sketch.matrix, 0.5) == pytest.approx(1.0)

    def test_osnap_has_s_heavy_entries(self):
        sketch = OSNAP(m=64, n=100, s=4).sample(0)
        assert average_heavy_count(
            sketch.matrix, 1.0 / np.sqrt(4)
        ) == pytest.approx(4.0)


class TestGoodColumns:
    def test_requires_both_conditions(self):
        # Column 0: one heavy entry, unit norm -> good at min_heavy=1.
        # Column 1: unit norm but no heavy entries.
        # Column 2: heavy entry but norm far from 1.
        a = np.array([
            [1.0, 0.5, 2.0],
            [0.0, 0.5, 0.0],
            [0.0, 0.5, 0.0],
            [0.0, 0.5, 0.0],
        ])
        good = good_columns(a, epsilon=0.1, theta=0.9, min_heavy=1)
        assert list(good) == [0]

    def test_min_heavy_threshold(self):
        a = np.eye(4)
        assert list(good_columns(a, 0.1, 0.9, min_heavy=2)) == []


class TestHeavyBudgetProfile:
    def test_levels_and_thresholds(self):
        sketch = CountSketch(m=64, n=50).sample(0)
        profile = heavy_budget_profile(sketch.matrix, 1 / 32)
        assert list(profile.levels) == [0, 1, 2]
        assert profile.thresholds[0] == pytest.approx(1.0)
        assert profile.averages[0] == pytest.approx(1.0)

    def test_mass_bound_upper_bounds_norm(self):
        for family in (
            CountSketch(m=256, n=128),
            OSNAP(m=256, n=128, s=4),
        ):
            sketch = family.sample(3)
            profile = heavy_budget_profile(sketch.matrix, 1 / 32)
            dense = sketch.dense()
            avg_norm2 = float(np.mean(np.sum(dense**2, axis=0)))
            total = profile.mass_upper_bound() + \
                sketch.column_sparsity * 8.0 / 32.0
            assert total >= avg_norm2 - 1e-9

    def test_violations_empty_for_light_matrix(self):
        a = np.full((4, 4), 1e-6)
        profile = heavy_budget_profile(a, 1 / 32)
        assert profile.violations().size == 0

    def test_column_mass_check_positive(self):
        sketch = OSNAP(m=128, n=64, s=2).sample(0)
        value = column_mass_check(sketch.matrix, 1 / 32, sparsity=2)
        assert value > 0
