"""Tests for repro.core.tester and repro.core.certify."""

import numpy as np
import pytest

from repro.core.certify import certify, witness_from_algorithm1
from repro.core.tester import (
    distortion_samples,
    failure_estimate,
    minimal_m,
)
from repro.hardinstances.dbeta import DBeta
from repro.hardinstances.mixtures import section3_mixture
from repro.sketch.countsketch import CountSketch
from repro.sketch.gaussian import GaussianSketch
from repro.sketch.hadamard_block import HadamardBlockSketch


class TestFailureEstimate:
    def test_large_m_rarely_fails(self):
        inst = DBeta(n=512, d=4, reps=1)
        fam = CountSketch(m=4096, n=512)
        est = failure_estimate(fam, inst, 0.1, trials=30, rng=0)
        assert est.point <= 0.1

    def test_tiny_m_always_fails(self):
        inst = DBeta(n=512, d=8, reps=1)
        fam = CountSketch(m=4, n=512)
        est = failure_estimate(fam, inst, 0.1, trials=20, rng=1)
        assert est.point >= 0.9

    def test_dimension_mismatch_raises(self):
        inst = DBeta(n=512, d=4, reps=1)
        fam = CountSketch(m=64, n=256)
        with pytest.raises(ValueError):
            failure_estimate(fam, inst, 0.1, trials=5)

    def test_fixed_sketch_mode(self):
        inst = DBeta(n=256, d=4, reps=1)
        fam = GaussianSketch(m=400, n=256)
        est = failure_estimate(
            fam, inst, 0.25, trials=15, rng=2, fresh_sketch=False
        )
        assert est.trials == 15

    def test_deterministic_given_seed(self):
        inst = DBeta(n=256, d=4, reps=1)
        fam = CountSketch(m=128, n=256)
        a = failure_estimate(fam, inst, 0.1, trials=20, rng=9).point
        b = failure_estimate(fam, inst, 0.1, trials=20, rng=9).point
        assert a == b


class _DrawRecordingInstance(DBeta):
    """DBeta that records the seed handed to each ``sample_draw`` call."""

    def __init__(self, n, d):
        super().__init__(n=n, d=d, reps=1)
        self.seen = []

    def sample_draw(self, rng=None):
        self.seen.append(rng)
        return super().sample_draw(rng)


class TestDistortionTrialSeedContract:
    """Pin ``_distortion_trial``'s per-trial child-seed layout.

    The trial always splits its seed into exactly two children and draws
    the subspace from the second — also with a fixed sketch, where the
    first child goes unused.  The probe cache's hit-path replay and the
    fresh/fixed comparability of estimates both rest on this layout, so
    a refactor that makes the fixed path spawn only one child must fail
    here rather than silently shift every downstream draw.
    """

    def _trial(self, fixed):
        from repro.core.tester import _distortion_trial

        fam = CountSketch(m=64, n=128)
        inst = _DrawRecordingInstance(n=128, d=3)
        _distortion_trial(fam, inst, fixed, np.random.SeedSequence(7))
        assert len(inst.seen) == 1
        return inst.seen[0]

    def test_fresh_path_draws_from_second_child(self):
        seed = self._trial(fixed=None)
        assert seed.spawn_key == (1,)

    def test_fixed_path_consumes_same_seed_layout(self):
        from repro.sketch.base import sample_sketch

        fixed = sample_sketch(CountSketch(m=64, n=128),
                              np.random.SeedSequence(0))
        fresh_seed = self._trial(fixed=None)
        fixed_seed = self._trial(fixed=fixed)
        # Same spawn position → same stream: toggling fresh_sketch never
        # shifts which child feeds the instance draw.
        assert fixed_seed.spawn_key == fresh_seed.spawn_key == (1,)
        assert fixed_seed.entropy == fresh_seed.entropy

    def test_fresh_and_fixed_sample_identical_subspaces(self):
        from repro.core.tester import _distortion_trial

        fam = CountSketch(m=64, n=128)
        fixed = fam.sample(np.random.SeedSequence(0))
        draws = []
        for use_fixed in (False, True):
            inst = _DrawRecordingInstance(n=128, d=3)
            _distortion_trial(fam, inst, fixed if use_fixed else None,
                              np.random.SeedSequence(11))
            draws.append(inst.seen[0])
        a = DBeta(n=128, d=3, reps=1).sample_draw(draws[0])
        b = DBeta(n=128, d=3, reps=1).sample_draw(draws[1])
        assert np.array_equal(a.u, b.u)


class TestDistortionSamples:
    def test_sample_count_and_range(self):
        inst = DBeta(n=256, d=4, reps=1)
        fam = CountSketch(m=512, n=256)
        values = distortion_samples(fam, inst, trials=25, rng=0)
        assert values.shape == (25,)
        assert np.all(values >= 0)

    def test_distortions_shrink_with_m(self):
        inst = DBeta(n=256, d=6, reps=1)
        small = distortion_samples(
            CountSketch(m=16, n=256), inst, trials=25, rng=1
        )
        large = distortion_samples(
            CountSketch(m=2048, n=256), inst, trials=25, rng=1
        )
        assert np.median(large) < np.median(small)


class TestMinimalM:
    def test_finds_reasonable_threshold(self):
        d, eps, delta = 6, 1 / 16, 0.2
        inst = section3_mixture(n=2048, d=d, epsilon=eps)
        fam = CountSketch(m=8, n=2048)
        result = minimal_m(fam, inst, eps, delta, trials=40, m_min=8, rng=0)
        assert result.found
        # Threshold must be around the birthday scale for q = 12 columns,
        # far below n and far above d.
        assert d < result.m_star < 2048

    def test_respects_m_max(self):
        inst = DBeta(n=256, d=8, reps=1)
        fam = CountSketch(m=2, n=256)
        result = minimal_m(
            fam, inst, 0.05, 0.05, trials=10, m_min=2, m_max=4, rng=1
        )
        assert not result.found
        assert result.m_star is None

    def test_records_evaluations(self):
        inst = DBeta(n=256, d=4, reps=1)
        fam = CountSketch(m=4, n=256)
        result = minimal_m(fam, inst, 0.1, 0.3, trials=15, m_min=4, rng=2)
        assert len(result.evaluations) >= 2
        probed = [m for m, _ in result.evaluations]
        assert result.m_star in probed

    def test_estimate_at_pools(self):
        inst = DBeta(n=256, d=4, reps=1)
        fam = CountSketch(m=4, n=256)
        result = minimal_m(fam, inst, 0.1, 0.3, trials=10, m_min=4, rng=3)
        m, est = result.evaluations[0]
        assert result.estimate_at(m).trials >= est.trials

    def test_validates_bounds(self):
        inst = DBeta(n=64, d=2, reps=1)
        fam = CountSketch(m=4, n=64)
        with pytest.raises(ValueError):
            minimal_m(fam, inst, 0.1, 0.1, m_min=10, m_max=5)
        with pytest.raises(ValueError):
            minimal_m(fam, inst, 0.1, 0.1, growth=1.0)


def _stub_threshold_estimate(threshold, trials=20):
    """A ``failure_estimate`` stand-in: fails below ``threshold``, passes
    at or above it, with deterministic all-or-nothing counts."""

    def fake(family, instance, epsilon, probe_trials, rng=None,
             fresh_sketch=True, workers=1, chunk_size=None,
             cache=None):
        from repro.utils.stats import BernoulliEstimate

        failures = 0 if family.m >= threshold else trials
        return BernoulliEstimate(failures, trials)

    return fake


class TestMinimalMBracket:
    """Edge cases of the exponential/bisection bracket, driven by a
    stubbed deterministic probe so pass/fail boundaries are exact."""

    inst = DBeta(n=64, d=2, reps=1)
    fam = CountSketch(m=4, n=64)

    def _search(self, monkeypatch, threshold, **kwargs):
        monkeypatch.setattr(
            "repro.core.tester.failure_estimate",
            _stub_threshold_estimate(threshold),
        )
        return minimal_m(self.fam, self.inst, 0.1, 0.1, trials=20,
                         rng=0, **kwargs)

    def test_overshoot_clamps_to_m_max(self, monkeypatch):
        # Regression: with m_min=1, growth=2, m_max=100 the exponential
        # phase used to probe 64 and stop without ever probing 100,
        # returning found=False even though m_max passes.
        result = self._search(monkeypatch, threshold=100,
                              m_min=1, m_max=100, growth=2.0)
        assert result.found
        assert result.m_star == 100
        probed = [m for m, _ in result.evaluations]
        assert probed[:8] == [1, 2, 4, 8, 16, 32, 64, 100]
        assert max(probed) == 100

    def test_overshoot_with_larger_growth(self, monkeypatch):
        result = self._search(monkeypatch, threshold=50,
                              m_min=1, m_max=50, growth=3.0)
        assert result.found and result.m_star == 50
        assert [m for m, _ in result.evaluations][:5] == [1, 3, 9, 27, 50]

    def test_m_max_still_failing_probes_it_once(self, monkeypatch):
        result = self._search(monkeypatch, threshold=101,
                              m_min=1, m_max=100, growth=2.0)
        assert not result.found and result.m_star is None
        probed = [m for m, _ in result.evaluations]
        assert probed.count(100) == 1  # m_max probed exactly once
        assert all(m <= 100 for m in probed)

    def test_pass_at_m_min_short_circuits(self, monkeypatch):
        result = self._search(monkeypatch, threshold=3,
                              m_min=8, m_max=1000, growth=2.0)
        assert result.m_star == 8
        assert len(result.evaluations) == 1

    def test_m_min_equals_m_max(self, monkeypatch):
        passing = self._search(monkeypatch, threshold=7, m_min=7, m_max=7)
        assert passing.found and passing.m_star == 7
        assert len(passing.evaluations) == 1
        failing = self._search(monkeypatch, threshold=8, m_min=7, m_max=7)
        assert not failing.found
        assert len(failing.evaluations) == 1

    def test_bisection_tightens_bracket(self, monkeypatch):
        result = self._search(monkeypatch, threshold=75,
                              m_min=1, m_max=1000, growth=2.0)
        # Exponential passes first at 128; bisection homes in on 75
        # within the documented ~5% relative tolerance.
        assert result.found
        assert 75 <= result.m_star <= 79

    @pytest.mark.parametrize("decision", ["point", "confident_pass",
                                          "confident_fail"])
    def test_each_decision_mode_searches(self, monkeypatch, decision):
        def fake(family, instance, epsilon, trials, rng=None,
                 fresh_sketch=True, workers=1, chunk_size=None,
                 cache=None):
            from repro.utils.stats import BernoulliEstimate

            failures = {1: 50, 2: 15, 3: 12, 4: 8, 5: 8, 6: 5, 7: 2,
                        8: 2}.get(family.m, 0)
            return BernoulliEstimate(failures, 100)

        monkeypatch.setattr("repro.core.tester.failure_estimate", fake)
        result = minimal_m(self.fam, self.inst, 0.1, 0.1, trials=100,
                           m_min=1, m_max=8, growth=2.0,
                           decision=decision, rng=0)
        assert result.found
        est = result.estimate_at(result.m_star)
        if decision == "point":
            assert est.point <= 0.1
        elif decision == "confident_pass":
            assert est.high <= 0.1
        else:
            assert est.low <= 0.1

    def test_decision_modes_order_conservatively(self, monkeypatch):
        def fake(family, instance, epsilon, trials, rng=None,
                 fresh_sketch=True, workers=1, chunk_size=None,
                 cache=None):
            from repro.utils.stats import BernoulliEstimate

            failures = {1: 50, 2: 15, 3: 12, 4: 8, 5: 8, 6: 5, 7: 2,
                        8: 2}.get(family.m, 0)
            return BernoulliEstimate(failures, 100)

        stars = {}
        for decision in ("confident_fail", "point", "confident_pass"):
            monkeypatch.setattr(
                "repro.core.tester.failure_estimate", fake
            )
            stars[decision] = minimal_m(
                self.fam, self.inst, 0.1, 0.1, trials=100, m_min=1,
                m_max=8, growth=2.0, decision=decision, rng=0,
            ).m_star
        # Optimistic <= unbiased <= conservative.
        assert stars["confident_fail"] <= stars["point"] \
            <= stars["confident_pass"]


class TestCertify:
    def test_refutes_undersized_sketch(self):
        inst = DBeta(n=512, d=8, reps=1)
        pi = CountSketch(m=8, n=512).sample(0).matrix
        cert = certify(pi, inst, 0.05, 0.1, trials=40, rng=1)
        assert cert.refuted
        assert cert.failure.point > 0.5
        assert "REFUTED" in str(cert)

    def test_does_not_refute_identity(self):
        inst = DBeta(n=128, d=4, reps=1)
        cert = certify(np.eye(128), inst, 0.05, 0.1, trials=20, rng=2)
        assert not cert.refuted
        assert cert.failure.point == 0.0

    def test_witness_strategy_sound(self):
        # Witness detection must never report more failures than SVD.
        inst = DBeta(n=512, d=8, reps=1)
        pi = CountSketch(m=16, n=512).sample(3).matrix
        svd = certify(pi, inst, 0.05, 0.1, trials=30, rng=4,
                      strategy="svd")
        wit = certify(pi, inst, 0.05, 0.1, trials=30, rng=4,
                      strategy="witness")
        assert wit.failure.point <= svd.failure.point + 0.15

    def test_witness_attached_on_failures(self):
        inst = DBeta(n=256, d=8, reps=1)
        pi = CountSketch(m=8, n=256).sample(5).matrix
        cert = certify(pi, inst, 0.05, 0.1, trials=20, rng=6)
        assert cert.witness is not None
        assert cert.witness.escape.point >= 0.25

    def test_unknown_strategy_raises(self):
        inst = DBeta(n=64, d=2, reps=1)
        with pytest.raises(ValueError):
            certify(np.eye(64), inst, 0.05, 0.1, trials=5,
                    strategy="bogus")

    def test_dimension_mismatch_raises(self):
        inst = DBeta(n=64, d=2, reps=1)
        with pytest.raises(ValueError):
            certify(np.eye(32), inst, 0.05, 0.1, trials=5)


class TestWitnessFromAlgorithm1:
    def test_finds_witness_on_abundant_failing_pi(self):
        epsilon = 1 / 32
        n, d = 1024, 16
        fam = HadamardBlockSketch(m=32, n=n, block_order=4, permute=True)
        pi = fam.sample(0).matrix
        inst = DBeta(n=n, d=d, reps=1)
        found = 0
        for seed in range(25):
            draw = inst.sample_draw(seed)
            report = witness_from_algorithm1(
                pi, draw, epsilon, trials=128, rng=seed
            )
            if report is not None:
                found += 1
                assert abs(report.inner_product) >= report.threshold
        # m = 32 << d^2: collisions abound; the greedy pair hits an
        # identical-copy partner (|ip| = 1) in roughly a quarter of draws.
        assert found >= 2

    def test_none_on_identity(self):
        inst = DBeta(n=64, d=4, reps=1)
        draw = inst.sample_draw(0)
        assert witness_from_algorithm1(np.eye(64), draw, 0.05) is None


class TestWitnessFromAlgorithm2:
    def test_finds_witness_at_dyadic_level(self):
        from repro.core.certify import witness_from_algorithm2
        from repro.sketch.hadamard_block import HadamardBlockSketch

        eps = 1 / 64
        n, d = 2048, 16
        pi = HadamardBlockSketch(m=32, n=n, block_order=2).sample(0).matrix
        inst = DBeta(n=n, d=d, reps=2)
        found = 0
        for seed in range(20):
            draw = inst.sample_draw(seed)
            report = witness_from_algorithm2(
                pi, draw, eps, level=1, level_prime=1, rng=seed,
                trials=128,
            )
            if report is not None:
                found += 1
                assert abs(report.inner_product) >= report.threshold
                assert report.escape.point >= 0.25
        assert found >= 3

    def test_level_reps_consistency_enforced(self):
        from repro.core.certify import witness_from_algorithm2

        inst = DBeta(n=128, d=4, reps=1)
        draw = inst.sample_draw(0)
        with pytest.raises(ValueError):
            witness_from_algorithm2(np.eye(128), draw, 0.01, level=1,
                                    level_prime=1)

    def test_none_on_orthogonal_pi(self):
        from repro.core.certify import witness_from_algorithm2

        inst = DBeta(n=128, d=4, reps=2)
        draw = inst.sample_draw(1)
        report = witness_from_algorithm2(
            np.eye(128), draw, 1 / 64, level=0, level_prime=1, rng=2
        )
        assert report is None

    def test_negative_level_rejected(self):
        from repro.core.certify import witness_from_algorithm2

        inst = DBeta(n=64, d=2, reps=1)
        draw = inst.sample_draw(0)
        with pytest.raises(ValueError):
            witness_from_algorithm2(np.eye(64), draw, 0.01, level=-1,
                                    level_prime=0)


class TestMinimalMDecisions:
    def test_conservative_exceeds_optimistic(self):
        inst = DBeta(n=512, d=6, reps=1)
        fam = CountSketch(m=8, n=512)
        common = dict(trials=60, m_min=8, rng=11)
        optimistic = minimal_m(fam, inst, 0.1, 0.2,
                               decision="confident_fail", **common)
        point = minimal_m(fam, inst, 0.1, 0.2, decision="point", **common)
        conservative = minimal_m(fam, inst, 0.1, 0.2,
                                 decision="confident_pass", **common)
        assert optimistic.found and point.found and conservative.found
        assert optimistic.m_star <= point.m_star * 1.3
        assert conservative.m_star >= point.m_star * 0.9
        assert conservative.m_star >= optimistic.m_star

    def test_unknown_decision_rejected(self):
        inst = DBeta(n=64, d=2, reps=1)
        fam = CountSketch(m=4, n=64)
        with pytest.raises(ValueError):
            minimal_m(fam, inst, 0.1, 0.1, decision="bogus")
