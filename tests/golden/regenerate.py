"""Golden-data generator for the distortion-stream regression pins.

Run from the repository root after an *intentional* change to the trial
stream (new RNG consumption order, different trial seeding, changed
distortion arithmetic)::

    PYTHONPATH=src python tests/golden/regenerate.py

Keep the diff in review: a regenerated file means every previously
recorded experiment number is potentially stale.
"""

import json
import tempfile
from pathlib import Path

import numpy as np

from repro.hardinstances.dbeta import DBeta
from repro.sketch import (
    OSNAP,
    CountSketch,
    GaussianSketch,
    LeverageSampling,
    RowSampling,
    SparseJL,
)

GOLDEN_PATH = Path(__file__).with_name("distortion_streams.json")
BATCHED_PATH = Path(__file__).with_name("batched_streams.json")
SHARD_PATH = Path(__file__).with_name("shard_streams.json")
GOLDEN_SEED = 20220620  # PODS'22 vintage
GOLDEN_TRIALS = 24
#: Batch size for the batched-engine pins; deliberately not a divisor of
#: GOLDEN_TRIALS so the trailing partial chunk stays covered.
GOLDEN_BATCH = 5
#: Per-probe trial budget of the sharded-search pins; deliberately not a
#: multiple of SHARD_COUNT so span boundaries land off the even split.
SHARD_TRIALS = 18
SHARD_COUNT = 3

_N = 192


def cases():
    """(name, family, instance) triples pinned by the golden file."""
    gen = np.random.default_rng(2024)
    p = gen.random(_N)
    p /= p.sum()
    return [
        ("countsketch", CountSketch(96, _N), DBeta(_N, 6, reps=1)),
        ("osnap-uniform", OSNAP(96, _N, s=4), DBeta(_N, 6, reps=2)),
        ("osnap-block", OSNAP(96, _N, s=4, variant="block"),
         DBeta(_N, 6, reps=2)),
        ("sparsejl", SparseJL(96, _N, q=0.05), DBeta(_N, 4, reps=8)),
        ("rowsampling", RowSampling(64, _N), DBeta(_N, 6, reps=1)),
        ("leverage", LeverageSampling(64, _N, probabilities=p),
         DBeta(_N, 6, reps=1)),
        ("gaussian", GaussianSketch(48, _N), DBeta(_N, 6, reps=2)),
        ("countsketch-iid-rows", CountSketch(96, _N),
         DBeta(_N, 6, reps=2, distinct_rows=False)),
    ]


def shard_cases():
    """(name, family, instance) pairs pinned by the sharded-search file.

    One scatter sketch at ``s=1`` and one at ``s=4``: the two kernel
    shapes the shard protocol has to keep stream-faithful.
    """
    return [
        ("countsketch", CountSketch(8, _N), DBeta(_N, 6, reps=1)),
        ("osnap", OSNAP(8, _N, s=4), DBeta(_N, 6, reps=2)),
    ]


def shard_search(family, instance, cache=None, shard=None):
    """The pinned ``minimal_m`` search, as a sharded workload."""
    from repro.core.tester import minimal_m

    return minimal_m(
        family, instance, 0.5, 0.25, trials=SHARD_TRIALS,
        m_min=8, m_max=_N, rng=np.random.SeedSequence(GOLDEN_SEED),
        cache=cache, shard=shard,
    )


def search_payload(result):
    """The JSON-stable view of a search result the pins record."""
    return {
        "m_star": result.m_star,
        "evaluations": [
            [int(m), int(est.successes), int(est.trials)]
            for m, est in result.evaluations
        ],
    }


def main():
    from repro.core.tester import distortion_samples
    from repro.shard import sharded_call

    streams = {}
    batched = {}
    for name, family, instance in cases():
        values = distortion_samples(
            family, instance, trials=GOLDEN_TRIALS,
            rng=np.random.SeedSequence(GOLDEN_SEED),
        )
        streams[name] = [float(v) for v in values]
        values = distortion_samples(
            family, instance, trials=GOLDEN_TRIALS,
            rng=np.random.SeedSequence(GOLDEN_SEED), batch=GOLDEN_BATCH,
        )
        batched[name] = [float(v) for v in values]
    payload = {
        "seed": GOLDEN_SEED,
        "trials": GOLDEN_TRIALS,
        "streams": streams,
    }
    GOLDEN_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {GOLDEN_PATH} ({len(streams)} streams)")
    payload = {
        "seed": GOLDEN_SEED,
        "trials": GOLDEN_TRIALS,
        "batch": GOLDEN_BATCH,
        "streams": batched,
    }
    BATCHED_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {BATCHED_PATH} ({len(batched)} streams)")
    searches = {}
    for name, family, instance in shard_cases():
        with tempfile.TemporaryDirectory() as workdir:
            result = sharded_call(
                lambda cache, shard, f=family, i=instance:
                    shard_search(f, i, cache=cache, shard=shard),
                SHARD_COUNT, workdir,
            )
        searches[name] = search_payload(result)
    payload = {
        "seed": GOLDEN_SEED,
        "trials": SHARD_TRIALS,
        "shards": SHARD_COUNT,
        "searches": searches,
    }
    SHARD_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {SHARD_PATH} ({len(searches)} searches)")


if __name__ == "__main__":
    main()
