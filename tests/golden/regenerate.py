"""Golden-data generator for the distortion-stream regression pins.

Run from the repository root after an *intentional* change to the trial
stream (new RNG consumption order, different trial seeding, changed
distortion arithmetic)::

    PYTHONPATH=src python tests/golden/regenerate.py

Keep the diff in review: a regenerated file means every previously
recorded experiment number is potentially stale.
"""

import json
from pathlib import Path

import numpy as np

from repro.hardinstances.dbeta import DBeta
from repro.sketch import (
    OSNAP,
    CountSketch,
    GaussianSketch,
    LeverageSampling,
    RowSampling,
    SparseJL,
)

GOLDEN_PATH = Path(__file__).with_name("distortion_streams.json")
BATCHED_PATH = Path(__file__).with_name("batched_streams.json")
GOLDEN_SEED = 20220620  # PODS'22 vintage
GOLDEN_TRIALS = 24
#: Batch size for the batched-engine pins; deliberately not a divisor of
#: GOLDEN_TRIALS so the trailing partial chunk stays covered.
GOLDEN_BATCH = 5

_N = 192


def cases():
    """(name, family, instance) triples pinned by the golden file."""
    gen = np.random.default_rng(2024)
    p = gen.random(_N)
    p /= p.sum()
    return [
        ("countsketch", CountSketch(96, _N), DBeta(_N, 6, reps=1)),
        ("osnap-uniform", OSNAP(96, _N, s=4), DBeta(_N, 6, reps=2)),
        ("osnap-block", OSNAP(96, _N, s=4, variant="block"),
         DBeta(_N, 6, reps=2)),
        ("sparsejl", SparseJL(96, _N, q=0.05), DBeta(_N, 4, reps=8)),
        ("rowsampling", RowSampling(64, _N), DBeta(_N, 6, reps=1)),
        ("leverage", LeverageSampling(64, _N, probabilities=p),
         DBeta(_N, 6, reps=1)),
        ("gaussian", GaussianSketch(48, _N), DBeta(_N, 6, reps=2)),
        ("countsketch-iid-rows", CountSketch(96, _N),
         DBeta(_N, 6, reps=2, distinct_rows=False)),
    ]


def main():
    from repro.core.tester import distortion_samples

    streams = {}
    batched = {}
    for name, family, instance in cases():
        values = distortion_samples(
            family, instance, trials=GOLDEN_TRIALS,
            rng=np.random.SeedSequence(GOLDEN_SEED),
        )
        streams[name] = [float(v) for v in values]
        values = distortion_samples(
            family, instance, trials=GOLDEN_TRIALS,
            rng=np.random.SeedSequence(GOLDEN_SEED), batch=GOLDEN_BATCH,
        )
        batched[name] = [float(v) for v in values]
    payload = {
        "seed": GOLDEN_SEED,
        "trials": GOLDEN_TRIALS,
        "streams": streams,
    }
    GOLDEN_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {GOLDEN_PATH} ({len(streams)} streams)")
    payload = {
        "seed": GOLDEN_SEED,
        "trials": GOLDEN_TRIALS,
        "batch": GOLDEN_BATCH,
        "streams": batched,
    }
    BATCHED_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {BATCHED_PATH} ({len(batched)} streams)")


if __name__ == "__main__":
    main()
