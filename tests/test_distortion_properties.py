"""Property-based tests for the batched distortion reduction.

:func:`repro.linalg.distortion.distortions_of_products` is the reduction
step of the batched trial engine and owns three internal regimes:

* ``k <= 2d`` — rectangular gufunc SVD over the stack directly;
* ``k > 2d`` — SVD of the ``d x d`` Gram matrices (squared spectrum);
* rank-deficient trials inside the Gram path — squared-spectrum ratio
  below ``_GRAM_RATIO_FLOOR`` — recomputed from the rectangular product.

Hypothesis drives random ``(B, k, d)`` shapes straddling all three
switches and checks the batched values against per-trial serial SVDs
(:func:`distortion_of_product`) at the 1e-9 relative tolerance the golden
pins use for cross-BLAS SVD agreement.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.linalg.distortion import (
    _GRAM_RATIO_FLOOR,
    distortion_of_product,
    distortions_of_products,
)

pytestmark = pytest.mark.kernels

COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: The tolerance of the golden stream pins: everything upstream of the
#: SVD is bit-identical, the reduction may differ by BLAS rounding.
RTOL = 1e-9
ATOL = 1e-12


def _serial(products):
    return np.array([distortion_of_product(p) for p in products])


def _stack(batch, k, d, seed, scale=None):
    gen = np.random.default_rng(seed)
    products = gen.normal(size=(batch, k, d))
    if scale is None:
        # Near-isometric scaling so distortions sit in the regime the
        # trial engine actually measures (sigma around 1).
        products /= np.sqrt(max(k, 1))
    else:
        products *= scale
    return products


class TestShapeSweep:
    @given(
        batch=st.integers(min_value=1, max_value=6),
        d=st.integers(min_value=1, max_value=6),
        # k from 1 to 5d-ish: covers k < d (annihilation), the k <= 2d
        # rectangular branch, and the k > 2d Gram branch.
        k_factor=st.floats(min_value=0.25, max_value=5.0),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=60, **COMMON)
    def test_batched_matches_serial_svds(self, batch, d, k_factor, seed):
        k = max(1, int(round(k_factor * d)))
        products = _stack(batch, k, d, seed)
        np.testing.assert_allclose(
            distortions_of_products(products), _serial(products),
            rtol=RTOL, atol=ATOL,
        )

    @given(
        batch=st.integers(min_value=1, max_value=4),
        d=st.integers(min_value=2, max_value=6),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=30, **COMMON)
    def test_gram_switch_boundary_is_seamless(self, batch, d, seed):
        """k = 2d (rectangular) and k = 2d+1 (Gram) agree with serial."""
        for k in (2 * d, 2 * d + 1):
            products = _stack(batch, k, d, seed)
            np.testing.assert_allclose(
                distortions_of_products(products), _serial(products),
                rtol=RTOL, atol=ATOL,
            )

    @given(
        batch=st.integers(min_value=1, max_value=4),
        d=st.integers(min_value=1, max_value=5),
        extra=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=30, **COMMON)
    def test_fewer_rows_than_columns_annihilates(self, batch, d, extra,
                                                 seed):
        """k < d: a direction is lost, sigma_min is exactly 0."""
        k = max(1, d - extra)
        if k >= d:
            return
        products = _stack(batch, k, d, seed)
        values = distortions_of_products(products)
        np.testing.assert_allclose(values, _serial(products),
                                   rtol=RTOL, atol=ATOL)
        assert np.all(values >= 1.0)  # 1 - sigma_min with sigma_min = 0


class TestRankDeficientFallback:
    @given(
        batch=st.integers(min_value=2, max_value=5),
        d=st.integers(min_value=2, max_value=5),
        seed=st.integers(min_value=0, max_value=10**6),
        victim=st.integers(min_value=0, max_value=4),
    )
    @settings(max_examples=30, **COMMON)
    def test_exact_deficiency_recomputed_exactly(self, batch, d, seed,
                                                 victim):
        """A rank-deficient trial in the Gram path falls back to the
        rectangular SVD and still matches the serial value."""
        k = 3 * d  # force the Gram branch
        products = _stack(batch, k, d, seed)
        victim %= batch
        # Make one trial exactly rank-deficient: duplicate a column.
        products[victim, :, 0] = products[victim, :, -1]
        values = distortions_of_products(products)
        np.testing.assert_allclose(values, _serial(products),
                                   rtol=RTOL, atol=ATOL)
        assert values[victim] >= 1.0 - RTOL

    @given(
        d=st.integers(min_value=2, max_value=5),
        seed=st.integers(min_value=0, max_value=10**6),
        # Straddle the fallback threshold: sigma_min/sigma_max from well
        # below sqrt(_GRAM_RATIO_FLOOR) = 1e-6 to well above it.
        log_ratio=st.floats(min_value=-9.0, max_value=-3.0),
    )
    @settings(max_examples=40, **COMMON)
    def test_near_deficiency_straddles_floor(self, d, seed, log_ratio):
        """Trials on either side of ``_GRAM_RATIO_FLOOR`` match serial.

        Constructs a product with a controlled sigma_min/sigma_max ratio
        via an SVD recomposition.  Below the floor the fallback recomputes
        the rectangular SVD; above it the Gram value is used — the
        *distortion* (max(1-lo, hi-1), dominated by 1-lo ~ 1 here) stays
        within 1e-9 of serial either way, which is exactly why the floor
        is a safe switch point.
        """
        k = 3 * d
        gen = np.random.default_rng(seed)
        base = gen.normal(size=(k, d))
        u, _, vt = np.linalg.svd(base, full_matrices=False)
        sigma = np.linspace(1.0, 0.9, d)
        sigma[-1] = 10.0 ** log_ratio
        product = (u * sigma) @ vt
        # With log_ratio in [-9, -3] the squared ratio spans
        # [1e-18, 1e-6], landing on both sides of the floor (1e-12).
        assert 1e-18 < _GRAM_RATIO_FLOOR < 1e-6
        stack = np.stack([product, gen.normal(size=(k, d)) / np.sqrt(k)])
        np.testing.assert_allclose(
            distortions_of_products(stack), _serial(stack),
            rtol=RTOL, atol=ATOL,
        )


class TestRowCompaction:
    @given(
        batch=st.integers(min_value=1, max_value=4),
        d=st.integers(min_value=1, max_value=4),
        k=st.integers(min_value=1, max_value=12),
        pad=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=40, **COMMON)
    def test_zero_row_padding_with_rows_matches_uncompacted(
            self, batch, d, k, pad, seed):
        """Compacted stacks: zero rows change no singular value, and
        ``rows`` (the true m) governs the annihilation rule."""
        products = _stack(batch, k, d, seed)
        padded = np.concatenate(
            [products, np.zeros((batch, pad, d))], axis=1
        )
        np.testing.assert_allclose(
            distortions_of_products(padded, rows=k + pad),
            _serial(padded),
            rtol=RTOL, atol=ATOL,
        )

    def test_rows_below_d_forces_annihilation(self):
        # A compacted stack may have k >= d while the true row count is
        # below d: sigma_min must be 0 regardless of the compacted shape.
        gen = np.random.default_rng(0)
        products = gen.normal(size=(3, 4, 3)) / 2.0
        values = distortions_of_products(products, rows=2)
        assert np.all(values >= 1.0)
