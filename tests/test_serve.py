"""Tests for the estimation server (:mod:`repro.serve`).

Four layers, matching the package's own:

* parameter validation — spec round-trips, unknown types, bad values;
* the single-flight gate — coalescing, backpressure, drain;
* the service — offline bit-identity (cold and warm), replay envelopes,
  per-request cache tallies, exactly-one-computation under concurrent
  duplicates (asserted from the ledger's ``batch_dispatch`` events);
* the HTTP transport — status mapping, Retry-After, graceful shutdown.

Concurrency-sensitive tests never sleep-and-hope: the computation is
blocked on a :class:`threading.Event` injected into ``_execute``, so
followers attach and rejections trigger deterministically.
"""

import asyncio
import json
import threading

import numpy as np
import pytest

from repro.cache import ProbeCache
from repro.core.tester import failure_estimate, minimal_m
from repro.hardinstances import DBeta, MixtureInstance, PermutedIdentity
from repro.observe.ledger import read_events
from repro.serve import (
    BadRequest,
    Draining,
    EstimationService,
    Overloaded,
    ServeClient,
    ServeError,
    ServeHTTP,
    SingleFlightGate,
    family_from_spec,
    instance_from_spec,
)
from repro.sketch import CountSketch, OSNAP
from repro.utils.rng import seed_fingerprint

pytestmark = pytest.mark.serve

FAMILY_SPEC = {"type": "CountSketch", "params": {"m": 16, "n": 64}}
INSTANCE_SPEC = {"type": "PermutedIdentity", "n": 64, "d": 4}
ESTIMATE_REQUEST = {
    "family": FAMILY_SPEC,
    "instance": INSTANCE_SPEC,
    "epsilon": 0.5,
    "trials": 40,
    "seed": 0,
}


class TestParams:
    def test_family_round_trips(self):
        family = family_from_spec(FAMILY_SPEC)
        assert isinstance(family, CountSketch)
        assert family.spec() == CountSketch(16, 64).spec()

    def test_family_with_defaults_omitted(self):
        family = family_from_spec(
            {"type": "OSNAP", "params": {"m": 8, "n": 32, "s": 2}}
        )
        assert isinstance(family, OSNAP)
        assert family.spec()["params"]["variant"] == "uniform"

    def test_unknown_family_rejected(self):
        with pytest.raises(BadRequest, match="unknown sketch family"):
            family_from_spec({"type": "NoSuchSketch", "params": {}})

    def test_bogus_param_rejected(self):
        with pytest.raises(BadRequest, match="unknown field"):
            family_from_spec(
                {"type": "CountSketch",
                 "params": {"m": 16, "n": 64, "sparsity": 3}}
            )

    def test_invalid_param_value_rejected(self):
        with pytest.raises(BadRequest):
            family_from_spec(
                {"type": "CountSketch", "params": {"m": -1, "n": 64}}
            )

    def test_instance_partial_spec_fills_defaults(self):
        instance = instance_from_spec(INSTANCE_SPEC)
        assert isinstance(instance, PermutedIdentity)
        # the canonical spec carries the DBeta base's defaulted fields
        assert instance.spec()["reps"] == 1

    def test_instance_wrong_value_rejected(self):
        with pytest.raises(BadRequest, match="round-trip"):
            instance_from_spec(
                {"type": "PermutedIdentity", "n": 64, "d": 4, "reps": 3}
            )

    def test_mixture_rebuilt_recursively(self):
        mixture = MixtureInstance(
            [DBeta(64, 4), PermutedIdentity(64, 4)], [0.25, 0.75],
        )
        rebuilt = instance_from_spec(mixture.spec())
        assert rebuilt.spec() == mixture.spec()

    def test_non_dict_spec_rejected(self):
        with pytest.raises(BadRequest, match="spec object"):
            family_from_spec("CountSketch")


class TestSingleFlightGate:
    def test_inflight_bound_validated(self):
        with pytest.raises(ValueError):
            SingleFlightGate(0)

    def test_leader_exception_propagates_to_followers(self):
        async def scenario():
            gate = SingleFlightGate(4)
            release = asyncio.Event()

            async def failing():
                await release.wait()
                raise RuntimeError("boom")

            async def fast():
                return "never"

            leader = asyncio.create_task(gate.run("k", failing))
            await asyncio.sleep(0)
            follower = asyncio.create_task(gate.run("k", fast))
            await asyncio.sleep(0)
            release.set()
            with pytest.raises(RuntimeError, match="boom"):
                await leader
            with pytest.raises(RuntimeError, match="boom"):
                await follower

        asyncio.run(scenario())

    def test_distinct_keys_beyond_limit_rejected(self):
        async def scenario():
            gate = SingleFlightGate(1)
            release = asyncio.Event()

            async def slow():
                await release.wait()
                return 1

            leader = asyncio.create_task(gate.run("a", slow))
            await asyncio.sleep(0)
            with pytest.raises(Overloaded) as excinfo:
                await gate.run("b", slow)
            assert excinfo.value.retry_after > 0
            release.set()
            assert await leader == (1, False)

        asyncio.run(scenario())

    def test_drain_refuses_new_and_waits_for_inflight(self):
        async def scenario():
            gate = SingleFlightGate(4)
            release = asyncio.Event()
            done = []

            async def slow():
                await release.wait()
                done.append(True)
                return 42

            leader = asyncio.create_task(gate.run("a", slow))
            await asyncio.sleep(0)
            drainer = asyncio.create_task(gate.drain())
            await asyncio.sleep(0)
            with pytest.raises(Draining):
                await gate.run("b", slow)
            assert not drainer.done()
            release.set()
            await drainer
            assert done == [True]
            assert await leader == (42, False)

        asyncio.run(scenario())


def _blocking_execute(monkeypatch, started, release):
    """Patch ``_execute`` to block until ``release`` (deterministic
    concurrency: followers attach / rejections fire while blocked)."""
    original = EstimationService._execute

    def blocked(self, plan):
        started.set()
        assert release.wait(timeout=30), "test deadlock: never released"
        return original(self, plan)

    monkeypatch.setattr(EstimationService, "_execute", blocked)


class TestServiceIdentity:
    def test_cold_response_matches_offline_api(self, tmp_path):
        service = EstimationService(tmp_path / "cache")
        response = asyncio.run(
            service.handle("failure_estimate", ESTIMATE_REQUEST)
        )
        offline = failure_estimate(
            CountSketch(16, 64), PermutedIdentity(64, 4), 0.5, 40, rng=0,
        )
        assert response["result"]["successes"] == offline.successes
        assert response["result"]["trials"] == offline.trials
        assert response["result"]["point"] == offline.point
        assert response["cache"] == {"hits": 0, "misses": 1}
        service.close()

    def test_warm_response_byte_identical_and_hit(self, tmp_path):
        service = EstimationService(tmp_path / "cache")
        cold = asyncio.run(
            service.handle("failure_estimate", ESTIMATE_REQUEST)
        )
        warm = asyncio.run(
            service.handle("failure_estimate", ESTIMATE_REQUEST)
        )
        assert json.dumps(cold["result"], sort_keys=True) == \
            json.dumps(warm["result"], sort_keys=True)
        assert warm["cache"] == {"hits": 1, "misses": 0}
        assert cold["replay"] == warm["replay"]
        service.close()

    def test_warm_across_service_instances_shares_cli_cache(self, tmp_path):
        # A CLI-style offline run against the same cache directory warms
        # the server: the shared store is one economy, not two.
        cache = ProbeCache(tmp_path / "cache")
        failure_estimate(
            CountSketch(16, 64), PermutedIdentity(64, 4), 0.5, 40, rng=0,
            cache=cache,
        )
        cache.close()
        service = EstimationService(tmp_path / "cache")
        response = asyncio.run(
            service.handle("failure_estimate", ESTIMATE_REQUEST)
        )
        assert response["cache"] == {"hits": 1, "misses": 0}
        service.close()

    def test_minimal_m_matches_offline(self, tmp_path):
        service = EstimationService(tmp_path / "cache")
        response = asyncio.run(service.handle("minimal_m", {
            "family": FAMILY_SPEC, "instance": INSTANCE_SPEC,
            "epsilon": 0.5, "delta": 0.2, "trials": 30, "m_max": 64,
            "seed": 7,
        }))
        offline = minimal_m(
            CountSketch(16, 64), PermutedIdentity(64, 4), 0.5, 0.2,
            trials=30, m_max=64, rng=7,
        )
        assert response["result"]["m_star"] == offline.m_star
        assert len(response["result"]["evaluations"]) == \
            len(offline.evaluations)
        service.close()

    def test_replay_envelope_names_the_computation(self, tmp_path):
        service = EstimationService(tmp_path / "cache")
        request = dict(ESTIMATE_REQUEST, seed=5, spawn_key=[2, 1])
        response = asyncio.run(
            service.handle("failure_estimate", request)
        )
        replay = response["replay"]
        assert replay["endpoint"] == "failure_estimate"
        assert replay["seed"] == 5 and replay["spawn_key"] == [2, 1]
        expected = seed_fingerprint(
            np.random.SeedSequence(5, spawn_key=(2, 1))
        )
        assert replay["seed_fingerprint"] == expected
        assert replay["params"]["family"] == CountSketch(16, 64).spec()
        service.close()

    def test_spawn_key_changes_the_stream(self, tmp_path):
        service = EstimationService(tmp_path / "cache")
        base = asyncio.run(
            service.handle("failure_estimate", ESTIMATE_REQUEST)
        )
        keyed = asyncio.run(service.handle(
            "failure_estimate", dict(ESTIMATE_REQUEST, spawn_key=[1]),
        ))
        assert base["replay"]["key"] != keyed["replay"]["key"]
        service.close()

    def test_validation_errors_are_bad_requests(self, tmp_path):
        service = EstimationService(tmp_path / "cache")
        cases = [
            ("failure_estimate", {}),
            ("failure_estimate", dict(ESTIMATE_REQUEST, trials=0)),
            ("failure_estimate", dict(ESTIMATE_REQUEST, seed=-1)),
            ("failure_estimate", dict(ESTIMATE_REQUEST, epsilon="big")),
            ("nonsense_endpoint", {}),
            ("run_experiment", {"experiment": "E999"}),
            ("minimal_m", {"family": FAMILY_SPEC,
                           "instance": INSTANCE_SPEC,
                           "epsilon": 0.5, "delta": 1.5}),
            ("sketch_apply", {"family": FAMILY_SPEC,
                              "matrix": [[1.0, 2.0]]}),
        ]
        for endpoint, payload in cases:
            with pytest.raises(BadRequest):
                asyncio.run(service.handle(endpoint, payload))
        service.close()


class TestServiceConcurrency:
    def test_concurrent_duplicates_compute_once(self, tmp_path,
                                                monkeypatch):
        ledger = tmp_path / "ledger.jsonl"
        started = threading.Event()
        release = threading.Event()
        _blocking_execute(monkeypatch, started, release)

        async def scenario():
            service = EstimationService(
                tmp_path / "cache", ledger_path=ledger, max_inflight=2,
            )
            tasks = [
                asyncio.create_task(
                    service.handle("failure_estimate", ESTIMATE_REQUEST)
                )
                for _ in range(5)
            ]
            while not started.is_set():
                await asyncio.sleep(0.01)
            # the leader is blocked in its thread; cycle the loop until
            # every other task has attached to the pending future
            for _ in range(20):
                await asyncio.sleep(0)
            assert service.gate.inflight == 1
            release.set()
            responses = await asyncio.gather(*tasks)
            service.close()
            return responses

        responses = asyncio.run(scenario())
        payloads = {
            json.dumps(response, sort_keys=True) for response in responses
        }
        assert len(payloads) == 1  # N identical replayable responses
        events = read_events(ledger)
        kinds = [event["kind"] for event in events]
        assert kinds.count("batch_dispatch") == 1  # exactly 1 computation
        assert kinds.count("request_start") == 1
        assert kinds.count("cache_miss") == 1
        assert kinds.count("cache_hit") == 0

    def test_backpressure_rejects_distinct_excess_work(self, tmp_path,
                                                       monkeypatch):
        started = threading.Event()
        release = threading.Event()
        _blocking_execute(monkeypatch, started, release)

        async def scenario():
            service = EstimationService(
                tmp_path / "cache", max_inflight=1,
            )
            leader = asyncio.create_task(
                service.handle("failure_estimate", ESTIMATE_REQUEST)
            )
            while not started.is_set():
                await asyncio.sleep(0.01)
            other = dict(ESTIMATE_REQUEST, trials=41)
            with pytest.raises(Overloaded) as excinfo:
                await service.handle("failure_estimate", other)
            assert excinfo.value.retry_after > 0
            # duplicates of the in-flight request still coalesce freely
            follower = asyncio.create_task(
                service.handle("failure_estimate", ESTIMATE_REQUEST)
            )
            for _ in range(20):
                await asyncio.sleep(0)
            release.set()
            first, second = await asyncio.gather(leader, follower)
            service.close()
            assert first == second

        asyncio.run(scenario())

    def test_drain_finishes_inflight_then_refuses(self, tmp_path,
                                                  monkeypatch):
        started = threading.Event()
        release = threading.Event()
        _blocking_execute(monkeypatch, started, release)

        async def scenario():
            service = EstimationService(tmp_path / "cache")
            leader = asyncio.create_task(
                service.handle("failure_estimate", ESTIMATE_REQUEST)
            )
            while not started.is_set():
                await asyncio.sleep(0.01)
            drainer = asyncio.create_task(service.drain())
            await asyncio.sleep(0)
            with pytest.raises(Draining):
                await service.handle(
                    "failure_estimate", dict(ESTIMATE_REQUEST, trials=99),
                )
            assert not drainer.done()
            release.set()
            await drainer
            response = await leader
            service.close()
            assert response["result"]["trials"] == 40

        asyncio.run(scenario())


class TestHTTP:
    @staticmethod
    async def _with_server(tmp_path, fn, **service_kwargs):
        service = EstimationService(tmp_path / "cache", **service_kwargs)
        server = ServeHTTP(service, port=0)
        await server.start()
        host, port = server.address
        client = ServeClient(f"http://{host}:{port}")
        try:
            return await fn(client)
        finally:
            await server.shutdown()

    def test_healthz_metrics_and_compute(self, tmp_path):
        async def check(client):
            health = await asyncio.to_thread(client.healthz)
            assert health["status"] == "ok"
            cold = await asyncio.to_thread(
                client.call, "failure_estimate", ESTIMATE_REQUEST,
            )
            warm = await asyncio.to_thread(
                client.call, "failure_estimate", ESTIMATE_REQUEST,
            )
            assert cold["result"] == warm["result"]
            assert warm["cache"] == {"hits": 1, "misses": 0}
            metrics = await asyncio.to_thread(client.metrics)
            assert metrics["server"]["requests_total"] == 2
            assert metrics["counters"]["cache_hit"] >= 1

        asyncio.run(self._with_server(tmp_path, check))

    def test_http_error_mapping(self, tmp_path):
        async def check(client):
            with pytest.raises(ServeError) as excinfo:
                await asyncio.to_thread(
                    client.call, "failure_estimate", {"epsilon": 0.5},
                )
            assert excinfo.value.status == 400
            with pytest.raises(ServeError) as excinfo:
                await asyncio.to_thread(client.call, "no_such", {})
            assert excinfo.value.status == 404
            with pytest.raises(ServeError) as excinfo:
                await asyncio.to_thread(
                    client._request, "POST", "/healthz", {},
                )
            assert excinfo.value.status == 405

        asyncio.run(self._with_server(tmp_path, check))

    def test_http_429_carries_retry_after(self, tmp_path, monkeypatch):
        started = threading.Event()
        release = threading.Event()
        _blocking_execute(monkeypatch, started, release)

        async def check(client):
            blocked = asyncio.create_task(asyncio.to_thread(
                client.call, "failure_estimate", ESTIMATE_REQUEST,
            ))
            while not started.is_set():
                await asyncio.sleep(0.01)
            with pytest.raises(ServeError) as excinfo:
                await asyncio.to_thread(
                    client.call, "failure_estimate",
                    dict(ESTIMATE_REQUEST, trials=41),
                )
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after is not None
            release.set()
            await blocked

        asyncio.run(
            self._with_server(tmp_path, check, max_inflight=1)
        )

    def test_server_ledger_summarizes(self, tmp_path):
        ledger = tmp_path / "ledger.jsonl"

        async def check(client):
            await asyncio.to_thread(
                client.call, "failure_estimate", ESTIMATE_REQUEST,
            )
            await asyncio.to_thread(
                client.call, "failure_estimate", ESTIMATE_REQUEST,
            )

        asyncio.run(
            self._with_server(tmp_path, check, ledger_path=ledger)
        )
        from repro.observe.summarize import summarize_path

        report = summarize_path(ledger)
        assert "Probe cache: 1/2 hits" in report
