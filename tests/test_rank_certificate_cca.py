"""Tests for repro.core.rank_certificate and repro.apps.cca."""

import numpy as np
import pytest

from repro.apps.cca import canonical_correlations, sketched_cca
from repro.core.rank_certificate import rank_certificate
from repro.hardinstances.dbeta import DBeta
from repro.sketch.countsketch import CountSketch
from repro.sketch.gaussian import GaussianSketch
from repro.utils.rng import as_generator, spawn


class TestRankCertificate:
    def test_identity_full_rank(self):
        inst = DBeta(n=64, d=4, reps=1)
        draw = inst.sample_draw(0)
        cert = rank_certificate(np.eye(64), draw, 0.1)
        assert cert.rank == 4
        assert not cert.rank_deficient
        assert not cert.interval_failure

    def test_collision_is_rank_drop_for_s1_beta1(self):
        # Two chosen columns into the same bucket: NN13b's certificate.
        inst = DBeta(n=64, d=3, reps=1)
        draw = inst.sample_draw(1)
        pi = np.zeros((8, 64))
        # Send the first two chosen columns to bucket 0, third to 1.
        pi[0, draw.rows[0]] = 1.0
        pi[0, draw.rows[1]] = 1.0
        pi[1, draw.rows[2]] = 1.0
        cert = rank_certificate(pi, draw, 0.1)
        assert cert.rank_deficient
        assert cert.interval_failure
        assert cert.detected_by_rank_only

    def test_interval_sees_what_rank_misses(self):
        # reps = 2: a single cross-block collision perturbs the Gram
        # matrix without annihilating a direction — the footnote's point.
        inst = DBeta(n=64, d=2, reps=2)
        rng = as_generator(3)
        found_interval_only = False
        for seed in range(60):
            draw = inst.sample_draw(spawn(rng))
            pi = np.zeros((8, 64))
            # Collide one member of block 0 with one member of block 1.
            pi[0, draw.rows[0]] = 1.0
            pi[0, draw.rows[2]] = 1.0
            pi[1, draw.rows[1]] = 1.0
            pi[2, draw.rows[3]] = 1.0
            cert = rank_certificate(pi, draw, 0.1)
            if cert.detected_by_interval_only:
                found_interval_only = True
                break
        assert found_interval_only

    def test_fewer_rows_than_d(self):
        inst = DBeta(n=32, d=4, reps=1)
        draw = inst.sample_draw(0)
        pi = np.random.default_rng(1).standard_normal((2, 32))
        cert = rank_certificate(pi, draw, 0.1)
        assert cert.rank <= 2
        assert cert.rank_deficient

    def test_undersized_countsketch_statistics(self):
        # On an undersized CountSketch, every rank-deficiency must also
        # be an interval failure (rank test is strictly weaker).
        inst = DBeta(n=256, d=8, reps=1)
        pi = CountSketch(m=16, n=256).sample(0).matrix
        rng = as_generator(2)
        for _ in range(20):
            cert = rank_certificate(pi, inst.sample_draw(spawn(rng)), 0.1)
            if cert.rank_deficient:
                assert cert.interval_failure


class TestCanonicalCorrelations:
    def test_identical_subspaces(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((50, 3))
        corr = canonical_correlations(x, x @ rng.standard_normal((3, 3)))
        assert np.allclose(corr, 1.0, atol=1e-8)

    def test_orthogonal_subspaces(self):
        x = np.eye(10)[:, :2]
        y = np.eye(10)[:, 5:7]
        corr = canonical_correlations(x, y)
        assert np.allclose(corr, 0.0, atol=1e-10)

    def test_known_angle(self):
        theta = 0.3
        x = np.zeros((5, 1))
        y = np.zeros((5, 1))
        x[0, 0] = 1.0
        y[0, 0] = np.cos(theta)
        y[1, 0] = np.sin(theta)
        corr = canonical_correlations(x, y)
        assert corr[0] == pytest.approx(np.cos(theta))

    def test_sample_dimension_mismatch(self):
        with pytest.raises(ValueError):
            canonical_correlations(np.ones((4, 2)) + np.eye(4, 2),
                                   np.ones((5, 2)) + np.eye(5, 2))

    def test_values_in_unit_interval(self):
        rng = np.random.default_rng(1)
        corr = canonical_correlations(
            rng.standard_normal((40, 4)), rng.standard_normal((40, 3))
        )
        assert corr.shape == (3,)
        assert np.all((corr >= 0) & (corr <= 1))


class TestSketchedCCA:
    def test_small_error_with_good_sketch(self):
        rng = np.random.default_rng(0)
        n = 512
        x = rng.standard_normal((n, 3))
        y = x @ rng.standard_normal((3, 2)) + \
            0.5 * rng.standard_normal((n, 2))
        fam = GaussianSketch(m=256, n=n)
        res = sketched_cca(x, y, fam, rng=1)
        assert res.max_error < 0.15
        assert res.m == 256

    def test_countsketch_variant(self):
        rng = np.random.default_rng(2)
        n = 1024
        x = rng.standard_normal((n, 3))
        y = rng.standard_normal((n, 3))
        fam = CountSketch(m=512, n=n)
        res = sketched_cca(x, y, fam, rng=3)
        assert res.max_error < 0.3

    def test_dimension_validation(self):
        x = np.random.default_rng(4).standard_normal((64, 2))
        with pytest.raises(ValueError):
            sketched_cca(x, x, GaussianSketch(m=16, n=128))
