"""Tests for repro.apps.kmeans and repro.apps.leverage."""

import numpy as np
import pytest

from repro.apps.kmeans import kmeans_cost, lloyd_kmeans, sketched_kmeans
from repro.apps.leverage import (
    exact_leverage_scores,
    sketched_leverage_scores,
)
from repro.experiments.workloads import clustered_points
from repro.sketch.countsketch import CountSketch
from repro.sketch.gaussian import GaussianSketch


class TestKMeansCost:
    def test_zero_for_singleton_clusters(self):
        points = np.array([[0.0, 0.0], [10.0, 10.0]])
        assert kmeans_cost(points, np.array([0, 1])) == 0.0

    def test_known_value(self):
        points = np.array([[0.0], [2.0]])
        # One cluster at centroid 1: cost = 1 + 1.
        assert kmeans_cost(points, np.array([0, 0])) == pytest.approx(2.0)

    def test_label_shape_validated(self):
        with pytest.raises(ValueError):
            kmeans_cost(np.ones((3, 2)), np.array([0, 1]))


class TestLloydKMeans:
    def test_recovers_separated_clusters(self):
        points, truth = clustered_points(60, 16, 3, spread=0.01, rng=0)
        labels, centroids = lloyd_kmeans(points, 3, rng=1)
        # Same partition as ground truth up to relabeling: verify the
        # cost is near zero.
        assert kmeans_cost(points, labels) <= kmeans_cost(points, truth) * 3

    def test_deterministic(self):
        points, _ = clustered_points(40, 8, 2, rng=2)
        l1, _ = lloyd_kmeans(points, 2, rng=3)
        l2, _ = lloyd_kmeans(points, 2, rng=3)
        assert np.array_equal(l1, l2)

    def test_k_exceeding_points_raises(self):
        with pytest.raises(ValueError):
            lloyd_kmeans(np.ones((3, 2)), 4)

    def test_centroid_shape(self):
        points, _ = clustered_points(30, 8, 2, rng=4)
        _, centroids = lloyd_kmeans(points, 2, rng=5)
        assert centroids.shape == (2, 8)


class TestSketchedKMeans:
    def test_cost_preserved_with_good_sketch(self):
        points, _ = clustered_points(60, 64, 3, spread=0.05, rng=0)
        fam = GaussianSketch(m=32, n=64)
        res = sketched_kmeans(points, 3, fam, rng=1)
        assert res.cost_ratio <= 1.5

    def test_countsketch_variant(self):
        points, _ = clustered_points(50, 128, 2, spread=0.05, rng=2)
        fam = CountSketch(m=64, n=128)
        res = sketched_kmeans(points, 2, fam, rng=3)
        assert res.cost_ratio <= 2.0
        assert res.labels.shape == (50,)

    def test_feature_dimension_validated(self):
        points, _ = clustered_points(20, 16, 2, rng=4)
        with pytest.raises(ValueError):
            sketched_kmeans(points, 2, GaussianSketch(m=8, n=32))


class TestLeverageScores:
    def test_exact_scores_sum_to_rank(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((50, 4))
        scores = exact_leverage_scores(a)
        assert scores.sum() == pytest.approx(4.0)
        assert np.all((scores >= 0) & (scores <= 1 + 1e-12))

    def test_spiked_row_has_high_leverage(self):
        rng = np.random.default_rng(1)
        a = 0.01 * rng.standard_normal((50, 3))
        a[7] = [10.0, 0.0, 0.0]
        scores = exact_leverage_scores(a)
        assert scores[7] > 0.9

    def test_sketched_scores_close_to_exact(self):
        rng = np.random.default_rng(2)
        a = rng.standard_normal((256, 5))
        fam = GaussianSketch(m=128, n=256)
        res = sketched_leverage_scores(a, fam, rng=3)
        assert res.max_relative_error < 0.5
        assert res.scores.shape == (256,)

    def test_dimension_mismatch_raises(self):
        a = np.ones((32, 2)) + np.eye(32, 2)
        with pytest.raises(ValueError):
            sketched_leverage_scores(a, GaussianSketch(m=16, n=64))

    def test_rank_deficient_sketch_detected(self):
        rng = np.random.default_rng(4)
        a = rng.standard_normal((64, 8))
        # m < d: the sketched matrix cannot have full column rank.
        fam = GaussianSketch(m=4, n=64)
        with pytest.raises(ValueError):
            sketched_leverage_scores(a, fam, rng=5)
