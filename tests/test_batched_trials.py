"""Regression suite for the batched trial engine.

The contracts under test (see :mod:`repro.sketch.batched` and the
``batch`` knob in :mod:`repro.core.tester`):

* ``batch=1`` (and ``batch=None``) delegate to the serial per-trial path
  **bit for bit** — no array may differ in a single ULP;
* ``batch > 1`` owns a canonical accumulation order: its values agree
  with the serial stream to tight relative tolerance, and are themselves
  bit-identical across serial/parallel execution and cold/warm cache;
* per-trial reconstruction (``trial_kernel``, compacted products) matches
  the serial samplers exactly, because the batched samplers consume the
  same per-trial sub-streams;
* ``minimal_m`` records *effective* dimensions for block-structured
  families — each probed at most once, never past ``m_max``.
"""

import numpy as np
import pytest

import repro.core.tester as tester
from repro.core.tester import (
    distortion_samples,
    failure_estimate,
    minimal_m,
)
from repro.hardinstances.dbeta import DBeta
from repro.hardinstances.mixtures import MixtureInstance
from repro.sketch import (
    OSNAP,
    CountSketch,
    GaussianSketch,
    LeverageSampling,
    RowSampling,
    SparseJL,
    sample_sketch,
)
from repro.sketch.batched import (
    BatchedColumnScatter,
    BatchedRowGather,
    StackedKernelBatch,
)
from repro.sketch.hadamard_block import HadamardBlockSketch
from repro.utils.stats import BernoulliEstimate

pytestmark = pytest.mark.kernels

N = 192
M = 96
TRIALS = 12
SEED = 20220620


def _leverage_family(m=M, n=N):
    gen = np.random.default_rng(2024)
    p = gen.random(n)
    p /= p.sum()
    return LeverageSampling(m, n, probabilities=p)


#: (family factory, instance) pairs covering every batched-sampler code
#: path: both column-scatter layouts, both row-gather layouts, the
#: stacked-kernel fallback (sparse-JL) and the kernel-less serial
#: fallback (Gaussian).
CASES = [
    pytest.param(lambda: CountSketch(M, N), 1, id="countsketch"),
    pytest.param(lambda: OSNAP(M, N, s=4), 2, id="osnap-uniform"),
    pytest.param(lambda: OSNAP(M, N, s=4, variant="block"), 2,
                 id="osnap-block"),
    pytest.param(lambda: RowSampling(M, N), 1, id="rowsampling"),
    pytest.param(_leverage_family, 2, id="leverage"),
    pytest.param(lambda: SparseJL(M, N, q=0.05), 1, id="sparsejl"),
    pytest.param(lambda: GaussianSketch(48, N), 1, id="gaussian"),
]


def _serial_and_batched(family, instance, batch, trials=TRIALS, seed=SEED):
    serial = distortion_samples(
        family, instance, trials=trials, rng=np.random.SeedSequence(seed)
    )
    batched = distortion_samples(
        family, instance, trials=trials, rng=np.random.SeedSequence(seed),
        batch=batch,
    )
    return serial, batched


class TestBatchDelegation:
    """batch in {None, 1} must be the serial path, bit for bit."""

    @pytest.mark.parametrize("make_family,reps", CASES)
    def test_batch_one_is_bit_identical(self, make_family, reps):
        instance = DBeta(N, 6, reps=reps)
        serial, batched = _serial_and_batched(make_family(), instance, 1)
        assert np.array_equal(serial, batched)

    @pytest.mark.parametrize("make_family,reps", CASES)
    def test_batch_matches_serial_to_tolerance(self, make_family, reps):
        instance = DBeta(N, 6, reps=reps)
        serial, batched = _serial_and_batched(make_family(), instance, 4)
        np.testing.assert_allclose(batched, serial, rtol=1e-9, atol=1e-12)

    def test_kernel_less_fallback_is_bit_identical(self):
        # Gaussian sketches carry no kernel, so even batch > 1 must fall
        # back to the exact serial arithmetic inside the chunk.
        instance = DBeta(N, 6, reps=1)
        serial, batched = _serial_and_batched(
            GaussianSketch(48, N), instance, 4
        )
        assert np.array_equal(serial, batched)

    def test_failure_counts_agree(self):
        family = OSNAP(M, N, s=4)
        instance = DBeta(N, 6, reps=2)
        serial = failure_estimate(
            family, instance, epsilon=0.6, trials=24,
            rng=np.random.SeedSequence(SEED),
        )
        batched = failure_estimate(
            family, instance, epsilon=0.6, trials=24,
            rng=np.random.SeedSequence(SEED), batch=8,
        )
        assert (serial.successes, serial.trials) \
            == (batched.successes, batched.trials)

    def test_mixture_mixed_reps_groups(self):
        mixture = MixtureInstance(
            [DBeta(N, 6, reps=1), DBeta(N, 6, reps=2)], weights=[0.5, 0.5]
        )
        serial, batched = _serial_and_batched(
            OSNAP(M, N, s=4), mixture, 4, trials=TRIALS
        )
        np.testing.assert_allclose(batched, serial, rtol=1e-9, atol=1e-12)

    def test_trailing_partial_chunk(self):
        # trials not divisible by batch: the last chunk is smaller and
        # must still line up trial for trial.
        instance = DBeta(N, 6, reps=2)
        serial, batched = _serial_and_batched(
            OSNAP(M, N, s=4), instance, 5, trials=13
        )
        np.testing.assert_allclose(batched, serial, rtol=1e-9, atol=1e-12)


class TestBatchDeterminism:
    """batch > 1 results are canonical: execution layout never matters."""

    def test_serial_vs_parallel_bit_identical(self):
        family = OSNAP(M, N, s=4)
        instance = DBeta(N, 6, reps=2)
        one = distortion_samples(
            family, instance, trials=16, rng=np.random.SeedSequence(3),
            batch=4, workers=1,
        )
        two = distortion_samples(
            family, instance, trials=16, rng=np.random.SeedSequence(3),
            batch=4, workers=2,
        )
        assert np.array_equal(one, two)

    def test_cold_warm_off_cache_bit_identical(self, tmp_path):
        from repro.cache.probes import ProbeCache

        family = CountSketch(M, N)
        instance = DBeta(N, 6, reps=1)

        def run(cache=None):
            return distortion_samples(
                family, instance, trials=16,
                rng=np.random.SeedSequence(5), batch=4, cache=cache,
            )

        off = run()
        cold = run(ProbeCache(tmp_path / "cache"))
        warm = run(ProbeCache(tmp_path / "cache"))
        assert np.array_equal(off, cold)
        assert np.array_equal(cold, warm)

    def test_batch_size_enters_cache_key(self, tmp_path):
        # A serial entry must never satisfy a batched lookup (different
        # accumulation order) — distinct batch settings get distinct keys.
        from repro.cache.probes import ProbeCache

        family = OSNAP(M, N, s=4)
        instance = DBeta(N, 6, reps=2)
        cache = ProbeCache(tmp_path / "cache")
        for batch in (None, 2, 4):
            distortion_samples(
                family, instance, trials=8,
                rng=np.random.SeedSequence(5), batch=batch, cache=cache,
            )
        from repro.cache.store import JsonlStore

        records = [r for r in JsonlStore(cache.path).load()
                   if r.get("kind") == "distortion_samples"]
        assert len(records) == 3

    def test_batch_one_aliases_serial_cache_entry(self, tmp_path):
        # batch=1 delegates to the serial path, so it shares the serial
        # cache entries rather than recomputing.
        from repro.cache.probes import ProbeCache

        family = CountSketch(M, N)
        instance = DBeta(N, 6, reps=1)
        cache = ProbeCache(tmp_path / "cache")
        distortion_samples(family, instance, trials=8,
                           rng=np.random.SeedSequence(5), cache=cache)
        distortion_samples(family, instance, trials=8,
                           rng=np.random.SeedSequence(5), batch=1,
                           cache=cache)
        from repro.cache.store import JsonlStore

        assert len(JsonlStore(cache.path).load()) == 1


class TestPerTrialReconstruction:
    """The batched samplers replay the serial per-trial sub-streams."""

    SCATTER_CASES = [
        pytest.param(lambda: CountSketch(M, N), id="countsketch"),
        pytest.param(lambda: OSNAP(M, N, s=4), id="osnap-uniform"),
        pytest.param(lambda: OSNAP(M, N, s=4, variant="block"),
                     id="osnap-block"),
    ]

    @pytest.mark.parametrize("make_family", SCATTER_CASES)
    def test_trial_kernels_match_serial_sampler(self, make_family):
        family = make_family()
        seeds = np.random.SeedSequence(SEED).spawn(6)
        batched = family.sample_trial_batch(seeds)
        for index, seed in enumerate(seeds):
            serial = sample_sketch(family, seed, lazy=True).kernel
            got = batched.trial_kernel(index).representation()
            want = serial.representation()
            assert np.array_equal(got["rows"], want["rows"])
            assert np.array_equal(got["values"], want["values"])

    @pytest.mark.parametrize("make_family", [
        pytest.param(lambda: RowSampling(M, N), id="rowsampling"),
        pytest.param(_leverage_family, id="leverage"),
    ])
    def test_gather_trial_kernels_match_serial_sampler(self, make_family):
        family = make_family()
        seeds = np.random.SeedSequence(SEED).spawn(6)
        batched = family.sample_trial_batch(seeds)
        for index, seed in enumerate(seeds):
            serial = sample_sketch(family, seed, lazy=True).kernel
            got = batched.trial_kernel(index).representation()
            want = serial.representation()
            assert np.array_equal(got["cols"], want["cols"])
            assert np.array_equal(got["values"], want["values"])

    @pytest.mark.parametrize("make_family", SCATTER_CASES)
    def test_compacted_products_match_serial_scatter_bitwise(
            self, make_family):
        # The batched scatter inserts entries in the serial kernel's
        # per-column order, so on the surviving (touched) rows the
        # products must be bitwise equal — not merely close.
        family = make_family()
        instance = DBeta(N, 6, reps=2)
        seeds = np.random.SeedSequence(SEED).spawn(4)
        pairs = [seed.spawn(2) for seed in seeds]
        batched = family.sample_trial_batch([p[0] for p in pairs])
        draws = [instance.sample_support(p[1]) for p in pairs]
        products = batched.sketched_bases(draws)
        stacked = batched.representation()
        for index, draw in enumerate(draws):
            serial = batched.trial_kernel(index).sketched_basis(draw)
            touched = np.unique(
                stacked["rows"][index][:, np.asarray(draw.rows)]
            )
            assert np.array_equal(
                products[index][:touched.size], serial[touched]
            )
            assert not products[index][touched.size:].any()


class TestBatchedKernelValidation:
    def test_batch_requires_fresh_sketch(self):
        with pytest.raises(ValueError, match="fresh_sketch"):
            failure_estimate(
                CountSketch(M, N), DBeta(N, 6, reps=1), epsilon=0.5,
                trials=4, rng=np.random.SeedSequence(0),
                fresh_sketch=False, batch=4,
            )

    def test_batch_must_be_positive(self):
        with pytest.raises(ValueError):
            distortion_samples(
                CountSketch(M, N), DBeta(N, 6, reps=1), trials=4,
                rng=np.random.SeedSequence(0), batch=0,
            )

    def test_column_scatter_rejects_mismatched_trials(self):
        rows = [np.zeros((2, 8), dtype=np.int64)]
        signs = [np.ones((2, 8)), np.ones((2, 8))]
        with pytest.raises(ValueError):
            BatchedColumnScatter(rows, signs, 1.0, (4, 8))

    def test_column_scatter_rejects_out_of_range_rows(self):
        rows = [np.full((1, 8), 4, dtype=np.int64)]
        signs = [np.ones((1, 8))]
        with pytest.raises(ValueError, match="row index"):
            BatchedColumnScatter(rows, signs, 1.0, (4, 8))

    def test_row_gather_rejects_out_of_range_cols(self):
        cols = np.full((1, 4), 8, dtype=np.int64)
        values = np.ones((1, 4))
        with pytest.raises(ValueError, match="column index"):
            BatchedRowGather(cols, values, (4, 8))

    def test_stacked_batch_rejects_shape_mismatch(self):
        family = CountSketch(M, N)
        kernel = sample_sketch(
            family, np.random.SeedSequence(0), lazy=True
        ).kernel
        with pytest.raises(ValueError, match="share shape"):
            StackedKernelBatch([kernel], (M + 1, N))

    def test_distortions_validates_draw_count(self):
        family = CountSketch(M, N)
        batched = family.sample_trial_batch(
            np.random.SeedSequence(0).spawn(3)
        )
        instance = DBeta(N, 6, reps=1)
        draws = [
            instance.sample_support(seed)
            for seed in np.random.SeedSequence(1).spawn(2)
        ]
        with pytest.raises(ValueError, match="expected 3 draws"):
            batched.distortions(draws)


def _recording_stub(threshold, trials=20):
    """Deterministic ``failure_estimate`` stand-in recording effective
    dimensions; accepts the optional ``batch`` forwarded by ``minimal_m``."""
    seen = []

    def fake(family, instance, epsilon, probe_trials, rng=None,
             fresh_sketch=True, workers=1, chunk_size=None, cache=None,
             batch=None):
        seen.append(family.m)
        failures = 0 if family.m >= threshold else trials
        return BernoulliEstimate(failures, trials)

    return fake, seen


class TestMinimalMEffectiveDimension:
    """Block-structured families: ``with_m`` rounds up, and the search
    must report what it actually probed."""

    inst = DBeta(n=64, d=2, reps=1)

    @pytest.mark.parametrize("family,step", [
        pytest.param(OSNAP(m=4, n=64, s=4, variant="block"), 4,
                     id="osnap-block"),
        pytest.param(HadamardBlockSketch(m=4, n=64, block_order=4), 4,
                     id="hadamard-block"),
    ])
    def test_effective_m_recorded_once_and_capped(self, family, step,
                                                  monkeypatch):
        stub, seen = _recording_stub(threshold=40)
        monkeypatch.setattr("repro.core.tester.failure_estimate", stub)
        result = minimal_m(family, self.inst, 0.1, 0.1, trials=20,
                           rng=np.random.SeedSequence(0),
                           m_min=1, m_max=50)
        probed = [m for m, _ in result.evaluations]
        assert probed == seen  # evaluations record what was executed
        assert all(m % step == 0 for m in probed)
        assert all(m <= 50 for m in probed)
        assert len(set(probed)) == len(probed)  # aliased m never re-probed
        assert result.found
        assert result.m_star in probed
        assert result.m_star == family.with_m(result.m_star).m

    def test_m_star_is_effective_dimension(self, monkeypatch):
        # Requested bracket values that are not multiples of the block
        # size must surface as their rounded (actually probed) dimension.
        family = OSNAP(m=4, n=64, s=4, variant="block")
        stub, seen = _recording_stub(threshold=33)
        monkeypatch.setattr("repro.core.tester.failure_estimate", stub)
        result = minimal_m(family, self.inst, 0.1, 0.1, trials=20,
                           rng=np.random.SeedSequence(0),
                           m_min=1, m_max=100)
        assert result.m_star % 4 == 0
        assert result.m_star == 36  # smallest multiple of 4 above 33

    def test_rounding_never_exceeds_m_max(self, monkeypatch):
        # m_max=49 is not a multiple of 4: the largest probeable block
        # dimension is 48, and the search must not round past the cap.
        family = OSNAP(m=4, n=64, s=4, variant="block")
        stub, seen = _recording_stub(threshold=1000)
        monkeypatch.setattr("repro.core.tester.failure_estimate", stub)
        result = minimal_m(family, self.inst, 0.1, 0.1, trials=20,
                           rng=np.random.SeedSequence(0),
                           m_min=1, m_max=49)
        assert not result.found
        assert max(seen) == 48
        assert seen.count(48) == 1

    def test_m_min_rounding_past_m_max_returns_unfound(self, monkeypatch):
        family = OSNAP(m=8, n=64, s=8, variant="block")
        stub, seen = _recording_stub(threshold=1)
        monkeypatch.setattr("repro.core.tester.failure_estimate", stub)
        result = minimal_m(family, self.inst, 0.1, 0.1, trials=20,
                           rng=np.random.SeedSequence(0),
                           m_min=5, m_max=7)
        assert not result.found
        assert seen == []

    def test_real_search_reports_probed_dimension(self):
        # End-to-end (no stub): the reported m_star is a dimension the
        # block family can actually instantiate, within the cap.
        family = OSNAP(m=8, n=N, s=4, variant="block")
        instance = DBeta(N, 16, reps=1)
        result = minimal_m(family, instance, epsilon=0.6, delta=0.2,
                           trials=16, rng=np.random.SeedSequence(8),
                           m_min=4, m_max=50, batch=8)
        for m, _ in result.evaluations:
            assert m % 4 == 0
            assert m <= 50
        if result.found:
            assert result.m_star == family.with_m(result.m_star).m
            assert result.m_star in [m for m, _ in result.evaluations]

    def test_stub_without_batch_kwarg_still_works(self, monkeypatch):
        # minimal_m forwards batch only when set, so historical stubs
        # (and monkeypatched estimators) keep their old signature.
        monkeypatch.setattr(
            "repro.core.tester.failure_estimate",
            lambda family, instance, epsilon, trials, rng=None,
            fresh_sketch=True, workers=1, chunk_size=None, cache=None:
            BernoulliEstimate(0 if family.m >= 8 else trials, trials),
        )
        result = minimal_m(CountSketch(4, 64), self.inst, 0.1, 0.1,
                           trials=20, rng=np.random.SeedSequence(0),
                           m_min=1, m_max=32)
        assert result.found and result.m_star == 8
