"""Golden regression pins on the Monte-Carlo trial stream.

``tests/golden/distortion_streams.json`` records, for each sketch family,
the exact distortion sequence produced by :func:`distortion_samples` at a
fixed ``SeedSequence``.  Any change to RNG consumption, trial seeding, the
kernel dispatch, or the distortion arithmetic shows up here as a diff —
the values were recorded from the materialized-matmul engine, so they also
re-certify the kernels' bit-identity contract on every run.

``tests/golden/shard_streams.json`` additionally pins a ``minimal_m``
search per sketch family as recorded through a 3-shard
:func:`repro.shard.sharded_call` — and the tests here require the same
bytes from 1-, 2-, and 3-shard fan-outs *and* from the plain serial
search, the shard layer's core invariance.

Comparison uses a tight relative tolerance (1e-9) rather than exact
equality only to absorb BLAS/LAPACK differences across platforms in the
SVD inside ``distortion_of_product``; everything upstream of the SVD is
required to be bit-identical (see tests/test_apply_kernels.py).

To regenerate after an *intentional* change to the trial stream::

    PYTHONPATH=src python tests/golden/regenerate.py
"""

import json

import numpy as np
import pytest

from repro.core.tester import distortion_samples

from golden.regenerate import (
    BATCHED_PATH,
    GOLDEN_BATCH,
    GOLDEN_PATH,
    GOLDEN_SEED,
    GOLDEN_TRIALS,
    SHARD_COUNT,
    SHARD_PATH,
    SHARD_TRIALS,
    cases,
    search_payload,
    shard_cases,
    shard_search,
)

pytestmark = pytest.mark.kernels


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN_PATH) as handle:
        return json.load(handle)


@pytest.fixture(scope="module")
def golden_batched():
    with open(BATCHED_PATH) as handle:
        return json.load(handle)


def test_golden_file_covers_every_case(golden):
    assert sorted(golden["streams"]) == sorted(name for name, _, _ in cases())


@pytest.mark.parametrize(
    "name,family,instance",
    [pytest.param(*case, id=case[0]) for case in cases()],
)
def test_distortion_stream_unchanged(name, family, instance, golden):
    recorded = np.asarray(golden["streams"][name], dtype=float)
    current = distortion_samples(
        family, instance, trials=GOLDEN_TRIALS,
        rng=np.random.SeedSequence(GOLDEN_SEED),
    )
    assert current.shape == recorded.shape
    np.testing.assert_allclose(current, recorded, rtol=1e-9, atol=0.0)


def test_golden_metadata_matches_parameters(golden):
    assert golden["seed"] == GOLDEN_SEED
    assert golden["trials"] == GOLDEN_TRIALS


def test_batched_golden_file_covers_every_case(golden_batched):
    assert sorted(golden_batched["streams"]) == sorted(
        name for name, _, _ in cases()
    )


@pytest.mark.parametrize(
    "name,family,instance",
    [pytest.param(*case, id=case[0]) for case in cases()],
)
def test_batched_stream_unchanged(name, family, instance, golden_batched):
    """Pin the batched engine's stream at a batch size with a partial tail."""
    recorded = np.asarray(golden_batched["streams"][name], dtype=float)
    current = distortion_samples(
        family, instance, trials=GOLDEN_TRIALS,
        rng=np.random.SeedSequence(GOLDEN_SEED), batch=GOLDEN_BATCH,
    )
    assert current.shape == recorded.shape
    np.testing.assert_allclose(current, recorded, rtol=1e-9, atol=0.0)


@pytest.mark.parametrize(
    "name,family,instance",
    [pytest.param(*case, id=case[0]) for case in cases()],
)
def test_batched_stream_matches_serial_pins(name, family, instance, golden):
    """The batched engine reproduces the *serial* pins to SVD tolerance.

    Everything upstream of the SVD (seeding, sampling, the scatter) is
    stream-faithful by construction; only the reduction differs (batched
    Gram SVD vs per-trial rectangular SVD), so the recorded serial values
    bound the batched ones at the same 1e-9 used for cross-platform BLAS —
    plus an absolute floor for distortions that are exactly 0 in one
    reduction and one ULP away in the other.
    """
    recorded = np.asarray(golden["streams"][name], dtype=float)
    current = distortion_samples(
        family, instance, trials=GOLDEN_TRIALS,
        rng=np.random.SeedSequence(GOLDEN_SEED), batch=GOLDEN_BATCH,
    )
    np.testing.assert_allclose(current, recorded, rtol=1e-9, atol=1e-12)


def test_batched_golden_metadata_matches_parameters(golden_batched):
    assert golden_batched["seed"] == GOLDEN_SEED
    assert golden_batched["trials"] == GOLDEN_TRIALS
    assert golden_batched["batch"] == GOLDEN_BATCH


@pytest.fixture(scope="module")
def golden_shard():
    with open(SHARD_PATH) as handle:
        return json.load(handle)


def test_shard_golden_file_covers_every_case(golden_shard):
    assert sorted(golden_shard["searches"]) == sorted(
        name for name, _, _ in shard_cases()
    )
    assert golden_shard["seed"] == GOLDEN_SEED
    assert golden_shard["trials"] == SHARD_TRIALS
    assert golden_shard["shards"] == SHARD_COUNT


@pytest.mark.parametrize(
    "name,family,instance",
    [pytest.param(*case, id=case[0]) for case in shard_cases()],
)
def test_serial_search_matches_shard_pins(name, family, instance,
                                          golden_shard):
    """The pins, though recorded through a 3-shard merge, are the *serial*
    search outcome — a plain cache-less run reproduces them exactly."""
    payload = search_payload(shard_search(family, instance))
    assert payload == golden_shard["searches"][name]


@pytest.mark.parametrize("shards", [1, 2, 3])
@pytest.mark.parametrize(
    "name,family,instance",
    [pytest.param(*case, id=case[0]) for case in shard_cases()],
)
def test_shard_count_invariance(name, family, instance, shards,
                                golden_shard, tmp_path):
    """Shard-count invariance: any fan-out reproduces the pinned search.

    The probe schedule, successes, and m* must not depend on how the
    trial budget was partitioned — the canonical-JSON bytes of the
    payload are identical for 1, 2, and 3 shards.
    """
    from repro.shard import sharded_call

    result = sharded_call(
        lambda cache, shard: shard_search(family, instance,
                                          cache=cache, shard=shard),
        shards, tmp_path,
    )
    payload = search_payload(result)
    pinned = golden_shard["searches"][name]
    assert json.dumps(payload, sort_keys=True) \
        == json.dumps(pinned, sort_keys=True)
