"""Cross-cutting property-based tests (hypothesis) on core invariants.

Each property here corresponds to a structural fact the paper's proofs
rely on; they are exercised over randomized parameter spaces rather than
fixed examples.
"""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.collisions import birthday_collision_probability
from repro.core.heavy import average_heavy_count
from repro.core.lemmas import fact5_probabilities
from repro.core.witness import escape_probability, witness_vector
from repro.hardinstances.dbeta import DBeta
from repro.linalg.distortion import distortion_of_product, sketched_basis
from repro.linalg.gram import column_norms
from repro.linalg.subspace import is_isometry
from repro.sketch.countsketch import CountSketch
from repro.sketch.osnap import OSNAP

COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestSketchInvariants:
    @given(
        m=st.integers(min_value=2, max_value=64),
        n=st.integers(min_value=1, max_value=128),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=40, **COMMON)
    def test_countsketch_unit_columns(self, m, n, seed):
        """Every CountSketch column has exactly one ±1 entry."""
        sketch = CountSketch(m=m, n=n).sample(seed)
        assert np.allclose(column_norms(sketch.matrix), 1.0)
        counts = np.diff(sketch.matrix.tocsc().indptr)
        assert np.all(counts == 1)

    @given(
        m=st.integers(min_value=8, max_value=64),
        s=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=40, **COMMON)
    def test_osnap_exact_sparsity_and_unit_norm(self, m, s, seed):
        """OSNAP columns: exactly s nonzeros of magnitude 1/sqrt(s)."""
        if s > m:
            s = m
        sketch = OSNAP(m=m, n=32, s=s).sample(seed)
        counts = np.diff(sketch.matrix.tocsc().indptr)
        assert np.all(counts == s)
        assert np.allclose(column_norms(sketch.matrix), 1.0)

    @given(
        m=st.integers(min_value=4, max_value=32),
        s=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=30, **COMMON)
    def test_osnap_heavy_count_is_s(self, m, s, seed):
        """The average heavy count at threshold 1/sqrt(s) is exactly s."""
        if s > m:
            s = m
        sketch = OSNAP(m=m, n=24, s=s).sample(seed)
        avg = average_heavy_count(sketch.matrix, 1.0 / math.sqrt(s))
        assert avg == pytest.approx(float(s))


class TestHardInstanceInvariants:
    @given(
        d=st.integers(min_value=1, max_value=8),
        reps=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=40, **COMMON)
    def test_dbeta_is_isometry(self, d, reps, seed):
        """Conditioned on distinct rows, U from D_beta is an isometry."""
        inst = DBeta(n=max(64, 2 * reps * d), d=d, reps=reps)
        assert is_isometry(inst.sample(seed))

    @given(
        d=st.integers(min_value=1, max_value=6),
        reps=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=30, **COMMON)
    def test_fast_sketched_basis_matches_dense(self, d, reps, seed):
        """The structured ΠU fast path equals the dense product."""
        n = max(64, 2 * reps * d)
        inst = DBeta(n=n, d=d, reps=reps)
        draw = inst.sample_draw(seed)
        pi = np.random.default_rng(seed + 1).standard_normal((10, n))
        assert np.allclose(
            draw.sketched_basis(pi), sketched_basis(pi, draw.u)
        )

    @given(
        d=st.integers(min_value=2, max_value=6),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=30, **COMMON)
    def test_identity_sketch_never_fails(self, d, seed):
        """The identity is a 0-distortion embedding for every draw."""
        inst = DBeta(n=64, d=d, reps=2)
        draw = inst.sample_draw(seed)
        product = draw.sketched_basis(np.eye(64))
        assert distortion_of_product(product) == pytest.approx(0.0,
                                                               abs=1e-9)


class TestAntiConcentrationInvariants:
    @given(
        x1=st.floats(min_value=0.1, max_value=5),
        frac2=st.floats(min_value=0, max_value=1),
        frac3=st.floats(min_value=0, max_value=1),
        sign2=st.sampled_from([-1.0, 1.0]),
        sign3=st.sampled_from([-1.0, 1.0]),
    )
    @settings(max_examples=80, **COMMON)
    def test_fact5_with_ordered_magnitudes(self, x1, frac2, frac3, sign2,
                                           sign3):
        """Fact 5 for |x1| >= |x2| >= |x3| with arbitrary signs."""
        x2 = sign2 * x1 * frac2
        x3 = sign3 * abs(x2) * frac3
        upper, lower = fact5_probabilities(x1, x2, x3, a=x1)
        assert upper >= 0.25
        assert lower >= 0.25

    @given(
        lam=st.floats(min_value=2.5, max_value=10),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=25, **COMMON)
    def test_lemma4_escape_for_planted_pairs(self, lam, seed):
        """Escape probability >= 1/4 whenever |<c1, c2>| = lam*eps, lam
        comfortably above 2 (here the witness enumeration is exact)."""
        epsilon = 0.05
        if lam * epsilon >= 1.0:
            lam = 0.9 / epsilon
        n, d = 64, 3
        target = lam * epsilon
        alpha = math.sqrt((1 + target) / 2)
        gamma = math.sqrt((1 - target) / 2)
        pi = np.zeros((16, n))
        pi[0, 0], pi[1, 0] = alpha, gamma
        pi[0, 1], pi[1, 1] = alpha, -gamma
        pi[2, 2], pi[3, 3] = 1.0, 1.0
        rows = np.array([0, 1, 2])
        signs = np.random.default_rng(seed).choice((-1.0, 1.0), size=3)
        from repro.hardinstances.dbeta import HardDraw

        draw = HardDraw(u=np.zeros((n, d)), rows=rows, signs=signs, reps=1)
        est = escape_probability(pi, draw, 0, 1, epsilon)
        assert est.point >= 0.25


class TestBirthdayInvariants:
    @given(
        q=st.integers(min_value=2, max_value=40),
        m=st.integers(min_value=2, max_value=2000),
    )
    @settings(max_examples=60, **COMMON)
    def test_complement_product_form(self, q, m):
        """1 - P equals the product form directly."""
        p = birthday_collision_probability(q, m)
        if q > m:
            assert p == 1.0
            return
        expected = 1.0
        for i in range(1, q):
            expected *= 1.0 - i / m
        assert 1.0 - p == pytest.approx(expected, rel=1e-9)

    @given(st.integers(min_value=2, max_value=30))
    @settings(max_examples=20, **COMMON)
    def test_witness_vector_always_unit(self, d):
        reps = 2
        u = witness_vector(0, d, reps=reps, d=d)
        assert np.linalg.norm(u) == pytest.approx(1.0)


class TestCompositionInvariants:
    @given(
        m1=st.integers(min_value=16, max_value=64),
        m2=st.integers(min_value=4, max_value=16),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=25, **COMMON)
    def test_two_stage_apply_equals_matrix(self, m1, m2, seed):
        """Composed apply equals the materialized matrix product."""
        from repro.sketch.compose import TwoStageSketch
        from repro.sketch.gaussian import GaussianSketch

        fam = TwoStageSketch(CountSketch(m=m1, n=48),
                             GaussianSketch(m=m2, n=m1))
        sketch = fam.sample(seed)
        x = np.random.default_rng(seed + 1).standard_normal((48, 2))
        assert np.allclose(sketch.apply(x), sketch.matrix @ x)

    @given(
        k=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=20, **COMMON)
    def test_stacked_norm_preserved_in_expectation(self, k, seed):
        """Stacked CountSketch columns keep exactly unit norm."""
        from repro.linalg.gram import column_norms as norms
        from repro.sketch.compose import StackedSketch

        fam = StackedSketch([CountSketch(m=16, n=32)] * k)
        sketch = fam.sample(seed)
        assert np.allclose(norms(sketch.matrix), 1.0)


class TestRankCertificateInvariants:
    @given(
        m=st.integers(min_value=4, max_value=64),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=30, **COMMON)
    def test_rank_drop_implies_interval_failure(self, m, seed):
        """The NN13b certificate is strictly weaker than the interval
        test: rank deficiency always implies an interval failure (the
        smallest singular value is 0 < 1 - eps)."""
        from repro.core.rank_certificate import rank_certificate

        inst = DBeta(n=128, d=4, reps=2)
        draw = inst.sample_draw(seed)
        pi = CountSketch(m=m, n=128).sample(seed + 1).matrix
        cert = rank_certificate(pi, draw, 0.1)
        if cert.rank_deficient:
            assert cert.interval_failure
