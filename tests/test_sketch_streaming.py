"""Tests for repro.sketch.streaming."""

import numpy as np
import pytest

from repro.sketch.countsketch import CountSketch
from repro.sketch.gaussian import GaussianSketch
from repro.sketch.osnap import OSNAP
from repro.sketch.streaming import StreamingSketcher


@pytest.fixture
def tall():
    rng = np.random.default_rng(0)
    return rng.standard_normal((200, 4))


class TestStreaming:
    def test_streamed_equals_batch(self, tall):
        family = CountSketch(m=32, n=200)
        sketcher = StreamingSketcher(family, columns=4, rng=5)
        for start in range(0, 200, 32):
            sketcher.update_matrix(tall[start:start + 32], start_row=start)
        batch = sketcher.sketch.apply(tall)
        assert np.allclose(sketcher.result(), batch)
        assert sketcher.rows_seen == 200

    def test_single_row_updates(self, tall):
        family = OSNAP(m=32, n=200, s=3)
        sketcher = StreamingSketcher(family, columns=4, rng=1)
        for i in range(200):
            sketcher.update_rows([i], tall[i:i + 1])
        assert np.allclose(sketcher.result(), sketcher.sketch.apply(tall))

    def test_turnstile_addition(self):
        family = CountSketch(m=16, n=50)
        sketcher = StreamingSketcher(family, columns=2, rng=2)
        row = np.array([[1.0, 2.0]])
        sketcher.update_rows([7], row)
        sketcher.update_rows([7], row)
        expected = 2 * (sketcher.sketch.matrix.tocsc()[:, [7]] @ row)
        assert np.allclose(sketcher.result(), expected)

    def test_dense_family_supported(self, tall):
        family = GaussianSketch(m=16, n=200)
        sketcher = StreamingSketcher(family, columns=4, rng=3)
        sketcher.update_matrix(tall)
        assert np.allclose(
            sketcher.result(), sketcher.sketch.apply(tall), atol=1e-10
        )

    def test_shape_validation(self):
        sketcher = StreamingSketcher(CountSketch(m=8, n=20), columns=3,
                                     rng=0)
        with pytest.raises(ValueError):
            sketcher.update_rows([0], np.ones((1, 2)))

    def test_row_index_validation(self):
        sketcher = StreamingSketcher(CountSketch(m=8, n=20), columns=2,
                                     rng=0)
        with pytest.raises(ValueError):
            sketcher.update_rows([25], np.ones((1, 2)))


class TestMerge:
    def test_sharded_merge_equals_batch(self, tall):
        family = CountSketch(m=32, n=200)
        left = StreamingSketcher(family, columns=4, rng=9)
        right = StreamingSketcher(family, columns=4, rng=9)  # same seed
        left.update_rows(np.arange(0, 100), tall[:100])
        right.update_rows(np.arange(100, 200), tall[100:])
        combined = left.merge(right)
        assert np.allclose(combined.result(), left.sketch.apply(tall))
        assert combined.rows_seen == 200

    def test_merge_rejects_different_seeds(self):
        family = CountSketch(m=16, n=50)
        a = StreamingSketcher(family, columns=2, rng=1)
        b = StreamingSketcher(family, columns=2, rng=2)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_rejects_wrong_type(self):
        a = StreamingSketcher(CountSketch(m=8, n=20), columns=2, rng=0)
        with pytest.raises(TypeError):
            a.merge("not a sketcher")

    def test_merge_rejects_shape_mismatch(self):
        a = StreamingSketcher(CountSketch(m=8, n=20), columns=2, rng=0)
        b = StreamingSketcher(CountSketch(m=8, n=20), columns=3, rng=0)
        with pytest.raises(ValueError):
            a.merge(b)
