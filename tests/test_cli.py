"""Tests for the ``python -m repro.experiments`` command-line interface."""

import pytest

from repro.experiments.__main__ import main


class TestCli:
    def test_listing(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "E14" in out
        assert "claim:" in out

    def test_run_single(self, capsys):
        assert main(["E5", "--scale", "0.2", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "E5" in out
        assert "min_margin" in out

    def test_lowercase_id_accepted(self, capsys):
        assert main(["e5", "--scale", "0.2"]) == 0
        assert "E5" in capsys.readouterr().out

    def test_unknown_id_fails(self, capsys):
        assert main(["E99"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            main(["E5", "--scale", "0"])


class TestCliJson:
    def test_json_dir_written(self, tmp_path, capsys):
        assert main(["E5", "--scale", "0.2",
                     "--json-dir", str(tmp_path)]) == 0
        saved = tmp_path / "E5.json"
        assert saved.exists()
        import json

        payload = json.loads(saved.read_text())
        assert payload["experiment_id"] == "E5"
