"""Tests for the ``python -m repro.experiments`` command-line interface."""

import pytest

from repro.experiments.__main__ import main


class TestCli:
    def test_listing(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "E14" in out
        assert "claim:" in out

    def test_run_single(self, capsys):
        assert main(["E5", "--scale", "0.2", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "E5" in out
        assert "min_margin" in out

    def test_lowercase_id_accepted(self, capsys):
        assert main(["e5", "--scale", "0.2"]) == 0
        assert "E5" in capsys.readouterr().out

    def test_unknown_id_fails(self, capsys):
        assert main(["E99"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err

    @pytest.mark.parametrize("scale", ["0", "-1", "nan", "inf", "abc"])
    def test_bad_scale_is_a_usage_error(self, scale, capsys):
        # argparse validation: exit code 2 plus a usage message, never a
        # raw ValueError traceback.
        with pytest.raises(SystemExit) as excinfo:
            main(["E5", "--scale", scale])
        assert excinfo.value.code == 2
        assert "scale must be" in capsys.readouterr().err

    @pytest.mark.parametrize("workers", ["-1", "-4", "two"])
    def test_bad_workers_is_a_usage_error(self, workers, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["E5", "--scale", "0.2", "--workers", workers])
        assert excinfo.value.code == 2
        assert "workers must be" in capsys.readouterr().err


class TestCliJson:
    def test_json_dir_written(self, tmp_path, capsys):
        assert main(["E5", "--scale", "0.2",
                     "--json-dir", str(tmp_path)]) == 0
        saved = tmp_path / "E5.json"
        assert saved.exists()
        import json

        payload = json.loads(saved.read_text())
        assert payload["experiment_id"] == "E5"


class TestCliLedger:
    def test_ledger_written_and_summarizable(self, tmp_path, capsys):
        from repro.observe import read_events
        from repro.observe.__main__ import main as observe_main

        path = tmp_path / "run.jsonl"
        assert main(["E5", "--scale", "0.2", "--ledger", str(path)]) == 0
        capsys.readouterr()
        events = read_events(path)
        kinds = {event["kind"] for event in events}
        assert {"cli_start", "experiment_start", "experiment_end"} <= kinds
        assert observe_main(["summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "E5" in out and "Run overview" in out

    def test_ledger_does_not_change_results(self, tmp_path, capsys):
        assert main(["E5", "--scale", "0.2", "--seed", "3"]) == 0
        plain = capsys.readouterr().out
        assert main(["E5", "--scale", "0.2", "--seed", "3",
                     "--ledger", str(tmp_path / "run.jsonl")]) == 0
        with_ledger = capsys.readouterr().out

        def stable(text):
            return [line for line in text.splitlines()
                    if "completed in" not in line]

        assert stable(plain) == stable(with_ledger)

    def test_progress_lines_on_stderr(self, capsys):
        assert main(["E5", "--scale", "0.2", "--progress"]) == 0
        err = capsys.readouterr().err
        assert "[observe]" in err
        assert "E5 start" in err

    def test_summarize_missing_file_is_an_error(self, tmp_path, capsys):
        from repro.observe.__main__ import main as observe_main

        assert observe_main(["summarize", str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot read ledger" in capsys.readouterr().err
