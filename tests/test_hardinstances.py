"""Tests for repro.hardinstances (DBeta, mixtures, identity instances)."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardinstances.dbeta import DBeta
from repro.hardinstances.identity import PermutedIdentity, SpikedSubspace
from repro.hardinstances.mixtures import (
    MixtureInstance,
    section3_mixture,
    section5_level_count,
    section5_mixture,
)
from repro.linalg.subspace import is_isometry


class TestDBetaConstruction:
    def test_beta_from_reps(self):
        inst = DBeta(n=100, d=5, reps=4)
        assert inst.beta == pytest.approx(0.25)

    def test_from_beta_rounds(self):
        inst = DBeta.from_beta(n=100, d=5, beta=0.26)
        assert inst.reps == 4

    def test_from_beta_one(self):
        assert DBeta.from_beta(n=50, d=5, beta=1.0).reps == 1

    def test_from_beta_invalid(self):
        with pytest.raises(ValueError):
            DBeta.from_beta(n=50, d=5, beta=0.0)

    def test_support_exceeding_n_raises(self):
        with pytest.raises(ValueError):
            DBeta(n=10, d=5, reps=3)

    def test_name_contains_reps(self):
        assert "reps=2" in DBeta(n=100, d=5, reps=2).name


class TestDBetaSampling:
    @pytest.mark.parametrize("reps", [1, 2, 4])
    def test_isometry_with_distinct_rows(self, reps):
        inst = DBeta(n=200, d=6, reps=reps)
        u = inst.sample(0)
        assert is_isometry(u)

    def test_entries_have_magnitude_sqrt_beta(self):
        inst = DBeta(n=200, d=4, reps=4)
        u = inst.sample(1)
        nonzero = np.abs(u[u != 0])
        assert np.allclose(nonzero, 0.5)

    def test_column_support_size(self):
        inst = DBeta(n=300, d=5, reps=3)
        u = inst.sample(2)
        assert np.all(np.count_nonzero(u, axis=0) == 3)

    def test_deterministic(self):
        inst = DBeta(n=100, d=4, reps=2)
        assert np.allclose(inst.sample(9), inst.sample(9))

    def test_draw_consistent_with_u(self):
        inst = DBeta(n=150, d=4, reps=2)
        draw = inst.sample_draw(3)
        rebuilt = draw.v_matrix() @ draw.w_matrix()
        assert np.allclose(rebuilt, draw.u)

    def test_draw_metadata(self):
        inst = DBeta(n=150, d=4, reps=2)
        draw = inst.sample_draw(4)
        assert draw.n == 150
        assert draw.d == 4
        assert draw.reps == 2
        assert draw.beta == pytest.approx(0.5)
        assert draw.rows.shape == (8,)
        assert set(np.unique(draw.signs)) <= {-1.0, 1.0}

    def test_iid_rows_mode_allows_duplicates(self):
        # With n tiny and many rows, duplicates become likely.
        inst = DBeta(n=4, d=2, reps=2, distinct_rows=False)
        saw_duplicate = False
        for seed in range(50):
            rows = inst.sample_draw(seed).rows
            if len(set(rows.tolist())) < len(rows):
                saw_duplicate = True
                break
        assert saw_duplicate

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=20, deadline=None)
    def test_sketched_basis_fast_path(self, seed):
        inst = DBeta(n=120, d=4, reps=3)
        draw = inst.sample_draw(seed)
        rng = np.random.default_rng(seed + 1)
        pi = rng.standard_normal((10, 120))
        assert np.allclose(draw.sketched_basis(pi), pi @ draw.u)

    def test_sketched_basis_sparse_pi(self):
        inst = DBeta(n=80, d=3, reps=2)
        draw = inst.sample_draw(0)
        pi = sp.random(12, 80, density=0.2, random_state=0, format="csc")
        assert np.allclose(
            draw.sketched_basis(pi), pi.toarray() @ draw.u
        )


class TestMixture:
    def test_weights_default_uniform(self):
        comps = [DBeta(n=100, d=4, reps=1), DBeta(n=100, d=4, reps=2)]
        mix = MixtureInstance(comps)
        assert np.allclose(mix.weights, [0.5, 0.5])

    def test_mismatched_components_raise(self):
        with pytest.raises(ValueError):
            MixtureInstance([
                DBeta(n=100, d=4, reps=1),
                DBeta(n=100, d=5, reps=1),
            ])

    def test_bad_weights_raise(self):
        comps = [DBeta(n=100, d=4, reps=1), DBeta(n=100, d=4, reps=2)]
        with pytest.raises(ValueError):
            MixtureInstance(comps, weights=[0.9, 0.2])

    def test_empty_components_raise(self):
        with pytest.raises(ValueError):
            MixtureInstance([])

    def test_sampling_covers_components(self):
        comps = [DBeta(n=100, d=4, reps=1), DBeta(n=100, d=4, reps=2)]
        mix = MixtureInstance(comps)
        seen = {mix.sample_draw(seed).reps for seed in range(40)}
        assert seen == {1, 2}

    def test_degenerate_weights(self):
        comps = [DBeta(n=100, d=4, reps=1), DBeta(n=100, d=4, reps=2)]
        mix = MixtureInstance(comps, weights=[1.0, 0.0])
        assert all(mix.sample_draw(s).reps == 1 for s in range(10))


class TestSection3Mixture:
    def test_components(self):
        mix = section3_mixture(n=4096, d=8, epsilon=1 / 16)
        reps = sorted(c.reps for c in mix.components)
        assert reps == [1, 2]

    def test_epsilon_cap(self):
        with pytest.raises(ValueError):
            section3_mixture(n=4096, d=8, epsilon=0.2)


class TestSection5Mixture:
    def test_level_count(self):
        assert section5_level_count(1 / 32) == 2
        assert section5_level_count(1 / 64) == 3
        assert section5_level_count(1 / 8) == 1  # clamped

    def test_components_are_dyadic(self):
        mix = section5_mixture(n=8192, d=4, epsilon=1 / 64)
        reps = sorted(c.reps for c in mix.components)
        assert reps == [1, 2, 4, 8]

    def test_weights(self):
        mix = section5_mixture(n=8192, d=4, epsilon=1 / 64)
        w = mix.weights
        assert w[0] == pytest.approx(0.5)
        assert np.allclose(w[1:], 0.5 / 3)


class TestPermutedIdentity:
    def test_is_d1(self):
        inst = PermutedIdentity(n=100, d=6)
        assert inst.reps == 1
        assert is_isometry(inst.sample(0))

    def test_entries_are_pm1(self):
        u = PermutedIdentity(n=100, d=6).sample(1)
        nonzero = np.abs(u[u != 0])
        assert np.allclose(nonzero, 1.0)


class TestSpikedSubspace:
    def test_alpha_one_is_coherent(self):
        inst = SpikedSubspace(n=50, d=4, alpha=1.0)
        u = inst.sample(0)
        assert np.all(np.count_nonzero(u, axis=0) == 1)

    def test_alpha_zero_is_dense(self):
        inst = SpikedSubspace(n=50, d=4, alpha=0.0)
        u = inst.sample(1)
        assert is_isometry(u)
        assert np.count_nonzero(u) > 4 * 10

    def test_intermediate_alpha_isometry(self):
        u = SpikedSubspace(n=60, d=5, alpha=0.5).sample(2)
        assert is_isometry(u)

    def test_unstructured_flag(self):
        draw = SpikedSubspace(n=50, d=4, alpha=0.5).sample_draw(0)
        assert not draw.structured
        draw2 = SpikedSubspace(n=50, d=4, alpha=1.0).sample_draw(0)
        assert draw2.structured

    def test_alpha_out_of_range(self):
        with pytest.raises(ValueError):
            SpikedSubspace(n=50, d=4, alpha=1.5)
