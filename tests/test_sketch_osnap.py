"""Tests for repro.sketch.osnap."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketch.osnap import OSNAP


class TestConstruction:
    def test_basic(self):
        fam = OSNAP(m=32, n=100, s=4)
        assert fam.s == 4
        assert fam.variant == "uniform"

    def test_s_exceeding_m_raises(self):
        with pytest.raises(ValueError):
            OSNAP(m=3, n=10, s=4)

    def test_unknown_variant_raises(self):
        with pytest.raises(ValueError):
            OSNAP(m=8, n=10, s=2, variant="bogus")

    def test_block_requires_divisibility(self):
        with pytest.raises(ValueError):
            OSNAP(m=10, n=20, s=4, variant="block")

    def test_name_mentions_s_and_variant(self):
        assert "s=4" in OSNAP(m=8, n=10, s=4).name

    def test_with_m_preserves_s(self):
        fam = OSNAP(m=16, n=100, s=4).with_m(50)
        assert fam.s == 4
        assert fam.m == 50

    def test_with_m_block_rounds_to_multiple(self):
        fam = OSNAP(m=16, n=100, s=4, variant="block").with_m(50)
        assert fam.m % 4 == 0
        assert fam.m >= 50


class TestSampleUniform:
    @pytest.mark.parametrize("s", [1, 2, 4, 7])
    def test_exact_column_sparsity(self, s):
        sketch = OSNAP(m=32, n=100, s=s).sample(s)
        assert sketch.column_sparsity == s
        assert sketch.nnz == s * 100

    def test_values_are_pm_inv_sqrt_s(self):
        s = 4
        sketch = OSNAP(m=32, n=50, s=s).sample(0)
        data = np.abs(sketch.matrix.tocsc().data)
        assert np.allclose(data, 1.0 / np.sqrt(s))

    def test_unit_column_norms(self):
        sketch = OSNAP(m=32, n=50, s=4).sample(1)
        norms2 = np.asarray(
            sketch.matrix.multiply(sketch.matrix).sum(axis=0)
        ).ravel()
        assert np.allclose(norms2, 1.0)

    def test_rows_distinct_within_column(self):
        sketch = OSNAP(m=16, n=64, s=8).sample(2)
        csc = sketch.matrix.tocsc()
        for j in range(64):
            rows = csc.indices[csc.indptr[j]:csc.indptr[j + 1]]
            assert len(set(rows)) == 8

    def test_dense_regime_s_close_to_m(self):
        sketch = OSNAP(m=8, n=20, s=7).sample(3)
        assert sketch.column_sparsity == 7

    def test_s_equals_m(self):
        sketch = OSNAP(m=4, n=10, s=4).sample(4)
        assert sketch.column_sparsity == 4

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=15, deadline=None)
    def test_statistical_row_coverage(self, seed):
        sketch = OSNAP(m=8, n=40, s=2).sample(seed)
        coo = sketch.matrix.tocoo()
        assert coo.row.min() >= 0
        assert coo.row.max() < 8


class TestSampleBlock:
    def test_one_nonzero_per_block(self):
        s, m = 4, 32
        sketch = OSNAP(m=m, n=20, s=s, variant="block").sample(0)
        block = m // s
        csc = sketch.matrix.tocsc()
        for j in range(20):
            rows = sorted(csc.indices[csc.indptr[j]:csc.indptr[j + 1]])
            blocks = [r // block for r in rows]
            assert blocks == [0, 1, 2, 3]

    def test_countsketch_special_case(self):
        sketch = OSNAP(m=16, n=30, s=1, variant="block").sample(1)
        assert sketch.column_sparsity == 1
        data = sketch.matrix.tocsc().data
        assert set(np.unique(data)) <= {-1.0, 1.0}


class TestBounds:
    def test_recommended_m_positive(self):
        assert OSNAP.recommended_m(16, 0.1, 0.1) > 0

    def test_recommended_s_positive(self):
        assert OSNAP.recommended_s(16, 0.1, 0.1) >= 1

    def test_recommended_m_gamma_grows_with_gamma(self):
        small = OSNAP.recommended_m_gamma(16, 0.1, 0.1, gamma=0.1)
        large = OSNAP.recommended_m_gamma(16, 0.1, 0.1, gamma=1.0)
        assert large > small

    def test_gamma_must_be_positive(self):
        with pytest.raises(ValueError):
            OSNAP.recommended_m_gamma(16, 0.1, 0.1, gamma=0.0)
