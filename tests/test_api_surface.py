"""Direct tests for public API pieces otherwise only exercised
indirectly."""

import numpy as np
import pytest

import repro
from repro.experiments import registry
from repro.linalg import singular_interval_of_product
from repro.sketch import Sketch, SketchFamily


class TestSingularIntervalOfProduct:
    def test_diagonal_product(self):
        product = np.diag([0.5, 1.0, 2.0])
        lo, hi = singular_interval_of_product(product)
        assert lo == pytest.approx(0.5)
        assert hi == pytest.approx(2.0)

    def test_wide_product_reports_zero(self):
        product = np.ones((1, 3))
        lo, hi = singular_interval_of_product(product)
        assert lo == 0.0

    def test_empty_product_rejected(self):
        with pytest.raises(ValueError):
            singular_interval_of_product(np.empty((0, 0)))


class TestRunAll:
    def test_runs_registered_subset(self, monkeypatch):
        monkeypatch.setattr(registry, "experiment_ids",
                            lambda: ["E5", "E12"])
        results = registry.run_all(scale=0.15, rng=0)
        assert [r.experiment_id for r in results] == ["E5", "E12"]
        assert all(r.metrics for r in results)


class TestSketchFamilyContract:
    def test_family_is_abstract(self):
        with pytest.raises(TypeError):
            SketchFamily(m=4, n=4)

    def test_sketch_requires_matrix(self):
        with pytest.raises(ValueError):
            Sketch(np.ones(3))

    def test_sketch_repr(self):
        sketch = Sketch(np.eye(3))
        assert "Sketch" in repr(sketch)
        assert sketch.family is None

    def test_generic_with_m(self):
        from repro.sketch import GaussianSketch

        fam = GaussianSketch(m=8, n=16).with_m(32)
        assert fam.m == 32
        assert isinstance(fam, GaussianSketch)


class TestPackageMetadata:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_subpackages_exported(self):
        for name in ("apps", "core", "hardinstances", "linalg", "sketch",
                     "utils"):
            assert hasattr(repro, name)
