"""Tests for repro.utils.parallel and the determinism guarantees it gives.

Covers the three contract pillars of the trial engine:

* serial and parallel runs of the same seed are bit-identical;
* RNG child streams are order-robust (spawning neither reads from nor
  perturbs the parent stream);
* StreamingSketcher.merge is warning-free under
  ``-W error::scipy.sparse.SparseEfficiencyWarning``.
"""

import warnings

import numpy as np
import pytest
from scipy.sparse import SparseEfficiencyWarning

from repro.core.tester import distortion_samples, failure_estimate
from repro.hardinstances.dbeta import DBeta
from repro.sketch.countsketch import CountSketch
from repro.sketch.gaussian import GaussianSketch
from repro.sketch.streaming import StreamingSketcher
from repro.utils.parallel import (
    TrialExecutor,
    available_cpus,
    resolve_workers,
    run_trials,
)
from repro.utils.rng import as_generator, spawn, spawn_seeds
from repro.utils.stats import estimate_probability


def _first_uniform(seed):
    """Module-level trial fn so the process-pool backend can pickle it."""
    return float(np.random.default_rng(seed).random())


def _coin_flip(gen):
    """Module-level event fn (picklable) for estimate_probability."""
    return bool(gen.random() < 0.5)


class TestTrialExecutor:
    def test_serial_matches_parallel_bitwise(self):
        serial = TrialExecutor(workers=1).run(_first_uniform, 40, rng=3)
        parallel = TrialExecutor(workers=2).run(_first_uniform, 40, rng=3)
        assert serial == parallel  # exact float equality, element for element

    def test_chunk_size_does_not_change_results(self):
        base = run_trials(_first_uniform, 25, rng=1, workers=1)
        for chunk in (1, 3, 7, 25):
            assert run_trials(
                _first_uniform, 25, rng=1, workers=2, chunk_size=chunk
            ) == base

    def test_results_in_trial_order(self):
        seeds = spawn_seeds(5, 12)
        expected = [_first_uniform(s) for s in seeds]
        got = TrialExecutor(workers=2, chunk_size=5).run_seeded(
            _first_uniform, seeds
        )
        assert got == expected

    def test_workers_none_and_zero_mean_all_cpus(self):
        assert resolve_workers(None) >= 1
        assert resolve_workers(0) == resolve_workers(None)
        assert resolve_workers(3) == 3

    def test_default_workers_respect_scheduler_affinity(self):
        # In a cpuset-limited container, os.cpu_count() reports the
        # host's cores; the default worker count must use the affinity
        # mask instead, falling back only where the syscall is absent.
        import os

        assert resolve_workers(None) == available_cpus()
        if hasattr(os, "sched_getaffinity"):
            assert available_cpus() == len(os.sched_getaffinity(0))
        else:  # pragma: no cover - non-Linux fallback
            assert available_cpus() == (os.cpu_count() or 1)

    def test_affinity_fallback_when_syscall_fails(self, monkeypatch):
        import repro.utils.parallel as parallel_module

        def broken(pid):
            raise OSError("no affinity")

        monkeypatch.setattr(parallel_module.os, "sched_getaffinity",
                            broken, raising=False)
        assert parallel_module.available_cpus() == \
            (parallel_module.os.cpu_count() or 1)

    def test_invalid_arguments_raise(self):
        with pytest.raises(ValueError):
            TrialExecutor(workers=-1)
        with pytest.raises(ValueError):
            TrialExecutor(chunk_size=0)
        with pytest.raises(ValueError):
            TrialExecutor().run(_first_uniform, 0, rng=0)


class TestBitIdenticalTrialLoops:
    def test_failure_estimate(self):
        inst = DBeta(n=256, d=4, reps=1)
        fam = CountSketch(m=64, n=256)
        serial = failure_estimate(fam, inst, 0.25, trials=30, rng=7,
                                  workers=1)
        parallel = failure_estimate(fam, inst, 0.25, trials=30, rng=7,
                                    workers=2)
        assert serial == parallel
        assert serial.trials == 30

    def test_failure_estimate_fixed_sketch(self):
        inst = DBeta(n=128, d=4, reps=1)
        fam = GaussianSketch(m=200, n=128)
        serial = failure_estimate(fam, inst, 0.25, trials=12, rng=2,
                                  fresh_sketch=False, workers=1)
        parallel = failure_estimate(fam, inst, 0.25, trials=12, rng=2,
                                    fresh_sketch=False, workers=2)
        assert serial == parallel

    def test_distortion_samples(self):
        inst = DBeta(n=256, d=4, reps=1)
        fam = CountSketch(m=128, n=256)
        serial = distortion_samples(fam, inst, trials=20, rng=5, workers=1)
        parallel = distortion_samples(fam, inst, trials=20, rng=5, workers=2)
        assert np.array_equal(serial, parallel)  # bit-identical floats

    def test_estimate_probability(self):
        serial = estimate_probability(_coin_flip, trials=60, rng=11,
                                      workers=1)
        parallel = estimate_probability(_coin_flip, trials=60, rng=11,
                                        workers=2)
        assert serial == parallel


class TestSpawnOrderIndependence:
    def test_child_seed_ignores_parent_draws(self):
        undisturbed = as_generator(42)
        disturbed = as_generator(42)
        disturbed.random(size=1000)  # advance the parent stream
        a = spawn(undisturbed).integers(0, 10**9, size=8)
        b = spawn(disturbed).integers(0, 10**9, size=8)
        assert np.array_equal(a, b)

    def test_spawning_leaves_parent_stream_untouched(self):
        plain = as_generator(7)
        spawning = as_generator(7)
        for _ in range(5):
            spawn(spawning)
        assert np.array_equal(
            plain.random(size=16), spawning.random(size=16)
        )

    def test_spawn_seeds_depends_only_on_spawn_count(self):
        gen_a = as_generator(9)
        gen_b = as_generator(9)
        gen_b.integers(0, 100, size=50)
        first_a = spawn_seeds(gen_a, 3)
        first_b = spawn_seeds(gen_b, 3)
        for seq_a, seq_b in zip(first_a, first_b):
            assert np.array_equal(
                seq_a.generate_state(4), seq_b.generate_state(4)
            )
        # A later batch continues the spawn counter, never repeats.
        second_a = spawn_seeds(gen_a, 3)
        assert not np.array_equal(
            first_a[0].generate_state(4), second_a[0].generate_state(4)
        )


class TestStreamingMergeRegression:
    def test_merge_is_sparse_warning_free(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", SparseEfficiencyWarning)
            left = StreamingSketcher(CountSketch(m=32, n=200), columns=3,
                                     rng=7)
            right = StreamingSketcher(CountSketch(m=32, n=200), columns=3,
                                      rng=7)
            rows = np.arange(10)
            data = np.arange(30, dtype=float).reshape(10, 3)
            left.update_rows(rows, data)
            right.update_rows(rows + 10, data)
            merged = left.merge(right).result()
        assert merged.shape == (32, 3)

    def test_merge_rejects_family_mismatch(self):
        a = StreamingSketcher(CountSketch(m=16, n=64), columns=2, rng=0)
        b = StreamingSketcher(GaussianSketch(m=16, n=64), columns=2, rng=0)
        with pytest.raises(ValueError, match="families"):
            a.merge(b)

    def test_merge_rejects_shape_mismatch(self):
        a = StreamingSketcher(CountSketch(m=16, n=64), columns=2, rng=0)
        b = StreamingSketcher(CountSketch(m=32, n=64), columns=2, rng=0)
        with pytest.raises(ValueError, match="shapes"):
            a.merge(b)

    def test_merge_rejects_different_seeds(self):
        a = StreamingSketcher(CountSketch(m=16, n=64), columns=2, rng=0)
        b = StreamingSketcher(CountSketch(m=16, n=64), columns=2, rng=1)
        with pytest.raises(ValueError, match="same family and seed"):
            a.merge(b)
