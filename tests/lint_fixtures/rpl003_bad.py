# Fixture: triggers RPL003 — .todense() returns np.matrix.
import numpy as np
import scipy.sparse as sp


def densify_wrong(n):
    matrix = sp.eye(n, format="csr")
    return np.asarray(matrix.todense())
