# Fixture: clean counterpart to rpl103_bad.py — partitioning delegated
# to the sanctioned primitive, which tiles exactly under uneven division.
from repro.utils.parallel import shard_spans


def slice_for(total, shards, shard_index):
    spans = shard_spans(total, shards)
    return spans[shard_index]
