# Fixture: triggers RPL103 — hand-rolled shard/span arithmetic, the
# PR 7 overlap bug: uneven division makes ad-hoc spans overlap or gap.
# Linted under a virtual src/repro/... library path by tests/test_lint.py.


def slice_for(total, shards, shard_index):
    per_shard = total // shards
    start = shard_index * per_shard
    stop = start + per_shard
    if shard_index == shards - 1:
        stop = total
    return start, stop
