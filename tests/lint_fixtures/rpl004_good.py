# Fixture: clean counterpart to rpl004_bad.py — structural comparison on
# canonical CSC arrays instead of sparse operator comparison.
import numpy as np
import scipy.sparse as sp


def compare_right(a, b):
    left = sp.csc_matrix(a)
    right = sp.csc_matrix(b)
    left.sum_duplicates()
    right.sum_duplicates()
    return (
        left.shape == right.shape
        and np.array_equal(left.indptr, right.indptr)
        and np.array_equal(left.indices, right.indices)
        and np.array_equal(left.data, right.data)
    )
