# Fixture: triggers RPL006 — exact equality against a non-integral
# float literal.
def check_threshold(epsilon, delta):
    if epsilon == 0.1:
        return True
    return delta != 0.25
