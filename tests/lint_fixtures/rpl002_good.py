# Fixture: clean counterpart to rpl002_bad.py — order-robust spawning.
import numpy as np

from repro.utils.rng import spawn_many, spawn_seeds


def spawn_workers_right(parent, count):
    return spawn_many(parent, count)


def spawn_seeds_right(parent, count):
    seqs = spawn_seeds(parent, count)
    return [np.random.default_rng(seq) for seq in seqs]
