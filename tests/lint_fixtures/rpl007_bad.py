# Fixture: triggers RPL007 — eager sample() without an explicit lazy=
# at a trial-engine call site.  Linted under a virtual path like
# src/repro/core/fake_tester.py.
from repro.sketch.base import sample_sketch
from repro.utils.rng import spawn


def run_trial(family, instance, rng):
    sketch = family.sample(spawn(rng))
    helper = sample_sketch(family, spawn(rng))
    return sketch, helper
