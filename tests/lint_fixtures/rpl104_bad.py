# Fixture: triggers RPL104 — bookkeeping counters dodging the
# NON_RESULT_COUNTER_PREFIXES naming contract.
# Linted under a virtual src/repro/... library path by tests/test_lint.py.


def record(metrics):
    metrics.add_count("count_cache_hits")
    metrics.add_count("hits_cache")
    metrics.increment("local_shard_retries")
