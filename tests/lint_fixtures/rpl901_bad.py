# Fixture: triggers RPL901 — the directive suppresses nothing (the
# .todense() it once silenced was fixed) and now only hides regressions.
# Linted under a virtual src/repro/... library path by tests/test_lint.py.
import numpy as np


def already_fixed(matrix):
    return np.asarray(matrix.toarray())  # repro-lint: disable=RPL003
