# Fixture: triggers RPL002 — the PR 1 bug: child seeds drawn off the
# parent's stream make trial results depend on execution order.
import numpy as np


def spawn_workers_wrong(parent, count):
    children = [
        np.random.default_rng(parent.integers(0, 2**63 - 1))
        for _ in range(count)
    ]
    return children


def spawn_via_variable(parent):
    seed_material = [int(x) for x in parent.integers(0, 2**32 - 1, size=4)]
    return np.random.SeedSequence(seed_material)
