# Fixture: clean counterpart to rpl008_bad.py — every stream is seeded
# or derived.
import numpy as np
from hypothesis import strategies as st

from repro.utils.rng import spawn


def test_something_reproducible():
    gen = np.random.default_rng(2024)
    child = spawn(gen)
    seq = np.random.SeedSequence(7)
    strategy = st.randoms(use_true_random=False)
    return gen, child, seq, strategy
