# Fixture: clean counterpart to rpl005_bad.py — assembly hoisted out of
# the loop; the loop body works on pre-densified data.
import numpy as np
import scipy.sparse as sp


def hoisted_assembly(rows, cols, values, m, n, reps):
    pi = sp.coo_matrix((values, (rows, cols)), shape=(m, n))
    dense = pi.toarray()
    totals = []
    for _ in range(reps):
        totals.append(float(dense.sum()))
    return np.asarray(totals)
