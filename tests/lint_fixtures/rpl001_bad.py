# Fixture: triggers RPL001 (global RNG use in library code).
# Linted under a virtual src/repro/... path by tests/test_lint.py.
import random

import numpy as np


def noisy_library_function(n):
    np.random.seed(1234)
    values = np.random.normal(size=n)
    jitter = random.random()
    fresh = np.random.default_rng()
    return values, jitter, fresh
