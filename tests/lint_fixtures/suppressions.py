# Fixture: exercises every suppression-directive form against RPL003.
import numpy as np
import scipy.sparse as sp


def same_line(matrix):
    return matrix.todense()  # repro-lint: disable=RPL003


def next_line(matrix):
    # repro-lint: disable-next-line=RPL003
    return matrix.todense()


def wrong_code(matrix):
    return matrix.todense()  # repro-lint: disable=RPL001


def unsuppressed(matrix):
    return np.asarray(matrix.todense())


def blanket(matrix):
    return matrix.todense()  # repro-lint: disable
