# Fixture: triggers RPL105 — `batch` used computationally with no
# identity-case guard, so batch=None/1 never reaches the serial path.
# Linted under a virtual src/repro/core/... path by tests/test_lint.py.


def run_batched(family, instance, trials, batch):
    chunks = trials // batch
    leftover = trials - chunks * batch
    return chunks, leftover
