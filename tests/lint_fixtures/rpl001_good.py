# Fixture: clean counterpart to rpl001_bad.py — no RPL001 violations.
import numpy as np

from repro.utils.rng import as_generator


def quiet_library_function(n, rng=None):
    gen = as_generator(rng)
    seeded = np.random.default_rng(1234)
    return gen.normal(size=n), seeded.normal(size=n)
