# Fixture: triggers RPL101 — lenient JSON emission in a result-IO
# module: no allow_nan=False, no numpy-safe default=/to_builtin payload.
# Linted under a virtual src/repro/cache/... path by tests/test_lint.py.
import json


def save_result(path, payload):
    text = json.dumps(payload, sort_keys=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
    return text
