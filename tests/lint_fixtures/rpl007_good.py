# Fixture: clean counterpart to rpl007_bad.py — lazy= chosen explicitly
# either way, and super().sample() forwarding stays exempt.
from repro.sketch.base import SketchFamily, sample_sketch
from repro.utils.rng import spawn


def run_trial(family, instance, rng):
    lazy_sketch = family.sample(spawn(rng), lazy=True)
    eager_sketch = sample_sketch(family, spawn(rng), lazy=False)
    return lazy_sketch, eager_sketch


class ForwardingFamily(SketchFamily):
    def sample(self, rng=None, lazy=False):
        return super().sample(rng)
