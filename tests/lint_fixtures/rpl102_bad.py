# Fixture: triggers RPL102 — `batch` shapes the probe result but never
# reaches the cache spec, so batched and serial runs collide on one key.
# Linted under a virtual src/repro/cache/... path by tests/test_lint.py.


def cached_estimate(probe_cache, family, instance, trials, batch):
    spec = {"probe": "failure_estimate", "trials": trials}
    hit = probe_cache.get(spec)
    if hit is not None:
        return hit
    value = run_probe(family, instance, trials, batch)
    probe_cache.put(spec, value)
    return value
