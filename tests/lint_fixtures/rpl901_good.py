# Fixture: clean counterpart to rpl901_bad.py — the directive earns its
# keep by suppressing a real RPL003 on the same line.


def legacy_densify(matrix):
    return matrix.todense()  # repro-lint: disable=RPL003
