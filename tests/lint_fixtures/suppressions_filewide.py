# Fixture: file-wide suppression silences RPL003 everywhere in the file
# but leaves other rules active.
# repro-lint: disable-file=RPL003
import scipy.sparse as sp


def first(matrix):
    return matrix.todense()


def second(matrix):
    dense = matrix.todense()
    return sp.csr_matrix(dense) != sp.csr_matrix(dense)
