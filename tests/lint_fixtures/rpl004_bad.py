# Fixture: triggers RPL004 — == / != on sparse operands densifies or
# yields a sparse boolean (the StreamingSketcher.merge pitfall).
import scipy.sparse as sp


def compare_wrong(a, b):
    left = sp.csr_matrix(a)
    right = sp.csr_matrix(b)
    if (left != right).nnz:
        return False
    return left.tocsc() == right.tocsc()
