# Fixture: clean counterpart to rpl006_bad.py — tolerance-based
# comparison, and exact comparison against integral floats (which are
# representable) stays allowed.
import math


def check_threshold(epsilon, delta):
    if math.isclose(epsilon, 0.1, rel_tol=1e-12):
        return True
    if delta == 0.0:
        return False
    return delta >= 0.25
