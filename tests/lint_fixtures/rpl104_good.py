# Fixture: clean counterpart to rpl104_bad.py — bookkeeping counters
# carry their canonical prefix; plain result counters stay unprefixed.


def record(metrics):
    metrics.add_count("cache_hits")
    metrics.add_count("trials")
    metrics.increment("shard_retries")
