# Fixture: clean counterpart to rpl101_bad.py — every emit site passes
# allow_nan=False and handles numpy payloads (default=json_default or a
# to_builtin(...) wrapper), so NaN tokens fail at the writer.
import json

from repro.utils.serialization import json_default, to_builtin


def save_result(path, payload):
    text = json.dumps(payload, sort_keys=True, allow_nan=False,
                      default=json_default)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_builtin(payload), handle, allow_nan=False)
    return text
