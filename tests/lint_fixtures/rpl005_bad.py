# Fixture: triggers RPL005 — sparse assembly / densification inside a
# loop.  Linted under a virtual hot-module path (src/repro/sketch/...).
import numpy as np
import scipy.sparse as sp


def per_trial_assembly(draws, m, n):
    totals = []
    for rows, cols, values in draws:
        pi = sp.coo_matrix((values, (rows, cols)), shape=(m, n))
        totals.append(float(pi.toarray().sum()))
    return np.asarray(totals)
