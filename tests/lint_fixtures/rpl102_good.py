# Fixture: clean counterpart to rpl102_bad.py — every result-shaping
# parameter appears in the spec payload, so distinct configurations get
# distinct cache keys.


def cached_estimate(probe_cache, family, instance, trials, batch):
    spec = {"probe": "failure_estimate", "trials": trials, "batch": batch}
    hit = probe_cache.get(spec)
    if hit is not None:
        return hit
    value = run_probe(family, instance, trials, batch=batch)
    probe_cache.put(spec, value)
    return value
