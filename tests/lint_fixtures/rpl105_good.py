# Fixture: clean counterpart to rpl105_bad.py — the identity cases are
# normalized before any arithmetic, and shard= is purely forwarded.


def run_batched(family, instance, trials, batch=None, shard=None):
    if batch in (None, 1):
        return serial_run(family, instance, trials, shard=shard)
    chunks = trials // batch
    return batched_run(family, instance, chunks, batch, shard=shard)
