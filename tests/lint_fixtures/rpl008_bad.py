# Fixture: triggers RPL008 — unseeded randomness in a test file.
# Linted under a virtual tests/ path.
import random

import numpy as np
from hypothesis import strategies as st


def test_something_unreproducible():
    gen = np.random.default_rng()
    noise = random.random()
    seq = np.random.SeedSequence()
    strategy = st.randoms(use_true_random=True)
    return gen, noise, seq, strategy
