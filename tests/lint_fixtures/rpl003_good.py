# Fixture: clean counterpart to rpl003_bad.py — .toarray() is fine.
import numpy as np
import scipy.sparse as sp


def densify_right(n):
    matrix = sp.eye(n, format="csr")
    return np.asarray(matrix.toarray())
