"""Tests for repro.core.witness (the executable Lemma 4)."""

import numpy as np
import pytest

from repro.core.witness import (
    escape_probability,
    find_large_inner_product,
    lemma4_witness,
    witness_vector,
)
from repro.hardinstances.dbeta import DBeta, HardDraw


def planted(case, lam, epsilon, n=128, d=4, seed=0):
    """Small planted (pi, draw, p, q) with a prescribed inner product."""
    rng = np.random.default_rng(seed)
    reps = 1 if case == "distinct" else 2
    target = lam * epsilon * reps
    alpha = np.sqrt((1.0 + target) / 2.0)
    gamma = np.sqrt((1.0 - target) / 2.0)
    m = 4 * d * reps + 8
    pi = np.zeros((m, n))
    pi[0, 0], pi[1, 0] = alpha, gamma
    pi[0, 1], pi[1, 1] = alpha, -gamma
    for j in range(2, reps * d + 2):
        pi[j, j] = 1.0
    count = reps * d
    rows = np.arange(2, count + 2)
    if case == "distinct":
        rows = rows.copy()
        rows[0], rows[1] = 0, 1
        p, q = 0, 1
    else:
        rows = rows.copy()
        rows[0], rows[1] = 0, 1  # both in block 0
        p, q = 0, 1
    signs = rng.choice((-1.0, 1.0), size=count)
    draw = HardDraw(u=np.zeros((n, d)), rows=rows, signs=signs, reps=reps)
    return pi, draw, p, q


class TestWitnessVector:
    def test_distinct_blocks(self):
        u = witness_vector(0, 3, reps=1, d=4)
        assert np.count_nonzero(u) == 2
        assert np.linalg.norm(u) == pytest.approx(1.0)

    def test_same_block(self):
        u = witness_vector(0, 1, reps=2, d=4)
        assert np.count_nonzero(u) == 1
        assert np.linalg.norm(u) == pytest.approx(1.0)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            witness_vector(0, 10, reps=1, d=4)


class TestEscapeProbability:
    def test_distinct_large_lambda_escapes(self):
        pi, draw, p, q = planted("distinct", lam=5.0, epsilon=0.05)
        est = escape_probability(pi, draw, p, q, 0.05)
        assert est.point >= 0.25

    def test_same_block_large_lambda_escapes(self):
        pi, draw, p, q = planted("same", lam=5.0, epsilon=0.05)
        est = escape_probability(pi, draw, p, q, 0.05)
        assert est.point >= 0.25

    def test_tiny_lambda_does_not_escape(self):
        pi, draw, p, q = planted("distinct", lam=0.5, epsilon=0.05)
        est = escape_probability(pi, draw, p, q, 0.05)
        assert est.point == 0.0

    def test_exact_enumeration_count(self):
        pi, draw, p, q = planted("distinct", lam=3.0, epsilon=0.05)
        est = escape_probability(pi, draw, p, q, 0.05)
        # reps=1, two blocks of size 1: 2 signs => 4 exact outcomes.
        assert est.trials == 4

    def test_monte_carlo_path_for_many_signs(self):
        inst = DBeta(n=512, d=2, reps=16)
        draw = inst.sample_draw(0)
        pi = np.random.default_rng(1).standard_normal((32, 512)) / 6.0
        est = escape_probability(pi, draw, 0, 16, 0.05, trials=128, rng=2)
        assert est.trials == 128


class TestFindLargeInnerProduct:
    def test_finds_planted_pair(self):
        pi, draw, p, q = planted("distinct", lam=8.0, epsilon=0.05)
        found = find_large_inner_product(pi, draw, threshold=0.3)
        assert found is not None
        fp, fq, value = found
        assert {fp, fq} == {p, q}
        assert abs(value) == pytest.approx(0.4, abs=1e-9)

    def test_returns_none_below_threshold(self):
        pi, draw, _, _ = planted("distinct", lam=2.5, epsilon=0.05)
        assert find_large_inner_product(pi, draw, threshold=0.9) is None


class TestLemma4Witness:
    def test_full_pipeline(self):
        pi, draw, p, q = planted("distinct", lam=8.0, epsilon=0.05)
        report = lemma4_witness(pi, draw, 0.05, lam=8.0)
        assert report is not None
        assert {report.p, report.q} == {p, q}
        assert report.escape.point >= 0.25
        assert report.meets_lemma4_bound
        assert np.linalg.norm(report.u) == pytest.approx(1.0)

    def test_none_when_no_large_pair(self):
        inst = DBeta(n=256, d=3, reps=1)
        draw = inst.sample_draw(0)
        pi = np.eye(256)  # perfectly orthogonal columns
        assert lemma4_witness(pi, draw, 0.05) is None

    def test_lambda_validation(self):
        pi, draw, _, _ = planted("distinct", lam=8.0, epsilon=0.05)
        with pytest.raises(ValueError):
            lemma4_witness(pi, draw, 0.05, lam=2.0)
