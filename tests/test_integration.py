"""Integration tests spanning hard instances, sketches and certification.

These tests execute the paper's argument pipelines end to end on concrete
matrices: Theorem 8's collision argument, Theorem 9's Algorithm-1-plus-
Lemma-4 pipeline, the Remark 10 tightness example, and the Section 5 mass
accounting — each as one scenario with all modules cooperating.
"""


import pytest

from repro.core.bounds import theorem8_lower_bound
from repro.core.certify import certify
from repro.core.collisions import (
    birthday_collision_probability,
    has_bucket_collision,
)
from repro.core.tester import failure_estimate, minimal_m
from repro.core.witness import lemma4_witness
from repro.hardinstances.dbeta import DBeta
from repro.hardinstances.mixtures import section3_mixture, section5_mixture
from repro.linalg.distortion import distortion_of_product
from repro.sketch.countsketch import CountSketch
from repro.sketch.gaussian import GaussianSketch
from repro.sketch.hadamard_block import HadamardBlockSketch
from repro.sketch.osnap import OSNAP
from repro.utils.rng import spawn, as_generator


class TestTheorem8Pipeline:
    """Hard mixture -> CountSketch -> threshold near the birthday scale."""

    def test_threshold_between_bounds(self):
        d, eps, delta = 6, 1 / 16, 0.2
        n = 4096
        inst = section3_mixture(n=n, d=d, epsilon=eps)
        fam = CountSketch(m=8, n=n)
        search = minimal_m(fam, inst, eps, delta, trials=60, m_min=8, rng=0)
        assert search.found
        q = d * 2  # reps = 1/(8 eps) = 2
        # Lower anchor: collisions alone force roughly q^2 buckets.
        assert search.m_star > q * (q - 1) / 8
        # Upper anchor: the classical upper bound (constant 2).
        assert search.m_star < CountSketch.recommended_m(d, eps, delta)

    def test_failure_caused_by_collision(self):
        """On D_{8eps} draws, embedding failures coincide with bucket
        collisions (Lemma 7's dichotomy)."""
        eps = 1 / 16
        n, d = 2048, 6
        inst = DBeta(n=n, d=d, reps=2)
        fam = CountSketch(m=256, n=n)
        rng = as_generator(1)
        agree = 0
        total = 40
        for _ in range(total):
            sketch = fam.sample(spawn(rng))
            draw = inst.sample_draw(spawn(rng))
            failed = distortion_of_product(
                draw.sketched_basis(sketch.matrix)
            ) > eps
            collided = has_bucket_collision(
                sketch.matrix, draw.rows, 1 - eps, 1 + eps
            )
            if failed == collided:
                agree += 1
        assert agree >= total - 2


class TestTheorem9Pipeline:
    """Abundant Pi below d^2 rows is refuted via Algorithm 1 + Lemma 4."""

    def test_sub_d2_hadamard_is_refuted(self):
        eps = 1 / 32
        n, d = 2048, 16
        fam = HadamardBlockSketch(m=64, n=n, block_order=4)  # m << d^2
        pi = fam.sample(0).matrix
        inst = DBeta(n=n, d=d, reps=1)
        # 240 trials keep the Monte-Carlo noise (~0.02 sd at the ~0.14
        # true rate) well clear of the 0.1 threshold for any seed path.
        cert = certify(pi, inst, eps, delta=0.1, trials=240,
                       strategy="algorithm1", rng=1)
        # The witness pipeline alone detects failure often enough to
        # refute at delta = 0.1.
        assert cert.failure.point > 0.1
        assert cert.witness is not None
        assert cert.witness.escape.point >= 0.25

    def test_witness_agrees_with_svd(self):
        eps = 1 / 32
        n, d = 2048, 16
        fam = HadamardBlockSketch(m=64, n=n, block_order=4)
        pi = fam.sample(0).matrix
        inst = DBeta(n=n, d=d, reps=1)
        svd = certify(pi, inst, eps, delta=0.1, trials=40, rng=2)
        alg = certify(pi, inst, eps, delta=0.1, trials=40,
                      strategy="algorithm1", rng=2)
        # Witness detection is sound: it cannot exceed the SVD rate by
        # more than Monte-Carlo noise.
        assert alg.failure.point <= svd.failure.point + 0.15


class TestRemark10Tightness:
    def test_large_m_embeds_small_m_fails(self):
        eps = 1 / 16
        n, d = 2048, 8
        inst = DBeta(n=n, d=d, reps=1)
        big = HadamardBlockSketch(m=8 * d * d, n=n, block_order=2)
        small = HadamardBlockSketch(m=2 * d, n=n, block_order=2)
        fail_big = failure_estimate(big, inst, eps, trials=40, rng=0)
        fail_small = failure_estimate(small, inst, eps, trials=40, rng=1)
        assert fail_big.point < 0.2
        assert fail_small.point > 0.6

    def test_failure_tracks_birthday(self):
        eps = 1 / 16
        n, d = 2048, 8
        inst = DBeta(n=n, d=d, reps=1)
        m = 2 * d * d
        fam = HadamardBlockSketch(m=m, n=n, block_order=2)
        est = failure_estimate(fam, inst, eps, trials=120, rng=2)
        predicted = birthday_collision_probability(d, m)
        assert abs(est.point - predicted) < 0.15


class TestCrossFamilyConsistency:
    """All oblivious families succeed on easy instances at proper m."""

    @pytest.mark.parametrize("family_cls,kwargs", [
        (CountSketch, {}),
        (OSNAP, {"s": 4}),
        (GaussianSketch, {}),
    ])
    def test_family_succeeds_at_recommended_m(self, family_cls, kwargs):
        d, eps, delta = 4, 0.25, 0.25
        n = 1024
        m = min(n, family_cls.recommended_m(d, eps, delta)) \
            if hasattr(family_cls, "recommended_m") else 512
        fam = family_cls(m=max(m, kwargs.get("s", 1)), n=n, **kwargs)
        inst = DBeta(n=n, d=d, reps=1)
        est = failure_estimate(fam, inst, eps, trials=30, rng=0)
        assert est.point <= 2 * delta

    def test_theorem8_formula_anchors_the_search(self):
        # The closed-form lower bound with constant 1/256 (the birthday
        # constant for q = d/(8 eps) throws) sits below the empirical
        # threshold, and the upper-bound formula above it.
        d, eps, delta = 6, 1 / 16, 0.2
        n = 4096
        inst = section3_mixture(n=n, d=d, epsilon=eps)
        search = minimal_m(
            CountSketch(m=8, n=n), inst, eps, delta, trials=60,
            m_min=8, rng=3,
        )
        lower = theorem8_lower_bound(d, eps, delta, constant=1 / 256)
        assert lower * 0.3 < search.m_star


class TestSection5MixtureBehaviour:
    def test_osnap_fails_on_mixture_at_small_m(self):
        eps = 1 / 32
        d = 8
        n = 4096
        inst = section5_mixture(n=n, d=d, epsilon=eps)
        fam = OSNAP(m=32, n=n, s=3)
        est = failure_estimate(fam, inst, eps, trials=30, rng=0)
        assert est.point > 0.5

    def test_witness_extraction_from_failing_osnap(self):
        eps = 1 / 32
        n, d = 2048, 8
        inst = DBeta(n=n, d=d, reps=1)
        pi = OSNAP(m=24, n=n, s=2).sample(0).matrix
        rng = as_generator(5)
        found = 0
        for seed in range(20):
            draw = inst.sample_draw(spawn(rng))
            report = lemma4_witness(pi, draw, eps, trials=256,
                                    rng=spawn(rng))
            if report is not None and report.escape.point >= 0.25:
                found += 1
        assert found >= 3
