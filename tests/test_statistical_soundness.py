"""Statistical soundness of the measurement substrate itself.

These tests validate the *instruments* the experiments rely on: Wilson
interval coverage, mixture sampling proportions, minimal-m estimator
location, and seed-reproducibility of whole experiments.
"""

import numpy as np
import pytest

from repro.core.collisions import birthday_collision_probability
from repro.core.tester import failure_estimate, minimal_m
from repro.experiments.registry import run_experiment
from repro.hardinstances.dbeta import DBeta
from repro.hardinstances.mixtures import MixtureInstance
from repro.sketch.countsketch import CountSketch
from repro.utils.rng import as_generator, spawn
from repro.utils.stats import wilson_interval


class TestWilsonCoverage:
    @pytest.mark.parametrize("p_true", [0.05, 0.3, 0.7])
    def test_coverage_near_nominal(self, p_true):
        """The 95% Wilson interval covers the true p at ~95% rate."""
        rng = np.random.default_rng(hash(p_true) % 2**32)
        trials_per_interval = 60
        intervals = 400
        covered = 0
        for _ in range(intervals):
            successes = rng.binomial(trials_per_interval, p_true)
            lo, hi = wilson_interval(successes, trials_per_interval)
            covered += int(lo <= p_true <= hi)
        coverage = covered / intervals
        assert coverage >= 0.90  # generous slack below the nominal 0.95


class TestMixtureProportions:
    def test_component_frequencies_match_weights(self):
        comps = [DBeta(n=128, d=4, reps=1), DBeta(n=128, d=4, reps=2),
                 DBeta(n=128, d=4, reps=4)]
        weights = [0.5, 0.3, 0.2]
        mix = MixtureInstance(comps, weights)
        rng = as_generator(0)
        counts = {1: 0, 2: 0, 4: 0}
        draws = 600
        for _ in range(draws):
            counts[mix.sample_draw(spawn(rng)).reps] += 1
        for reps, weight in zip((1, 2, 4), weights):
            assert counts[reps] / draws == pytest.approx(weight, abs=0.07)


class TestFailureEstimatorCalibration:
    def test_estimate_matches_birthday_theory(self):
        """The estimator's point value agrees with the closed form it is
        supposed to be measuring (CountSketch on D_1: pure birthday)."""
        d, m, n = 8, 128, 1024
        inst = DBeta(n=n, d=d, reps=1)
        fam = CountSketch(m=m, n=n)
        est = failure_estimate(fam, inst, 0.25, trials=400, rng=0)
        predicted = birthday_collision_probability(d, m)
        assert est.point == pytest.approx(predicted, abs=0.07)

    def test_minimal_m_located_at_birthday_threshold(self):
        d, n, delta = 8, 1024, 0.3
        inst = DBeta(n=n, d=d, reps=1)
        fam = CountSketch(m=4, n=n)
        search = minimal_m(fam, inst, 0.25, delta, trials=200, m_min=4,
                           rng=1)
        # Invert the birthday formula: threshold where P = delta.
        lo = None
        for m in range(4, 4096):
            if birthday_collision_probability(d, m) <= delta:
                lo = m
                break
        assert search.found
        assert 0.5 * lo <= search.m_star <= 2.0 * lo


class TestSeedReproducibility:
    @pytest.mark.parametrize("eid", ["E5", "E6", "E12"])
    def test_experiments_deterministic(self, eid):
        """Cheap experiments produce identical metrics for equal seeds."""
        a = run_experiment(eid, scale=0.15, rng=123).metrics
        b = run_experiment(eid, scale=0.15, rng=123).metrics
        assert a == b

    def test_different_seeds_change_monte_carlo_outcomes(self):
        """Distinct seeds drive genuinely different randomness (guards
        against accidentally sharing a stream across trials)."""
        d, n = 8, 512
        inst = DBeta(n=n, d=d, reps=1)
        fam = CountSketch(m=96, n=n)
        values = {
            failure_estimate(fam, inst, 0.25, trials=60, rng=seed).successes
            for seed in range(8)
        }
        assert len(values) >= 3
