"""Tests for Gaussian, SparseJL, SRHT, HadamardBlock and RowSampling."""

import numpy as np
import pytest

from repro.linalg.distortion import distortion
from repro.linalg.gram import column_norms
from repro.linalg.subspace import random_subspace
from repro.sketch.gaussian import GaussianSketch
from repro.sketch.hadamard_block import (
    HadamardBlockSketch,
    block_hadamard_matrix,
)
from repro.sketch.row_sampling import RowSampling
from repro.sketch.sparse_jl import SparseJL
from repro.sketch.srht import SRHT


class TestGaussian:
    def test_shape_and_scale(self):
        sketch = GaussianSketch(m=100, n=50).sample(0)
        assert sketch.shape == (100, 50)
        # Entries ~ N(0, 1/m): empirical std close to 1/sqrt(m).
        assert np.std(sketch.matrix) == pytest.approx(0.1, rel=0.1)

    def test_embeds_random_subspace(self):
        n, d, eps = 256, 4, 0.25
        m = GaussianSketch.recommended_m(d, eps, 0.1)
        fam = GaussianSketch(m=m, n=n)
        u = random_subspace(n, d, rng=0)
        assert distortion(fam.sample(1).matrix, u) <= eps

    def test_recommended_m(self):
        assert GaussianSketch.recommended_m(10, 0.5, 0.5) >= 10


class TestSparseJL:
    def test_density_parameter(self):
        fam = SparseJL(m=64, n=128, q=0.25)
        assert fam.q == pytest.approx(0.25)
        assert fam.expected_column_sparsity == pytest.approx(16.0)

    def test_sparse_path_density(self):
        fam = SparseJL(m=100, n=100, q=0.1)
        sketch = fam.sample(0)
        observed = sketch.nnz / (100 * 100)
        assert observed == pytest.approx(0.1, abs=0.03)

    def test_dense_path(self):
        fam = SparseJL(m=32, n=32, q=1.0)
        sketch = fam.sample(1)
        assert sketch.nnz == 32 * 32
        assert isinstance(sketch.matrix, np.ndarray)

    def test_entry_variance_one_over_m(self):
        m = 64
        for q in (0.2, 1.0):
            sketch = SparseJL(m=m, n=200, q=q).sample(2)
            dense = sketch.dense()
            assert np.var(dense) == pytest.approx(1.0 / m, rel=0.15)

    def test_name(self):
        assert "q=0.5" in SparseJL(m=4, n=4, q=0.5).name

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            SparseJL(m=4, n=4, q=0.0)


class TestSRHT:
    def test_requires_power_of_two_n(self):
        with pytest.raises(ValueError):
            SRHT(m=8, n=100)

    def test_m_exceeding_n_raises(self):
        with pytest.raises(ValueError):
            SRHT(m=256, n=128)

    def test_fast_apply_matches_dense(self):
        sketch = SRHT(m=16, n=64).sample(0)
        x = np.random.default_rng(1).standard_normal((64, 3))
        assert np.allclose(sketch.apply(x), sketch.matrix @ x)

    def test_rows_have_unit_norm_columns_in_expectation(self):
        sketch = SRHT(m=64, n=64).sample(2)
        # m = n: the full randomized Hadamard is orthonormal.
        gram = sketch.matrix.T @ sketch.matrix
        assert np.allclose(gram, np.eye(64), atol=1e-8)

    def test_embeds_random_subspace(self):
        n, d, eps = 512, 4, 0.3
        m = min(n, SRHT.recommended_m(d, eps, 0.1))
        u = random_subspace(n, d, rng=3)
        sketch = SRHT(m=m, n=n).sample(4)
        assert distortion(sketch.matrix, u) <= eps

    def test_apply_cost_is_nlogn(self):
        sketch = SRHT(m=16, n=64).sample(5)
        cost = sketch.apply_cost(np.ones((64, 2)))
        assert cost == 64 * 6 * 2


class TestBlockHadamardMatrix:
    def test_unit_columns(self):
        mat = block_hadamard_matrix(m=8, n=20, block_order=4)
        assert np.allclose(column_norms(mat), 1.0)

    def test_column_sparsity_is_block_order(self):
        mat = block_hadamard_matrix(m=8, n=20, block_order=4)
        sparsities = np.diff(mat.tocsc().indptr)
        assert np.all(sparsities == 4)

    def test_m_not_multiple_raises(self):
        with pytest.raises(ValueError):
            block_hadamard_matrix(m=10, n=20, block_order=4)

    def test_within_copy_columns_orthogonal(self):
        mat = block_hadamard_matrix(m=8, n=8, block_order=4).toarray()
        gram = mat.T @ mat
        assert np.allclose(gram, np.eye(8), atol=1e-9)

    def test_copies_are_identical(self):
        mat = block_hadamard_matrix(m=8, n=16, block_order=4).toarray()
        assert np.allclose(mat[:, :8], mat[:, 8:])


class TestHadamardBlockSketch:
    def test_sample_properties(self):
        fam = HadamardBlockSketch(m=16, n=64, block_order=4)
        sketch = fam.sample(0)
        assert sketch.column_sparsity == 4
        norms = column_norms(sketch.matrix)
        assert np.allclose(norms, 1.0)

    def test_permute_false_is_deterministic(self):
        fam = HadamardBlockSketch(m=8, n=32, block_order=2, permute=False)
        a = fam.sample(0).matrix.toarray()
        b = fam.sample(1).matrix.toarray()
        assert np.allclose(a, b)

    def test_with_m_rounds_up(self):
        fam = HadamardBlockSketch(m=8, n=32, block_order=4).with_m(10)
        assert fam.m == 12

    def test_for_epsilon(self):
        fam = HadamardBlockSketch.for_epsilon(d=8, epsilon=1 / 16, n=256)
        assert fam.block_order == 2
        assert fam.m >= 64
        assert fam.m % fam.block_order == 0

    def test_embeds_coherent_basis_without_copy_collision(self):
        # Chosen columns within one copy are exactly orthonormal.
        fam = HadamardBlockSketch(m=16, n=16, block_order=4, permute=False)
        sketch = fam.sample(0)
        u = np.eye(16)[:, [0, 5, 10, 15]]
        assert distortion(sketch.matrix, u) == pytest.approx(0.0, abs=1e-9)


class TestRowSampling:
    def test_m_rows_selected(self):
        sketch = RowSampling(m=10, n=100).sample(0)
        assert sketch.nnz == 10

    def test_scaling(self):
        sketch = RowSampling(m=25, n=100).sample(1)
        data = sketch.matrix.tocsc().data
        assert np.allclose(data, 2.0)

    def test_m_exceeding_n_raises(self):
        with pytest.raises(ValueError):
            RowSampling(m=101, n=100)

    def test_with_m_clamps_to_n(self):
        fam = RowSampling(m=10, n=50).with_m(500)
        assert fam.m == 50

    def test_full_sampling_is_permutation_like(self):
        sketch = RowSampling(m=16, n=16).sample(2)
        gram = (sketch.matrix.T @ sketch.matrix).toarray()
        assert np.allclose(gram, np.eye(16))
