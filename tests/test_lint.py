"""Self-tests for the ``repro.lint`` static-analysis pass.

Every rule is exercised against one triggering and one non-triggering
fixture from ``tests/lint_fixtures/``, linted under a *virtual path* so
path-scoped rules (library vs. tests, hot modules, trial engines) can be
driven from the fixture directory.  Suppression directives, baseline
round-trips and CLI exit codes are covered below.

Run in isolation with ``pytest -m lint``.
"""

import io
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import (
    DEFAULT_BASELINE_NAME,
    RULES,
    all_codes,
    classify_path,
    iter_python_files,
    lint_source,
    load_baseline,
    main,
    parse_suppressions,
    partition_by_baseline,
    write_baseline,
)

pytestmark = pytest.mark.lint

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"

#: Virtual path per rule: where the fixture pretends to live, so the
#: right path-scoped checks apply.
LIBRARY_PATH = "src/repro/hardinstances/fixture_module.py"
HOT_PATH = "src/repro/sketch/fixture_module.py"
TRIAL_PATH = "src/repro/core/fixture_module.py"
CACHE_PATH = "src/repro/cache/fixture_module.py"
TEST_PATH = "tests/test_fixture_module.py"

RULE_FIXTURES = {
    "RPL001": LIBRARY_PATH,
    "RPL002": LIBRARY_PATH,
    "RPL003": LIBRARY_PATH,
    "RPL004": LIBRARY_PATH,
    "RPL005": HOT_PATH,
    "RPL006": LIBRARY_PATH,
    "RPL007": TRIAL_PATH,
    "RPL008": TEST_PATH,
    "RPL101": CACHE_PATH,
    "RPL102": CACHE_PATH,
    "RPL103": LIBRARY_PATH,
    "RPL104": LIBRARY_PATH,
    "RPL105": TRIAL_PATH,
    "RPL901": LIBRARY_PATH,
}


def lint_fixture(name, virtual_path):
    source = (FIXTURES / name).read_text(encoding="utf-8")
    return lint_source(source, virtual_path)


def run_cli(argv):
    out, err = io.StringIO(), io.StringIO()
    code = main(argv, stdout=out, stderr=err)
    return code, out.getvalue(), err.getvalue()


class TestRuleFixtures:
    @pytest.mark.parametrize("code", sorted(RULE_FIXTURES))
    def test_bad_fixture_triggers(self, code):
        name = f"{code.lower()}_bad.py"
        violations = lint_fixture(name, RULE_FIXTURES[code])
        hit = [v for v in violations if v.code == code]
        assert hit, (
            f"{name} should trigger {code}, got "
            f"{[(v.code, v.line) for v in violations]}"
        )
        for violation in hit:
            assert violation.message
            assert violation.line >= 1

    @pytest.mark.parametrize("code", sorted(RULE_FIXTURES))
    def test_good_fixture_is_clean(self, code):
        name = f"{code.lower()}_good.py"
        violations = lint_fixture(name, RULE_FIXTURES[code])
        assert violations == [], (
            f"{name} should be clean, got "
            f"{[(v.code, v.line) for v in violations]}"
        )

    def test_rpl001_spares_seeded_default_rng(self):
        violations = lint_source(
            "import numpy as np\ngen = np.random.default_rng(7)\n",
            LIBRARY_PATH,
        )
        assert violations == []

    def test_rpl002_direct_nesting_reports_pr1_bug(self):
        # The exact PR 1 pattern from the acceptance criteria.
        source = (
            "import numpy as np\n"
            "def bad(parent):\n"
            "    return np.random.default_rng(parent.integers(0, 2**63))\n"
        )
        violations = lint_source(source, LIBRARY_PATH)
        assert [v.code for v in violations] == ["RPL002"]

    def test_rpl005_only_fires_in_hot_modules(self):
        source = (FIXTURES / "rpl005_bad.py").read_text(encoding="utf-8")
        cold = lint_source(source, "src/repro/apps/fixture_module.py")
        assert [v for v in cold if v.code == "RPL005"] == []

    def test_rpl007_only_fires_in_trial_engine_modules(self):
        source = (FIXTURES / "rpl007_bad.py").read_text(encoding="utf-8")
        cold = lint_source(source, "src/repro/hardinstances/fixture_module.py")
        assert [v for v in cold if v.code == "RPL007"] == []

    def test_rpl008_only_fires_in_tests(self):
        source = "import numpy as np\ngen = np.random.default_rng()\n"
        in_test = lint_source(source, TEST_PATH)
        assert [v.code for v in in_test] == ["RPL008"]
        # The same bare default_rng() in library code is RPL001's job.
        in_library = lint_source(source, LIBRARY_PATH)
        assert [v.code for v in in_library] == ["RPL001"]

    def test_syntax_error_reported_as_rpl900(self):
        violations = lint_source("def broken(:\n", LIBRARY_PATH)
        assert [v.code for v in violations] == ["RPL900"]

    def test_rpl101_only_fires_in_result_io_modules(self):
        source = (FIXTURES / "rpl101_bad.py").read_text(encoding="utf-8")
        # A sketch module's JSON writes feed nothing durable.
        outside = lint_source(source, HOT_PATH)
        assert [v for v in outside if v.code == "RPL101"] == []

    def test_rpl102_keyword_forwarding_counts_as_spec_coverage(self):
        # `batch` reaching the spec helper as a keyword argument is
        # coverage even without a literal spec-dict key.
        source = (
            "def cached(probe_cache, trials, batch):\n"
            "    spec = build_spec(trials=trials, batch=batch)\n"
            "    return probe_cache.get(spec)\n"
        )
        assert lint_source(source, CACHE_PATH) == []

    def test_rpl103_spares_the_shard_primitives_themselves(self):
        source = (FIXTURES / "rpl103_bad.py").read_text(encoding="utf-8")
        primitive = lint_source(source, "src/repro/utils/parallel.py")
        assert [v for v in primitive if v.code == "RPL103"] == []

    def test_rpl105_guard_helper_call_is_sufficient(self):
        source = (
            "from repro.core.batched import _check_batch\n"
            "def run(trials, batch=None):\n"
            "    size = _check_batch(batch)\n"
            "    return trials // size\n"
        )
        assert lint_source(source, TRIAL_PATH) == []

    def test_rpl105_only_fires_in_trial_engine_modules(self):
        source = (FIXTURES / "rpl105_bad.py").read_text(encoding="utf-8")
        outside = lint_source(source, "src/repro/hardinstances/fixture_module.py")
        assert [v for v in outside if v.code == "RPL105"] == []

    def test_rpl901_cannot_be_suppressed(self):
        # A directive claiming to disable RPL901 is itself stale and is
        # still reported — staleness cannot hide its own diagnosis.
        source = "x = 1  # repro-lint: disable=RPL901\n"
        violations = lint_source(source, LIBRARY_PATH)
        assert [v.code for v in violations] == ["RPL901"]

    def test_rpl901_respects_ignore_filter(self):
        source = "x = 1  # repro-lint: disable=RPL003\n"
        assert lint_source(
            source, LIBRARY_PATH, ignore=frozenset({"RPL901"})
        ) == []


class TestPathClassification:
    def test_library_module(self):
        ctx = classify_path("src/repro/hardinstances/dbeta.py")
        assert not ctx.is_test and not ctx.is_hot and not ctx.is_trial_engine

    def test_hot_and_trial_module(self):
        ctx = classify_path("src/repro/core/tester.py")
        assert ctx.is_hot and ctx.is_trial_engine and not ctx.is_test

    def test_tests_never_hot(self):
        ctx = classify_path("tests/test_sketch_countsketch.py")
        assert ctx.is_test and not ctx.is_hot and not ctx.is_trial_engine

    def test_benchmarks_are_tests(self):
        assert classify_path("benchmarks/test_parallel_speedup.py").is_test


class TestSuppressions:
    def test_directive_forms(self):
        source = (FIXTURES / "suppressions.py").read_text(encoding="utf-8")
        violations = lint_fixture("suppressions.py", LIBRARY_PATH)
        lines = {v.line for v in violations if v.code == "RPL003"}
        text_lines = source.splitlines()
        # Only wrong_code() and unsuppressed() remain flagged.
        flagged = {text_lines[line - 1].strip() for line in lines}
        assert flagged == {
            "return matrix.todense()  # repro-lint: disable=RPL001",
            "return np.asarray(matrix.todense())",
        }

    def test_file_wide_directive(self):
        violations = lint_fixture("suppressions_filewide.py", LIBRARY_PATH)
        codes = sorted(v.code for v in violations)
        assert "RPL003" not in codes
        assert "RPL004" in codes

    def test_parse_suppressions_shapes(self):
        parsed = parse_suppressions(
            "x = 1  # repro-lint: disable=RPL001,RPL006\n"
            "# repro-lint: disable-next-line=RPL003\n"
            "y = 2\n"
            "# repro-lint: disable-file=RPL007\n"
        )
        assert parsed.is_suppressed(1, "RPL001")
        assert parsed.is_suppressed(1, "RPL006")
        assert not parsed.is_suppressed(1, "RPL003")
        assert parsed.is_suppressed(3, "RPL003")
        assert parsed.is_suppressed(2, "RPL007")
        assert parsed.is_suppressed(99, "RPL007")

    def test_directive_inside_string_is_ignored(self):
        parsed = parse_suppressions(
            's = "# repro-lint: disable=RPL001"\n'
        )
        assert not parsed.is_suppressed(1, "RPL001")


class TestBaseline:
    BAD = (
        "import scipy.sparse as sp\n"
        "def f(m):\n"
        "    return m.todense()\n"
    )

    def test_round_trip(self, tmp_path):
        target = tmp_path / "module.py"
        target.write_text(self.BAD, encoding="utf-8")
        violations = lint_source(self.BAD, str(target))
        assert [v.code for v in violations] == ["RPL003"]

        baseline = tmp_path / DEFAULT_BASELINE_NAME
        write_baseline(baseline, violations)
        entries = load_baseline(baseline)
        assert len(entries) == 1

        new, old = partition_by_baseline(violations, entries)
        assert new == [] and len(old) == 1

    def test_new_violation_not_grandfathered(self, tmp_path):
        target = tmp_path / "module.py"
        target.write_text(self.BAD, encoding="utf-8")
        baseline = tmp_path / DEFAULT_BASELINE_NAME
        write_baseline(baseline, lint_source(self.BAD, str(target)))

        grown = self.BAD + "def g(m):\n    return m.todense().T\n"
        new, old = partition_by_baseline(
            lint_source(grown, str(target)), load_baseline(baseline)
        )
        assert len(old) == 1
        assert len(new) == 1 and new[0].line == 5

    def test_identical_lines_fingerprint_separately(self, tmp_path):
        doubled = self.BAD + "def g(m):\n    return m.todense()\n"
        target = tmp_path / "module.py"
        target.write_text(doubled, encoding="utf-8")
        violations = lint_source(doubled, str(target))
        assert len(violations) == 2
        baseline = tmp_path / DEFAULT_BASELINE_NAME
        assert write_baseline(baseline, violations) == 2
        new, old = partition_by_baseline(violations, load_baseline(baseline))
        assert new == [] and len(old) == 2

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == {}

    def test_malformed_baseline_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2, 3]", encoding="utf-8")
        with pytest.raises(ValueError):
            load_baseline(bad)


class TestDiscovery:
    def test_lint_fixtures_excluded_by_default(self):
        found = list(iter_python_files([str(FIXTURES.parent)]))
        assert found, "expected to find test files"
        assert not any("lint_fixtures" in p.parts for p in found)

    def test_explicit_file_bypasses_excludes(self):
        target = FIXTURES / "rpl003_bad.py"
        assert list(iter_python_files([str(target)])) == [target]

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            list(iter_python_files(["no/such/dir"]))


class TestCli:
    def test_clean_file_exits_zero(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n", encoding="utf-8")
        code, out, err = run_cli([str(clean)])
        assert code == 0
        assert "0 violations" in out

    def test_violations_exit_one(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("m.todense()\n", encoding="utf-8")
        code, out, err = run_cli([str(bad)])
        assert code == 1
        assert "RPL003" in out

    def test_pr1_spawn_bug_fixture_exits_nonzero_with_rpl002(self, tmp_path):
        # Acceptance criterion: the PR 1 bug pattern must fail with RPL002.
        bug = tmp_path / "spawn_bug.py"
        bug.write_text(
            "import numpy as np\n"
            "def fan_out(parent, k):\n"
            "    return [np.random.default_rng(parent.integers(0, 2**63))\n"
            "            for _ in range(k)]\n",
            encoding="utf-8",
        )
        code, out, err = run_cli([str(bug)])
        assert code != 0
        assert "RPL002" in out

    def test_usage_error_exits_two(self, tmp_path):
        code, out, err = run_cli(["--select", "RPL999", str(tmp_path)])
        assert code == 2
        assert "RPL999" in err

    def test_missing_path_exits_two(self):
        code, out, err = run_cli(["definitely/not/a/path"])
        assert code == 2

    def test_json_format(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("m.todense()\n", encoding="utf-8")
        code, out, err = run_cli(["--format", "json", str(bad)])
        assert code == 1
        payload = json.loads(out)
        assert payload["files_checked"] == 1
        assert payload["counts"] == {"RPL003": 1}
        assert payload["violations"][0]["rule"] == "todense-call"

    def test_select_and_ignore(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("m.todense()\nx = m == 0.5\n", encoding="utf-8")
        code, _, _ = run_cli(["--select", "RPL006", str(bad)])
        assert code == 1
        code, _, _ = run_cli(["--ignore", "RPL003,RPL006", str(bad)])
        assert code == 0

    def test_write_baseline_then_clean(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("m.todense()\n", encoding="utf-8")
        baseline = tmp_path / DEFAULT_BASELINE_NAME
        code, out, _ = run_cli(
            ["--baseline", str(baseline), "--write-baseline", str(bad)]
        )
        assert code == 0 and baseline.exists()
        code, out, _ = run_cli(["--baseline", str(baseline), str(bad)])
        assert code == 0
        assert "grandfathered" in out
        code, out, _ = run_cli(
            ["--baseline", str(baseline), "--no-baseline", str(bad)]
        )
        assert code == 1

    def test_list_rules(self):
        code, out, _ = run_cli(["--list-rules"])
        assert code == 0
        for rule_code in all_codes():
            assert rule_code in out

    def test_syntax_error_exits_one(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def broken(:\n", encoding="utf-8")
        code, out, _ = run_cli([str(broken)])
        assert code == 1
        assert "RPL900" in out

    def test_stale_suppression_listed_by_text_reporter(self, tmp_path):
        stale = tmp_path / "stale.py"
        stale.write_text(
            "x = 1  # repro-lint: disable=RPL003\n", encoding="utf-8"
        )
        code, out, _ = run_cli(["--no-baseline", str(stale)])
        assert code == 1
        assert "RPL901" in out
        assert "stale suppressions" in out
        assert "disable=RPL003" in out

    def test_parallel_jobs_output_matches_serial(self, tmp_path):
        # Three files, two dirty: --jobs must preserve discovery-order
        # output byte for byte.
        (tmp_path / "a_bad.py").write_text("m.todense()\n", encoding="utf-8")
        (tmp_path / "b_clean.py").write_text("x = 1\n", encoding="utf-8")
        (tmp_path / "c_bad.py").write_text(
            "import scipy.sparse as sp\n"
            "def f(m):\n"
            "    return m.todense()\n",
            encoding="utf-8",
        )
        serial_code, serial_out, _ = run_cli(
            ["--no-baseline", str(tmp_path)]
        )
        jobs_code, jobs_out, _ = run_cli(
            ["--no-baseline", "--jobs", "2", str(tmp_path)]
        )
        assert serial_code == jobs_code == 1
        assert jobs_out == serial_out

    def test_nonpositive_jobs_exits_two(self, tmp_path):
        code, _, err = run_cli(["--jobs", "0", str(tmp_path)])
        assert code == 2
        assert "--jobs" in err


class TestRepoIsClean:
    def test_module_entry_point_green_on_repo(self):
        # Acceptance criterion: the committed tree lints clean end to end
        # through the real ``python -m repro.lint`` entry point.
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(REPO_ROOT / "src")]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        result = subprocess.run(
            [sys.executable, "-m", "repro.lint", "src", "tests", "benchmarks"],
            cwd=str(REPO_ROOT), env=env,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        assert result.returncode == 0, result.stdout

    def test_rule_catalog_is_documented(self):
        doc = (REPO_ROOT / "docs" / "static_analysis.md").read_text(
            encoding="utf-8"
        )
        for code in all_codes():
            assert code in doc, f"{code} missing from docs/static_analysis.md"
        assert RULES["RPL002"].rationale  # catalog carries rationales
