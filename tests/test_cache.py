"""Tests for :mod:`repro.cache` — the probe cache and checkpoint/resume.

The cardinal invariant under test: cold-cache, warm-cache, and cache-off
runs at a fixed seed are **bit-identical** — in returned values, in the
state of the caller's RNG afterwards, and in ``count_*`` metrics.  Run
alone with ``pytest -m cache``.
"""

import json

import numpy as np
import pytest

from repro.cache import (
    ExperimentCheckpoint,
    JsonlStore,
    ProbeCache,
    cache_key,
    canonical_json,
)
from repro.core.tester import distortion_samples, failure_estimate, minimal_m
from repro.hardinstances.dbeta import DBeta
from repro.observe.counters import counters
from repro.observe.ledger import RunLedger
from repro.sketch.countsketch import CountSketch

pytestmark = pytest.mark.cache


def _family():
    return CountSketch(m=40, n=64)


def _instance():
    return DBeta(n=64, d=4, reps=1)


class TestCanonicalKeys:
    def test_key_order_independent(self):
        assert cache_key("k", {"a": 1, "b": 2}) == cache_key("k", {"b": 2, "a": 1})

    def test_numpy_scalars_normalize(self):
        assert cache_key("k", {"m": np.int64(7), "eps": np.float64(0.5)}) \
            == cache_key("k", {"m": 7, "eps": 0.5})

    def test_kind_separates_namespaces(self):
        assert cache_key("a", {"x": 1}) != cache_key("b", {"x": 1})

    def test_nested_spec_stable(self):
        spec = {"family": _family().spec(), "instance": _instance().spec()}
        assert cache_key("k", spec) == cache_key("k", json.loads(canonical_json(spec)))

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            canonical_json({"x": float("nan")})


class TestJsonlStore:
    def test_round_trip_and_persistence(self, tmp_path):
        store = JsonlStore(tmp_path / "s.jsonl")
        store.append({"a": 1})
        store.append({"b": [1, 2]})
        store.close()
        assert JsonlStore(tmp_path / "s.jsonl").load() == [{"a": 1}, {"b": [1, 2]}]

    def test_missing_file_loads_empty(self, tmp_path):
        assert JsonlStore(tmp_path / "none.jsonl").load() == []

    def test_torn_trailing_line_tolerated(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text('{"a": 1}\n{"b": 2}\n{"torn": ')
        assert JsonlStore(path).load() == [{"a": 1}, {"b": 2}]

    def test_earlier_corruption_raises(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text('{"a": 1}\nnot json\n{"b": 2}\n')
        with pytest.raises(ValueError, match="line 2"):
            JsonlStore(path).load()

    def test_non_finite_record_rejected_and_store_unchanged(self, tmp_path):
        # allow_nan=False: a NaN/Infinity field would write a token only
        # Python's lenient parser reads back.  The record is serialized
        # before the file is touched, so the store stays pristine.
        store = JsonlStore(tmp_path / "s.jsonl")
        store.append({"ok": 1.5})
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ValueError):
                store.append({"value": bad})
            with pytest.raises(ValueError):
                store.append({"nested": {"deep": [1.0, bad]}})
        store.close()
        assert JsonlStore(tmp_path / "s.jsonl").load() == [{"ok": 1.5}]

    def test_rejected_record_never_creates_file(self, tmp_path):
        store = JsonlStore(tmp_path / "fresh.jsonl")
        with pytest.raises(ValueError):
            store.append({"value": float("nan")})
        assert not (tmp_path / "fresh.jsonl").exists()

    def test_numpy_scalars_round_trip(self, tmp_path):
        store = JsonlStore(tmp_path / "s.jsonl")
        store.append({
            "i": np.int64(7),
            "f": np.float64(0.25),
            "b": np.bool_(True),
            "a": np.arange(3),
        })
        store.close()
        [record] = JsonlStore(tmp_path / "s.jsonl").load()
        assert record == {"i": 7, "f": 0.25, "b": True, "a": [0, 1, 2]}

    def test_non_finite_numpy_scalar_rejected(self, tmp_path):
        store = JsonlStore(tmp_path / "s.jsonl")
        with pytest.raises(ValueError):
            store.append({"value": np.float64("nan")})
        assert not (tmp_path / "s.jsonl").exists()

    def test_concurrent_multiprocess_appends_never_tear(self, tmp_path):
        # The O_APPEND atomicity contract: several processes hammering
        # one store (a server worker plus CLI runs) interleave whole
        # lines, never fragments.  Buffered-handle appends fail this:
        # a flush can land a line in several write syscalls.
        import multiprocessing

        path = tmp_path / "hammer.jsonl"
        workers, per_worker = 4, 50
        processes = [
            multiprocessing.Process(
                target=_hammer_appends, args=(path, worker, per_worker),
            )
            for worker in range(workers)
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join(timeout=60)
            assert process.exitcode == 0
        records = JsonlStore(path).load()
        assert len(records) == workers * per_worker
        seen = {(record["worker"], record["i"]) for record in records}
        assert seen == {
            (worker, i)
            for worker in range(workers) for i in range(per_worker)
        }


def _hammer_appends(path, worker, count):
    """Module-level so the multiprocess hammer test can spawn it."""
    store = JsonlStore(path)
    for i in range(count):
        # padding makes a torn line overwhelmingly likely to corrupt a
        # neighbour under buffered I/O, keeping the test sensitive
        store.append({"worker": worker, "i": i, "pad": "x" * 512})
    store.close()


class TestProbeCacheStore:
    def test_put_get_round_trip(self, tmp_path):
        cache = ProbeCache(tmp_path)
        spec = {"m": 8, "trials": 10}
        assert cache.get("failure_estimate", spec) is None
        cache.put("failure_estimate", spec, {"successes": 3},
                  {"trials": 10, "cache_miss": 1})
        hit = cache.get("failure_estimate", spec)
        assert hit.value == {"successes": 3}
        # Bookkeeping counters are stripped before storage so replaying
        # the delta never double-counts cache machinery.
        assert hit.counters == {"trials": 10}

    def test_survives_reload(self, tmp_path):
        ProbeCache(tmp_path).put("k", {"x": 1}, {"v": 2}, {"trials": 5})
        hit = ProbeCache(tmp_path).get("k", {"x": 1})
        assert hit is not None and hit.value == {"v": 2}

    def test_scoped_view_separates_keys(self, tmp_path):
        cache = ProbeCache(tmp_path)
        point = cache.scoped(search="minimal_m", decision="point")
        confident = cache.scoped(search="minimal_m", decision="confident_pass")
        point.put("failure_estimate", {"m": 8}, {"successes": 1})
        assert confident.get("failure_estimate", {"m": 8}) is None
        assert point.get("failure_estimate", {"m": 8}).value == {"successes": 1}
        # The unscoped spec is untouched as well.
        assert cache.get("failure_estimate", {"m": 8}) is None


class TestFailureEstimateBitIdentity:
    def _run(self, cache, seed=7, fresh_sketch=True):
        gen = np.random.default_rng(seed)
        est = failure_estimate(_family(), _instance(), 0.5, 20, gen,
                               fresh_sketch=fresh_sketch, cache=cache)
        # The tail draw certifies that the parent stream ends in the same
        # state on hit and miss (spawn-counter replay).
        tail = gen.integers(0, 10**9, 4).tolist()
        return est, tail

    @pytest.mark.parametrize("fresh_sketch", [True, False])
    def test_off_cold_warm_identical(self, tmp_path, fresh_sketch):
        off = self._run(None, fresh_sketch=fresh_sketch)
        cache = ProbeCache(tmp_path)
        cold = self._run(cache, fresh_sketch=fresh_sketch)
        warm = self._run(cache, fresh_sketch=fresh_sketch)
        assert off == cold == warm

    def test_counter_deltas_identical_cold_vs_warm(self, tmp_path):
        cache = ProbeCache(tmp_path)
        before = counters().snapshot()
        self._run(cache)
        cold = counters().diff(before)
        before = counters().snapshot()
        self._run(cache)
        warm = counters().diff(before)
        strip = lambda d: {k: v for k, v in d.items()  # noqa: E731
                           if not k.startswith(("cache_", "checkpoint_"))}
        assert strip(cold) == strip(warm)
        assert cold.get("cache_miss") == 1 and "cache_hit" not in cold
        assert warm.get("cache_hit") == 1 and "cache_miss" not in warm

    def test_warm_run_executes_zero_trials(self, tmp_path):
        cache = ProbeCache(tmp_path)
        self._run(cache)
        with RunLedger() as ledger:
            self._run(cache)
        kinds = [event["kind"] for event in ledger.events]
        assert "batch_dispatch" not in kinds  # no trial engine invocation
        assert kinds.count("cache_hit") == 1

    def test_different_seeds_do_not_alias(self, tmp_path):
        cache = ProbeCache(tmp_path)
        self._run(cache, seed=7)
        before = counters().snapshot()
        self._run(cache, seed=8)
        assert counters().diff(before).get("cache_miss") == 1

    def test_fingerprintless_rng_bypasses_cache(self, tmp_path, monkeypatch):
        # An RNG whose stream state cannot be fingerprinted (no recorded
        # SeedSequence) is uncacheable and must silently compute.
        monkeypatch.setattr("repro.core.tester.seed_fingerprint",
                            lambda rng: None)
        cache = ProbeCache(tmp_path)
        est = failure_estimate(_family(), _instance(), 0.5, 5,
                               np.random.default_rng(3), cache=cache)
        assert est.trials == 5
        assert len(cache) == 0


class TestDistortionSamplesBitIdentity:
    def _run(self, cache, seed=9):
        gen = np.random.default_rng(seed)
        values = distortion_samples(_family(), _instance(), 12, gen,
                                    cache=cache)
        return values, gen.integers(0, 10**9, 4).tolist()

    def test_off_cold_warm_identical(self, tmp_path):
        off_values, off_tail = self._run(None)
        cache = ProbeCache(tmp_path)
        cold_values, cold_tail = self._run(cache)
        warm_values, warm_tail = self._run(cache)
        np.testing.assert_array_equal(off_values, cold_values)
        np.testing.assert_array_equal(off_values, warm_values)
        assert off_tail == cold_tail == warm_tail

    def test_arrays_round_trip_exactly_through_disk(self, tmp_path):
        cache = ProbeCache(tmp_path)
        cold_values, _ = self._run(cache)
        warm_values, _ = self._run(ProbeCache(tmp_path))  # fresh index
        np.testing.assert_array_equal(cold_values, warm_values)
        assert warm_values.dtype == np.float64


class TestBatchCacheKeys:
    """``batch=1`` is the serial path and must share its cache entries;
    ``batch > 1`` runs different floating-point arithmetic and must not.
    """

    def _samples(self, cache, batch, seed=11):
        gen = np.random.default_rng(seed)
        return distortion_samples(_family(), _instance(), 12, gen,
                                  cache=cache, batch=batch)

    @pytest.mark.parametrize("first,second", [(None, 1), (1, None)])
    def test_batch_one_and_serial_share_samples_entry(self, tmp_path,
                                                      first, second):
        cache = ProbeCache(tmp_path)
        cold = self._samples(cache, first)
        assert len(cache) == 1
        before = counters().snapshot()
        warm = self._samples(cache, second)
        delta = counters().diff(before)
        assert delta.get("cache_hit") == 1
        assert "cache_miss" not in delta
        np.testing.assert_array_equal(cold, warm)
        assert len(cache) == 1  # nothing new written

    def test_batch_one_and_serial_share_estimate_entry(self, tmp_path):
        cache = ProbeCache(tmp_path)
        gen = np.random.default_rng(11)
        cold = failure_estimate(_family(), _instance(), 0.5, 20, gen,
                                cache=cache, batch=None)
        before = counters().snapshot()
        gen = np.random.default_rng(11)
        warm = failure_estimate(_family(), _instance(), 0.5, 20, gen,
                                cache=cache, batch=1)
        delta = counters().diff(before)
        assert delta.get("cache_hit") == 1
        assert "cache_miss" not in delta
        assert (cold.successes, cold.trials) == (warm.successes, warm.trials)

    def test_larger_batch_never_consumes_serial_entry(self, tmp_path):
        cache = ProbeCache(tmp_path)
        self._samples(cache, None)  # warm serial entry
        before = counters().snapshot()
        self._samples(cache, 4)
        delta = counters().diff(before)
        assert delta.get("cache_miss") == 1
        assert "cache_hit" not in delta
        assert len(cache) == 2  # batched entry stored beside the serial one


class TestMinimalMWarmStart:
    def _search(self, cache, seed=3, decision="point"):
        return minimal_m(_family(), _instance(), 0.5, 0.3, trials=15,
                         m_min=4, m_max=256, decision=decision,
                         rng=np.random.default_rng(seed), cache=cache)

    def test_off_cold_warm_identical(self, tmp_path):
        off = self._search(None)
        cache = ProbeCache(tmp_path)
        cold = self._search(cache)
        warm = self._search(cache)
        key = lambda r: (r.m_star,  # noqa: E731
                         [(m, e.successes, e.trials) for m, e in r.evaluations])
        assert key(off) == key(cold) == key(warm)

    def test_warm_rerun_executes_zero_trials(self, tmp_path):
        cache = ProbeCache(tmp_path)
        cold = self._search(cache)
        before = counters().snapshot()
        with RunLedger() as ledger:
            warm = self._search(cache)
        delta = counters().diff(before)
        kinds = [event["kind"] for event in ledger.events]
        assert "batch_dispatch" not in kinds
        assert delta.get("cache_hit") == len(warm.evaluations)
        assert "cache_miss" not in delta
        assert warm.m_star == cold.m_star

    def test_decision_rule_in_key(self, tmp_path):
        # Probes under different decision rules must not alias: the rule
        # shapes which m values get probed and what "pass" means.
        cache = ProbeCache(tmp_path)
        self._search(cache, decision="point")
        before = counters().snapshot()
        self._search(cache, decision="confident_pass")
        assert counters().diff(before).get("cache_miss", 0) > 0


class TestExperimentCheckpoint:
    def _result(self):
        from repro.experiments.harness import ExperimentResult
        from repro.utils.tables import TextTable

        result = ExperimentResult(experiment_id="ET", title="checkpointed")
        table = TextTable(title="t", columns=["a"])
        table.add_row([1])
        result.tables.append(table)
        result.metrics["x"] = 0.5
        return result

    def test_save_load_round_trip(self, tmp_path):
        ckpt = ExperimentCheckpoint(tmp_path)
        ckpt.save(self._result(), seed=0, scale=0.1)
        loaded = ckpt.load("ET", seed=0, scale=0.1)
        assert loaded is not None
        assert loaded.metrics == {"x": 0.5}
        assert loaded.tables[0].rows == [["1"]]

    @pytest.mark.parametrize("seed,scale", [(1, 0.1), (0, 0.2)])
    def test_config_mismatch_reruns(self, tmp_path, seed, scale):
        ckpt = ExperimentCheckpoint(tmp_path)
        ckpt.save(self._result(), seed=0, scale=0.1)
        assert ckpt.load("ET", seed=seed, scale=scale) is None

    def test_corrupt_checkpoint_reruns_not_raises(self, tmp_path):
        ckpt = ExperimentCheckpoint(tmp_path)
        ckpt.save(self._result(), seed=0, scale=0.1)
        ckpt.path_for("ET").write_text("{ corrupt")
        assert ckpt.load("ET", seed=0, scale=0.1) is None

    def test_bytes_match_save_json(self, tmp_path):
        result = self._result()
        ckpt = ExperimentCheckpoint(tmp_path / "c")
        ckpt.save(result, seed=0, scale=0.1)
        result.save_json(tmp_path / "direct.json")
        assert ckpt.raw_bytes("ET") == (tmp_path / "direct.json").read_bytes()


class TestCliCacheAndResume:
    """End-to-end: --cache-dir / --resume through the real CLI.

    Uses E1 at a tiny scale — unlike E5, it runs real ``minimal_m``
    searches, so the cache actually sees probes.
    """

    ARGS = ["E1", "--scale", "0.02", "--seed", "3"]

    def _run(self, tmp_path, extra, out):
        from repro.experiments.__main__ import main

        assert main(self.ARGS + ["--json-dir", str(tmp_path / out)] + extra) == 0
        return (tmp_path / out / "E1.json").read_bytes()

    def test_cold_warm_resume_byte_identical(self, tmp_path, capsys):
        cache = ["--cache-dir", str(tmp_path / "cache")]
        off = self._run(tmp_path, [], "off")
        cold = self._run(tmp_path, cache, "cold")
        warm = self._run(tmp_path, cache, "warm")
        resumed = self._run(tmp_path, cache + ["--resume"], "resumed")
        assert off == cold == warm == resumed

    def test_resume_skips_completed_experiment(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        cache = ["--cache-dir", str(tmp_path / "cache")]
        ledger = tmp_path / "resume.jsonl"
        assert main(self.ARGS + cache) == 0
        assert main(self.ARGS + cache
                    + ["--resume", "--ledger", str(ledger)]) == 0
        events = [json.loads(line) for line in ledger.read_text().splitlines()]
        kinds = [event["kind"] for event in events]
        assert "experiment_resumed" in kinds
        assert "experiment_start" not in kinds  # skipped, not re-run

    def test_interrupted_run_resumes_bit_identical(self, tmp_path, capsys):
        # Simulate a run killed midway: probes cached, but no checkpoint
        # written.  --resume then finds no checkpoint, re-runs against the
        # warm cache, and must produce the uninterrupted run's bytes.
        from repro.experiments.registry import get_experiment

        cache_dir = tmp_path / "cache"
        baseline = self._run(tmp_path, [], "base")
        # Partial warmup: run the experiment against the cache directly
        # (probes stored) but write no checkpoint — the state a SIGKILL
        # between probe completion and checkpoint save leaves behind.
        partial = ProbeCache(cache_dir)
        get_experiment("E1").run(scale=0.02, rng=3, cache=partial)
        partial.close()
        restarted = self._run(
            tmp_path, ["--cache-dir", str(cache_dir), "--resume"], "rest"
        )
        assert restarted == baseline

    def test_resume_without_cache_dir_is_usage_error(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit) as excinfo:
            main(self.ARGS + ["--resume"])
        assert excinfo.value.code == 2
        assert "--resume requires --cache-dir" in capsys.readouterr().err

    def test_summarize_reports_hit_rate(self, tmp_path, capsys):
        from repro.experiments.__main__ import main
        from repro.observe.summarize import summarize_path

        cache = ["--cache-dir", str(tmp_path / "cache")]
        assert main(self.ARGS + cache) == 0
        ledger = tmp_path / "warm.jsonl"
        assert main(self.ARGS + cache + ["--ledger", str(ledger)]) == 0
        report = summarize_path(ledger)
        assert "Probe cache" in report
        assert "100.0%" in report
