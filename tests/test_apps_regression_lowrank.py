"""Tests for repro.apps.regression and repro.apps.lowrank."""

import numpy as np
import pytest

from repro.apps.lowrank import best_rank_k, sketched_low_rank
from repro.apps.regression import (
    error_ratio_bound,
    lstsq,
    sketched_lstsq,
)
from repro.experiments.workloads import lowrank_matrix, regression_problem
from repro.sketch.countsketch import CountSketch
from repro.sketch.gaussian import GaussianSketch


class TestLstsq:
    def test_exact_solution_of_consistent_system(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((30, 4))
        x_true = rng.standard_normal(4)
        x = lstsq(a, a @ x_true)
        assert np.allclose(x, x_true)

    def test_vector_length_validated(self):
        with pytest.raises(ValueError):
            lstsq(np.ones((5, 2)), np.ones(4))


class TestErrorRatioBound:
    def test_value(self):
        assert error_ratio_bound(0.25) == pytest.approx(5.0 / 3.0)

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            error_ratio_bound(1.0)


class TestSketchedLstsq:
    def test_gaussian_meets_guarantee(self):
        n, d, eps, delta = 512, 5, 0.25, 0.1
        a, b = regression_problem(n, d, noise=0.5, rng=0)
        fam = GaussianSketch(
            m=GaussianSketch.recommended_m(d + 1, eps, delta), n=n
        )
        res = sketched_lstsq(a, b, fam, rng=1)
        assert res.ratio is not None
        assert res.ratio <= error_ratio_bound(eps)

    def test_countsketch_meets_guarantee(self):
        n, d, eps, delta = 512, 4, 0.3, 0.3
        a, b = regression_problem(n, d, noise=0.5, rng=2)
        m = min(n, CountSketch.recommended_m(d + 1, eps, delta))
        res = sketched_lstsq(a, b, CountSketch(m=m, n=n), rng=3)
        assert res.ratio <= error_ratio_bound(eps) * 1.05

    def test_result_metadata(self):
        n, d = 128, 3
        a, b = regression_problem(n, d, rng=4)
        fam = GaussianSketch(m=64, n=n)
        res = sketched_lstsq(a, b, fam, rng=5)
        assert res.m == 64
        assert res.sketch_cost > 0
        assert res.x.shape == (d,)

    def test_no_exact_comparison(self):
        n, d = 128, 3
        a, b = regression_problem(n, d, rng=6)
        res = sketched_lstsq(a, b, GaussianSketch(m=64, n=n), rng=7,
                             compare_exact=False)
        assert res.optimal_residual is None
        assert res.ratio is None

    def test_dimension_mismatch_raises(self):
        a, b = regression_problem(64, 3, rng=8)
        with pytest.raises(ValueError):
            sketched_lstsq(a, b, GaussianSketch(m=32, n=128), rng=9)

    def test_b_shape_validated(self):
        a, _ = regression_problem(64, 3, rng=10)
        with pytest.raises(ValueError):
            sketched_lstsq(a, np.ones(63), GaussianSketch(m=32, n=64))


class TestBestRankK:
    def test_exact_on_low_rank_input(self):
        a = lowrank_matrix(60, 30, k=3, decay=0.0, rng=0)
        approx = best_rank_k(a, 3)
        assert np.linalg.norm(a - approx) == pytest.approx(0.0, abs=1e-8)

    def test_error_decreases_with_k(self):
        a = lowrank_matrix(60, 30, k=5, decay=0.8, rng=1)
        errors = [np.linalg.norm(a - best_rank_k(a, k)) for k in (1, 3, 5)]
        assert errors == sorted(errors, reverse=True)

    def test_k_above_rank_is_clamped(self):
        a = np.ones((4, 3))
        approx = best_rank_k(a, 10)
        assert np.allclose(approx, a)


class TestSketchedLowRank:
    def test_near_optimal_error(self):
        n, c, k = 256, 40, 4
        a = lowrank_matrix(n, c, k, decay=0.4, rng=0)
        fam = GaussianSketch(m=80, n=n)
        res = sketched_low_rank(a, k, fam, rng=1)
        assert res.ratio is not None
        assert res.ratio <= 1.5

    def test_metadata(self):
        a = lowrank_matrix(128, 20, 3, rng=2)
        res = sketched_low_rank(a, 3, GaussianSketch(m=40, n=128), rng=3)
        assert res.m == 40
        assert res.approximation.shape == a.shape
        assert np.linalg.matrix_rank(res.approximation) <= 3

    def test_dimension_mismatch_raises(self):
        a = lowrank_matrix(64, 10, 2, rng=4)
        with pytest.raises(ValueError):
            sketched_low_rank(a, 2, GaussianSketch(m=16, n=128))
