"""Tests for repro.utils.stats."""


import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.stats import (
    BernoulliEstimate,
    estimate_probability,
    fit_power_law,
    geometric_mean,
    wilson_interval,
)


class TestWilsonInterval:
    def test_contains_point_estimate(self):
        lo, hi = wilson_interval(30, 100)
        assert lo < 0.3 < hi

    def test_zero_successes(self):
        lo, hi = wilson_interval(0, 50)
        assert lo == 0.0
        assert 0.0 < hi < 0.2

    def test_all_successes(self):
        lo, hi = wilson_interval(50, 50)
        assert hi == pytest.approx(1.0)
        assert 0.8 < lo < 1.0

    def test_more_trials_narrower(self):
        lo1, hi1 = wilson_interval(10, 100)
        lo2, hi2 = wilson_interval(100, 1000)
        assert hi2 - lo2 < hi1 - lo1

    def test_successes_exceeding_trials_raises(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 4)

    def test_confidence_bounds(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 10, confidence=1.0)

    @given(
        successes=st.integers(min_value=0, max_value=200),
        trials=st.integers(min_value=1, max_value=200),
    )
    @settings(max_examples=60)
    def test_interval_ordered_and_in_unit(self, successes, trials):
        if successes > trials:
            successes = trials
        lo, hi = wilson_interval(successes, trials)
        assert 0.0 <= lo <= hi <= 1.0


class TestBernoulliEstimate:
    def test_point(self):
        assert BernoulliEstimate(3, 10).point == pytest.approx(0.3)

    def test_likely_at_most(self):
        est = BernoulliEstimate(0, 1000)
        assert est.likely_at_most(0.05)

    def test_likely_at_least(self):
        est = BernoulliEstimate(999, 1000)
        assert est.likely_at_least(0.9)

    def test_merge_pools_counts(self):
        merged = BernoulliEstimate(1, 10).merge(BernoulliEstimate(2, 20))
        assert merged.successes == 3
        assert merged.trials == 30

    def test_merge_type_error(self):
        with pytest.raises(TypeError):
            BernoulliEstimate(1, 2).merge(0.5)

    def test_merge_rejects_mismatched_confidence(self):
        # Regression: merge used to silently keep self.confidence, so
        # pooling a 0.99-interval estimate into a 0.95 one relabeled the
        # merged interval without widening it.
        a = BernoulliEstimate(1, 10, confidence=0.95)
        b = BernoulliEstimate(2, 20, confidence=0.99)
        with pytest.raises(ValueError) as excinfo:
            a.merge(b)
        assert "confidence" in str(excinfo.value)
        assert "0.95" in str(excinfo.value)
        assert "0.99" in str(excinfo.value)

    def test_merge_keeps_shared_confidence(self):
        merged = BernoulliEstimate(1, 10, confidence=0.99).merge(
            BernoulliEstimate(2, 20, confidence=0.99)
        )
        assert merged.confidence == pytest.approx(0.99)
        assert (merged.successes, merged.trials) == (3, 30)

    def test_invalid_counts(self):
        with pytest.raises(ValueError):
            BernoulliEstimate(5, 2)

    def test_str_contains_counts(self):
        assert "3/10" in str(BernoulliEstimate(3, 10))


class TestEstimateProbability:
    def test_sure_event(self):
        est = estimate_probability(lambda g: True, trials=20, rng=0)
        assert est.point == 1.0

    def test_impossible_event(self):
        est = estimate_probability(lambda g: False, trials=20, rng=0)
        assert est.point == 0.0

    def test_fair_coin_near_half(self):
        est = estimate_probability(
            lambda g: g.random() < 0.5, trials=2000, rng=0
        )
        assert 0.45 < est.point < 0.55

    def test_deterministic_given_seed(self):
        event = lambda g: g.random() < 0.3
        a = estimate_probability(event, trials=100, rng=7).point
        b = estimate_probability(event, trials=100, rng=7).point
        assert a == b


class TestFitPowerLaw:
    def test_exact_power_law(self):
        x = np.array([1.0, 2.0, 4.0, 8.0])
        y = 3.0 * x**2
        alpha, c = fit_power_law(x, y)
        assert alpha == pytest.approx(2.0)
        assert c == pytest.approx(3.0)

    def test_constant_data(self):
        alpha, c = fit_power_law([1, 2, 4], [5, 5, 5])
        assert alpha == pytest.approx(0.0)
        assert c == pytest.approx(5.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [0, 1])

    def test_rejects_single_point(self):
        with pytest.raises(ValueError):
            fit_power_law([1], [1])

    @given(
        alpha=st.floats(min_value=-3, max_value=3),
        c=st.floats(min_value=0.1, max_value=10),
    )
    @settings(max_examples=40)
    def test_recovers_planted_exponent(self, alpha, c):
        x = np.array([1.0, 2.0, 4.0, 8.0, 16.0])
        y = c * x**alpha
        fitted_alpha, fitted_c = fit_power_law(x, y)
        assert fitted_alpha == pytest.approx(alpha, abs=1e-8)
        assert fitted_c == pytest.approx(c, rel=1e-6)


class TestGeometricMean:
    def test_simple(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
