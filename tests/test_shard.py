"""Tests for :mod:`repro.shard` — sharded fan-out with deterministic merge.

The cardinal invariant: for a fixed seed, a workload split across N
shards (each computing only its contiguous trial slice), merged with
``python -m repro.cache merge``, and replayed against the folded store is
**bit-identical** to a serial run — returned values, the caller's RNG
state afterwards, counter deltas, result JSON, and the deterministic
ledger view.  Including after a shard is killed mid-run and only that
shard is re-run.  Run alone with ``pytest -m shard``.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.cache import (
    JsonlStore,
    MergeConflict,
    ProbeCache,
    cache_key,
    merge_stores,
)
from repro.cache.__main__ import main as cache_main
from repro.core.tester import (
    ShardPending,
    distortion_samples,
    failure_estimate,
    minimal_m,
)
from repro.hardinstances.dbeta import DBeta
from repro.observe import RunLedger, counters, deterministic_view
from repro.shard import (
    merged_dir,
    open_shard_cache,
    shard_pass,
    shard_store_dir,
    sharded_call,
)
from repro.sketch.countsketch import CountSketch
from repro.utils.parallel import ShardSpec, normalize_shard, shard_spans
from repro.utils.rng import spawn_seeds, spawn_slice

pytestmark = pytest.mark.shard

#: Counter prefixes that legitimately differ between serial, cached, and
#: sharded runs of one workload (see ``NON_RESULT_COUNTER_PREFIXES``).
_BOOKKEEPING = ("cache_", "checkpoint_", "shard_")


def _family():
    return CountSketch(m=40, n=64)


def _instance():
    return DBeta(n=64, d=4, reps=1)


def _strip(delta):
    return {k: v for k, v in delta.items() if not k.startswith(_BOOKKEEPING)}


def _estimate_fn(seed=7, trials=30, fresh_sketch=True, batch=None):
    """A ShardedFn around one failure_estimate probe.

    Returns ``(estimate key, tail draws)`` — the tail certifies that the
    parent RNG ends in the serial run's state after a sharded replay.
    """

    def fn(cache, shard):
        gen = np.random.default_rng(seed)
        est = failure_estimate(
            _family(), _instance(), 0.5, trials, gen,
            fresh_sketch=fresh_sketch, cache=cache, batch=batch,
            shard=shard,
        )
        tail = gen.integers(0, 10**9, 4).tolist()
        return (est.successes, est.trials, est.confidence), tail

    return fn


def _samples_fn(seed=9, trials=24, batch=None):
    def fn(cache, shard):
        gen = np.random.default_rng(seed)
        values = distortion_samples(
            _family(), _instance(), trials, gen, cache=cache, batch=batch,
            shard=shard,
        )
        return [float(v) for v in values], gen.integers(0, 10**9, 4).tolist()

    return fn


def _search_fn(seed=3):
    def fn(cache, shard):
        return minimal_m(
            _family(), _instance(), 0.5, 0.3, trials=15, m_min=4,
            m_max=256, rng=np.random.default_rng(seed), cache=cache,
            shard=shard,
        )

    return fn


def _search_key(result):
    return (
        result.m_star,
        [(m, est.successes, est.trials) for m, est in result.evaluations],
    )


class TestShardSpans:
    def test_balanced_tiling(self):
        assert shard_spans(10, 3) == [(0, 4), (4, 7), (7, 10)]

    def test_more_shards_than_trials(self):
        assert shard_spans(2, 4) == [(0, 1), (1, 2), (2, 2), (2, 2)]

    def test_step_aligns_boundaries_to_batch_multiples(self):
        spans = shard_spans(24, 3, step=5)
        assert spans == [(0, 10), (10, 20), (20, 24)]
        for lo, _ in spans:
            assert lo % 5 == 0

    @pytest.mark.parametrize("total,count,step", [
        (1, 1, 1), (17, 4, 1), (17, 4, 3), (100, 7, 8), (5, 9, 2),
    ])
    def test_spans_tile_exactly(self, total, count, step):
        spans = shard_spans(total, count, step=step)
        assert len(spans) == count
        cursor = 0
        for lo, hi in spans:
            assert lo == cursor and lo <= hi
            cursor = hi
        assert cursor == total


class TestSpawnSlice:
    def test_slice_equals_serial_children(self):
        serial = spawn_seeds(np.random.default_rng(5), 10)
        sliced = spawn_slice(np.random.default_rng(5), 3, 7, total=10)
        for child, expected in zip(sliced, serial[3:7]):
            np.testing.assert_array_equal(
                child.generate_state(4), expected.generate_state(4)
            )

    def test_parent_advances_by_total_regardless_of_slice(self):
        tails = []
        for start, stop in [(0, 10), (2, 5), (10, 10)]:
            gen = np.random.default_rng(5)
            spawn_slice(gen, start, stop, total=10)
            tails.append(gen.integers(0, 10**9, 4).tolist())
        assert tails[0] == tails[1] == tails[2]

    def test_total_must_cover_slice(self):
        with pytest.raises(ValueError):
            spawn_slice(np.random.default_rng(0), 2, 8, total=4)


class TestNormalizeShard:
    def test_degenerate_fanouts_are_serial(self):
        assert normalize_shard(None) is None
        assert normalize_shard((0, 1)) is None
        assert normalize_shard(ShardSpec(0, 1)) is None

    def test_pair_and_spec_accepted(self):
        assert normalize_shard((1, 3)) == ShardSpec(1, 3)
        assert normalize_shard(ShardSpec(2, 4)) == ShardSpec(2, 4)

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            normalize_shard("1/3")
        with pytest.raises(ValueError):
            ShardSpec(3, 3)
        with pytest.raises(ValueError):
            ShardSpec(-1, 2)


class TestShardedFailureEstimate:
    @pytest.mark.parametrize("shards", [1, 2, 3])
    def test_merged_replay_matches_serial(self, tmp_path, shards):
        fn = _estimate_fn()
        serial = fn(None, None)
        assert sharded_call(fn, shards, tmp_path) == serial

    @pytest.mark.parametrize("shards", [2, 3])
    def test_fixed_sketch_matches_serial(self, tmp_path, shards):
        fn = _estimate_fn(fresh_sketch=False)
        assert sharded_call(fn, shards, tmp_path) == fn(None, None)

    def test_batched_matches_serial_batched(self, tmp_path):
        # batch=7 with trials=30: span boundaries align to batch
        # multiples, so the sharded chunk decomposition (and its
        # canonical accumulation order) is the serial one.
        fn = _samples_fn(batch=7, trials=30)
        assert sharded_call(fn, 3, tmp_path) == fn(None, None)

    def test_final_replay_counter_delta_matches_serial(self, tmp_path):
        # The aggregate over all shard passes legitimately exceeds the
        # serial cost (each merge round replays resolved probes); the
        # contract is on the final replay against the folded store: its
        # counter delta — the one an experiment turns into count_*
        # metrics — is the serial run's, fixed-sketch sampling included
        # (attributed to shard 0's delta exactly once).
        fn = _estimate_fn(fresh_sketch=False)
        before = counters().snapshot()
        serial = fn(None, None)
        serial_delta = _strip(counters().diff(before))
        sharded_call(fn, 3, tmp_path)
        merged_cache = ProbeCache(merged_dir(tmp_path))
        before = counters().snapshot()
        replay = fn(merged_cache, None)
        assert replay == serial
        assert _strip(counters().diff(before)) == serial_delta

    def test_shard_without_cache_rejected(self):
        with pytest.raises(ValueError, match="shard= requires cache="):
            failure_estimate(
                _family(), _instance(), 0.5, 8,
                np.random.default_rng(0), shard=(0, 2),
            )

    def test_first_pass_stores_slice_and_raises_pending(self, tmp_path):
        fn = _estimate_fn(trials=30)
        result, pending = shard_pass(fn, (1, 3), tmp_path)
        assert result is None and pending == 1
        [record] = JsonlStore(
            shard_store_dir(tmp_path, 1) / ProbeCache.FILENAME
        ).load()
        assert record["spec"]["shard"] == {
            "count": 3, "index": 1, "span": [10, 20],
        }
        assert record["value"]["trials"] == 10

    def test_rerun_of_stored_slice_computes_nothing(self, tmp_path):
        fn = _estimate_fn(trials=30)
        shard_pass(fn, (1, 3), tmp_path)
        before = counters().snapshot()
        result, pending = shard_pass(fn, (1, 3), tmp_path)
        delta = counters().diff(before)
        assert result is None and pending == 1
        assert delta.get("trials", 0) == 0  # peek hit: no recompute


class TestShardedDistortionSamples:
    @pytest.mark.parametrize("shards", [1, 2, 3])
    def test_concatenated_slices_match_serial_order(self, tmp_path, shards):
        fn = _samples_fn()
        assert sharded_call(fn, shards, tmp_path) == fn(None, None)

    def test_more_shards_than_trials(self, tmp_path):
        # Empty spans: shards beyond the trial budget store empty slices.
        fn = _samples_fn(trials=3)
        assert sharded_call(fn, 5, tmp_path) == fn(None, None)


class TestShardedMinimalM:
    @pytest.mark.parametrize("shards", [1, 2, 3])
    def test_search_matches_serial(self, tmp_path, shards):
        fn = _search_fn()
        serial = fn(None, None)
        merged = sharded_call(fn, shards, tmp_path)
        assert not merged.pending
        assert _search_key(merged) == _search_key(serial)

    def test_pending_pass_returns_early(self, tmp_path):
        result, pending = shard_pass(_search_fn(), (0, 3), tmp_path)
        assert result is None and pending == 1

    def test_deterministic_ledger_view_matches_serial_replay(self, tmp_path):
        # Both replays are all-cache-hits over identical probe schedules;
        # their deterministic views (shard/cache events dropped, timing
        # and identity fields stripped) must coincide event for event.
        fn = _search_fn()
        serial_cache = ProbeCache(tmp_path / "serial")
        fn(serial_cache, None)  # cold
        with RunLedger() as ledger:
            serial_warm = fn(serial_cache, None)
        serial_events = ledger.events
        sharded_call(fn, 3, tmp_path / "sharded")
        merged_cache = ProbeCache(merged_dir(tmp_path / "sharded"))
        with RunLedger() as ledger:
            replay = fn(merged_cache, None)
        assert _search_key(replay) == _search_key(serial_warm)
        assert deterministic_view(ledger.events) == \
            deterministic_view(serial_events)


class TestCrashAShard:
    def _settle(self, fn, shards, directory, skip=None, max_rounds=64):
        """One manual round: every shard pass (minus ``skip``) + merge."""
        stores = [shard_store_dir(directory, k) for k in range(shards)]
        pending_total = 0
        for k in range(shards):
            if skip is not None and k == skip:
                continue
            _, pending = shard_pass(fn, (k, shards), directory)
            pending_total += pending
        merge_stores(stores, merged_dir(directory))
        return pending_total

    def test_killed_shard_rerun_reproduces_serial_bytes(self, tmp_path):
        fn = _search_fn()
        serial = fn(None, None)
        shards = 3
        # Round 1, during which shard 1 is "killed mid-write": its store
        # is truncated mid-line — the state a SIGKILL leaves behind.
        self._settle(fn, shards, tmp_path)
        store = shard_store_dir(tmp_path, 1) / ProbeCache.FILENAME
        data = store.read_bytes()
        store.write_bytes(data[: len(data) // 2])
        # Re-run ONLY shard 1: the torn line is dropped, the lost slice
        # recomputed; then resume normal rounds to completion.
        _, pending = shard_pass(fn, (1, shards), tmp_path)
        assert pending >= 1
        merge_stores(
            [shard_store_dir(tmp_path, k) for k in range(shards)],
            merged_dir(tmp_path),
        )
        for _ in range(64):
            if self._settle(fn, shards, tmp_path) == 0:
                break
        else:
            pytest.fail("sharded workload did not settle")
        merged_cache = ProbeCache(merged_dir(tmp_path))
        replay = fn(merged_cache, None)
        assert _search_key(replay) == _search_key(serial)


def _partial(kind, parent_spec, count, index, span, value, counters_=None):
    spec = dict(parent_spec)
    spec["shard"] = {"count": count, "index": index, "span": list(span)}
    return {
        "key": cache_key(kind, spec),
        "kind": kind,
        "spec": spec,
        "value": value,
        "counters": counters_ or {},
    }


def _write_store(directory, records):
    store = JsonlStore(Path(directory) / ProbeCache.FILENAME)
    for record in records:
        store.append(record)
    store.close()
    return directory


class TestMergeStores:
    PARENT = {"m": 8, "trials": 10, "seed": {"entropy": 1}}

    def _fe(self, index, span, successes, count=2):
        return _partial(
            "failure_estimate", self.PARENT, count, index, span,
            {"successes": successes, "trials": span[1] - span[0],
             "confidence": 0.95},
            {"trials": span[1] - span[0]},
        )

    def test_complete_tiling_folds_to_parent_key(self, tmp_path):
        a = _write_store(tmp_path / "a", [self._fe(0, (0, 5), 2)])
        b = _write_store(tmp_path / "b", [self._fe(1, (5, 10), 3)])
        report = merge_stores([a, b], tmp_path / "out")
        assert report.folded_groups == 1 and report.pending_groups == 0
        hit = ProbeCache(tmp_path / "out").get("failure_estimate",
                                               self.PARENT)
        assert hit.value == {"successes": 5, "trials": 10,
                             "confidence": 0.95}
        assert hit.counters == {"trials": 10}

    def test_missing_slice_stays_pending(self, tmp_path):
        a = _write_store(tmp_path / "a", [self._fe(0, (0, 5), 2)])
        report = merge_stores([a], tmp_path / "out")
        assert report.folded_groups == 0 and report.pending_groups == 1
        assert ProbeCache(tmp_path / "out").get(
            "failure_estimate", self.PARENT
        ) is None

    def test_merge_is_idempotent_and_byte_stable(self, tmp_path):
        a = _write_store(tmp_path / "a", [self._fe(0, (0, 5), 2)])
        b = _write_store(tmp_path / "b", [self._fe(1, (5, 10), 3)])
        merge_stores([a, b], tmp_path / "out")
        merged = tmp_path / "out" / ProbeCache.FILENAME
        first = merged.read_bytes()
        merge_stores([b, a], tmp_path / "out")  # re-merge, swapped order
        assert merged.read_bytes() == first

    def test_conflicting_payloads_raise(self, tmp_path):
        a = _write_store(tmp_path / "a", [self._fe(0, (0, 5), 2)])
        b = _write_store(tmp_path / "b", [self._fe(0, (0, 5), 4)])
        with pytest.raises(MergeConflict, match="two different payloads"):
            merge_stores([a, b], tmp_path / "out")

    def test_overlapping_spans_raise(self, tmp_path):
        a = _write_store(tmp_path / "a", [self._fe(0, (0, 6), 2)])
        b = _write_store(tmp_path / "b", [self._fe(1, (5, 10), 3)])
        with pytest.raises(MergeConflict, match="overlapping"):
            merge_stores([a, b], tmp_path / "out")

    def test_shard_count_disagreement_raises(self, tmp_path):
        a = _write_store(tmp_path / "a", [self._fe(0, (0, 5), 2, count=2)])
        b = _write_store(
            tmp_path / "b", [self._fe(1, (5, 10), 3, count=3)]
        )
        with pytest.raises(MergeConflict, match="shard count"):
            merge_stores([a, b], tmp_path / "out")

    def test_tampered_record_key_raises(self, tmp_path):
        record = self._fe(0, (0, 5), 2)
        record["key"] = "0" * len(record["key"])
        a = _write_store(tmp_path / "a", [record])
        with pytest.raises(MergeConflict, match="content"):
            merge_stores([a], tmp_path / "out")

    def test_fold_verified_against_existing_full_record(self, tmp_path):
        a = _write_store(tmp_path / "a", [self._fe(0, (0, 5), 2)])
        b = _write_store(tmp_path / "b", [self._fe(1, (5, 10), 3)])
        full = ProbeCache(tmp_path / "out")
        full.put("failure_estimate", self.PARENT,
                 {"successes": 9, "trials": 10, "confidence": 0.95},
                 {"trials": 10})
        full.close()
        with pytest.raises(MergeConflict, match="disagrees with the full"):
            merge_stores([a, b], tmp_path / "out")


class TestMergeCli:
    def test_merge_command_folds_and_reports(self, tmp_path, capsys):
        fn = _samples_fn(trials=12)
        for k in range(2):
            shard_pass(fn, (k, 2), tmp_path)
        code = cache_main([
            "merge", str(merged_dir(tmp_path)),
            str(shard_store_dir(tmp_path, 0)),
            str(shard_store_dir(tmp_path, 1)),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "folded 1 probe groups" in out
        replay = fn(ProbeCache(merged_dir(tmp_path)), None)
        assert replay == fn(None, None)

    def test_conflict_exits_2(self, tmp_path, capsys):
        parent = {"m": 8, "trials": 10, "seed": {"entropy": 1}}
        a = _write_store(tmp_path / "a", [_partial(
            "failure_estimate", parent, 2, 0, (0, 5),
            {"successes": 1, "trials": 5, "confidence": 0.95},
        )])
        b = _write_store(tmp_path / "b", [_partial(
            "failure_estimate", parent, 2, 0, (0, 5),
            {"successes": 4, "trials": 5, "confidence": 0.95},
        )])
        code = cache_main(["merge", str(tmp_path / "out"), str(a), str(b)])
        assert code == 2
        assert "merge failed" in capsys.readouterr().err

    def test_no_command_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cache_main([])
        assert excinfo.value.code == 2


class TestOpenShardCache:
    def test_reads_fall_back_to_merged_store(self, tmp_path):
        spec = {"m": 4, "trials": 2, "seed": {"e": 0}}
        merged = ProbeCache(merged_dir(tmp_path))
        merged.put("failure_estimate", spec,
                   {"successes": 1, "trials": 2, "confidence": 0.95})
        merged.close()
        tiered = open_shard_cache(tmp_path, 0)
        assert tiered.get("failure_estimate", spec) is not None
        # Writes land in the shard's own store, not the merged one.
        tiered.put("failure_estimate", {"m": 5}, {"successes": 0})
        tiered.close()
        assert ProbeCache(merged_dir(tmp_path)).get(
            "failure_estimate", {"m": 5}
        ) is None
        assert ProbeCache(shard_store_dir(tmp_path, 0)).get(
            "failure_estimate", {"m": 5}
        ) is not None


class TestCliShards:
    """End-to-end ``--shards`` through the real experiments CLI."""

    ARGS = ["E1", "--scale", "0.02", "--seed", "3"]

    def _run(self, tmp_path, extra, out):
        from repro.experiments.__main__ import main

        code = main(self.ARGS + ["--json-dir", str(tmp_path / out)] + extra)
        return code, tmp_path / out / "E1.json"

    def test_shards_byte_identical_to_serial(self, tmp_path, capsys):
        code, serial = self._run(tmp_path, [], "serial")
        assert code == 0
        code, sharded = self._run(
            tmp_path,
            ["--shards", "3", "--cache-dir", str(tmp_path / "cache")],
            "sharded",
        )
        assert code == 0
        assert sharded.read_bytes() == serial.read_bytes()

    def test_single_shard_pass_exits_3(self, tmp_path, capsys):
        code, result = self._run(
            tmp_path,
            ["--shards", "2", "--shard-index", "0",
             "--cache-dir", str(tmp_path / "cache")],
            "pass0",
        )
        assert code == 3
        assert not result.exists()  # no result until merge resolves probes
        assert "awaiting cache merge" in capsys.readouterr().err
        store = shard_store_dir(tmp_path / "cache", 0) / ProbeCache.FILENAME
        assert store.exists()
        for line in store.read_text().splitlines():
            assert json.loads(line)["spec"]["shard"]["index"] == 0

    def test_shard_index_requires_shards(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit) as excinfo:
            main(self.ARGS + ["--shard-index", "0"])
        assert excinfo.value.code == 2
        assert "--shard-index requires --shards" in capsys.readouterr().err

    def test_shards_require_cache_dir(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit) as excinfo:
            main(self.ARGS + ["--shards", "2"])
        assert excinfo.value.code == 2
        assert "--shards requires --cache-dir" in capsys.readouterr().err
