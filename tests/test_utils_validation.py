"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_epsilon,
    check_in_range,
    check_matrix,
    check_nonnegative_int,
    check_positive_int,
    check_power_of_two,
    check_probability,
)


class TestCheckPositiveInt:
    def test_accepts_positive(self):
        assert check_positive_int(3, "x") == 3

    def test_accepts_numpy_integer(self):
        assert check_positive_int(np.int64(4), "x") == 4

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="x"):
            check_positive_int(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive_int(-2, "x")

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive_int(2.5, "x")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_int(True, "x")


class TestCheckNonnegativeInt:
    def test_accepts_zero(self):
        assert check_nonnegative_int(0, "x") == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_nonnegative_int(-1, "x")


class TestCheckProbability:
    def test_accepts_interior(self):
        assert check_probability(0.5, "p") == pytest.approx(0.5)

    def test_rejects_zero_by_default(self):
        with pytest.raises(ValueError):
            check_probability(0.0, "p")

    def test_allow_zero(self):
        assert check_probability(0.0, "p", allow_zero=True) == 0.0

    def test_rejects_one_by_default(self):
        with pytest.raises(ValueError):
            check_probability(1.0, "p")

    def test_allow_one(self):
        assert check_probability(1.0, "p", allow_one=True) == 1.0

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_probability(float("nan"), "p")


class TestCheckEpsilon:
    def test_accepts_small(self):
        assert check_epsilon(0.05) == pytest.approx(0.05)

    def test_respects_upper(self):
        with pytest.raises(ValueError):
            check_epsilon(0.2, upper=0.125)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_epsilon(0.0)


class TestCheckInRange:
    def test_inclusive_endpoints(self):
        assert check_in_range(1.0, "x", 0.0, 1.0) == 1.0

    def test_exclusive_rejects_endpoint(self):
        with pytest.raises(ValueError):
            check_in_range(1.0, "x", 0.0, 1.0, inclusive=False)


class TestCheckMatrix:
    def test_accepts_2d(self):
        a = check_matrix([[1, 2], [3, 4]], "a")
        assert a.shape == (2, 2)
        assert a.dtype == float

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            check_matrix([1, 2, 3], "a")

    def test_shape_constraint(self):
        with pytest.raises(ValueError):
            check_matrix(np.ones((3, 2)), "a", shape=(None, 3))

    def test_shape_wildcard(self):
        a = check_matrix(np.ones((3, 2)), "a", shape=(None, 2))
        assert a.shape == (3, 2)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_matrix([[np.nan, 1.0]], "a")


class TestCheckPowerOfTwo:
    @pytest.mark.parametrize("value", [1, 2, 4, 64, 1024])
    def test_accepts_powers(self, value):
        assert check_power_of_two(value, "x") == value

    @pytest.mark.parametrize("value", [3, 6, 12, 100])
    def test_rejects_non_powers(self, value):
        with pytest.raises(ValueError):
            check_power_of_two(value, "x")
