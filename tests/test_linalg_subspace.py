"""Tests for repro.linalg.subspace."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg.subspace import (
    coherent_subspace,
    is_isometry,
    orthonormal_basis,
    random_subspace,
    spanning_isometry,
    subspace_angle,
)


class TestOrthonormalBasis:
    def test_result_is_isometry(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((20, 5))
        q = orthonormal_basis(a)
        assert is_isometry(q)

    def test_preserves_column_space(self):
        rng = np.random.default_rng(1)
        a = rng.standard_normal((15, 3))
        q = orthonormal_basis(a)
        # Every column of a must lie in range(q): projection is identity.
        proj = q @ (q.T @ a)
        assert np.allclose(proj, a)

    def test_rejects_dependent_columns(self):
        a = np.ones((10, 2))
        with pytest.raises(ValueError):
            orthonormal_basis(a)

    def test_rejects_wide_matrix(self):
        with pytest.raises(ValueError):
            orthonormal_basis(np.ones((2, 5)))


class TestIsIsometry:
    def test_identity(self):
        assert is_isometry(np.eye(4))

    def test_scaled_identity_fails(self):
        assert not is_isometry(2 * np.eye(4))

    def test_rectangular_isometry(self):
        u = np.zeros((6, 2))
        u[0, 0] = u[3, 1] = 1.0
        assert is_isometry(u)

    def test_wide_matrix_fails(self):
        assert not is_isometry(np.ones((2, 5)))


class TestRandomSubspace:
    def test_is_isometry(self):
        assert is_isometry(random_subspace(30, 7, rng=0))

    def test_deterministic(self):
        a = random_subspace(20, 4, rng=5)
        b = random_subspace(20, 4, rng=5)
        assert np.allclose(a, b)

    def test_d_exceeding_n_raises(self):
        with pytest.raises(ValueError):
            random_subspace(3, 5)

    @given(st.integers(min_value=1, max_value=8))
    @settings(max_examples=20)
    def test_isometry_property(self, d):
        u = random_subspace(32, d, rng=d)
        assert is_isometry(u)


class TestCoherentSubspace:
    def test_one_nonzero_per_column(self):
        u = coherent_subspace(20, 5, rng=0)
        assert np.all(np.count_nonzero(u, axis=0) == 1)

    def test_is_isometry(self):
        assert is_isometry(coherent_subspace(50, 10, rng=1))

    def test_distinct_rows(self):
        u = coherent_subspace(30, 8, rng=2)
        rows = np.nonzero(u)[0]
        assert len(set(rows)) == 8


class TestSpanningIsometry:
    def test_disjoint_supports_give_isometry(self):
        rows = np.array([[0, 2], [1, 3]])
        signs = np.array([[1.0, -1.0], [-1.0, 1.0]])
        u = spanning_isometry(rows, signs, n=6, scale=1 / np.sqrt(2))
        assert is_isometry(u)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            spanning_isometry(np.zeros((2, 2), dtype=int),
                              np.zeros((3, 2)), n=5, scale=1.0)


class TestSubspaceAngle:
    def test_same_subspace_zero(self):
        u = random_subspace(20, 3, rng=0)
        assert subspace_angle(u, u) == pytest.approx(0.0, abs=1e-6)

    def test_orthogonal_subspaces(self):
        u = np.zeros((4, 1))
        v = np.zeros((4, 1))
        u[0, 0] = 1.0
        v[1, 0] = 1.0
        assert subspace_angle(u, v) == pytest.approx(np.pi / 2)

    def test_requires_isometries(self):
        with pytest.raises(ValueError):
            subspace_angle(2 * np.eye(3), np.eye(3))

    def test_ambient_mismatch_raises(self):
        with pytest.raises(ValueError):
            subspace_angle(np.eye(3), np.eye(4))
