"""Tests for repro.core.proofs (executable proof replays)."""

import pytest

from repro.core.proofs import ProofStep, replay_theorem8, replay_theorem9
from repro.sketch.countsketch import CountSketch
from repro.sketch.hadamard_block import HadamardBlockSketch
from repro.sketch.osnap import OSNAP


class TestProofStep:
    def test_str_shows_violation(self):
        step = ProofStep(name="x", claim="c", measured=2.0,
                         requirement=1.0, satisfied=False)
        assert "VIOLATED" in str(step)

    def test_str_shows_ok(self):
        step = ProofStep(name="x", claim="c", measured=0.5,
                         requirement=1.0, satisfied=True)
        assert "ok" in str(step)


class TestReplayTheorem8:
    def test_undersized_countsketch_refuted(self):
        pi = CountSketch(m=64, n=4096).sample(0).matrix
        trace = replay_theorem8(pi, d=8, epsilon=1 / 16, delta=0.1,
                                trials=40, rng=1)
        assert trace.refuted
        # The chain pins the violation: Lemma 7's collision budget (and
        # hence the birthday requirement) cannot both hold at m = 64.
        violated = {s.name for s in trace.steps if not s.satisfied}
        assert violated & {"lemma7", "birthday"}
        assert trace.empirical_failure.point > 0.5
        assert "REFUTED" in trace.render()

    def test_properly_sized_countsketch_consistent(self):
        pi = CountSketch(m=20000, n=4096).sample(0).matrix
        trace = replay_theorem8(pi, d=8, epsilon=1 / 16, delta=0.1,
                                trials=40, rng=2)
        assert not trace.refuted
        assert trace.first_violation is None
        assert trace.steps[-1].measured >= trace.required_m

    def test_scaled_entries_flagged_by_lemma6(self):
        pi = CountSketch(m=20000, n=2048).sample(3).matrix * 1.5
        trace = replay_theorem8(pi, d=6, epsilon=1 / 16, delta=0.1,
                                trials=30, rng=4)
        lemma6 = next(s for s in trace.steps if s.name == "lemma6")
        assert not lemma6.satisfied
        assert trace.refuted

    def test_delta_constraint_enforced(self):
        pi = CountSketch(m=64, n=256).sample(0).matrix
        with pytest.raises(ValueError):
            replay_theorem8(pi, d=4, epsilon=1 / 16, delta=0.2)

    def test_render_contains_all_steps(self):
        pi = CountSketch(m=256, n=1024).sample(5).matrix
        trace = replay_theorem8(pi, d=4, epsilon=1 / 16, delta=0.1,
                                trials=20, rng=6)
        text = trace.render()
        for name in ("model", "lemma6", "lemma7", "birthday"):
            assert name in text


class TestReplayTheorem9:
    def test_sub_d2_hadamard_refuted(self):
        # eps = 1/36 so the Remark 10 block order 4 = 1/(9 eps) is within
        # the sparsity constraint.
        pi = HadamardBlockSketch(m=64, n=2048, block_order=4).sample(0).matrix
        trace = replay_theorem9(pi, d=16, epsilon=1 / 36, delta=0.1,
                                trials=25, rng=1)
        model = next(s for s in trace.steps if s.name == "model")
        abundance = next(s for s in trace.steps if s.name == "abundance")
        row_bound = next(s for s in trace.steps if s.name == "row_bound")
        assert model.satisfied
        assert abundance.satisfied
        assert not row_bound.satisfied  # m = 64 < d^2 = 256
        assert trace.refuted

    def test_above_d2_hadamard_consistent(self):
        pi = HadamardBlockSketch(
            m=4096, n=2048, block_order=4
        ).sample(1).matrix
        trace = replay_theorem9(pi, d=8, epsilon=1 / 36, delta=0.25,
                                trials=25, rng=2)
        row_bound = next(s for s in trace.steps if s.name == "row_bound")
        assert row_bound.satisfied
        assert not trace.refuted

    def test_non_abundant_pi_flagged(self):
        # OSNAP with s=2 at eps = 1/36: abundance floor is 3 > 2.
        pi = OSNAP(m=4096, n=2048, s=2).sample(0).matrix
        trace = replay_theorem9(pi, d=8, epsilon=1 / 36, delta=0.2,
                                trials=15, rng=3)
        abundance = next(s for s in trace.steps if s.name == "abundance")
        assert not abundance.satisfied
