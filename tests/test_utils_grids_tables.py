"""Tests for repro.utils.grids and repro.utils.tables."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.grids import dyadic_grid, geometric_grid, log_int_grid
from repro.utils.tables import TextTable, format_value


class TestLogIntGrid:
    def test_endpoints_present(self):
        grid = log_int_grid(4, 64, 5)
        assert grid[0] == 4
        assert grid[-1] == 64

    def test_sorted_unique(self):
        grid = log_int_grid(2, 100, 20)
        assert grid == sorted(set(grid))

    def test_single_point(self):
        assert log_int_grid(5, 5, 3) == [5]

    def test_low_above_high_raises(self):
        with pytest.raises(ValueError):
            log_int_grid(10, 5, 3)

    @given(
        low=st.integers(min_value=1, max_value=50),
        span=st.integers(min_value=0, max_value=1000),
        points=st.integers(min_value=1, max_value=30),
    )
    @settings(max_examples=50)
    def test_values_in_range(self, low, span, points):
        grid = log_int_grid(low, low + span, points)
        assert all(low <= v <= low + span for v in grid)


class TestGeometricGrid:
    def test_endpoints(self):
        grid = geometric_grid(0.1, 10.0, 3)
        assert grid[0] == pytest.approx(0.1)
        assert grid[-1] == pytest.approx(10.0)

    def test_geometric_spacing(self):
        grid = geometric_grid(1.0, 16.0, 5)
        ratios = [grid[i + 1] / grid[i] for i in range(4)]
        assert all(r == pytest.approx(2.0) for r in ratios)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_grid(0.0, 1.0, 3)


class TestDyadicGrid:
    def test_powers_in_range(self):
        assert dyadic_grid(3, 20) == [4, 8, 16]

    def test_includes_one(self):
        assert dyadic_grid(1, 8) == [1, 2, 4, 8]

    def test_empty_when_no_power_fits(self):
        assert dyadic_grid(5, 7) == []


class TestFormatValue:
    def test_bool(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_float_uses_format(self):
        assert format_value(3.14159, "{:.2f}") == "3.14"

    def test_int_passthrough(self):
        assert format_value(42) == "42"


class TestTextTable:
    def test_render_contains_headers_and_rows(self):
        table = TextTable(title="demo", columns=["a", "b"])
        table.add_row([1, 2.5])
        rendered = table.render()
        assert "demo" in rendered
        assert "a" in rendered and "b" in rendered
        assert "2.5" in rendered

    def test_row_length_mismatch_raises(self):
        table = TextTable(title="t", columns=["x"])
        with pytest.raises(ValueError):
            table.add_row([1, 2])

    def test_alignment_consistent(self):
        table = TextTable(title="t", columns=["col"])
        table.add_row([1])
        table.add_row([123456])
        lines = table.render().splitlines()
        widths = {len(line) for line in lines[2:]}
        assert len(widths) == 1  # all data/header/rule lines same width
