"""Equivalence suite for the matrix-free apply kernels.

The contract under test (see :mod:`repro.sketch.kernels`) is *bit*
identity, not numerical closeness: every kernel operation must reproduce
the materialized scipy path exactly (``np.array_equal``), so that the
Monte-Carlo trial engine can run matrix-free without perturbing a single
recorded experiment number.
"""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.tester import distortion_samples, failure_estimate
from repro.hardinstances.dbeta import DBeta
from repro.linalg.sparse_ops import sketch_apply_cost
from repro.sketch import (
    OSNAP,
    CountSketch,
    LeverageSampling,
    RowSampling,
    Sketch,
    SparseJL,
    sample_sketch,
)
from repro.sketch.kernels import (
    SCATTER_MAX_COLUMNS,
    SCATTER_MAX_REPS,
    ColumnScatterKernel,
    CooScatterKernel,
    RowGatherKernel,
)

pytestmark = pytest.mark.kernels

N = 192
M = 96


def _leverage_family(m=M, n=N):
    gen = np.random.default_rng(2024)
    p = gen.random(n)
    p /= p.sum()
    return LeverageSampling(m, n, probabilities=p)


FAMILIES = [
    pytest.param(lambda: CountSketch(M, N), id="countsketch"),
    pytest.param(lambda: OSNAP(M, N, s=4), id="osnap-uniform"),
    pytest.param(lambda: OSNAP(M, N, s=4, variant="block"), id="osnap-block"),
    pytest.param(lambda: SparseJL(M, N, q=0.05), id="sparsejl"),
    pytest.param(lambda: RowSampling(M, N), id="rowsampling"),
    pytest.param(_leverage_family, id="leverage"),
]

#: Input builders covering dtypes, layouts and contiguity.  Each returns an
#: array with leading dimension ``n``.
INPUTS = [
    pytest.param(lambda gen, n: gen.standard_normal((n, 16)), id="tall-f8"),
    pytest.param(lambda gen, n: gen.standard_normal((n, 3)), id="narrow-f8"),
    pytest.param(lambda gen, n: gen.standard_normal((n, 1)), id="one-col"),
    pytest.param(
        lambda gen, n: gen.standard_normal((n, SCATTER_MAX_COLUMNS)),
        id="at-cutoff",
    ),
    pytest.param(
        lambda gen, n: gen.standard_normal((n, SCATTER_MAX_COLUMNS + 1)),
        id="past-cutoff",
    ),
    pytest.param(lambda gen, n: gen.standard_normal(n), id="vector-f8"),
    pytest.param(
        lambda gen, n: gen.standard_normal((n, 8)).astype(np.float32),
        id="tall-f4",
    ),
    pytest.param(
        lambda gen, n: gen.standard_normal(n).astype(np.float32),
        id="vector-f4",
    ),
    pytest.param(
        lambda gen, n: np.asfortranarray(gen.standard_normal((n, 8))),
        id="fortran",
    ),
    pytest.param(
        lambda gen, n: gen.standard_normal((n, 16))[:, ::2],
        id="noncontiguous-cols",
    ),
    pytest.param(
        lambda gen, n: gen.standard_normal((2 * n, 8))[::2],
        id="noncontiguous-rows",
    ),
]


def _sparse_equal(a, b) -> bool:
    """Exact equality of two sparse matrices (structure and values)."""
    a = a.tocsc()
    b = b.tocsc()
    a.sort_indices()
    b.sort_indices()
    return (
        a.shape == b.shape
        and np.array_equal(a.indptr, b.indptr)
        and np.array_equal(a.indices, b.indices)
        and np.array_equal(a.data, b.data)
    )


class TestApplyBitIdentity:
    @pytest.mark.parametrize("make_family", FAMILIES)
    @pytest.mark.parametrize("make_input", INPUTS)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_kernel_apply_matches_matmul(self, make_family, make_input, seed):
        family = make_family()
        sketch = family.sample(np.random.SeedSequence(seed))
        kernel = sketch.kernel
        assert kernel is not None
        a = make_input(np.random.default_rng(seed + 100), family.n)
        expected = sketch.matrix @ np.asarray(a, dtype=float)
        if sp.issparse(expected):
            expected = expected.toarray()
        assert np.array_equal(kernel.apply(a), np.asarray(expected))

    @pytest.mark.parametrize("make_family", FAMILIES)
    @pytest.mark.parametrize("make_input", INPUTS)
    def test_sketch_apply_dispatches_to_kernel(self, make_family, make_input):
        """``Sketch.apply`` (lazy) equals the materialized product exactly."""
        family = make_family()
        lazy = sample_sketch(family, np.random.SeedSequence(5), lazy=True)
        eager = family.sample(np.random.SeedSequence(5))
        a = make_input(np.random.default_rng(55), family.n)
        assert np.array_equal(lazy.apply(a), eager.apply(a))

    @pytest.mark.parametrize("make_family", FAMILIES)
    def test_sparse_input_falls_back_to_matrix(self, make_family):
        family = make_family()
        sketch = sample_sketch(family, np.random.SeedSequence(9), lazy=True)
        a = sp.random(
            family.n, 6, density=0.2, format="csr",
            random_state=np.random.default_rng(3),
        )
        expected = sketch.matrix @ a
        if sp.issparse(expected):
            expected = expected.toarray()
        assert np.array_equal(sketch.apply(a), np.asarray(expected))
        assert sketch.is_materialized


class TestMaterialization:
    @pytest.mark.parametrize("make_family", FAMILIES)
    @pytest.mark.parametrize("seed", [0, 3, 7])
    def test_lazy_and_eager_hold_identical_matrices(self, make_family, seed):
        family = make_family()
        eager = family.sample(np.random.SeedSequence(seed))
        lazy = sample_sketch(
            family, np.random.SeedSequence(seed), lazy=True
        )
        assert not lazy.is_materialized
        assert _sparse_equal(lazy.matrix, eager.matrix)
        assert lazy.is_materialized

    @pytest.mark.parametrize("make_family", FAMILIES)
    def test_kernel_statistics_match_matrix(self, make_family):
        family = make_family()
        lazy = sample_sketch(family, np.random.SeedSequence(17), lazy=True)
        eager = family.sample(np.random.SeedSequence(17))
        # Read the statistics BEFORE materialization: they must come from
        # the kernel and still agree with the matrix-derived values.
        kernel_nnz = lazy.nnz
        kernel_s = lazy.column_sparsity
        assert not lazy.is_materialized
        assert kernel_nnz == eager.nnz
        assert kernel_s == eager.column_sparsity
        assert lazy.shape == eager.shape

    @pytest.mark.parametrize("make_family", FAMILIES)
    def test_apply_cost_matches_matrix_path(self, make_family):
        family = make_family()
        lazy = sample_sketch(family, np.random.SeedSequence(21), lazy=True)
        eager = family.sample(np.random.SeedSequence(21))
        gen = np.random.default_rng(0)
        a = gen.standard_normal((family.n, 5))
        a[gen.random(a.shape) < 0.5] = 0.0
        assert not lazy.is_materialized
        assert lazy.apply_cost(a) == eager.apply_cost(a)
        assert sketch_apply_cost(lazy.kernel, a) == \
            sketch_apply_cost(eager.matrix, a)

    def test_lazy_repr_flags_deferred_matrix(self):
        lazy = sample_sketch(
            CountSketch(8, 16), np.random.SeedSequence(0), lazy=True
        )
        assert ", lazy" in repr(lazy)
        lazy.matrix
        assert ", lazy" not in repr(lazy)


class TestBasisImage:
    @pytest.mark.parametrize("make_family", FAMILIES)
    @pytest.mark.parametrize("reps", [1, 2, SCATTER_MAX_REPS,
                                      2 * SCATTER_MAX_REPS])
    @pytest.mark.parametrize("distinct_rows", [True, False])
    def test_structured_draw_bit_identity(self, make_family, reps,
                                          distinct_rows):
        family = make_family()
        d = max(1, 32 // reps)
        instance = DBeta(family.n, d, reps=reps, distinct_rows=distinct_rows)
        draw = instance.sample_draw(np.random.SeedSequence(4))
        eager = family.sample(np.random.SeedSequence(8))
        lazy = sample_sketch(family, np.random.SeedSequence(8), lazy=True)
        expected = draw.sketched_basis(eager.matrix)
        assert np.array_equal(lazy.basis_image(draw), expected)
        assert not lazy.is_materialized

    @pytest.mark.parametrize("make_family", FAMILIES)
    def test_unstructured_draw_bit_identity(self, make_family):
        family = make_family()
        instance = DBeta(family.n, 8, reps=2)
        draw = instance.sample_draw(np.random.SeedSequence(6))
        unstructured = type(draw)(
            u=draw.u, rows=draw.rows, signs=draw.signs, reps=draw.reps,
            structured=False,
        )
        eager = family.sample(np.random.SeedSequence(2))
        lazy = sample_sketch(family, np.random.SeedSequence(2), lazy=True)
        expected = unstructured.sketched_basis(eager.matrix)
        assert np.array_equal(lazy.basis_image(unstructured), expected)

    def test_combine_sketched_columns_refactor_matches(self):
        """``sketched_basis`` is gather + combine, exactly."""
        instance = DBeta(N, 8, reps=4)
        draw = instance.sample_draw(np.random.SeedSequence(1))
        pi = CountSketch(M, N).sample(np.random.SeedSequence(1)).matrix
        sub = np.asarray(pi.tocsc()[:, draw.rows].toarray(), dtype=float)
        assert np.array_equal(
            draw.sketched_basis(pi), draw.combine_sketched_columns(sub)
        )


class TestTrialEngineDeterminism:
    @pytest.mark.parametrize("make_family", FAMILIES)
    def test_failure_estimate_workers_invariant(self, make_family):
        """Lazy kernel path: identical estimates at workers=1 and 4."""
        family = make_family()
        instance = DBeta(family.n, 4, reps=2)
        kwargs = dict(epsilon=0.5, trials=24)
        est1 = failure_estimate(
            family, instance, rng=np.random.SeedSequence(33),
            workers=1, **kwargs
        )
        est4 = failure_estimate(
            family, instance, rng=np.random.SeedSequence(33),
            workers=4, **kwargs
        )
        assert est1.successes == est4.successes
        assert est1.trials == est4.trials

    @pytest.mark.parametrize("make_family", FAMILIES)
    def test_trial_stream_matches_materialized_engine(self, make_family,
                                                      monkeypatch):
        """The kernel-backed trial stream equals the pre-kernel one.

        Forcing eager sampling with a stripped kernel reproduces the
        engine as it was before the matrix-free path existed; the
        distortion sequence must be bit-identical.
        """
        import repro.core.tester as tester

        family = make_family()
        instance = DBeta(family.n, 4, reps=SCATTER_MAX_REPS)
        new = distortion_samples(
            family, instance, trials=16, rng=np.random.SeedSequence(12)
        )

        def eager_no_kernel(fam, rng=None, lazy=False):
            sketch = fam.sample(rng)
            return Sketch(sketch.matrix, family=fam)

        monkeypatch.setattr(tester, "sample_sketch", eager_no_kernel)
        old = distortion_samples(
            family, instance, trials=16, rng=np.random.SeedSequence(12)
        )
        assert np.array_equal(new, old)


class TestApplyValidation:
    @pytest.fixture
    def sketch(self):
        return CountSketch(8, 32).sample(np.random.SeedSequence(0))

    def test_scalar_input_rejected(self, sketch):
        with pytest.raises(ValueError, match="0-D"):
            sketch.apply(3.0)

    def test_three_dimensional_input_rejected(self, sketch):
        with pytest.raises(ValueError, match="3-D"):
            sketch.apply(np.zeros((32, 2, 2)))

    def test_vector_with_wrong_length(self, sketch):
        with pytest.raises(ValueError, match="vector with leading dimension"):
            sketch.apply(np.zeros(31))

    def test_matrix_with_wrong_leading_dimension(self, sketch):
        with pytest.raises(ValueError, match="matrix with leading dimension"):
            sketch.apply(np.zeros((16, 4)))

    def test_lazy_sketch_validates_identically(self):
        lazy = sample_sketch(
            CountSketch(8, 32), np.random.SeedSequence(0), lazy=True
        )
        with pytest.raises(ValueError, match="vector with leading dimension"):
            lazy.apply(np.zeros(31))
        assert not lazy.is_materialized

    def test_vector_apply_returns_vector(self, sketch):
        out = sketch.apply(np.ones(32))
        assert out.shape == (8,)


class TestKernelConstruction:
    def test_column_scatter_rejects_shape_mismatch(self):
        with pytest.raises(ValueError, match="share"):
            ColumnScatterKernel(
                np.zeros((2, 4), dtype=int), np.zeros((3, 4)), (8, 4)
            )

    def test_column_scatter_rejects_out_of_range_rows(self):
        with pytest.raises(ValueError, match="row index"):
            ColumnScatterKernel(
                np.full((1, 4), 8), np.ones((1, 4)), (8, 4)
            )

    def test_row_gather_rejects_out_of_range_cols(self):
        with pytest.raises(ValueError, match="column index"):
            RowGatherKernel(np.array([0, 9]), np.ones(2), (2, 4))

    def test_coo_rejects_non_canonical_order(self):
        with pytest.raises(ValueError, match="canonical"):
            CooScatterKernel(
                np.array([1, 0]), np.array([0, 0]), np.ones(2), (4, 4)
            )

    def test_coo_from_triplets_canonicalizes(self):
        kernel = CooScatterKernel.from_triplets(
            np.array([1, 0, 2]), np.array([1, 1, 0]), np.array([2.0, 3.0, 4.0]),
            (4, 4),
        )
        dense = kernel.materialize().toarray()
        expected = np.zeros((4, 4))
        expected[1, 1], expected[0, 1], expected[2, 0] = 2.0, 3.0, 4.0
        assert np.array_equal(dense, expected)

    def test_sample_sketch_falls_back_for_pre_lazy_families(self):
        class OldStyle:
            def __init__(self):
                self.calls = []

            def sample(self, rng=None):
                self.calls.append(rng)
                return Sketch(np.eye(3))

        family = OldStyle()
        sketch = sample_sketch(family, np.random.SeedSequence(0), lazy=True)
        assert isinstance(sketch, Sketch)
        assert len(family.calls) == 1


class TestKernelProperties:
    """Hypothesis sweeps over shapes and seeds."""

    @given(
        m=st.integers(min_value=1, max_value=48),
        n=st.integers(min_value=1, max_value=96),
        s=st.integers(min_value=1, max_value=6),
        cols=st.integers(min_value=1, max_value=9),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_osnap_kernel_equivalence(self, m, n, s, cols, seed):
        s = min(s, m)
        family = OSNAP(m, n, s=s)
        sketch = family.sample(np.random.SeedSequence(seed))
        a = np.random.default_rng(seed).standard_normal((n, cols))
        assert np.array_equal(
            sketch.kernel.apply(a), np.asarray(sketch.matrix @ a)
        )

    @given(
        m=st.integers(min_value=1, max_value=48),
        n=st.integers(min_value=1, max_value=96),
        q=st.floats(min_value=0.01, max_value=0.4),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_sparsejl_kernel_equivalence(self, m, n, q, seed):
        family = SparseJL(m, n, q=q)
        sketch = family.sample(np.random.SeedSequence(seed))
        a = np.random.default_rng(seed).standard_normal(n)
        assert np.array_equal(
            sketch.kernel.apply(a), np.asarray(sketch.matrix @ a)
        )

    @given(
        m=st.integers(min_value=1, max_value=48),
        reps=st.integers(min_value=1, max_value=12),
        d=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_countsketch_basis_image_equivalence(self, m, reps, d, seed):
        n = max(96, reps * d)
        family = CountSketch(m, n)
        instance = DBeta(n, d, reps=reps)
        draw = instance.sample_draw(np.random.SeedSequence(seed))
        eager = family.sample(np.random.SeedSequence(seed + 1))
        lazy = sample_sketch(
            family, np.random.SeedSequence(seed + 1), lazy=True
        )
        assert np.array_equal(
            lazy.basis_image(draw), draw.sketched_basis(eager.matrix)
        )
