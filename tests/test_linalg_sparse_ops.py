"""Tests for repro.linalg.sparse_ops."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.linalg.sparse_ops import (
    columns_as_csc,
    densify,
    from_triplets,
    nnz,
    sketch_apply_cost,
)


class TestFromTriplets:
    def test_basic_construction(self):
        a = from_triplets([0, 1], [0, 1], [2.0, 3.0], (2, 2))
        assert np.allclose(a.toarray(), [[2.0, 0.0], [0.0, 3.0]])

    def test_duplicates_sum(self):
        a = from_triplets([0, 0], [0, 0], [1.0, 2.0], (1, 1))
        assert a[0, 0] == pytest.approx(3.0)

    def test_out_of_range_row_raises(self):
        with pytest.raises(ValueError):
            from_triplets([5], [0], [1.0], (2, 2))

    def test_out_of_range_col_raises(self):
        with pytest.raises(ValueError):
            from_triplets([0], [9], [1.0], (2, 2))

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            from_triplets([0, 1], [0], [1.0], (2, 2))

    def test_result_is_csc(self):
        a = from_triplets([0], [0], [1.0], (3, 3))
        assert sp.issparse(a)
        assert a.format == "csc"


class TestNnz:
    def test_dense(self):
        assert nnz(np.array([[1.0, 0.0], [0.0, 2.0]])) == 2

    def test_sparse(self):
        a = sp.csc_matrix(np.array([[1.0, 0.0], [0.0, 2.0]]))
        assert nnz(a) == 2

    def test_sparse_with_explicit_zero(self):
        a = sp.csc_matrix(np.array([[1.0, 0.0], [0.0, 2.0]]))
        a.data[0] = 0.0  # stored explicit zero
        assert nnz(a) == 1


class TestSketchApplyCost:
    def test_countsketch_cost_equals_nnz(self):
        # s = 1 per column: cost = nnz(A).
        pi = from_triplets([0, 1, 0], [0, 1, 2], [1.0, -1.0, 1.0], (2, 3))
        a = np.array([[1.0, 0.0], [2.0, 3.0], [0.0, 4.0]])
        assert sketch_apply_cost(pi, a) == 4  # nnz(a)

    def test_s_nonzeros_scales_cost(self):
        rows = [0, 1, 0, 1, 0, 1]
        cols = [0, 0, 1, 1, 2, 2]
        pi = from_triplets(rows, cols, np.ones(6), (2, 3))
        a = np.ones((3, 2))
        assert sketch_apply_cost(pi, a) == 2 * 6

    def test_dense_sketch(self):
        pi = np.ones((4, 3))
        a = np.ones((3, 2))
        assert sketch_apply_cost(pi, a) == 4 * 6

    def test_sparse_input_matrix(self):
        pi = np.ones((2, 3))
        a = sp.csr_matrix(np.array([[1.0, 0.0], [0.0, 0.0], [0.0, 2.0]]))
        assert sketch_apply_cost(pi, a) == 2 * 2

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            sketch_apply_cost(np.ones((2, 3)), np.ones((4, 2)))


class TestDensify:
    def test_dense_passthrough(self):
        a = np.ones((2, 2))
        assert densify(a).shape == (2, 2)

    def test_sparse_densified(self):
        a = sp.eye(3, format="csc")
        out = densify(a)
        assert isinstance(out, np.ndarray)
        assert np.allclose(out, np.eye(3))


class TestColumnsAsCsc:
    def test_from_dense(self):
        out = columns_as_csc(np.eye(3))
        assert out.format == "csc"

    def test_from_csr(self):
        out = columns_as_csc(sp.eye(3, format="csr"))
        assert out.format == "csc"
