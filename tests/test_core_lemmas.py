"""Tests for repro.core.lemmas (Lemma 3, Fact 5, Lemma 14)."""


import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lemmas import (
    fact5_holds,
    fact5_probabilities,
    lemma3_bound,
    lemma3_holds,
    lemma3_probability,
    lemma14_holds,
    lemma14_probability,
)


def unit_rows(rng, size, dim):
    g = rng.standard_normal((size, dim))
    return g / np.linalg.norm(g, axis=1, keepdims=True)


class TestLemma3:
    def test_probability_exact_orthonormal(self):
        # Orthonormal vectors: all off-diagonal products are 0 >= -3eps.
        assert lemma3_probability(np.eye(4), 0.05) == 1.0

    def test_antipodal_pair(self):
        vectors = np.array([[1.0, 0.0], [-1.0, 0.0]])
        # Products: two +1 (diagonal), two -1. P = 1/2.
        assert lemma3_probability(vectors, 0.05) == pytest.approx(0.5)

    def test_bound(self):
        assert lemma3_bound(0.05) == pytest.approx(0.1)

    def test_rejects_vectors_outside_ball(self):
        with pytest.raises(ValueError):
            lemma3_probability(2 * np.eye(3), 0.05)

    def test_rejects_large_epsilon(self):
        with pytest.raises(ValueError):
            lemma3_probability(np.eye(3), 0.2)

    def test_simplex_is_nearly_tight(self):
        # Simplex of size k: off-diagonal products -1/(k-1).  Choose k so
        # -1/(k-1) < -3 eps: only the diagonal survives, P = 1/k > 2 eps.
        epsilon = 0.05
        k = 6
        eye = np.eye(k)
        centered = eye - 1.0 / k
        vectors = centered / np.linalg.norm(centered, axis=1, keepdims=True)
        prob = lemma3_probability(vectors, epsilon)
        assert prob == pytest.approx(1.0 / k)
        assert prob > lemma3_bound(epsilon)

    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        size=st.integers(min_value=1, max_value=40),
        eps_scale=st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=60, deadline=None)
    def test_lemma3_holds_on_random_sets(self, seed, size, eps_scale):
        """The lemma's conclusion on arbitrary random sets in the ball."""
        rng = np.random.default_rng(seed)
        epsilon = eps_scale / 100.0
        vectors = unit_rows(rng, size, 8) * rng.random((size, 1))
        assert lemma3_holds(vectors, epsilon)


class TestFact5:
    def test_symmetric_bounds(self):
        upper, lower = fact5_probabilities(1.0, 0.5, 0.2, a=0.8)
        assert upper >= 0.25
        assert lower >= 0.25

    def test_validates_ordering(self):
        with pytest.raises(ValueError):
            fact5_probabilities(0.1, 0.5, 0.2, a=0.05)

    def test_validates_x1_at_least_a(self):
        with pytest.raises(ValueError):
            fact5_probabilities(1.0, 0.5, 0.2, a=2.0)

    def test_negative_a_rejected(self):
        with pytest.raises(ValueError):
            fact5_probabilities(1.0, 0.5, 0.2, a=-1.0)

    def test_holds_with_zeros(self):
        assert fact5_holds(1.0, 0.0, 0.0, a=1.0)

    @given(
        x1=st.floats(min_value=-10, max_value=10),
        x2=st.floats(min_value=-10, max_value=10),
        x3=st.floats(min_value=-10, max_value=10),
    )
    @settings(max_examples=120)
    def test_fact5_exhaustive(self, x1, x2, x3):
        """Fact 5 for every real triple (sorted into the premise order)."""
        values = sorted([x1, x2, x3], key=abs, reverse=True)
        y1, y2, y3 = values
        a = abs(y1)
        upper, lower = fact5_probabilities(y1, y2, y3, a=a)
        assert upper >= 0.25
        assert lower >= 0.25


class TestLemma14:
    def _planted(self):
        # Row 0 holds 4 heavy entries of magnitude 0.6; fill remaining
        # mass to give each column norm 1.
        a = np.zeros((5, 4))
        a[0] = [0.6, 0.6, -0.6, 0.6]
        for j in range(4):
            a[j + 1, j] = 0.8
        return a

    def test_holds_on_planted_matrix(self):
        a = self._planted()
        result = lemma14_probability(a, row=0, theta=0.6, epsilon=0.05)
        assert result.heavy_set_size == 4
        assert result.holds
        assert result.probability >= result.bound

    def test_probability_counts_large_products(self):
        a = self._planted()
        result = lemma14_probability(a, row=0, theta=0.6, epsilon=0.05)
        # Same-sign pairs give products >= 0.36 - kappa*eps; the exact
        # count: entries (+,+,-,+): 3 positive, 1 negative => among 16
        # ordered pairs, 10 have A_lu*A_lv = +0.36; diagonals also count.
        assert 0.0 < result.probability <= 1.0

    def test_empty_heavy_set_raises(self):
        a = np.zeros((3, 3))
        with pytest.raises(ValueError):
            lemma14_probability(a, row=0, theta=0.5, epsilon=0.05)

    def test_norm_precondition_enforced(self):
        a = np.zeros((2, 2))
        a[0] = [1.0, 1.0]
        a[1] = [1.0, -1.0]  # squared norms 2 > 1 + theta^2
        with pytest.raises(ValueError):
            lemma14_probability(a, row=0, theta=0.9, epsilon=0.05)

    def test_row_out_of_range(self):
        with pytest.raises(IndexError):
            lemma14_probability(np.eye(3), row=5, theta=0.5, epsilon=0.05)

    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        heavy_count=st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=50, deadline=None)
    def test_lemma14_on_random_planted_rows(self, seed, heavy_count):
        """Lemma 14 on random matrices built to satisfy its premises."""
        rng = np.random.default_rng(seed)
        theta = 0.5
        epsilon = 0.05
        m = 6
        a = np.zeros((m, heavy_count))
        signs = rng.choice((-1.0, 1.0), size=heavy_count)
        a[0] = signs * theta
        # Spread the remaining norm over other rows, keeping norms <= 1.
        for j in range(heavy_count):
            rest = rng.standard_normal(m - 1)
            rest *= np.sqrt(1.0 - theta**2) / np.linalg.norm(rest)
            a[1:, j] = rest
        assert lemma14_holds(a, row=0, theta=theta, epsilon=epsilon)
