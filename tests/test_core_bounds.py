"""Tests for repro.core.bounds."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import (
    compare_lower_bounds,
    delta_prime,
    dense_lower_bound,
    max_sparsity_for_quadratic,
    nn13b_lower_bound,
    nn14_sparse_lower_bound,
    quadratic_regime_threshold,
    theorem8_lower_bound,
    theorem8_n,
    theorem9_lower_bound,
    theorem18_lower_bound,
    theorem18_n,
    theorem20_lower_bound,
)


class TestFormulas:
    def test_theorem8_value(self):
        assert theorem8_lower_bound(10, 0.1, 0.1) == pytest.approx(
            100 / (0.01 * 0.1)
        )

    def test_theorem8_rejects_eps_at_eighth(self):
        with pytest.raises(ValueError):
            theorem8_lower_bound(10, 0.125, 0.1)

    def test_theorem8_n_at_least_d(self):
        assert theorem8_n(10, 0.1, 0.1) >= 10

    def test_theorem9(self):
        assert theorem9_lower_bound(12) == 144.0

    def test_theorem18_smaller_than_d2(self):
        value = theorem18_lower_bound(100, 0.01, 0.05)
        assert 0 < value < 100 * 100

    def test_theorem18_n(self):
        assert theorem18_n(10, 0.1, 0.1) >= 10

    def test_theorem20_decreasing_in_s(self):
        values = [theorem20_lower_bound(64, s, 0.05) for s in (2, 4, 8)]
        assert values == sorted(values, reverse=True)

    def test_nn13b(self):
        assert nn13b_lower_bound(7) == 49.0

    def test_nn14(self):
        assert nn14_sparse_lower_bound(10, 0.1) == pytest.approx(1.0)

    def test_dense_bound(self):
        value = dense_lower_bound(10, 0.1, math.exp(-1))
        assert value == pytest.approx((10 + 1) / 0.01)

    def test_delta_prime_positive_for_small_eps(self):
        assert delta_prime(1e-3) > 0

    def test_max_sparsity(self):
        assert max_sparsity_for_quadratic(1 / 90) == 10
        assert max_sparsity_for_quadratic(1 / 9.5) == 1


class TestRegimeThresholds:
    def test_theorem18_threshold_below_nn14(self):
        thresholds = quadratic_regime_threshold(0.01, 0.05)
        assert thresholds["theorem18"] < thresholds["nn14"]

    def test_nn14_threshold_is_eps_minus_4(self):
        thresholds = quadratic_regime_threshold(0.1, 0.05)
        assert thresholds["nn14"] == pytest.approx(1e4)


class TestCompareLowerBounds:
    def test_s1_includes_theorem8(self):
        comp = compare_lower_bounds(100, 0.05, 0.1, s=1)
        assert "theorem8" in comp.bounds
        assert "nn13b" in comp.bounds
        assert "dense" in comp.bounds

    def test_sparse_bounds_require_constraint(self):
        comp = compare_lower_bounds(100, 0.05, 0.1, s=5)
        # 1/(9*0.05) = 2.22 < 5: sparse theorems do not apply.
        assert "theorem18" not in comp.bounds
        assert "nn14" not in comp.bounds

    def test_sparse_bounds_apply_when_sparse_enough(self):
        comp = compare_lower_bounds(100, 0.01, 0.1, s=5)
        assert "theorem18" in comp.bounds
        assert "theorem20" in comp.bounds

    def test_dominant_is_max(self):
        comp = compare_lower_bounds(1000, 0.05, 0.05, s=1)
        assert comp.bounds[comp.dominant] == max(comp.bounds.values())

    def test_theorem8_dominates_for_small_delta_s1(self):
        comp = compare_lower_bounds(100, 0.05, 0.01, s=1)
        assert comp.dominant == "theorem8"

    def test_dense_is_only_bound_for_large_s(self):
        # s = 50 violates every sparsity precondition at eps = 0.05.
        comp = compare_lower_bounds(1, 0.05, 0.3, s=50)
        assert comp.dominant == "dense"
        assert set(comp.bounds) == {"dense"}

    def test_str_contains_dominant(self):
        comp = compare_lower_bounds(64, 0.05, 0.1, s=1)
        assert comp.dominant in str(comp)

    @given(
        d=st.integers(min_value=1, max_value=10**6),
        inv_eps=st.integers(min_value=9, max_value=500),
        s=st.integers(min_value=1, max_value=40),
    )
    @settings(max_examples=60)
    def test_theorem18_beats_nn14_when_both_apply(self, d, inv_eps, s):
        """The paper's claim: eps^{K1 delta} >> eps^2 for small delta."""
        comp = compare_lower_bounds(d, 1.0 / inv_eps, 0.01, s=s)
        if "theorem18" in comp.bounds and "nn14" in comp.bounds:
            assert comp.bounds["theorem18"] >= comp.bounds["nn14"] * 0.9
