"""Plain-text result tables.

Experiment harnesses and benchmarks print their results as aligned text
tables (the reproduction's equivalent of the paper's tables).  This module
renders them without any third-party dependency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Sequence

__all__ = ["TextTable", "format_value"]


def format_value(value: Any, float_format: str = "{:.4g}") -> str:
    """Render a cell value: floats via ``float_format``, rest via ``str``."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return float_format.format(value)
    return str(value)


@dataclass
class TextTable:
    """An aligned plain-text table with a title and column headers.

    Example
    -------
    >>> t = TextTable(title="demo", columns=["d", "m*"])
    >>> t.add_row([8, 123])
    >>> print(t.render())  # doctest: +SKIP
    """

    title: str
    columns: Sequence[str]
    float_format: str = "{:.4g}"
    rows: List[List[str]] = field(default_factory=list)

    def add_row(self, values: Sequence[Any]) -> None:
        """Append a row; must have exactly one value per column."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values but table has "
                f"{len(self.columns)} columns"
            )
        self.rows.append([format_value(v, self.float_format) for v in values])

    def render(self) -> str:
        """Render the table as a string with aligned columns."""
        headers = [str(c) for c in self.columns]
        widths = [len(h) for h in headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt_row(cells: Sequence[str]) -> str:
            return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

        rule = "-" * (sum(widths) + 2 * (len(widths) - 1))
        lines = [self.title, rule, fmt_row(headers), rule]
        lines.extend(fmt_row(row) for row in self.rows)
        lines.append(rule)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
