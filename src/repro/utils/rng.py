"""Random number generator plumbing.

Every stochastic object in this library accepts either a seed-like value or
a fully constructed :class:`numpy.random.Generator`.  No module touches the
global NumPy random state.  The helpers here normalize whatever a caller
passes into an independent generator, and derive statistically independent
child streams for parallel or repeated trials.

Child streams are derived with :meth:`numpy.random.SeedSequence.spawn`, the
mechanism NumPy designed for parallel fan-out: children depend only on the
parent's seed material and a spawn counter, never on values drawn from the
parent generator.  Consequences callers can rely on:

* spawning does **not** advance the parent's stream — the parent draws the
  same values whether or not children were spawned;
* child streams do **not** depend on how much was drawn from the parent
  before spawning, only on how many children were spawned before them;
* the :class:`~numpy.random.SeedSequence` objects from :func:`spawn_seeds`
  are cheap, picklable descriptions of streams, suitable for shipping to
  worker processes (see :mod:`repro.utils.parallel`).
"""

from __future__ import annotations

import contextlib
import contextvars
from typing import Any, Dict, Iterator, List, Optional, Sequence, Union

import numpy as np

__all__ = [
    "RngLike",
    "as_generator",
    "seed_fingerprint",
    "spawn",
    "spawn_many",
    "spawn_seeds",
    "spawn_slice",
    "stream",
    "stream_observer",
    "use_stream_observer",
]

#: The installed stream observer (see :func:`use_stream_observer`), or
#: ``None``.  With none installed — the default — every fan-out site pays
#: exactly one ``ContextVar.get`` returning ``None``; observation never
#: consumes randomness or changes which children are spawned.
_STREAM_OBSERVER: "contextvars.ContextVar[Optional[Any]]" = \
    contextvars.ContextVar("repro_stream_observer", default=None)


def stream_observer() -> Optional[Any]:
    """The installed stream observer, or ``None`` (the default)."""
    return _STREAM_OBSERVER.get()


@contextlib.contextmanager
def use_stream_observer(observer: Any) -> Iterator[Any]:
    """Install ``observer`` as the current stream observer.

    The observer must expose ``record_stream_event(kind, **fields)``; it
    is called from :func:`spawn_seeds` / :func:`spawn_slice` with the
    spawn-tree position (parent entropy + spawn key), the parent's draw
    counter (``base`` = children already spawned), and the children being
    derived.  :mod:`repro.sanitize` uses this to reconstruct the stream
    fan-out of a run and diff it against a reference execution.
    """
    token = _STREAM_OBSERVER.set(observer)
    try:
        yield observer
    finally:
        _STREAM_OBSERVER.reset(token)

#: Anything that can be turned into a :class:`numpy.random.Generator`.
RngLike = Union[None, int, Sequence[int], np.random.SeedSequence, np.random.Generator]


def as_generator(rng: RngLike = None) -> np.random.Generator:
    """Normalize ``rng`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh OS entropy), an integer or sequence of integers
    (used as a seed), a :class:`numpy.random.SeedSequence`, or an existing
    generator (returned unchanged, *not* copied — a shared generator means a
    shared stream, which is what callers threading one generator through a
    pipeline want).
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, np.random.SeedSequence):
        return np.random.default_rng(rng)
    return np.random.default_rng(rng)


def _seed_sequence_of(rng: RngLike) -> Optional[np.random.SeedSequence]:
    """The live :class:`~numpy.random.SeedSequence` backing ``rng``.

    For a generator this is the sequence recorded on its bit generator
    (shared, so spawn counters accumulate across calls); for seed-like
    values a fresh sequence is built.  Returns ``None`` for generators
    whose bit generator does not carry a seed sequence (e.g. restored from
    a raw state), where order-robust spawning is impossible.
    """
    if isinstance(rng, np.random.SeedSequence):
        return rng
    if isinstance(rng, np.random.Generator):
        seq = getattr(rng.bit_generator, "seed_seq", None)
        if seq is None:
            seq = getattr(rng.bit_generator, "_seed_seq", None)
        return seq if isinstance(seq, np.random.SeedSequence) else None
    return np.random.SeedSequence(rng)


def spawn_seeds(rng: RngLike, count: int) -> List[np.random.SeedSequence]:
    """Derive ``count`` independent child :class:`~numpy.random.SeedSequence`\\ s.

    The children are produced by ``SeedSequence.spawn`` on the sequence
    backing ``rng``, so they are provably independent of each other and of
    the parent stream, and do not depend on what was previously *drawn*
    from the parent (only on how many children it has already spawned).
    Seed sequences are picklable, which makes this the right primitive for
    seeding process-pool workers.
    """
    if count < 0:
        raise ValueError(f"count must be nonnegative, got {count}")
    observer = _STREAM_OBSERVER.get()
    seq = _resolve_seed_sequence(rng, observer)
    if observer is not None:
        observer.record_stream_event(
            "spawn",
            entropy=_canonical_entropy(seq),
            spawn_key=[int(key) for key in seq.spawn_key],
            base=int(seq.n_children_spawned),
            count=int(count),
        )
    return seq.spawn(count)


def _resolve_seed_sequence(rng: RngLike,
                           observer: Optional[Any]
                           ) -> np.random.SeedSequence:
    """The sequence backing ``rng``, building a draw-derived fallback."""
    seq = _seed_sequence_of(rng)
    if seq is None:
        # Generator without a recorded SeedSequence: fall back to drawing
        # seed material from its stream (not order-robust, but functional).
        parent = as_generator(rng)
        entropy = [int(x) for x in parent.integers(0, 2**63 - 1, size=4)]
        if observer is not None:
            observer.record_stream_event("fallback_draw",
                                         words=len(entropy))
        # Deliberate draw-derived seeding: this generator carries no
        # SeedSequence, so spawn-based derivation is impossible by
        # construction.
        # repro-lint: disable-next-line=RPL002
        seq = np.random.SeedSequence(entropy)
    return seq


def _canonical_entropy(seq: np.random.SeedSequence) -> Any:
    """``seq.entropy`` coerced to JSON-able builtins (as in fingerprints)."""
    entropy: Any = seq.entropy
    if isinstance(entropy, (list, tuple)):
        return [int(item) for item in entropy]
    if entropy is not None:
        return int(entropy)
    return None


def spawn_slice(rng: RngLike, start: int, stop: int,
                total: Optional[int] = None) -> List[np.random.SeedSequence]:
    """Children ``[start, stop)`` of the next ``total`` spawn slots.

    The shard-slice primitive behind :mod:`repro.shard`: a serial trial
    loop consumes child streams ``0 .. total-1`` of the caller's seed
    sequence (via :func:`spawn_seeds`); a shard that owns the contiguous
    slice ``[start, stop)`` of those trials calls
    ``spawn_slice(rng, start, stop, total=total)`` and receives **the very
    same child sequences** the serial run would have handed to trials
    ``start .. stop-1`` — shard boundaries can never change which stream
    a trial consumes, because children depend only on the parent's seed
    material and the child's index.

    The parent's spawn counter is advanced by ``total`` (default
    ``stop``), exactly as if all ``total`` children had been spawned, so
    every shard leaves the parent stream in the serial run's end state
    and downstream draws stay aligned.
    """
    if not 0 <= start <= stop:
        raise ValueError(
            f"need 0 <= start <= stop, got start={start}, stop={stop}"
        )
    total = stop if total is None else total
    if total < stop:
        raise ValueError(
            f"total ({total}) must cover the slice end ({stop})"
        )
    observer = _STREAM_OBSERVER.get()
    seq = _resolve_seed_sequence(rng, observer)
    if observer is not None:
        observer.record_stream_event(
            "spawn_slice",
            entropy=_canonical_entropy(seq),
            spawn_key=[int(key) for key in seq.spawn_key],
            base=int(seq.n_children_spawned),
            start=int(start), stop=int(stop), total=int(total),
        )
    # SeedSequence.spawn is the only sanctioned way to advance the spawn
    # counter, so all `total` children are derived and the slice is cut
    # out; construction is cheap (entropy mixing only, no bit-generator).
    return seq.spawn(total)[start:stop]


def seed_fingerprint(rng: RngLike = None) -> Optional[Dict[str, Any]]:
    """A canonical, JSON-able description of the stream state behind ``rng``.

    The fingerprint captures exactly what determines every child stream
    :func:`spawn_seeds` will derive next: the backing seed sequence's
    entropy, spawn key, pool size, and how many children it has already
    spawned.  Two RNGs with equal fingerprints produce bit-identical
    spawned streams, which makes the fingerprint the right "seed entropy"
    component for content-addressed caching of Monte-Carlo computations
    (see :mod:`repro.cache`).

    Returns ``None`` for generators that carry no
    :class:`~numpy.random.SeedSequence` (e.g. restored from a raw bit
    generator state) — their spawn behaviour is draw-derived and cannot be
    described without perturbing the stream, so callers must treat them as
    uncacheable.
    """
    seq = _seed_sequence_of(rng)
    if seq is None:
        return None
    return {
        "entropy": _canonical_entropy(seq),
        "spawn_key": [int(key) for key in seq.spawn_key],
        "pool_size": int(seq.pool_size),
        "children_spawned": int(seq.n_children_spawned),
    }


def spawn(rng: RngLike = None) -> np.random.Generator:
    """Return a new generator independent of ``rng``.

    Unlike :func:`as_generator`, the result never aliases the input: passing
    the same generator twice yields two distinct child streams (the spawn
    counter lives on the generator's seed sequence).  Spawning leaves the
    parent's own stream untouched.
    """
    return np.random.default_rng(spawn_seeds(rng, 1)[0])


def spawn_many(rng: RngLike, count: int) -> List[np.random.Generator]:
    """Return ``count`` mutually independent child generators of ``rng``."""
    return [np.random.default_rng(seq) for seq in spawn_seeds(rng, count)]


def stream(rng: RngLike = None) -> Iterator[np.random.Generator]:
    """Yield an unbounded sequence of independent child generators."""
    parent = as_generator(rng)
    while True:
        yield spawn(parent)
