"""Random number generator plumbing.

Every stochastic object in this library accepts either a seed-like value or
a fully constructed :class:`numpy.random.Generator`.  No module touches the
global NumPy random state.  The helpers here normalize whatever a caller
passes into an independent generator, and derive statistically independent
child streams for parallel or repeated trials.
"""

from __future__ import annotations

from typing import Iterator, Sequence, Union

import numpy as np

__all__ = [
    "RngLike",
    "as_generator",
    "spawn",
    "spawn_many",
    "stream",
]

#: Anything that can be turned into a :class:`numpy.random.Generator`.
RngLike = Union[None, int, Sequence[int], np.random.SeedSequence, np.random.Generator]


def as_generator(rng: RngLike = None) -> np.random.Generator:
    """Normalize ``rng`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh OS entropy), an integer or sequence of integers
    (used as a seed), a :class:`numpy.random.SeedSequence`, or an existing
    generator (returned unchanged, *not* copied — a shared generator means a
    shared stream, which is what callers threading one generator through a
    pipeline want).
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, np.random.SeedSequence):
        return np.random.default_rng(rng)
    return np.random.default_rng(rng)


def spawn(rng: RngLike = None) -> np.random.Generator:
    """Return a new generator independent of ``rng``.

    Unlike :func:`as_generator`, the result never aliases the input: passing
    the same generator twice yields two distinct child streams.
    """
    parent = as_generator(rng)
    seed = parent.integers(0, 2**63 - 1, size=4)
    return np.random.default_rng(np.random.SeedSequence(list(int(s) for s in seed)))


def spawn_many(rng: RngLike, count: int) -> list:
    """Return ``count`` mutually independent child generators of ``rng``."""
    if count < 0:
        raise ValueError(f"count must be nonnegative, got {count}")
    parent = as_generator(rng)
    return [spawn(parent) for _ in range(count)]


def stream(rng: RngLike = None) -> Iterator[np.random.Generator]:
    """Yield an unbounded sequence of independent child generators."""
    parent = as_generator(rng)
    while True:
        yield spawn(parent)
