"""Parameter-grid construction for sweeps.

Experiments sweep dimensions, sparsities and accuracies over structured
grids; these helpers build them deterministically so EXPERIMENTS.md numbers
are reproducible.
"""

from __future__ import annotations

from typing import List

import numpy as np

from .validation import check_positive_int

__all__ = [
    "log_int_grid",
    "geometric_grid",
    "dyadic_grid",
]


def log_int_grid(low: int, high: int, points: int) -> List[int]:
    """Distinct integers roughly logarithmically spaced in ``[low, high]``.

    Duplicates after rounding are collapsed, so the result may contain fewer
    than ``points`` values; both endpoints are always present.
    """
    low = check_positive_int(low, "low")
    high = check_positive_int(high, "high")
    points = check_positive_int(points, "points")
    if low > high:
        raise ValueError(f"low ({low}) must not exceed high ({high})")
    if points == 1 or low == high:
        return sorted({low, high})
    raw = np.exp(np.linspace(np.log(low), np.log(high), points))
    values = sorted({int(round(v)) for v in raw} | {low, high})
    return values


def geometric_grid(low: float, high: float, points: int) -> List[float]:
    """``points`` floats geometrically spaced over ``[low, high]``."""
    points = check_positive_int(points, "points")
    if low <= 0 or high <= 0:
        raise ValueError("geometric_grid requires positive endpoints")
    if low > high:
        raise ValueError(f"low ({low}) must not exceed high ({high})")
    if points == 1:
        return [low]
    return list(np.exp(np.linspace(np.log(low), np.log(high), points)))


def dyadic_grid(low: int, high: int) -> List[int]:
    """Powers of two in ``[low, high]``, e.g. sparsity levels ``s = 2^l``."""
    low = check_positive_int(low, "low")
    high = check_positive_int(high, "high")
    if low > high:
        raise ValueError(f"low ({low}) must not exceed high ({high})")
    values = []
    v = 1
    while v <= high:
        if v >= low:
            values.append(v)
        v *= 2
    return values
