"""Shared utilities: RNG plumbing, validation, statistics, grids, tables."""

from .grids import dyadic_grid, geometric_grid, log_int_grid
from .parallel import TrialExecutor, resolve_workers, run_trials
from .rng import RngLike, as_generator, spawn, spawn_many, spawn_seeds, stream
from .serialization import json_default, to_builtin
from .stats import (
    BernoulliEstimate,
    estimate_probability,
    fit_power_law,
    geometric_mean,
    wilson_interval,
)
from .tables import TextTable, format_value
from .validation import (
    check_epsilon,
    check_in_range,
    check_matrix,
    check_nonnegative_int,
    check_positive_int,
    check_power_of_two,
    check_probability,
)

__all__ = [
    "RngLike",
    "as_generator",
    "spawn",
    "spawn_many",
    "spawn_seeds",
    "stream",
    "TrialExecutor",
    "resolve_workers",
    "run_trials",
    "BernoulliEstimate",
    "estimate_probability",
    "fit_power_law",
    "geometric_mean",
    "wilson_interval",
    "TextTable",
    "format_value",
    "json_default",
    "to_builtin",
    "dyadic_grid",
    "geometric_grid",
    "log_int_grid",
    "check_epsilon",
    "check_in_range",
    "check_matrix",
    "check_nonnegative_int",
    "check_positive_int",
    "check_power_of_two",
    "check_probability",
]
