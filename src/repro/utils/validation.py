"""Argument validation helpers shared across the library.

All public constructors validate their parameters eagerly and raise
:class:`ValueError` (wrong value) or :class:`TypeError` (wrong kind) with a
message naming the offending argument.  Centralizing the checks keeps error
messages consistent and the call sites one line long.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = [
    "check_positive_int",
    "check_nonnegative_int",
    "check_probability",
    "check_epsilon",
    "check_in_range",
    "check_matrix",
    "check_power_of_two",
]


def check_positive_int(value, name: str) -> int:
    """Return ``value`` as int, requiring it to be a positive integer."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_nonnegative_int(value, name: str) -> int:
    """Return ``value`` as int, requiring it to be a nonnegative integer."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value < 0:
        raise ValueError(f"{name} must be nonnegative, got {value}")
    return value


def check_probability(value, name: str, *, allow_zero: bool = False,
                      allow_one: bool = False) -> float:
    """Return ``value`` as float, requiring it to lie in (0, 1) by default."""
    value = float(value)
    if not np.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value}")
    low_ok = value > 0.0 or (allow_zero and value == 0.0)
    high_ok = value < 1.0 or (allow_one and value == 1.0)
    if not (low_ok and high_ok):
        lo = "[0" if allow_zero else "(0"
        hi = "1]" if allow_one else "1)"
        raise ValueError(f"{name} must lie in {lo}, {hi}, got {value}")
    return value


def check_epsilon(value, name: str = "epsilon", *, upper: float = 1.0) -> float:
    """Return ``value`` as float, requiring ``0 < value < upper``."""
    value = float(value)
    if not (0.0 < value < upper):
        raise ValueError(f"{name} must lie in (0, {upper}), got {value}")
    return value


def check_in_range(value, name: str, low: float, high: float, *,
                   inclusive: bool = True) -> float:
    """Return ``value`` as float, requiring it to lie in the given range."""
    value = float(value)
    if inclusive:
        ok = low <= value <= high
        bounds = f"[{low}, {high}]"
    else:
        ok = low < value < high
        bounds = f"({low}, {high})"
    if not ok:
        raise ValueError(f"{name} must lie in {bounds}, got {value}")
    return value


def check_matrix(a, name: str, *, ndim: int = 2,
                 shape: Optional[tuple] = None) -> np.ndarray:
    """Return ``a`` as a float ndarray, checking dimensionality and shape.

    ``shape`` entries set to ``None`` are unconstrained, e.g.
    ``shape=(None, 3)`` requires exactly 3 columns.
    """
    a = np.asarray(a, dtype=float)
    if a.ndim != ndim:
        raise ValueError(f"{name} must be {ndim}-dimensional, got ndim={a.ndim}")
    if shape is not None:
        for axis, want in enumerate(shape):
            if want is not None and a.shape[axis] != want:
                raise ValueError(
                    f"{name} must have shape {shape}, got {a.shape}"
                )
    if not np.all(np.isfinite(a)):
        raise ValueError(f"{name} must contain only finite values")
    return a


def check_power_of_two(value, name: str) -> int:
    """Return ``value`` as int, requiring it to be a power of two."""
    value = check_positive_int(value, name)
    if value & (value - 1) != 0:
        raise ValueError(f"{name} must be a power of two, got {value}")
    return value
