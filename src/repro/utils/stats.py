"""Statistical primitives for Monte-Carlo experiments.

Every empirical probability produced by this library is reported as a
:class:`BernoulliEstimate` — the point estimate plus a Wilson score interval
and the trial count — rather than a bare float, so downstream code (and the
experiment tables) can distinguish "0.0 out of 20 trials" from "0.0 out of
20000 trials".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import partial
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from ..observe.trace import trace
from .parallel import TrialExecutor
from .rng import RngLike, as_generator
from .validation import check_nonnegative_int, check_positive_int

__all__ = [
    "BernoulliEstimate",
    "wilson_interval",
    "estimate_probability",
    "fit_power_law",
    "geometric_mean",
]


def wilson_interval(successes: int, trials: int,
                    confidence: float = 0.95) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Preferred over the normal approximation because it behaves sensibly at
    the boundaries (0 or ``trials`` successes), which is exactly where OSE
    failure-rate estimates live.
    """
    successes = check_nonnegative_int(successes, "successes")
    trials = check_positive_int(trials, "trials")
    if successes > trials:
        raise ValueError(
            f"successes ({successes}) cannot exceed trials ({trials})"
        )
    if not (0.0 < confidence < 1.0):
        raise ValueError(f"confidence must lie in (0, 1), got {confidence}")
    # Two-sided normal quantile via the inverse error function.
    z = math.sqrt(2.0) * _erfinv(confidence)
    p = successes / trials
    denom = 1.0 + z * z / trials
    center = (p + z * z / (2 * trials)) / denom
    margin = (z / denom) * math.sqrt(
        p * (1 - p) / trials + z * z / (4 * trials * trials)
    )
    return max(0.0, center - margin), min(1.0, center + margin)


def _erfinv(x: float) -> float:
    """Inverse error function (scipy-free; used only for z-scores)."""
    # Winitzki's approximation followed by one Newton step; accurate to ~1e-9
    # after refinement, far beyond what confidence intervals need.
    a = 0.147
    ln1mx2 = math.log1p(-x * x)
    term = 2.0 / (math.pi * a) + ln1mx2 / 2.0
    guess = math.copysign(
        math.sqrt(math.sqrt(term * term - ln1mx2 / a) - term), x
    )
    for _ in range(2):
        err = math.erf(guess) - x
        deriv = 2.0 / math.sqrt(math.pi) * math.exp(-guess * guess)
        guess -= err / deriv
    return guess


@dataclass(frozen=True)
class BernoulliEstimate:
    """An estimated Bernoulli success probability with uncertainty.

    Attributes
    ----------
    successes:
        Number of trials in which the event occurred.
    trials:
        Total number of independent trials.
    confidence:
        Confidence level of the Wilson interval (default 0.95).
    """

    successes: int
    trials: int
    confidence: float = 0.95

    def __post_init__(self):
        check_nonnegative_int(self.successes, "successes")
        check_positive_int(self.trials, "trials")
        if self.successes > self.trials:
            raise ValueError(
                f"successes ({self.successes}) cannot exceed trials "
                f"({self.trials})"
            )

    @property
    def point(self) -> float:
        """Maximum-likelihood point estimate ``successes / trials``."""
        return self.successes / self.trials

    @property
    def interval(self) -> Tuple[float, float]:
        """Wilson score confidence interval."""
        return wilson_interval(self.successes, self.trials, self.confidence)

    @property
    def low(self) -> float:
        return self.interval[0]

    @property
    def high(self) -> float:
        return self.interval[1]

    def likely_at_most(self, threshold: float) -> bool:
        """True when the upper confidence limit is ≤ ``threshold``."""
        return self.high <= threshold

    def likely_at_least(self, threshold: float) -> bool:
        """True when the lower confidence limit is ≥ ``threshold``."""
        return self.low >= threshold

    def merge(self, other: "BernoulliEstimate") -> "BernoulliEstimate":
        """Pool trials from two estimates of the same quantity.

        Both estimates must quote the same confidence level; pooling a
        0.95-interval estimate into a 0.99 one would silently relabel the
        merged interval (this guards ``MinimalMResult.estimate_at``, which
        pools repeated probes of one target dimension).
        """
        if not isinstance(other, BernoulliEstimate):
            raise TypeError("can only merge with another BernoulliEstimate")
        if other.confidence != self.confidence:
            raise ValueError(
                f"cannot pool estimates with different confidence levels "
                f"({self.confidence} vs {other.confidence})"
            )
        return BernoulliEstimate(
            self.successes + other.successes,
            self.trials + other.trials,
            self.confidence,
        )

    def __str__(self) -> str:
        lo, hi = self.interval
        return (
            f"{self.point:.4f} [{lo:.4f}, {hi:.4f}] "
            f"({self.successes}/{self.trials})"
        )


def _event_trial(event: Callable[[np.random.Generator], bool],
                 seed: np.random.SeedSequence) -> bool:
    """One event trial seeded by its own child sequence (picklable)."""
    return bool(event(as_generator(seed)))


def estimate_probability(event: Callable[[np.random.Generator], bool],
                         trials: int,
                         rng: RngLike = None,
                         confidence: float = 0.95,
                         workers: Optional[int] = 1,
                         chunk_size: Optional[int] = None) -> BernoulliEstimate:
    """Estimate ``P[event]`` with ``trials`` independent Monte-Carlo trials.

    ``event`` receives a fresh child generator per trial and returns a bool.
    ``workers`` distributes trials over a process pool (``None``/``0`` =
    all CPUs) with bit-identical results across ``workers`` settings at a
    fixed seed; ``event`` must then be picklable (a module-level function,
    not a lambda or closure).
    """
    trials = check_positive_int(trials, "trials")
    executor = TrialExecutor(workers=workers, chunk_size=chunk_size)
    with trace("estimate_probability", trials=trials):
        outcomes = executor.run(partial(_event_trial, event), trials, rng)
    return BernoulliEstimate(sum(outcomes), trials, confidence)


def fit_power_law(x: Sequence[float], y: Sequence[float]) -> Tuple[float, float]:
    """Fit ``y ≈ c * x**alpha`` by least squares in log-log space.

    Returns ``(alpha, c)``.  Used to extract empirical scaling exponents
    (e.g. the slope of the minimal sketching dimension against ``d``) and
    compare them with the paper's predicted exponents.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("x and y must be 1-d arrays of equal length")
    if x.size < 2:
        raise ValueError("need at least two points to fit a power law")
    if np.any(x <= 0) or np.any(y <= 0):
        raise ValueError("power-law fit requires strictly positive data")
    alpha, logc = np.polyfit(np.log(x), np.log(y), deg=1)
    return float(alpha), float(np.exp(logc))


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of strictly positive values."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("geometric_mean of empty sequence")
    if np.any(values <= 0):
        raise ValueError("geometric_mean requires strictly positive values")
    return float(np.exp(np.mean(np.log(values))))
