"""JSON-safe coercion of numpy-bearing result payloads.

Experiment metrics and table rows routinely pick up numpy scalar types
(``np.int64`` loop indices, ``np.float32`` metric values) that the stdlib
``json`` encoder rejects outright — ``json.dumps({"x": np.int64(3)})``
raises ``TypeError``, which used to crash ``--json-dir`` saves *after* a
completed run.  These helpers normalize such payloads to builtins.
"""

from __future__ import annotations

from typing import Any

import numpy as np

__all__ = ["to_builtin", "json_default"]


def to_builtin(value: Any) -> Any:
    """Recursively convert numpy scalars/arrays to plain Python builtins.

    Dictionaries, lists, and tuples are rebuilt (tuples become lists, as
    JSON round-trips would anyway); numpy scalars become their Python
    equivalents via ``.item()``; arrays become nested lists.  Builtins
    pass through unchanged.
    """
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {to_builtin(key): to_builtin(val) for key, val in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_builtin(item) for item in value]
    return value


def json_default(value: Any) -> Any:
    """``json.dumps(..., default=json_default)`` fallback for numpy types."""
    if isinstance(value, (np.generic, np.ndarray)):
        return to_builtin(value)
    raise TypeError(
        f"Object of type {type(value).__name__} is not JSON serializable"
    )
