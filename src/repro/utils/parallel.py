"""Deterministic parallel Monte-Carlo trial engine.

Every trial loop in this library (failure-rate estimation, distortion
sampling, generic event probabilities) has the same shape: run ``trials``
independent experiments, each consuming its own random stream, and combine
the per-trial results.  :class:`TrialExecutor` factors that shape out and
makes it parallel-safe:

* per-trial randomness is derived **up front** as child
  :class:`~numpy.random.SeedSequence`\\ s of the caller's RNG (see
  :func:`repro.utils.rng.spawn_seeds`), so trial ``t`` sees the same
  stream no matter which worker runs it, in what order, or in which chunk;
* results are reassembled in trial order, so serial (``workers=1``) and
  parallel (``workers>1``) runs of the same seed are **bit-identical**;
* the process-pool backend ships chunked batches of seed sequences (cheap
  and picklable) rather than generators, keeping dispatch overhead small.

The trial function must be picklable for ``workers > 1`` — a module-level
function, or a :func:`functools.partial` of one over picklable arguments.
Closures and lambdas only work in serial mode.
"""

from __future__ import annotations

import concurrent.futures
import os
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from ..observe.counters import counters
from ..observe.ledger import emit_event
from .rng import RngLike, spawn_seeds
from .validation import check_positive_int

__all__ = [
    "ShardSpec",
    "TrialExecutor",
    "available_cpus",
    "normalize_shard",
    "resolve_workers",
    "run_trials",
    "shard_spans",
]

#: A per-trial computation: receives the trial's own seed sequence and
#: returns any picklable result.
TrialFn = Callable[[np.random.SeedSequence], Any]

#: A chunk-level computation: receives a whole chunk of per-trial seed
#: sequences at once and returns one result per seed, in order.  Used by
#: the batched trial engine, where a chunk is processed in one vectorized
#: call instead of a per-seed loop.
ChunkFn = Callable[[Sequence[np.random.SeedSequence]], list]


def available_cpus() -> int:
    """CPUs this process may actually run on, not just what the host has.

    ``os.cpu_count()`` reports the machine's processors even when the
    process is pinned to a cpuset slice (containers, ``taskset``, k8s CPU
    limits) — sizing a process pool from it over-subscribes the slice and
    thrashes.  The scheduler affinity mask is authoritative where exposed
    (Linux); platforms without ``sched_getaffinity`` fall back to
    ``os.cpu_count()``.  Always at least 1.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return len(getaffinity(0)) or 1
        except OSError:
            pass
    return os.cpu_count() or 1


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a ``workers`` knob: ``None``/``0`` means all available CPUs.

    "Available" is affinity-aware (:func:`available_cpus`), so a cpuset-
    limited container sizes its pools from its actual CPU slice.
    """
    if workers is None or workers == 0:
        return available_cpus()
    if workers < 0:
        raise ValueError(f"workers must be nonnegative or None, got {workers}")
    return workers


@dataclass(frozen=True)
class ShardSpec:
    """One worker's identity in an N-way sharded trial fan-out.

    ``index`` is this shard's position in ``[0, count)``; ``count`` is the
    total number of shards the trial budget is split across.  A spec with
    ``count == 1`` describes an unsharded run (see :func:`normalize_shard`).
    """

    index: int
    count: int

    def __post_init__(self):
        check_positive_int(self.count, "shard count")
        if not 0 <= self.index < self.count:
            raise ValueError(
                f"shard index must lie in [0, {self.count}), got {self.index}"
            )

    @property
    def label(self) -> str:
        """Human-readable ``index/count`` tag for ledgers and reports."""
        return f"{self.index}/{self.count}"


def normalize_shard(shard: Any) -> Optional[ShardSpec]:
    """Normalize a ``shard`` knob: ``None`` or ``count == 1`` mean serial.

    Accepts ``None``, a :class:`ShardSpec`, or an ``(index, count)`` pair.
    Returns ``None`` whenever the described fan-out is degenerate (a
    single shard owns the whole budget), so callers can branch on
    ``shard is None`` for the serial fast path.
    """
    if shard is None:
        return None
    if not isinstance(shard, ShardSpec):
        try:
            index, count = shard
        except (TypeError, ValueError):
            raise ValueError(
                f"shard must be None, a ShardSpec, or an (index, count) "
                f"pair, got {shard!r}"
            ) from None
        shard = ShardSpec(int(index), int(count))
    return None if shard.count == 1 else shard


def shard_spans(total: int, count: int, step: int = 1) -> List[Tuple[int, int]]:
    """Contiguous trial spans assigning ``total`` trials to ``count`` shards.

    The spans tile ``[0, total)`` exactly — disjoint, ordered, complete —
    so shard ``k`` owns trials ``spans[k][0] .. spans[k][1] - 1`` and the
    union over shards is precisely the serial trial range.  The split is
    balanced in units of ``step`` trials: with ``step > 1`` (the batched
    engine's chunk size) every span boundary falls on a multiple of
    ``step``, so each shard's chunk decomposition coincides with the
    serial run's and chunk-composition-dependent arithmetic stays
    bit-identical.  Shards beyond the available units receive empty spans
    rather than raising — a shard with nothing to do is valid.
    """
    if total < 0:
        raise ValueError(f"total must be nonnegative, got {total}")
    count = check_positive_int(count, "count")
    step = check_positive_int(step, "step")
    units = -(-total // step) if total else 0
    base, extra = divmod(units, count)
    spans: List[Tuple[int, int]] = []
    unit = 0
    for index in range(count):
        size = base + (1 if index < extra else 0)
        lo = min(unit * step, total)
        unit += size
        hi = min(unit * step, total)
        spans.append((lo, hi))
    return spans


def _run_chunk(fn: TrialFn, seeds: Sequence[np.random.SeedSequence]) -> list:
    """Run ``fn`` over a batch of trial seeds, preserving order."""
    return [fn(seed) for seed in seeds]


class _ChunkOutcome(NamedTuple):
    """What one executed chunk ships back: results plus observability."""

    pid: int
    elapsed: float
    counter_delta: Dict[str, int]
    results: list


def _run_chunk_call_observed(fn: ChunkFn,
                             seeds: Sequence[np.random.SeedSequence]
                             ) -> _ChunkOutcome:
    """Run one chunk through a chunk-level ``fn``, with observability.

    The chunk-function analogue of :func:`_run_chunk_observed`: same
    counter-delta and timing capture, but ``fn`` sees the whole seed list
    in one call (and must return one result per seed, in order).
    """
    before = counters().snapshot()
    started = time.perf_counter()
    results = list(fn(seeds))
    if len(results) != len(seeds):
        raise ValueError(
            f"chunk function returned {len(results)} results for "
            f"{len(seeds)} seeds"
        )
    counters().increment("trials", len(results))
    elapsed = time.perf_counter() - started
    return _ChunkOutcome(
        os.getpid(), elapsed, counters().diff(before), results
    )


def _run_chunk_observed(fn: TrialFn,
                        seeds: Sequence[np.random.SeedSequence]
                        ) -> _ChunkOutcome:
    """Run a chunk and capture its wall-clock and counter delta.

    Runs in the worker process for parallel dispatch; the counter delta
    (including the ``trials`` count) is snapshotted there and merged back
    into the parent so counter totals are identical for serial and
    parallel runs of the same workload.
    """
    before = counters().snapshot()
    started = time.perf_counter()
    results = _run_chunk(fn, seeds)
    counters().increment("trials", len(results))
    elapsed = time.perf_counter() - started
    return _ChunkOutcome(
        os.getpid(), elapsed, counters().diff(before), results
    )


@dataclass(frozen=True)
class TrialExecutor:
    """Runs independent Monte-Carlo trials serially or on a process pool.

    Parameters
    ----------
    workers:
        Number of worker processes; ``1`` (default) runs in-process with
        zero overhead, ``None`` or ``0`` uses all CPUs.
    chunk_size:
        Trials per dispatched batch.  Defaults to splitting the trials
        into about four batches per worker, which balances scheduling
        granularity against inter-process overhead.

    Determinism
    -----------
    For a fixed ``rng``, :meth:`run` returns the same list — element for
    element, bit for bit — for every ``workers`` and ``chunk_size``
    setting, because trial ``t`` always consumes child seed ``t`` of the
    caller's seed sequence and nothing else.
    """

    workers: Optional[int] = 1
    chunk_size: Optional[int] = None

    def __post_init__(self):
        if self.workers is not None and self.workers < 0:
            raise ValueError(
                f"workers must be nonnegative or None, got {self.workers}"
            )
        if self.chunk_size is not None:
            check_positive_int(self.chunk_size, "chunk_size")

    def run(self, fn: TrialFn, trials: int, rng: RngLike = None) -> list:
        """Run ``fn`` on ``trials`` child seeds of ``rng``, in trial order."""
        trials = check_positive_int(trials, "trials")
        return self.run_seeded(fn, spawn_seeds(rng, trials))

    def run_seeded(self, fn: TrialFn,
                   seeds: Sequence[np.random.SeedSequence]) -> list:
        """Run ``fn`` once per seed, returning results in seed order."""
        seeds = list(seeds)
        workers = resolve_workers(self.workers)
        if workers <= 1 or len(seeds) <= 1:
            emit_event("batch_dispatch", batches=1, trials=len(seeds),
                       parallel=False)
            outcome = _run_chunk_observed(fn, seeds)
            self._record(outcome, batch=0, span=(0, len(seeds)))
            return outcome.results
        chunks = self._chunked(seeds, workers)
        spans, start = [], 0
        for chunk in chunks:
            spans.append((start, start + len(chunk)))
            start += len(chunk)
        emit_event("batch_dispatch", batches=len(chunks),
                   trials=len(seeds), parallel=True)
        results: list = []
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=min(workers, len(chunks))
        ) as pool:
            batched = pool.map(
                _run_chunk_observed, [fn] * len(chunks), chunks
            )
            for index, outcome in enumerate(batched):
                self._record(outcome, batch=index, span=spans[index])
                results.extend(outcome.results)
        return results

    def run_chunked(self, fn: ChunkFn,
                    seeds: Sequence[np.random.SeedSequence]) -> list:
        """Run a chunk-level ``fn`` over the seeds, in seed order.

        Splits the seeds into the same chunks :meth:`run_seeded` would
        dispatch, but hands each chunk to ``fn`` *whole* — the batched
        trial engine processes it in one vectorized call.  Serial and
        parallel execution use the identical chunk decomposition, so a
        chunk function whose output depends on chunk composition (batched
        kernels pad data-dependently within a chunk) is still bit-identical
        across ``workers`` settings **provided ``chunk_size`` is pinned**;
        with ``chunk_size=None`` the heuristic chunking depends on the
        worker count, and only per-trial-independent chunk functions are
        reproducible across configurations.
        """
        seeds = list(seeds)
        workers = resolve_workers(self.workers)
        chunks = self._chunked(seeds, workers)
        spans, start = [], 0
        for chunk in chunks:
            spans.append((start, start + len(chunk)))
            start += len(chunk)
        if workers <= 1 or len(chunks) <= 1:
            emit_event("batch_dispatch", batches=len(chunks),
                       trials=len(seeds), parallel=False)
            results: list = []
            for index, chunk in enumerate(chunks):
                outcome = _run_chunk_call_observed(fn, chunk)
                self._record(outcome, batch=index, span=spans[index])
                results.extend(outcome.results)
            return results
        emit_event("batch_dispatch", batches=len(chunks),
                   trials=len(seeds), parallel=True)
        gathered: list = []
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=min(workers, len(chunks))
        ) as pool:
            batched = pool.map(
                _run_chunk_call_observed, [fn] * len(chunks), chunks
            )
            for index, outcome in enumerate(batched):
                self._record(outcome, batch=index, span=spans[index])
                gathered.extend(outcome.results)
        return gathered

    @staticmethod
    def _record(outcome: _ChunkOutcome, batch: int,
                span: Tuple[int, int]) -> None:
        """Absorb one chunk's observability: counters and a batch event.

        Counter deltas are merged only when the chunk ran in another
        process — in-process chunks already incremented this process's
        aggregate directly.
        """
        if outcome.pid != os.getpid():
            counters().merge(outcome.counter_delta)
        emit_event("batch_done", batch=batch, span=list(span),
                   trials=span[1] - span[0], worker=outcome.pid,
                   elapsed=outcome.elapsed)

    def _chunked(self, seeds: List[np.random.SeedSequence],
                 workers: int) -> List[List[np.random.SeedSequence]]:
        size = self.chunk_size
        if size is None:
            size = max(1, -(-len(seeds) // (4 * workers)))
        return [seeds[i:i + size] for i in range(0, len(seeds), size)]


def run_trials(fn: TrialFn, trials: int, rng: RngLike = None,
               workers: Optional[int] = 1,
               chunk_size: Optional[int] = None) -> list:
    """One-shot convenience wrapper around :class:`TrialExecutor`."""
    return TrialExecutor(workers=workers, chunk_size=chunk_size).run(
        fn, trials, rng
    )
