"""repro — reproduction of *Lower Bounds for Sparse Oblivious Subspace
Embeddings* (Yi Li & Mingmou Liu, PODS 2022).

The package provides:

* :mod:`repro.sketch` — every sketch construction the paper discusses
  (CountSketch, OSNAP, Gaussian, sparse JL, SRHT, the Remark 10
  block-Hadamard OSE, row sampling);
* :mod:`repro.hardinstances` — the hard-instance distributions ``D_β`` of
  Definition 2 and the mixtures of Sections 3 and 5;
* :mod:`repro.core` — executable versions of the paper's lemmas and
  Algorithm 1/2, closed-form bound formulas, Monte-Carlo subspace-embedding
  testing, and end-to-end lower-bound certification;
* :mod:`repro.linalg` — the numerical substrate (distortion via singular
  values, Gram tools, Hadamard transforms);
* :mod:`repro.apps` — the downstream tasks motivating OSEs (regression,
  low-rank approximation, k-means, leverage scores);
* :mod:`repro.experiments` — the experiment harness regenerating every
  table in EXPERIMENTS.md;
* :mod:`repro.observe` — the run-ledger/tracing/counter observability
  layer (``--ledger``, ``python -m repro.observe summarize``).

Quickstart::

    from repro.sketch import CountSketch
    from repro.hardinstances import section3_mixture
    from repro.core import failure_estimate

    d, eps, delta = 8, 0.1, 0.1
    n = 4 * d * d  # ambient dimension
    inst = section3_mixture(n=n, d=d, epsilon=eps)
    fam = CountSketch(m=CountSketch.recommended_m(d, eps, delta), n=n)
    print(failure_estimate(fam, inst, eps, trials=100, rng=0))
"""

from . import apps, core, hardinstances, linalg, observe, sketch, utils

__version__ = "1.0.0"

__all__ = [
    "apps",
    "core",
    "hardinstances",
    "linalg",
    "observe",
    "sketch",
    "utils",
    "__version__",
]
