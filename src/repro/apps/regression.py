"""Sketch-and-solve least-squares regression.

The canonical OSE application (Clarkson–Woodruff): to solve
``min_x ‖Ax - b‖₂`` with ``A ∈ R^{n×d}``, sketch to
``min_x ‖Π(Ax - b)‖₂`` with ``Π`` an OSE for the ``(d+1)``-dimensional
subspace spanned by the columns of ``A`` and ``b``.  If ``Π`` ε-embeds that
subspace, the sketched minimizer ``x̃`` satisfies

    ‖Ax̃ - b‖₂ ≤ ((1+ε)/(1-ε)) · ‖Ax* - b‖₂.

Experiment E11 measures the realized error ratio and the sketching cost
for each family at its theory-prescribed ``m``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np
import scipy.sparse as sp

from ..sketch.base import SketchFamily
from ..utils.rng import RngLike, as_generator
from ..utils.validation import check_epsilon, check_matrix

__all__ = [
    "lstsq",
    "sketched_lstsq",
    "RegressionResult",
    "error_ratio_bound",
]

MatrixLike = Union[np.ndarray, sp.spmatrix]


def lstsq(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Exact least-squares solution ``argmin_x ‖Ax - b‖₂``."""
    a = check_matrix(a, "a")
    b = np.asarray(b, dtype=float)
    if b.ndim != 1 or b.shape[0] != a.shape[0]:
        raise ValueError(
            f"b must be a vector of length {a.shape[0]}, got shape {b.shape}"
        )
    solution, *_ = np.linalg.lstsq(a, b, rcond=None)
    return solution


@dataclass(frozen=True)
class RegressionResult:
    """Outcome of a sketched regression solve.

    Attributes
    ----------
    x:
        The sketched solution ``x̃``.
    residual:
        ``‖Ax̃ - b‖₂`` in the *original* (unsketched) space.
    optimal_residual:
        ``‖Ax* - b‖₂`` of the exact solution (computed when requested).
    sketch_cost:
        Exact multiplication count of forming ``ΠA`` and ``Πb``.
    m:
        Target dimension used.
    """

    x: np.ndarray
    residual: float
    optimal_residual: Optional[float]
    sketch_cost: int
    m: int

    @property
    def ratio(self) -> Optional[float]:
        """Residual ratio ``‖Ax̃-b‖ / ‖Ax*-b‖`` (None without baseline
        or when the exact problem is consistent)."""
        if self.optimal_residual is None or self.optimal_residual == 0:
            return None
        return self.residual / self.optimal_residual


def error_ratio_bound(epsilon: float) -> float:
    """The guaranteed residual ratio ``(1+ε)/(1-ε)`` of sketch-and-solve."""
    epsilon = check_epsilon(epsilon)
    return (1.0 + epsilon) / (1.0 - epsilon)


def sketched_lstsq(a: np.ndarray, b: np.ndarray, family: SketchFamily,
                   rng: RngLike = None,
                   compare_exact: bool = True) -> RegressionResult:
    """Solve ``min_x ‖Ax - b‖₂`` by sketch-and-solve with ``family``.

    The family's ambient dimension must equal ``a.shape[0]``.
    """
    a = check_matrix(a, "a")
    b = np.asarray(b, dtype=float)
    if b.shape != (a.shape[0],):
        raise ValueError(
            f"b must have shape ({a.shape[0]},), got {b.shape}"
        )
    if family.n != a.shape[0]:
        raise ValueError(
            f"family ambient dimension ({family.n}) must equal the row "
            f"count of a ({a.shape[0]})"
        )
    sketch = family.sample(as_generator(rng))
    sa = sketch.apply(a)
    sb = sketch.apply(b)
    x, *_ = np.linalg.lstsq(sa, sb, rcond=None)
    residual = float(np.linalg.norm(a @ x - b))
    optimal = None
    if compare_exact:
        x_star = lstsq(a, b)
        optimal = float(np.linalg.norm(a @ x_star - b))
    stacked = np.column_stack([a, b])
    cost = sketch.apply_cost(stacked)
    return RegressionResult(
        x=x, residual=residual, optimal_residual=optimal,
        sketch_cost=cost, m=sketch.m,
    )
