"""Downstream applications of OSEs (the introduction's motivating tasks)."""

from .cca import CCAResult, canonical_correlations, sketched_cca

from .kmeans import (
    SketchedKMeansResult,
    kmeans_cost,
    lloyd_kmeans,
    sketched_kmeans,
)
from .leverage import (
    LeverageResult,
    exact_leverage_scores,
    sketched_leverage_scores,
)
from .lowrank import LowRankResult, best_rank_k, sketched_low_rank
from .regression import (
    RegressionResult,
    error_ratio_bound,
    lstsq,
    sketched_lstsq,
)

__all__ = [
    "CCAResult",
    "canonical_correlations",
    "sketched_cca",
    "SketchedKMeansResult",
    "kmeans_cost",
    "lloyd_kmeans",
    "sketched_kmeans",
    "LeverageResult",
    "exact_leverage_scores",
    "sketched_leverage_scores",
    "LowRankResult",
    "best_rank_k",
    "sketched_low_rank",
    "RegressionResult",
    "error_ratio_bound",
    "lstsq",
    "sketched_lstsq",
]
