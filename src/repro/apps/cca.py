"""Sketched canonical correlation analysis (CCA).

The introduction cites Avron–Boutsidis–Toledo–Zouzias: CCA between two
tall matrices ``X ∈ R^{n×p}`` and ``Y ∈ R^{n×q}`` computes the principal
angles between their column spaces — the singular values of ``Qxᵀ Qy``
for orthonormal bases ``Qx, Qy``.  Sketching the shared row space with an
OSE preserves every canonical correlation to additive ``O(ε)``.

We implement exact CCA (QR-based) and the sketched pipeline, reporting
the worst correlation error.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sketch.base import SketchFamily
from ..utils.rng import RngLike, as_generator
from ..utils.validation import check_matrix

__all__ = ["canonical_correlations", "CCAResult", "sketched_cca"]


def canonical_correlations(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Exact canonical correlations of ``range(x)`` and ``range(y)``.

    Returns the cosines of the principal angles, sorted descending, one
    per ``min(rank(x), rank(y))`` (computed via thin QR + SVD, values
    clipped into [0, 1]).
    """
    x = check_matrix(x, "x")
    y = check_matrix(y, "y")
    if x.shape[0] != y.shape[0]:
        raise ValueError(
            f"x and y must share the sample dimension, got {x.shape[0]} "
            f"vs {y.shape[0]}"
        )
    qx, rx = np.linalg.qr(x)
    qy, ry = np.linalg.qr(y)
    # Drop numerically dependent columns to the actual ranks.
    keep_x = np.abs(np.diag(rx)) > 1e-12 * max(1.0, np.abs(rx).max())
    keep_y = np.abs(np.diag(ry)) > 1e-12 * max(1.0, np.abs(ry).max())
    sigma = np.linalg.svd(
        qx[:, keep_x].T @ qy[:, keep_y], compute_uv=False
    )
    return np.clip(np.sort(sigma)[::-1], 0.0, 1.0)


@dataclass(frozen=True)
class CCAResult:
    """Outcome of sketched CCA.

    Attributes
    ----------
    correlations:
        Canonical correlations computed in the sketched space.
    exact:
        Exact correlations (for diagnostics).
    max_error:
        ``max_i |corr_i - exact_i|`` — the additive error the OSE
        guarantee bounds by O(ε).
    m:
        Sketch target dimension used.
    """

    correlations: np.ndarray
    exact: np.ndarray
    max_error: float
    m: int


def sketched_cca(x: np.ndarray, y: np.ndarray, family: SketchFamily,
                 rng: RngLike = None) -> CCAResult:
    """Compute CCA on ``(Πx, Πy)`` for one sketch draw and compare.

    ``family.n`` must equal the shared sample dimension.
    """
    x = check_matrix(x, "x")
    y = check_matrix(y, "y")
    if x.shape[0] != y.shape[0]:
        raise ValueError("x and y must share the sample dimension")
    if family.n != x.shape[0]:
        raise ValueError(
            f"family ambient dimension ({family.n}) must equal the "
            f"sample dimension ({x.shape[0]})"
        )
    sketch = family.sample(as_generator(rng))
    sx = sketch.apply(x)
    sy = sketch.apply(y)
    approx = canonical_correlations(sx, sy)
    exact = canonical_correlations(x, y)
    k = min(approx.size, exact.size)
    max_error = float(np.max(np.abs(approx[:k] - exact[:k]))) if k else 0.0
    return CCAResult(
        correlations=approx, exact=exact, max_error=max_error,
        m=sketch.m,
    )
