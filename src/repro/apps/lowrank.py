"""Sketched low-rank approximation.

Randomized range-finding: sketch the row space with an OSE, project, and
truncate.  For ``A ∈ R^{n×c}`` and target rank ``k``, compute ``ΠA``
(``m × c``), take the top-``k`` right singular subspace ``V_k`` of ``ΠA``,
and output ``Â = A V_k V_kᵀ``.  When ``Π`` ε-embeds the relevant subspaces,
``‖A - Â‖_F ≤ (1 + O(ε)) ‖A - A_k‖_F``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..sketch.base import SketchFamily
from ..utils.rng import RngLike, as_generator
from ..utils.validation import check_matrix, check_positive_int

__all__ = ["LowRankResult", "best_rank_k", "sketched_low_rank"]


@dataclass(frozen=True)
class LowRankResult:
    """Outcome of sketched low-rank approximation.

    Attributes
    ----------
    approximation:
        The rank-≤k approximation ``Â``.
    error:
        ``‖A - Â‖_F``.
    optimal_error:
        ``‖A - A_k‖_F`` of the truncated SVD (when requested).
    m:
        Sketch target dimension used.
    """

    approximation: np.ndarray
    error: float
    optimal_error: Optional[float]
    m: int

    @property
    def ratio(self) -> Optional[float]:
        """Error ratio against the optimal rank-k error."""
        if self.optimal_error is None or self.optimal_error == 0:
            return None
        return self.error / self.optimal_error


def best_rank_k(a: np.ndarray, k: int) -> np.ndarray:
    """The optimal rank-``k`` approximation via truncated SVD."""
    a = check_matrix(a, "a")
    k = check_positive_int(k, "k")
    u, s, vt = np.linalg.svd(a, full_matrices=False)
    k = min(k, s.size)
    return (u[:, :k] * s[:k]) @ vt[:k]


def sketched_low_rank(a: np.ndarray, k: int, family: SketchFamily,
                      rng: RngLike = None,
                      compare_exact: bool = True) -> LowRankResult:
    """Rank-``k`` approximation of ``a`` through a sketched row space.

    The family's ambient dimension must equal ``a.shape[0]`` (the sketch
    compresses rows).
    """
    a = check_matrix(a, "a")
    k = check_positive_int(k, "k")
    if family.n != a.shape[0]:
        raise ValueError(
            f"family ambient dimension ({family.n}) must equal the row "
            f"count of a ({a.shape[0]})"
        )
    sketch = family.sample(as_generator(rng))
    compressed = sketch.apply(a)
    _, _, vt = np.linalg.svd(compressed, full_matrices=False)
    keep = min(k, vt.shape[0])
    v_k = vt[:keep].T
    approx = (a @ v_k) @ v_k.T
    error = float(np.linalg.norm(a - approx))
    optimal = None
    if compare_exact:
        optimal = float(np.linalg.norm(a - best_rank_k(a, k)))
    return LowRankResult(
        approximation=approx, error=error, optimal_error=optimal,
        m=sketch.m,
    )
