"""Approximate leverage scores via sketching.

The leverage score of row ``i`` of ``A`` is ``‖e_iᵀ U‖²`` for any
orthonormal basis ``U`` of ``range(A)``.  Exact computation needs a full
QR/SVD of ``A``; the sketched estimator (Drineas et al.) computes
``R`` from a QR of ``ΠA`` and uses ``‖e_iᵀ A R⁻¹‖²`` — accurate to
``(1 ± O(ε))`` per score when ``Π`` ε-embeds ``range(A)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sketch.base import SketchFamily
from ..utils.rng import RngLike, as_generator
from ..utils.validation import check_matrix

__all__ = [
    "exact_leverage_scores",
    "LeverageResult",
    "sketched_leverage_scores",
]


def exact_leverage_scores(a: np.ndarray) -> np.ndarray:
    """Exact leverage scores of the rows of ``a`` (sums to rank(a))."""
    a = check_matrix(a, "a")
    u, s, _ = np.linalg.svd(a, full_matrices=False)
    rank = int(np.sum(s > s[0] * 1e-12)) if s.size else 0
    return np.sum(u[:, :rank] ** 2, axis=1)


@dataclass(frozen=True)
class LeverageResult:
    """Sketched leverage scores with error diagnostics.

    Attributes
    ----------
    scores:
        The approximated scores.
    exact:
        The exact scores (for diagnostics).
    max_relative_error:
        ``max_i |scores_i - exact_i| / max(exact_i, floor)`` where the
        floor avoids division by (near-)zero scores.
    """

    scores: np.ndarray
    exact: np.ndarray
    max_relative_error: float


def sketched_leverage_scores(a: np.ndarray, family: SketchFamily,
                             rng: RngLike = None,
                             floor: float = 1e-9) -> LeverageResult:
    """Approximate the row leverage scores of ``a`` via ``family``.

    ``family.n`` must equal ``a.shape[0]``.
    """
    a = check_matrix(a, "a")
    if family.n != a.shape[0]:
        raise ValueError(
            f"family ambient dimension ({family.n}) must equal the row "
            f"count of a ({a.shape[0]})"
        )
    sketch = family.sample(as_generator(rng))
    compressed = sketch.apply(a)
    _, r = np.linalg.qr(compressed)
    # Guard against rank deficiency of the sketched matrix.
    diag = np.abs(np.diag(r))
    if diag.size == 0 or np.any(diag < 1e-12 * max(diag.max(), 1.0)):
        raise ValueError(
            "sketched matrix is rank deficient; increase m or check A"
        )
    whitened = np.linalg.solve(r.T, a.T).T  # rows of A R^{-1}
    scores = np.sum(whitened**2, axis=1)
    exact = exact_leverage_scores(a)
    denom = np.maximum(exact, floor)
    max_rel = float(np.max(np.abs(scores - exact) / denom))
    return LeverageResult(
        scores=scores, exact=exact, max_relative_error=max_rel
    )
