"""Dimensionality reduction for k-means clustering.

Boutsidis et al. / Cohen et al.: sketching the *feature* space of a point
set with a subspace embedding preserves the k-means cost of every
clustering up to ``(1 ± ε)`` factors.  We implement a small Lloyd's
k-means, the clustering-cost functional, and the sketched pipeline, and
measure the realized cost-preservation ratio (experiment E11).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..sketch.base import SketchFamily
from ..utils.rng import RngLike, as_generator, spawn
from ..utils.validation import check_matrix, check_positive_int

__all__ = [
    "kmeans_cost",
    "lloyd_kmeans",
    "SketchedKMeansResult",
    "sketched_kmeans",
]


def kmeans_cost(points: np.ndarray, labels: np.ndarray) -> float:
    """Sum of squared distances of each point to its cluster centroid."""
    points = check_matrix(points, "points")
    labels = np.asarray(labels, dtype=int)
    if labels.shape != (points.shape[0],):
        raise ValueError("labels must have one entry per point")
    cost = 0.0
    for label in np.unique(labels):
        members = points[labels == label]
        centroid = members.mean(axis=0)
        cost += float(np.sum((members - centroid) ** 2))
    return cost


def lloyd_kmeans(points: np.ndarray, k: int, iterations: int = 30,
                 rng: RngLike = None) -> Tuple[np.ndarray, np.ndarray]:
    """Plain Lloyd's algorithm with k-means++ style seeding.

    Returns ``(labels, centroids)``.  Deterministic given the generator.
    """
    points = check_matrix(points, "points")
    k = check_positive_int(k, "k")
    n = points.shape[0]
    if k > n:
        raise ValueError(f"k ({k}) cannot exceed the number of points ({n})")
    gen = as_generator(rng)
    # k-means++ seeding.
    centroids = [points[int(gen.integers(0, n))]]
    for _ in range(1, k):
        dist2 = np.min(
            [np.sum((points - c) ** 2, axis=1) for c in centroids], axis=0
        )
        total = dist2.sum()
        if total == 0:
            centroids.append(points[int(gen.integers(0, n))])
            continue
        probs = dist2 / total
        centroids.append(points[int(gen.choice(n, p=probs))])
    centroids = np.array(centroids)
    labels = np.zeros(n, dtype=int)
    for _ in range(iterations):
        dists = np.linalg.norm(
            points[:, None, :] - centroids[None, :, :], axis=2
        )
        new_labels = np.argmin(dists, axis=1)
        if np.array_equal(new_labels, labels) and _ > 0:
            break
        labels = new_labels
        for j in range(k):
            members = points[labels == j]
            if members.size:
                centroids[j] = members.mean(axis=0)
    return labels, centroids


@dataclass(frozen=True)
class SketchedKMeansResult:
    """Outcome of k-means on sketched features.

    Attributes
    ----------
    labels:
        Clustering computed in the sketched space.
    sketched_cost:
        Cost of that clustering measured on the *original* points.
    baseline_cost:
        Cost of clustering the original points directly (same k, same
        iteration budget).
    cost_ratio:
        ``sketched_cost / baseline_cost``; should be ``≤ (1+ε)²/(1-ε)²``
        when the sketch is a subspace embedding for the point set's span.
    """

    labels: np.ndarray
    sketched_cost: float
    baseline_cost: float

    @property
    def cost_ratio(self) -> float:
        if self.baseline_cost == 0:
            return 1.0 if self.sketched_cost == 0 else float("inf")
        return self.sketched_cost / self.baseline_cost


def sketched_kmeans(points: np.ndarray, k: int, family: SketchFamily,
                    iterations: int = 30,
                    rng: RngLike = None) -> SketchedKMeansResult:
    """Cluster ``points`` after sketching their feature dimension.

    ``points`` is ``N × n`` (features along columns); ``family.n`` must
    equal ``n``.  The sketch compresses features: the sketched point set is
    ``points @ Πᵀ`` of shape ``N × m``.
    """
    points = check_matrix(points, "points")
    if family.n != points.shape[1]:
        raise ValueError(
            f"family ambient dimension ({family.n}) must equal the feature "
            f"count ({points.shape[1]})"
        )
    gen = as_generator(rng)
    sketch = family.sample(spawn(gen))
    reduced = sketch.apply(points.T).T
    seed = spawn(gen)
    labels, _ = lloyd_kmeans(reduced, k, iterations, rng=seed)
    base_labels, _ = lloyd_kmeans(points, k, iterations, rng=spawn(gen))
    return SketchedKMeansResult(
        labels=labels,
        sketched_cost=kmeans_cost(points, labels),
        baseline_cost=kmeans_cost(points, base_labels),
    )
