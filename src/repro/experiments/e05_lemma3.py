"""E5 — Lemma 3: inner products of a finite set cannot all be very
negative.

We evaluate the exact pair probability ``P[⟨u,v⟩ ≥ -3ε]`` on adversarial
finite vector families designed to minimize it, and confirm the Lemma 3
floor of ``2ε`` always holds — including on the near-tight negative
simplex configuration.
"""

from __future__ import annotations

import numpy as np

from ..core.lemmas import lemma3_bound, lemma3_probability
from ..utils.rng import spawn
from ..utils.tables import TextTable
from .harness import Experiment, ExperimentResult, scaled_int

__all__ = [
    "simplex_set",
    "antipodal_set",
    "random_sphere_set",
    "shrunken_ball_set",
    "Lemma3Experiment",
]


def simplex_set(size: int) -> np.ndarray:
    """``size`` unit vectors with all pairwise inner products equal to
    ``-1/(size-1)`` — the most negatively correlated configuration
    possible, i.e. the adversarial case for Lemma 3."""
    if size < 2:
        raise ValueError(f"size must be ≥ 2, got {size}")
    eye = np.eye(size)
    centered = eye - 1.0 / size
    return centered / np.linalg.norm(centered, axis=1, keepdims=True)


def antipodal_set(size: int, dim: int, rng) -> np.ndarray:
    """Pairs ``{±v_i}`` of random unit vectors (inner products ±1 mix)."""
    if size % 2 != 0:
        raise ValueError(f"size must be even, got {size}")
    g = rng.standard_normal((size // 2, dim))
    g /= np.linalg.norm(g, axis=1, keepdims=True)
    return np.vstack([g, -g])


def random_sphere_set(size: int, dim: int, rng) -> np.ndarray:
    """Uniform random unit vectors."""
    g = rng.standard_normal((size, dim))
    return g / np.linalg.norm(g, axis=1, keepdims=True)


def shrunken_ball_set(size: int, dim: int, rng) -> np.ndarray:
    """Random vectors with norms spread over (0, 1] (interior points)."""
    g = random_sphere_set(size, dim, rng)
    radii = rng.random(size) ** (1.0 / dim)
    return g * radii[:, None]


class Lemma3Experiment(Experiment):
    """Exhaustive Lemma 3 check on adversarial vector families."""

    experiment_id = "E5"
    title = "Anti-concentration of pairwise inner products (Lemma 3)"
    paper_claim = "P[<u,v> >= -3eps] > 2eps for any finite set in the ball"

    def _run(self, scale: float, rng) -> ExperimentResult:
        result = self._result()
        epsilons = [0.02, 0.05, 0.1]
        size = scaled_int(48, scale, minimum=8)
        if size % 2:
            size += 1
        dim = 24
        families = {
            "simplex": simplex_set(size),
            "antipodal": antipodal_set(size, dim, spawn(rng)),
            "sphere": random_sphere_set(size, dim, spawn(rng)),
            "ball": shrunken_ball_set(size, dim, spawn(rng)),
        }
        table = TextTable(
            title=f"E5: exact P[<u,v> >= -3eps] per family (size={size})",
            columns=["family", "eps", "probability", "bound 2eps", "margin"],
        )
        min_margin = float("inf")
        for name, vectors in families.items():
            for epsilon in epsilons:
                prob = lemma3_probability(vectors, epsilon)
                bound = lemma3_bound(epsilon)
                margin = prob - bound
                min_margin = min(min_margin, margin)
                table.add_row([name, epsilon, prob, bound, margin])
        # The near-tight configuration: a simplex sized so that every
        # off-diagonal inner product sits just below -3eps; only the
        # diagonal pairs survive, so P = 1/size, barely above 2eps.
        for epsilon in epsilons:
            tight_size = max(2, int(1.0 / (3.0 * epsilon)))
            vectors = simplex_set(tight_size)
            prob = lemma3_probability(vectors, epsilon)
            bound = lemma3_bound(epsilon)
            margin = prob - bound
            min_margin = min(min_margin, margin)
            table.add_row(
                [f"tight_simplex[{tight_size}]", epsilon, prob, bound,
                 margin]
            )
        result.tables.append(table)
        result.metrics["min_margin"] = min_margin
        result.notes.append(
            "the simplex family is the adversarial configuration; its "
            "probability stays above 2eps as the lemma guarantees"
        )
        return result
