"""E10 — Lemma 19's heavy-entry mass accounting.

Section 5 removes the abundance assumption by bookkeeping: the average
squared column norm of ``Π`` is at most
``Σ_ℓ (heavy-count marginal at level ℓ) · 2^{-ℓ+1} + s·8ε``, and a valid
embedding needs that quantity ≥ ``(1-ε)²`` (Lemma 6).  We compute the
per-level heavy profile and the implied mass bound for each sketch family
and verify:

1. the mass bound is *sound* — it upper-bounds the true average squared
   column norm on every family;
2. families whose true column norms fall below ``1 - ε`` (deliberately
   deflated sketches) do fail on ``D_1``, closing the accounting loop.
"""

from __future__ import annotations

import numpy as np

from ..core.heavy import heavy_budget_profile
from ..core.tester import failure_estimate
from ..hardinstances.dbeta import DBeta
from ..linalg.gram import column_norms
from ..sketch.countsketch import CountSketch
from ..sketch.hadamard_block import HadamardBlockSketch
from ..sketch.osnap import OSNAP
from ..utils.rng import spawn
from ..utils.tables import TextTable
from .e03_column_norms import ScaledCountSketch
from .harness import Experiment, ExperimentResult, scaled_int

__all__ = ["HeavyBudgetExperiment"]


class HeavyBudgetExperiment(Experiment):
    """Mass accounting across dyadic heavy levels (Lemma 19 machinery)."""

    experiment_id = "E10"
    title = "Heavy-entry budgets and the column-mass argument (Lemma 19)"
    paper_claim = "mass bound < (1-eps)^2 refutes the embedding"

    def _run(self, scale: float, rng) -> ExperimentResult:
        result = self._result()
        epsilon = 1.0 / 32.0
        d, n = 8, 2048
        trials = scaled_int(40, scale, minimum=15)
        instance = DBeta(n=n, d=d, reps=1)
        families = [
            ("CountSketch", CountSketch(m=4096, n=n)),
            ("OSNAP[s=4]", OSNAP(m=4096, n=n, s=4)),
            ("HadamardBlock", HadamardBlockSketch(m=256, n=n, block_order=4)),
            ("Deflated[c=0.9]", ScaledCountSketch(m=4096, n=n, c=0.9)),
            ("Deflated[c=0.5]", ScaledCountSketch(m=4096, n=n, c=0.5)),
        ]
        table = TextTable(
            title=(
                f"E10: per-family heavy profile and mass bound "
                f"(eps={epsilon:g}, trials={trials})"
            ),
            columns=[
                "family", "avg_norm^2", "mass_bound", "sound",
                "norm_below_1-eps", "failure_on_D1",
            ],
        )
        sound_everywhere = True
        deflated_fail = 1.0
        for name, family in families:
            # Eager on purpose: the heavy-entry profile scans the
            # explicit matrix.
            sketch = family.sample(spawn(rng), lazy=False)
            norms2 = column_norms(sketch.matrix) ** 2
            avg_norm2 = float(np.mean(norms2))
            profile = heavy_budget_profile(sketch.matrix, epsilon)
            mass_bound = profile.mass_upper_bound()
            # The profile only accounts for entries >= the lightest
            # threshold; add the sub-threshold allowance s * 8eps as in
            # Section 5 (here s = actual column sparsity).
            mass_bound_total = mass_bound + sketch.column_sparsity * 8 * epsilon
            sound = mass_bound_total >= avg_norm2 - 1e-9
            sound_everywhere = sound_everywhere and sound
            below = float(np.mean(np.sqrt(norms2) < 1.0 - epsilon))
            est = failure_estimate(
                family, instance, epsilon, trials=trials,
                rng=spawn(rng), workers=self.workers, cache=self.cache,
                shard=self.shard, batch=self.batch,
            )
            if name.startswith("Deflated"):
                deflated_fail = min(deflated_fail, est.point)
            table.add_row([
                name, avg_norm2, mass_bound_total, sound, below, est.point,
            ])
        result.tables.append(table)
        result.metrics["mass_bound_sound_everywhere"] = float(
            sound_everywhere
        )
        result.metrics["min_failure_of_deflated"] = deflated_fail
        result.notes.append(
            "the per-level accounting upper-bounds true column mass on "
            "every family; deflated sketches (mass below (1-eps)^2) fail "
            "with certainty, as the Section 5 argument requires"
        )
        return result
