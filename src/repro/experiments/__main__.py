"""Command-line entry point for the experiment suite.

Usage::

    python -m repro.experiments            # list experiments
    python -m repro.experiments E8         # run one at full scale
    python -m repro.experiments all --scale 0.25 --seed 7
    python -m repro.experiments E1 --scale 0.05 --workers 2 \\
        --ledger run.jsonl --progress
    python -m repro.experiments all --cache-dir .probe-cache --resume

``--cache-dir`` enables the content-addressed probe cache and per-
experiment checkpoints (see :mod:`repro.cache` and docs/caching.md);
``--resume`` additionally skips experiments whose checkpoint matches the
requested seed and scale, reusing the checkpointed JSON byte-for-byte.
Results are bit-identical with the cache on, off, cold, or warm.

``--shards N`` splits every Monte-Carlo trial budget across N shards and
reproduces the serial bytes exactly (see :mod:`repro.shard` and
docs/caching.md "Sharded runs & merge").  Alone it runs the whole
shard/merge/replay protocol in-process; with ``--shard-index K`` it runs
only shard K's pass — exit code 3 means probe slices were stored and a
``python -m repro.cache merge`` plus another pass are still needed::

    python -m repro.experiments E1 --scale 0.05 --cache-dir DIR --shards 3
    python -m repro.experiments E1 --scale 0.05 --cache-dir DIR \\
        --shards 3 --shard-index 1
"""

from __future__ import annotations

import argparse
import math
import sys
from contextlib import ExitStack
from pathlib import Path
from typing import Optional

from ..observe.counters import add_count
from ..observe.ledger import RunLedger, emit_event
from .registry import EXPERIMENTS, experiment_ids, run_experiment


def _positive_scale(text: str) -> float:
    """Argparse type for ``--scale``: a positive finite float."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"scale must be a number, got {text!r}")
    if not math.isfinite(value) or value <= 0:
        raise argparse.ArgumentTypeError(
            f"scale must be a positive finite number, got {text}"
        )
    return value


def _worker_count(text: str) -> int:
    """Argparse type for ``--workers``: a nonnegative int (0 = all CPUs)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"workers must be an integer, got {text!r}"
        )
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"workers must be nonnegative (0 = all CPUs), got {value}"
        )
    return value


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run the paper-reproduction experiments (E1-E14).",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        help="experiment id (e.g. E8), 'all', or omit to list",
    )
    parser.add_argument(
        "--scale", type=_positive_scale, default=1.0,
        help="workload scale; 1.0 = EXPERIMENTS.md fidelity (default)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="random seed (default 0)"
    )
    parser.add_argument(
        "--workers", type=_worker_count, default=1, metavar="N",
        help="worker processes for Monte-Carlo trial loops; 0 = all CPUs "
             "(results are identical to --workers 1 at the same seed)",
    )
    parser.add_argument(
        "--json-dir", default=None, metavar="DIR",
        help="also write each result as DIR/<id>.json",
    )
    parser.add_argument(
        "--ledger", default=None, metavar="PATH",
        help="append structured JSON-lines run events to PATH "
             "(inspect with: python -m repro.observe summarize PATH)",
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="print live probe/experiment progress to stderr",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache Monte-Carlo probes in DIR/probes.jsonl and checkpoint "
             "completed experiments under DIR/checkpoints/ "
             "(results are identical with or without the cache)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="skip experiments already checkpointed in --cache-dir for "
             "this seed and scale, reusing their JSON byte-for-byte",
    )
    parser.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="split the trial budget across N shards (requires "
             "--cache-dir; results are byte-identical to a serial run at "
             "the same seed).  Without --shard-index the full "
             "shard/merge/replay protocol runs in this process",
    )
    parser.add_argument(
        "--shard-index", type=int, default=None, metavar="K",
        help="run only shard K of --shards N (one pass; partial probe "
             "slices land in DIR/shard-0K).  Exits 3 while probes await "
             "'python -m repro.cache merge DIR/merged DIR/shard-*'",
    )
    parser.add_argument(
        "--max-rounds", type=int, default=256, metavar="R",
        help="round limit for the in-process shard/merge loop "
             "(default 256)",
    )
    parser.add_argument(
        "--batch", type=int, default=None, metavar="B",
        help="fuse B sketch draws per dispatch via the batched kernel "
             "engine (1 is bit-identical to the serial path; larger "
             "values use the engine's own deterministic accumulation "
             "order — see docs/perf.md)",
    )
    return parser


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.resume and args.cache_dir is None:
        parser.error("--resume requires --cache-dir")
    if args.batch is not None and args.batch < 1:
        parser.error(f"--batch must be positive, got {args.batch}")
    if args.shard_index is not None and args.shards is None:
        parser.error("--shard-index requires --shards")
    if args.shards is not None:
        if args.shards < 1:
            parser.error(f"--shards must be positive, got {args.shards}")
        if args.cache_dir is None:
            parser.error("--shards requires --cache-dir (shard partials "
                         "are exchanged through the probe cache)")
        if args.shard_index is not None \
                and not 0 <= args.shard_index < args.shards:
            parser.error(
                f"--shard-index must lie in [0, {args.shards}), "
                f"got {args.shard_index}"
            )
    if args.experiment is None:
        for eid in experiment_ids():
            cls = EXPERIMENTS[eid]
            print(f"{eid:>4}  {cls.title}")
            print(f"      claim: {cls.paper_claim}")
        return 0
    targets = (
        experiment_ids() if args.experiment.lower() == "all"
        else [args.experiment.upper()]
    )
    for eid in targets:
        if eid not in EXPERIMENTS:
            print(f"unknown experiment {eid!r}; known: "
                  f"{', '.join(experiment_ids())}", file=sys.stderr)
            return 2
    cache = None
    checkpoints = None
    cache_dir = None
    if args.cache_dir is not None:
        from ..cache import ExperimentCheckpoint, ProbeCache

        cache_dir = Path(args.cache_dir)
        if args.shards is None:
            cache = ProbeCache(cache_dir)
        checkpoints = ExperimentCheckpoint(cache_dir / "checkpoints")
    ledger: Optional[RunLedger] = None
    if args.ledger is not None or args.progress:
        # Per-shard invocations stamp their shard label on every event so
        # segments appended to one file (or read together) regroup
        # cleanly in `python -m repro.observe summarize`.
        shard_label = (
            f"{args.shard_index}/{args.shards}"
            if args.shard_index is not None else None
        )
        ledger = RunLedger(args.ledger, progress=args.progress,
                           shard=shard_label)
    with ExitStack() as stack:
        if ledger is not None:
            stack.enter_context(ledger)
            emit_event(
                "cli_start", experiments=targets, scale=args.scale,
                seed=args.seed, workers=args.workers,
                cache_dir=args.cache_dir, resume=args.resume,
            )
        pending_total = 0
        for eid in targets:
            resumed = False
            if args.resume and checkpoints is not None:
                result = checkpoints.load(
                    eid, seed=args.seed, scale=args.scale
                )
                resumed = result is not None
            if not resumed:
                if args.shards is not None:
                    from ..shard import shard_pass, sharded_call

                    def sharded(shard_cache, shard, eid=eid):
                        return run_experiment(
                            eid, scale=args.scale, rng=args.seed,
                            workers=args.workers, cache=shard_cache,
                            shard=shard, batch=args.batch,
                        )

                    if args.shard_index is not None:
                        result, pending = shard_pass(
                            sharded, (args.shard_index, args.shards),
                            cache_dir,
                        )
                        if pending:
                            # This shard's probe slices are stored; the
                            # result exists only after a merge resolves
                            # them.  Leave the checkpoint unwritten.
                            pending_total += pending
                            print(
                                f"[shard {args.shard_index}/{args.shards}] "
                                f"{eid}: {pending} probe slice(s) stored, "
                                f"awaiting cache merge",
                                file=sys.stderr,
                            )
                            continue
                    else:
                        result = sharded_call(
                            sharded, args.shards, cache_dir,
                            max_rounds=args.max_rounds,
                        )
                else:
                    result = run_experiment(
                        eid, scale=args.scale, rng=args.seed,
                        workers=args.workers, cache=cache,
                        batch=args.batch,
                    )
                if checkpoints is not None:
                    checkpoints.save(
                        result, seed=args.seed, scale=args.scale
                    )
            else:
                add_count("checkpoint_hit")
                emit_event(
                    "experiment_resumed", experiment=eid,
                    seed=args.seed, scale=args.scale,
                )
            print(result.render())
            print()
            if args.json_dir is not None:
                directory = Path(args.json_dir)
                directory.mkdir(parents=True, exist_ok=True)
                if resumed and checkpoints is not None:
                    # Copy the checkpoint's exact bytes so resumed runs
                    # produce artifacts bit-identical to uninterrupted ones.
                    (directory / f"{eid}.json").write_bytes(
                        checkpoints.raw_bytes(eid)
                    )
                else:
                    result.save_json(directory / f"{eid}.json")
        if cache is not None:
            cache.close()
    # 3 = "shard pass left probes pending a merge": distinct from error
    # codes so shard launchers can loop run→merge→rerun until 0.
    return 3 if pending_total else 0


if __name__ == "__main__":
    raise SystemExit(main())
