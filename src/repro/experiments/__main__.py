"""Command-line entry point for the experiment suite.

Usage::

    python -m repro.experiments            # list experiments
    python -m repro.experiments E8         # run one at full scale
    python -m repro.experiments all --scale 0.25 --seed 7
    python -m repro.experiments E1 --scale 0.05 --workers 2 \\
        --ledger run.jsonl --progress
    python -m repro.experiments all --cache-dir .probe-cache --resume

``--cache-dir`` enables the content-addressed probe cache and per-
experiment checkpoints (see :mod:`repro.cache` and docs/caching.md);
``--resume`` additionally skips experiments whose checkpoint matches the
requested seed and scale, reusing the checkpointed JSON byte-for-byte.
Results are bit-identical with the cache on, off, cold, or warm.
"""

from __future__ import annotations

import argparse
import math
import sys
from contextlib import ExitStack
from pathlib import Path
from typing import Optional

from ..observe.counters import add_count
from ..observe.ledger import RunLedger, emit_event
from .registry import EXPERIMENTS, experiment_ids, run_experiment


def _positive_scale(text: str) -> float:
    """Argparse type for ``--scale``: a positive finite float."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"scale must be a number, got {text!r}")
    if not math.isfinite(value) or value <= 0:
        raise argparse.ArgumentTypeError(
            f"scale must be a positive finite number, got {text}"
        )
    return value


def _worker_count(text: str) -> int:
    """Argparse type for ``--workers``: a nonnegative int (0 = all CPUs)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"workers must be an integer, got {text!r}"
        )
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"workers must be nonnegative (0 = all CPUs), got {value}"
        )
    return value


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run the paper-reproduction experiments (E1-E14).",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        help="experiment id (e.g. E8), 'all', or omit to list",
    )
    parser.add_argument(
        "--scale", type=_positive_scale, default=1.0,
        help="workload scale; 1.0 = EXPERIMENTS.md fidelity (default)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="random seed (default 0)"
    )
    parser.add_argument(
        "--workers", type=_worker_count, default=1, metavar="N",
        help="worker processes for Monte-Carlo trial loops; 0 = all CPUs "
             "(results are identical to --workers 1 at the same seed)",
    )
    parser.add_argument(
        "--json-dir", default=None, metavar="DIR",
        help="also write each result as DIR/<id>.json",
    )
    parser.add_argument(
        "--ledger", default=None, metavar="PATH",
        help="append structured JSON-lines run events to PATH "
             "(inspect with: python -m repro.observe summarize PATH)",
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="print live probe/experiment progress to stderr",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache Monte-Carlo probes in DIR/probes.jsonl and checkpoint "
             "completed experiments under DIR/checkpoints/ "
             "(results are identical with or without the cache)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="skip experiments already checkpointed in --cache-dir for "
             "this seed and scale, reusing their JSON byte-for-byte",
    )
    return parser


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.resume and args.cache_dir is None:
        parser.error("--resume requires --cache-dir")
    if args.experiment is None:
        for eid in experiment_ids():
            cls = EXPERIMENTS[eid]
            print(f"{eid:>4}  {cls.title}")
            print(f"      claim: {cls.paper_claim}")
        return 0
    targets = (
        experiment_ids() if args.experiment.lower() == "all"
        else [args.experiment.upper()]
    )
    for eid in targets:
        if eid not in EXPERIMENTS:
            print(f"unknown experiment {eid!r}; known: "
                  f"{', '.join(experiment_ids())}", file=sys.stderr)
            return 2
    cache = None
    checkpoints = None
    if args.cache_dir is not None:
        from ..cache import ExperimentCheckpoint, ProbeCache

        cache_dir = Path(args.cache_dir)
        cache = ProbeCache(cache_dir)
        checkpoints = ExperimentCheckpoint(cache_dir / "checkpoints")
    ledger: Optional[RunLedger] = None
    if args.ledger is not None or args.progress:
        ledger = RunLedger(args.ledger, progress=args.progress)
    with ExitStack() as stack:
        if ledger is not None:
            stack.enter_context(ledger)
            emit_event(
                "cli_start", experiments=targets, scale=args.scale,
                seed=args.seed, workers=args.workers,
                cache_dir=args.cache_dir, resume=args.resume,
            )
        for eid in targets:
            resumed = False
            if args.resume and checkpoints is not None:
                result = checkpoints.load(
                    eid, seed=args.seed, scale=args.scale
                )
                resumed = result is not None
            if not resumed:
                result = run_experiment(
                    eid, scale=args.scale, rng=args.seed,
                    workers=args.workers, cache=cache,
                )
                if checkpoints is not None:
                    checkpoints.save(
                        result, seed=args.seed, scale=args.scale
                    )
            else:
                add_count("checkpoint_hit")
                emit_event(
                    "experiment_resumed", experiment=eid,
                    seed=args.seed, scale=args.scale,
                )
            print(result.render())
            print()
            if args.json_dir is not None:
                directory = Path(args.json_dir)
                directory.mkdir(parents=True, exist_ok=True)
                if resumed and checkpoints is not None:
                    # Copy the checkpoint's exact bytes so resumed runs
                    # produce artifacts bit-identical to uninterrupted ones.
                    (directory / f"{eid}.json").write_bytes(
                        checkpoints.raw_bytes(eid)
                    )
                else:
                    result.save_json(directory / f"{eid}.json")
        if cache is not None:
            cache.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
