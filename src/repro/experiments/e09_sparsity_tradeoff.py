"""E9 — Theorems 18/20: the ``d²`` floor holds across the sparsity range.

For the Section 5 mixture ``D̃`` we measure the minimal OSNAP dimension
``m*(s)`` for every ``s`` up to the paper's constraint ``1/(9ε)``.
Theorem 20 asserts the *floor* ``m = Ω(log⁻⁴(s) s^{-K₁δ} d²)`` — nearly
``d²`` for every allowed ``s``.  The reproduction checks:

1. ``m*(s) ≥ d²``-level for every ``s ≤ 1/(9ε)`` (the floor binds);
2. the measured mechanism: within the constrained regime a single shared
   heavy row between two sketch columns contributes inner product
   ``1/s ≫ 2ε``, so collisions stay fatal while their frequency grows
   like ``s²/m`` — hence ``m*`` actually *increases* with ``s`` here,
   consistent with (and stronger than) the floor.  The OSNAP upper-bound
   escape (``m = Θ(d^{1+γ}/ε²)`` at ``s = Θ(1/(γε))``) requires per-
   collision damage ``1/s ≲ ε`` *and* ``d ≥ 1/ε²`` — exactly the
   theorem's precondition, unreachable at laptop scale (it forces
   ``d ≥ 4096``), as recorded in DESIGN.md's substitution table.

Both OSNAP variants ("uniform" and "block") are run — the DESIGN.md §5(3)
ablation.
"""

from __future__ import annotations

from ..core.bounds import max_sparsity_for_quadratic, theorem20_lower_bound
from ..core.tester import minimal_m
from ..hardinstances.mixtures import section5_mixture
from ..sketch.osnap import OSNAP
from ..utils.rng import spawn
from ..utils.tables import TextTable
from .harness import Experiment, ExperimentResult, scaled_int

__all__ = ["SparsityTradeoffExperiment"]


class SparsityTradeoffExperiment(Experiment):
    """Minimal OSNAP dimension across the constrained sparsity range."""

    experiment_id = "E9"
    title = "m* vs column sparsity s (Theorems 18/20)"
    paper_claim = "m = Omega(log^-4(s) s^-K1*delta d^2) for s <= 1/(9eps)"

    def _run(self, scale: float, rng) -> ExperimentResult:
        result = self._result()
        epsilon = 1.0 / 32.0
        delta = 0.25
        d = 8
        s_max = max_sparsity_for_quadratic(epsilon)  # 3 at eps = 1/32
        sparsities = sorted({1, 2, s_max})
        variants = ["uniform", "block"]
        if scale < 0.5:
            sparsities = [1, s_max]
            variants = ["uniform"]
        trials = scaled_int(50, scale, minimum=20)
        # Largest mixture component has reps = 2^L; support reps*d columns.
        levels = 2  # L = log2(32) - 3
        n = max(4096, 4 * (2**levels * d) ** 2)
        instance = section5_mixture(n=n, d=d, epsilon=epsilon)
        table = TextTable(
            title=(
                f"E9: minimal OSNAP m on D-tilde "
                f"(d={d}, eps={epsilon:g}, delta={delta:g}, "
                f"trials={trials})"
            ),
            columns=["variant", "s", "m*", "theorem20 floor", "m*/d^2"],
        )
        curves = {}
        floor_ok = True
        for variant in variants:
            values = []
            for s in sparsities:
                # Start the search at a small multiple of s (the block
                # variant requires s | m; with_m preserves that).
                start_m = s * max(1, -(-4 // s))
                family = OSNAP(m=start_m, n=n, s=s, variant=variant)
                search = minimal_m(
                    family, instance, epsilon, delta, trials=trials,
                    m_min=start_m, rng=spawn(rng), workers=self.workers,
                    cache=self.cache, shard=self.shard, batch=self.batch,
                )
                m_star = search.m_star if search.found else float("nan")
                floor = theorem20_lower_bound(d, s, delta)
                table.add_row([
                    variant, s, m_star, floor,
                    (m_star / (d * d)) if search.found else float("nan"),
                ])
                if search.found:
                    values.append((s, m_star))
                    floor_ok = floor_ok and (m_star >= floor)
            curves[variant] = values
        result.tables.append(table)
        result.metrics["floor_respected_everywhere"] = float(floor_ok)
        for variant, values in curves.items():
            if len(values) >= 2:
                result.metrics[f"{variant}_m_at_s1"] = values[0][1]
                result.metrics[f"{variant}_m_at_smax"] = values[-1][1]
                result.metrics[f"{variant}_min_m_over_d2"] = min(
                    v / (d * d) for _, v in values
                )
        result.notes.append(
            "within s <= 1/(9eps) every m* sits above the d^2-level "
            "floor; m* increases with s here because one shared row "
            "contributes 1/s >> 2eps while collisions multiply as s^2 — "
            "escaping the floor requires s ~ 1/eps AND d >= 1/eps^2, the "
            "theorem's own precondition"
        )
        return result
