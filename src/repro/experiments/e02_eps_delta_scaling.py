"""E2 — Theorem 8: the ε and δ dependence of the CountSketch threshold.

Two sweeps at fixed ``d``:

* ``ε`` sweep at fixed ``δ``: Theorem 8 predicts ``m* ∝ 1/ε²`` (through
  the hard instance's ``q = d/(8ε)`` support).
* ``δ`` sweep at fixed ``ε``: Theorem 8 predicts ``m* ∝ 1/δ``.

Both exponents are extracted with a log-log fit.
"""

from __future__ import annotations

import math

from ..core.tester import minimal_m
from ..hardinstances.mixtures import section3_mixture
from ..sketch.countsketch import CountSketch
from ..utils.rng import spawn
from ..utils.stats import fit_power_law
from ..utils.tables import TextTable
from .harness import Experiment, ExperimentResult, scaled_int

__all__ = ["EpsDeltaScalingExperiment"]

D = 8


class EpsDeltaScalingExperiment(Experiment):
    """CountSketch threshold scaling in ``1/ε`` and ``1/δ``."""

    experiment_id = "E2"
    title = "CountSketch threshold vs eps and delta (Theorem 8)"
    paper_claim = "m* scales as 1/eps^2 and 1/delta"

    def _run(self, scale: float, rng) -> ExperimentResult:
        result = self._result()

        # --- epsilon sweep -------------------------------------------
        inv_eps_values = [16, 24, 32, 48]
        if scale < 0.5:
            inv_eps_values = [16, 32]
        delta = 0.2
        trials = scaled_int(120, scale, minimum=20)
        eps_table = TextTable(
            title=f"E2a: m* vs eps (d={D}, delta={delta:g}, trials={trials})",
            columns=["1/eps", "reps", "q", "n", "m*"],
        )
        eps_points = []
        for inv_eps in inv_eps_values:
            epsilon = 1.0 / inv_eps
            reps = max(1, round(1.0 / (8.0 * epsilon)))
            q = reps * D
            n = max(4096, 4 * q * q)
            inst = section3_mixture(n=n, d=D, epsilon=epsilon)
            family = CountSketch(m=max(4, q), n=n)
            search = minimal_m(
                family, inst, epsilon, delta, trials=trials,
                m_min=max(4, q), rng=spawn(rng), workers=self.workers,
                cache=self.cache, shard=self.shard, batch=self.batch,
            )
            m_star = search.m_star if search.found else float("nan")
            eps_table.add_row([inv_eps, reps, q, n, m_star])
            if search.found:
                eps_points.append((inv_eps, m_star))
        result.tables.append(eps_table)
        if len(eps_points) >= 2:
            slope, _ = fit_power_law(
                [p[0] for p in eps_points], [p[1] for p in eps_points]
            )
            result.metrics["slope_vs_inv_eps"] = slope

        # --- delta sweep ----------------------------------------------
        epsilon = 1.0 / 16.0
        reps = max(1, round(1.0 / (8.0 * epsilon)))
        q = reps * D
        n = max(4096, 4 * q * q)
        deltas = [0.4, 0.3, 0.2, 0.1]
        if scale < 0.5:
            deltas = [0.4, 0.2]
        delta_table = TextTable(
            title=f"E2b: m* vs delta (d={D}, eps={epsilon:g})",
            columns=["delta", "trials", "m*"],
        )
        delta_points = []
        inst = section3_mixture(n=n, d=D, epsilon=epsilon)
        for delta in deltas:
            trials = scaled_int(max(120, int(40 / delta)), scale,
                                minimum=20)
            family = CountSketch(m=max(4, q), n=n)
            search = minimal_m(
                family, inst, epsilon, delta, trials=trials,
                m_min=max(4, q), rng=spawn(rng), workers=self.workers,
                cache=self.cache, shard=self.shard, batch=self.batch,
            )
            m_star = search.m_star if search.found else float("nan")
            delta_table.add_row([delta, trials, m_star])
            if search.found:
                delta_points.append((delta, m_star))
        result.tables.append(delta_table)
        if len(delta_points) >= 2:
            slope, _ = fit_power_law(
                [1.0 / p[0] for p in delta_points],
                [p[1] for p in delta_points],
            )
            result.metrics["slope_vs_inv_delta"] = slope
            # The exact finite-delta scale is 1/ln(1/(1-2delta)) (the
            # birthday threshold for the D_{8eps} half of the mixture);
            # it approaches 1/(2 delta) only for small delta, so this fit
            # is the clean slope-1 check.
            xs = [1.0 / math.log(1.0 / (1.0 - 2.0 * p[0]))
                  for p in delta_points]
            slope_b, _ = fit_power_law(xs, [p[1] for p in delta_points])
            result.metrics["slope_vs_birthday_delta_scale"] = slope_b

        result.notes.append(
            "paper predicts slope 2 vs 1/eps and slope 1 vs 1/delta "
            "(measured against the exact birthday scale at finite delta)"
        )
        return result
