"""E11 — the introduction's motivation: who wins at which task.

All sketch families are run at their theory-prescribed target dimensions
on the three downstream tasks the paper's introduction cites (regression,
low-rank approximation, k-means), measuring realized error ratios and the
exact sketch-application cost.  Expected shape: every oblivious family
meets its error guarantee; CountSketch has by far the lowest application
cost but the largest ``m``; Gaussian the opposite; uniform row sampling
breaks on the coherent regression instance.
"""

from __future__ import annotations

import numpy as np

from ..apps.kmeans import sketched_kmeans
from ..apps.lowrank import sketched_low_rank
from ..apps.regression import error_ratio_bound, sketched_lstsq
from ..sketch.countsketch import CountSketch
from ..sketch.gaussian import GaussianSketch
from ..sketch.osnap import OSNAP
from ..sketch.row_sampling import RowSampling
from ..sketch.srht import SRHT
from ..utils.rng import spawn
from ..utils.tables import TextTable
from .harness import Experiment, ExperimentResult, scaled_int
from .workloads import clustered_points, lowrank_matrix, regression_problem

__all__ = ["ApplicationsExperiment"]


class ApplicationsExperiment(Experiment):
    """Error/cost comparison of the families on the motivating tasks."""

    experiment_id = "E11"
    title = "Applications comparison (introduction's motivation)"
    paper_claim = "CountSketch: O(nnz(A)) apply cost at m = Theta(d^2/..)"

    def _families(self, n: int, d: int, epsilon: float, delta: float):
        m_cs = min(n, CountSketch.recommended_m(d, epsilon, delta))
        m_osnap = min(n, OSNAP.recommended_m(d, epsilon, delta))
        s = OSNAP.recommended_s(d, epsilon, delta)
        m_gauss = min(n, GaussianSketch.recommended_m(d, epsilon, delta))
        m_srht = min(n, SRHT.recommended_m(d, epsilon, delta))
        return [
            ("CountSketch", CountSketch(m=m_cs, n=n)),
            ("OSNAP", OSNAP(m=max(m_osnap, s), n=n, s=s)),
            ("SRHT", SRHT(m=m_srht, n=n)),
            ("Gaussian", GaussianSketch(m=m_gauss, n=n)),
            ("RowSampling", RowSampling(m=min(n, m_srht), n=n)),
        ]

    def _run(self, scale: float, rng) -> ExperimentResult:
        result = self._result()
        n = 8192  # power of two for SRHT
        d = 6
        epsilon, delta = 0.25, 0.3
        repeats = scaled_int(5, scale, minimum=2)

        # ---- regression (incoherent and coherent) --------------------
        reg_table = TextTable(
            title=(
                f"E11a: sketched regression (n={n}, d={d}, eps={epsilon:g}"
                f", guarantee ratio <= {error_ratio_bound(epsilon):.3f})"
            ),
            columns=[
                "family", "m", "ratio_incoherent", "ratio_coherent",
                "apply_cost", "cost_vs_countsketch",
            ],
        )
        a_inc, b_inc = regression_problem(n, d, rng=spawn(rng))
        a_coh, b_coh = regression_problem(
            n, d, coherent=True, rng=spawn(rng)
        )
        cs_cost = None
        oblivious_ok = True
        rowsampling_ratio = None
        for name, family in self._families(n, d, epsilon, delta):
            ratios_inc, ratios_coh, costs = [], [], []
            for _ in range(repeats):
                res_i = sketched_lstsq(a_inc, b_inc, family, rng=spawn(rng))
                res_c = sketched_lstsq(a_coh, b_coh, family, rng=spawn(rng))
                ratios_inc.append(res_i.ratio)
                ratios_coh.append(res_c.ratio)
                costs.append(res_i.sketch_cost)
            ratio_i = float(np.median(ratios_inc))
            ratio_c = float(np.median(ratios_coh))
            cost = float(np.median(costs))
            if name == "CountSketch":
                cs_cost = cost
            rel_cost = cost / cs_cost if cs_cost else float("nan")
            reg_table.add_row([
                name, family.m, ratio_i, ratio_c, int(cost), rel_cost,
            ])
            if name == "RowSampling":
                rowsampling_ratio = ratio_c
            elif ratio_i is not None:
                oblivious_ok = oblivious_ok and (
                    ratio_i <= error_ratio_bound(epsilon) * 1.1
                )
        result.tables.append(reg_table)

        # ---- low-rank approximation ----------------------------------
        k = 5
        lr_table = TextTable(
            title=f"E11b: sketched rank-{k} approximation (n={n})",
            columns=["family", "m", "error_ratio"],
        )
        a_lr = lowrank_matrix(n, 64, k, decay=0.5, rng=spawn(rng))
        for name, family in self._families(n, d, epsilon, delta):
            if name == "RowSampling":
                continue
            ratios = [
                sketched_low_rank(a_lr, k, family, rng=spawn(rng)).ratio
                for _ in range(repeats)
            ]
            lr_table.add_row([name, family.m, float(np.median(ratios))])
        result.tables.append(lr_table)

        # ---- k-means ---------------------------------------------------
        km_table = TextTable(
            title="E11c: k-means cost preservation after feature sketching",
            columns=["family", "m", "cost_ratio"],
        )
        points, _ = clustered_points(
            count=scaled_int(160, scale, minimum=60), n=n, k=4,
            spread=0.05, rng=spawn(rng),
        )
        km_worst = 0.0
        for name, family in self._families(n, d, epsilon, delta):
            if name in ("RowSampling", "Gaussian"):
                continue  # Gaussian is slow to apply at this m; skip
            res = sketched_kmeans(points, 4, family, rng=spawn(rng))
            km_table.add_row([name, family.m, res.cost_ratio])
            km_worst = max(km_worst, res.cost_ratio)
        result.tables.append(km_table)

        result.metrics["oblivious_within_guarantee"] = float(oblivious_ok)
        if rowsampling_ratio is not None:
            result.metrics["rowsampling_coherent_ratio"] = rowsampling_ratio
        result.metrics["kmeans_worst_ratio"] = km_worst
        result.notes.append(
            "CountSketch applies at cost nnz(A) (s=1) but needs the "
            "largest m — the trade-off the paper proves unavoidable"
        )
        return result
