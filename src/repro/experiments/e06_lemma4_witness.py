"""E6 — Fact 5 + Lemma 4: a large inner product yields an escaping vector.

We *plant* sketch matrices with two columns of exactly prescribed inner
product ``λε/β`` and run the Lemma 4 witness machinery (the explicit unit
vector plus exact enumeration of the relevant Rademacher signs), covering
all three structural cases of the proof:

* ``p' ≠ q'`` (the two V-columns live in different W-blocks, ``β = 1``);
* ``p' = q'`` (same block, ``β = 1/2``);
* ``p' ≠ q'`` with nonempty side-contribution ``ν`` (extra block members),
  exercising the full Fact 5 three-term structure.

Lemma 4 promises escape probability ≥ 1/4 whenever ``λ > 2`` (strictly,
``λ > 2 + ε`` at finite ε, since the interval ``[(1-ε)², (1+ε)²]`` has
width ``4ε + ε²``); the sweep shows exactly that boundary.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.witness import escape_probability, witness_vector
from ..hardinstances.dbeta import HardDraw
from ..utils.rng import spawn
from ..utils.tables import TextTable
from .harness import Experiment, ExperimentResult

__all__ = ["planted_pi_and_draw", "Lemma4WitnessExperiment"]


def planted_pi_and_draw(case: str, lam: float, epsilon: float, n: int,
                        d: int, rng) -> tuple:
    """Build ``(Π, draw, p, q)`` with ``⟨Π_{*,C_p}, Π_{*,C_q}⟩ = λε/β``.

    ``case`` selects the block structure: ``"distinct"`` (``reps = 1``),
    ``"same_block"`` (``reps = 2``, both V-columns in block 0) or
    ``"distinct_noisy"`` (``reps = 2``, V-columns in different blocks with
    random companions).
    """
    if case not in ("distinct", "same_block", "distinct_noisy"):
        raise ValueError(f"unknown case {case!r}")
    reps = 1 if case == "distinct" else 2
    beta = 1.0 / reps
    # Lemma 4's hypothesis is |<A_p, A_q>| >= λ ε / β with A = ΠV; since
    # A's columns are columns of Π, we plant <Π_c1, Π_c2> = λ ε / β.
    target = lam * epsilon / beta
    if target > 1.0:
        raise ValueError(
            f"cannot plant inner product {target:.3f} > 1 with unit columns"
        )
    m = 4 * d * reps + 8
    pi = np.zeros((m, n))
    alpha = math.sqrt((1.0 + target) / 2.0)
    gamma = math.sqrt((1.0 - target) / 2.0)
    # Columns 0 and 1 of Π share rows 0, 1 with the prescribed geometry.
    pi[0, 0], pi[1, 0] = alpha, gamma
    pi[0, 1], pi[1, 1] = alpha, -gamma
    # Every other ambient column gets its own private row (norm 1).
    for j in range(2, min(n, m - 2)):
        pi[j, j] = 1.0
    count = reps * d
    rows = np.empty(count, dtype=int)
    if case == "same_block":
        # V-columns 0 and 1 (block 0) select the planted Π columns.
        rows[0], rows[1] = 0, 1
        rows[2:] = np.arange(2, count)
        p, q = 0, 1
    elif case == "distinct":
        rows[0] = 0
        rows[1] = 1
        rows[2:] = np.arange(2, count)
        p, q = 0, 1
    else:  # distinct_noisy: planted columns in blocks 0 and 1, slot 0
        rows[0] = 0          # block 0, first member
        rows[1] = 2          # block 0, second member (random companion)
        rows[2] = 1          # block 1, first member
        rows[3] = 3          # block 1, second member
        rows[4:] = np.arange(4, count)
        p, q = 0, 2
    signs = rng.choice((-1.0, 1.0), size=count)
    u = np.zeros((n, d))  # placeholder; structured path never touches it
    draw = HardDraw(u=u, rows=rows, signs=signs, reps=reps,
                    component=f"planted[{case}]")
    return pi, draw, p, q


class Lemma4WitnessExperiment(Experiment):
    """Measured escape probability of the Lemma 4 witness vs λ."""

    experiment_id = "E6"
    title = "Witness anti-concentration (Fact 5 / Lemma 4)"
    paper_claim = "inner product >= lam*eps/beta with lam>2 => escape >= 1/4"

    def _run(self, scale: float, rng) -> ExperimentResult:
        result = self._result()
        epsilon = 0.05
        n, d = 256, 6
        lams = [1.5, 2.0, 2.2, 3.0, 5.0, 8.0]
        cases = ["distinct", "same_block", "distinct_noisy"]
        table = TextTable(
            title=f"E6: exact escape probability (eps={epsilon:g})",
            columns=["case", "lambda", "escape", "bound", "witness_nnz"],
        )
        min_escape_above = 1.0
        max_escape_below = 0.0
        for case in cases:
            for lam in lams:
                pi, draw, p, q = planted_pi_and_draw(
                    case, lam, epsilon, n, d, spawn(rng)
                )
                escape = escape_probability(
                    pi, draw, p, q, epsilon, rng=spawn(rng)
                )
                u = witness_vector(p, q, draw.reps, d)
                table.add_row([
                    case, lam, escape.point, 0.25,
                    int(np.count_nonzero(u)),
                ])
                # Lemma 4 applies for lam > 2 (strictly above 2 + eps at
                # finite eps); track both sides of the boundary.  The
                # below-threshold side is only meaningful for the
                # "distinct" cases: with beta = 1/2 the same-block escape
                # magnitude doubles, so small lam can still escape there.
                if lam >= 2.0 + 2 * epsilon + 1e-9:
                    min_escape_above = min(min_escape_above, escape.point)
                if case == "distinct" and lam <= 2.0 - 1e-9:
                    max_escape_below = max(max_escape_below, escape.point)
        result.tables.append(table)
        result.metrics["min_escape_above_threshold"] = min_escape_above
        result.metrics["max_escape_below_threshold"] = max_escape_below
        result.notes.append(
            "escape >= 1/4 everywhere above the lambda > 2 boundary, in "
            "all three block-structure cases"
        )
        return result
