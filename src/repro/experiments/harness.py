"""Experiment harness.

Every experiment (E1–E14 of DESIGN.md) is a subclass of
:class:`Experiment` producing an :class:`ExperimentResult` — one or more
plain-text tables plus a dictionary of scalar metrics that the benchmarks
and EXPERIMENTS.md assertions key off.

Experiments accept a ``scale`` knob: ``scale = 1.0`` regenerates the
EXPERIMENTS.md numbers; smaller values shrink trial counts and grids for
fast benchmark runs while preserving the qualitative shape.
"""

from __future__ import annotations

import abc
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..observe.counters import counters
from ..observe.ledger import emit_event
from ..utils.parallel import ShardSpec, normalize_shard
from ..utils.rng import RngLike, as_generator
from ..utils.serialization import json_default, to_builtin
from ..utils.tables import TextTable

__all__ = [
    "ExperimentResult",
    "Experiment",
    "NON_RESULT_COUNTER_PREFIXES",
    "scaled_int",
]

#: Counter-name prefixes describing caching/checkpoint bookkeeping rather
#: than the computation itself.  Excluded from ``count_*`` result metrics:
#: a warm-cache run hits where a cold run misses, and metrics must stay
#: bit-identical across cold, warm, and cache-off runs (and across
#: sharded-and-merged vs serial runs — ``shard_`` counters exist only in
#: shard passes).
NON_RESULT_COUNTER_PREFIXES = ("cache_", "checkpoint_", "shard_")


def scaled_int(base: int, scale: float, minimum: int = 1) -> int:
    """``base`` trials/points scaled by ``scale``, clamped below."""
    if base < minimum:
        raise ValueError(f"base ({base}) below minimum ({minimum})")
    return max(minimum, int(round(base * scale)))


@dataclass
class ExperimentResult:
    """Rendered output of one experiment run.

    Attributes
    ----------
    experiment_id / title:
        Identity of the experiment.
    tables:
        The result tables (the reproduction's "figures").
    metrics:
        Scalar metrics for automated shape assertions, e.g. fitted scaling
        exponents.
    notes:
        Free-form commentary lines (substitutions, caveats).
    elapsed_seconds:
        Wall-clock runtime.  Shown by :meth:`render` but deliberately
        **excluded** from :meth:`to_dict`: JSON artifacts must be
        byte-identical across re-runs of the same seed (checkpoint/resume
        and the CI cache smoke diff them), and wall-clock never is.
    """

    experiment_id: str
    title: str
    tables: List[TextTable] = field(default_factory=list)
    metrics: Dict[str, float] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    def render(self) -> str:
        """Full plain-text report."""
        parts = [f"== {self.experiment_id}: {self.title} =="]
        parts.extend(table.render() for table in self.tables)
        if self.metrics:
            parts.append("metrics:")
            parts.extend(
                f"  {key} = {value:.6g}"
                for key, value in sorted(self.metrics.items())
            )
        parts.extend(f"note: {note}" for note in self.notes)
        parts.append(f"(completed in {self.elapsed_seconds:.1f}s)")
        return "\n".join(parts)

    def to_dict(self) -> dict:
        """JSON-serializable form (tables as header + string rows).

        Metrics and table rows are coerced through
        :func:`repro.utils.serialization.to_builtin`: numpy scalars
        (``np.int64`` counts, ``np.float32`` metrics) would otherwise make
        ``json.dumps`` raise ``TypeError`` and crash ``--json-dir`` saves
        after a completed run.

        ``elapsed_seconds`` is intentionally absent — see the class
        docstring.  :meth:`from_dict` still accepts legacy payloads that
        carry it.
        """
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "tables": [
                {
                    "title": table.title,
                    "columns": [to_builtin(c) for c in table.columns],
                    "rows": [to_builtin(list(row)) for row in table.rows],
                }
                for table in self.tables
            ],
            "metrics": to_builtin(dict(self.metrics)),
            "notes": [to_builtin(note) for note in self.notes],
        }

    def save_json(self, path: Union[str, Path]) -> Path:
        """Write the result as JSON; returns the path written."""
        path = Path(path)
        path.write_text(
            json.dumps(self.to_dict(), indent=2, allow_nan=False,
                       default=json_default)
        )
        return path

    @classmethod
    def from_dict(cls, payload: dict) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_dict` output.

        Table rows are validated against the column count on load: a row
        of the wrong arity used to be assigned silently and only blow up
        (or, worse, render shifted columns) much later, far from the
        corrupt JSON that caused it.
        """
        result = cls(
            experiment_id=payload["experiment_id"],
            title=payload["title"],
            metrics=dict(payload.get("metrics", {})),
            notes=list(payload.get("notes", [])),
            elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),
        )
        for spec in payload.get("tables", []):
            table = TextTable(title=spec["title"], columns=spec["columns"])
            width = len(table.columns)
            rows = []
            for index, row in enumerate(spec["rows"]):
                row = list(row)
                if len(row) != width:
                    raise ValueError(
                        f"table {table.title!r} of experiment "
                        f"{result.experiment_id!r}: row {index} has "
                        f"{len(row)} cells, expected {width} "
                        f"(columns: {list(table.columns)})"
                    )
                rows.append(row)
            table.rows = rows
            result.tables.append(table)
        return result

    @classmethod
    def load_json(cls, path: Union[str, Path]) -> "ExperimentResult":
        """Read a result previously written by :meth:`save_json`."""
        return cls.from_dict(json.loads(Path(path).read_text()))

    def __str__(self) -> str:
        return self.render()


class Experiment(abc.ABC):
    """Base class for DESIGN.md experiments.

    Subclasses define class attributes ``experiment_id``, ``title`` and
    ``paper_claim``, and implement :meth:`_run`.
    """

    experiment_id: str = "E?"
    title: str = ""
    paper_claim: str = ""

    #: Worker processes for Monte-Carlo trial loops; set by :meth:`run`.
    _workers: int = 1
    #: Probe cache for ``failure_estimate``/``minimal_m``; set by :meth:`run`.
    _cache = None
    #: This run's shard identity (or ``None``); set by :meth:`run`.
    _shard: Optional[ShardSpec] = None
    #: Batched-trial width for ``failure_estimate`` (or ``None``); set by
    #: :meth:`run`.
    _batch: Optional[int] = None

    @property
    def workers(self) -> int:
        """Worker processes available to this run's trial loops.

        Experiment implementations pass this to ``failure_estimate`` /
        ``minimal_m`` / ``estimate_probability``; results are bit-identical
        across ``workers`` settings at a fixed seed (the trial engine
        derives per-trial seeds up front — see :mod:`repro.utils.parallel`).
        """
        return self._workers

    @property
    def cache(self):
        """Probe cache for this run's Monte-Carlo helpers (or ``None``).

        Experiment implementations pass this as the ``cache=`` argument of
        ``failure_estimate`` / ``distortion_samples`` / ``minimal_m``;
        results stay bit-identical with the cache on, off, cold, or warm
        (see :mod:`repro.cache`).
        """
        return self._cache

    @property
    def shard(self) -> Optional[ShardSpec]:
        """This run's shard identity in an N-way fan-out (or ``None``).

        Experiment implementations forward this as the ``shard=`` argument
        of ``failure_estimate`` / ``distortion_samples`` / ``minimal_m``;
        with it set, those calls execute only this shard's trial slices
        and exchange partial results through the probe cache (see
        :mod:`repro.shard`).  ``None`` — the default — is plain serial
        execution.
        """
        return self._shard

    @property
    def batch(self) -> Optional[int]:
        """Batched-trial width for this run's trial loops (or ``None``).

        Experiment implementations forward this as the ``batch=`` argument
        of ``failure_estimate`` / ``minimal_m``; ``None`` (and ``1``)
        delegate bitwise to the serial trial path, while ``batch > 1``
        fuses that many sketch draws per dispatch (a distinct, but still
        deterministic, accumulation order — see ``docs/perf.md``).
        """
        return self._batch

    def run(self, scale: float = 1.0, rng: RngLike = None,
            workers: int = 1, cache=None, shard=None,
            batch: Optional[int] = None) -> ExperimentResult:
        """Run the experiment; ``scale`` shrinks or grows the workload.

        ``workers`` parallelizes the experiment's Monte-Carlo trial loops
        over a process pool (``None``/``0`` = all CPUs) without changing
        any result at a fixed seed.  ``cache`` (a
        :class:`repro.cache.ProbeCache`) lets those loops reuse probe
        results across runs, likewise without changing any result.

        Operation counts accrued during the run (sketch samples, kernel
        applies, trials — see :mod:`repro.observe.counters`) are attached
        to the result as ``count_*`` metrics; they are identical for
        serial and parallel runs of the same seed, and for cached and
        uncached runs — cache bookkeeping counters
        (:data:`NON_RESULT_COUNTER_PREFIXES`) are reported to the ledger
        but kept out of the metrics.  With a run ledger installed,
        ``experiment_start``/``counters``/``experiment_end`` events
        bracket the run.
        """
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        shard = normalize_shard(shard)
        if shard is not None and cache is None:
            raise ValueError(
                "shard= requires cache=: shard passes exchange probe "
                "partials through the probe cache (see repro.shard)"
            )
        if batch is not None and batch < 1:
            raise ValueError(f"batch must be positive, got {batch}")
        self._workers = workers
        self._cache = cache
        self._shard = shard
        self._batch = batch
        emit_event(
            "experiment_start", experiment=self.experiment_id,
            title=self.title, scale=scale, workers=workers,
        )
        before = counters().snapshot()
        started = time.perf_counter()
        try:
            result = self._run(scale, as_generator(rng))
        finally:
            self._cache = None
            self._shard = None
            self._batch = None
        result.elapsed_seconds = time.perf_counter() - started
        delta = counters().diff(before)
        for name in sorted(delta):
            if name.startswith(NON_RESULT_COUNTER_PREFIXES):
                continue
            result.metrics.setdefault(f"count_{name}", delta[name])
        emit_event("counters", experiment=self.experiment_id, **delta)
        emit_event(
            "experiment_end", experiment=self.experiment_id,
            elapsed=result.elapsed_seconds,
            metrics=to_builtin(dict(result.metrics)),
        )
        return result

    @abc.abstractmethod
    def _run(self, scale: float, rng) -> ExperimentResult:
        """Implementation hook; receives a normalized generator."""

    def _result(self) -> ExperimentResult:
        """Fresh result shell carrying this experiment's identity."""
        return ExperimentResult(
            experiment_id=self.experiment_id, title=self.title
        )
