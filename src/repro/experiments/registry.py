"""Registry mapping experiment ids to their implementations."""

from __future__ import annotations

from typing import Dict, List, Optional, Type

from ..utils.rng import RngLike
from .e01_countsketch_threshold import CountSketchThresholdExperiment
from .e02_eps_delta_scaling import EpsDeltaScalingExperiment
from .e03_column_norms import ColumnNormExperiment
from .e04_birthday import BirthdayCollisionExperiment
from .e05_lemma3 import Lemma3Experiment
from .e06_lemma4_witness import Lemma4WitnessExperiment
from .e07_algorithm1 import Algorithm1Experiment
from .e08_hadamard_tightness import HadamardTightnessExperiment
from .e09_sparsity_tradeoff import SparsityTradeoffExperiment
from .e10_heavy_budget import HeavyBudgetExperiment
from .e11_applications import ApplicationsExperiment
from .e12_regime_map import RegimeMapExperiment
from .e13_expected_sparsity import ExpectedSparsityExperiment
from .e14_two_stage import TwoStageExperiment
from .harness import Experiment, ExperimentResult

__all__ = [
    "EXPERIMENTS",
    "experiment_ids",
    "get_experiment",
    "run_experiment",
    "run_all",
]

_CLASSES: List[Type[Experiment]] = [
    CountSketchThresholdExperiment,
    EpsDeltaScalingExperiment,
    ColumnNormExperiment,
    BirthdayCollisionExperiment,
    Lemma3Experiment,
    Lemma4WitnessExperiment,
    Algorithm1Experiment,
    HadamardTightnessExperiment,
    SparsityTradeoffExperiment,
    HeavyBudgetExperiment,
    ApplicationsExperiment,
    RegimeMapExperiment,
    ExpectedSparsityExperiment,
    TwoStageExperiment,
]

EXPERIMENTS: Dict[str, Type[Experiment]] = {
    cls.experiment_id: cls for cls in _CLASSES
}


def experiment_ids() -> List[str]:
    """All registered experiment ids in DESIGN.md order."""
    return [cls.experiment_id for cls in _CLASSES]


def get_experiment(experiment_id: str) -> Experiment:
    """Instantiate the experiment registered under ``experiment_id``."""
    try:
        cls = EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(experiment_ids())
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None
    return cls()


def run_experiment(experiment_id: str, scale: float = 1.0,
                   rng: RngLike = None,
                   workers: int = 1, cache=None,
                   shard=None,
                   batch: Optional[int] = None) -> ExperimentResult:
    """Run one experiment by id.

    ``workers`` parallelizes its trial loops; ``cache`` (a
    :class:`repro.cache.ProbeCache`) reuses probe results across runs —
    neither changes any result at a fixed seed.  ``shard`` (a
    :class:`~repro.utils.parallel.ShardSpec` or ``(index, count)`` pair)
    runs one shard pass of an N-way fan-out; see :mod:`repro.shard`.
    ``batch`` switches Monte-Carlo trial loops onto the batched kernel
    engine (``None``/``1`` = the serial per-trial path, bit-identically;
    see :attr:`repro.experiments.harness.Experiment.batch`).
    """
    return get_experiment(experiment_id).run(
        scale=scale, rng=rng, workers=workers, cache=cache, shard=shard,
        batch=batch,
    )


def run_all(scale: float = 1.0, rng: RngLike = None,
            workers: int = 1, cache=None,
            shard=None,
            batch: Optional[int] = None) -> List[ExperimentResult]:
    """Run every experiment, returning results in order."""
    return [
        run_experiment(eid, scale=scale, rng=rng, workers=workers,
                       cache=cache, shard=shard, batch=batch)
        for eid in experiment_ids()
    ]
