"""E1 — Theorem 8: CountSketch's minimal dimension scales as d².

For fixed ``ε = 1/16`` and ``δ = 0.2`` we measure, over a grid of ``d``,
the minimal target dimension ``m*`` at which CountSketch achieves failure
rate ≤ δ on the Section 3 hard mixture, and fit the scaling exponent of
``m*`` against ``d`` (Theorem 8 predicts exponent 2).  A control column
repeats the measurement on a Haar-random subspace, where the threshold is
dramatically smaller and scales linearly — demonstrating that the hard
instance, not CountSketch, forces the quadratic regime.

Substitution note: the paper requires ``n ≥ K d²/(ε²δ)`` so that the
*adversarial* argument goes through for any Π.  For measuring the concrete
CountSketch family the threshold is ``n``-independent once ``n`` exceeds
the instance support ``d/(8ε)``; we use ``n = max(4096, 4·(d/(8ε))²)`` and
record the birthday-paradox prediction alongside Theorem 8's formula.
"""

from __future__ import annotations

from ..core.bounds import theorem8_lower_bound
from ..core.collisions import birthday_lower_bound_m
from ..core.tester import minimal_m
from ..hardinstances.identity import SpikedSubspace
from ..hardinstances.mixtures import section3_mixture
from ..sketch.countsketch import CountSketch
from ..utils.rng import spawn
from ..utils.stats import fit_power_law
from ..utils.tables import TextTable
from .harness import Experiment, ExperimentResult, scaled_int

__all__ = ["CountSketchThresholdExperiment"]

EPSILON = 1.0 / 16.0
DELTA = 0.2


class CountSketchThresholdExperiment(Experiment):
    """Minimal CountSketch dimension vs ``d`` on the hard mixture."""

    experiment_id = "E1"
    title = "CountSketch threshold vs d (Theorem 8)"
    paper_claim = "s=1 OSEs need m = Omega(d^2/(eps^2 delta))"

    def _run(self, scale: float, rng) -> ExperimentResult:
        result = self._result()
        ds = [4, 6, 8, 12, 16]
        if scale < 0.5:
            ds = [4, 6, 8]
        # The minimal-m search takes the first passing probe, so estimator
        # noise biases m* low; ample trials keep the bias below the
        # transition width.
        trials = scaled_int(120, scale, minimum=20)
        reps = max(1, int(round(1.0 / (8.0 * EPSILON))))

        table = TextTable(
            title=(
                f"E1: CountSketch minimal m on hard mixture "
                f"(eps={EPSILON:g}, delta={DELTA:g}, trials={trials})"
            ),
            columns=[
                "d", "q=d/(8eps)", "n", "m*(hard)", "birthday pred",
                "m*(random)",
            ],
        )

        hard_points = []
        control_points = []
        for d in ds:
            q = reps * d
            n = max(4096, 4 * q * q)
            hard = section3_mixture(n=n, d=d, epsilon=EPSILON)
            family = CountSketch(m=max(4, q), n=n)
            search = minimal_m(
                family, hard, EPSILON, DELTA, trials=trials,
                m_min=max(4, q), rng=spawn(rng), workers=self.workers,
                cache=self.cache, shard=self.shard, batch=self.batch,
            )
            m_hard = search.m_star if search.found else float("nan")

            control_inst = SpikedSubspace(n=4096, d=d, alpha=0.0)
            control_family = CountSketch(m=4, n=4096)
            control = minimal_m(
                control_family, control_inst, EPSILON, DELTA,
                trials=max(10, trials // 2), m_min=4, rng=spawn(rng),
                workers=self.workers, cache=self.cache, shard=self.shard,
                batch=self.batch,
            )
            m_control = control.m_star if control.found else float("nan")

            # The mixture fails iff the D_{8eps} half fails, so the
            # per-component budget is 2*delta.
            prediction = birthday_lower_bound_m(q, min(0.9, 2 * DELTA))
            table.add_row([d, q, n, m_hard, prediction, m_control])
            if search.found:
                hard_points.append((d, m_hard))
            if control.found:
                control_points.append((d, m_control))

        result.tables.append(table)
        if len(hard_points) >= 2:
            slope, _ = fit_power_law(
                [p[0] for p in hard_points], [p[1] for p in hard_points]
            )
            result.metrics["hard_slope_vs_d"] = slope
        if len(control_points) >= 2:
            slope, _ = fit_power_law(
                [p[0] for p in control_points],
                [p[1] for p in control_points],
            )
            result.metrics["control_slope_vs_d"] = slope
        result.metrics["theorem8_at_max_d"] = theorem8_lower_bound(
            ds[-1], EPSILON, DELTA
        )
        result.notes.append(
            "paper predicts slope 2 for the hard instance vs slope ~1 for "
            "the random-subspace control; with these constants the hard "
            "instance's absolute threshold overtakes the control's dense "
            "d/eps^2 cost at d ~ 60 (both bounds coexist, the larger wins)"
        )
        return result
