"""Experiment harness regenerating every table in EXPERIMENTS.md."""

from .harness import Experiment, ExperimentResult, scaled_int
from .registry import (
    EXPERIMENTS,
    experiment_ids,
    get_experiment,
    run_all,
    run_experiment,
)
from .workloads import clustered_points, lowrank_matrix, regression_problem

__all__ = [
    "Experiment",
    "ExperimentResult",
    "scaled_int",
    "EXPERIMENTS",
    "experiment_ids",
    "get_experiment",
    "run_all",
    "run_experiment",
    "clustered_points",
    "lowrank_matrix",
    "regression_problem",
]
