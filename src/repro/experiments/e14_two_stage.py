"""E14 (extension) — escaping the quadratic bound by composition.

The practical consequence of the paper's lower bounds: a *single* sparse
sketch cannot have both ``O(nnz)`` application cost and ``o(d²)`` rows —
but a composition can.  ``Π = Π_G · Π_CS`` applies CountSketch (cheap, at
a comfortable ``m₁ ≫ d²``) and then compresses the small intermediate
with a Gaussian sketch.  The composed map embeds with near-optimal final
dimension at ``O(nnz(A)) + poly(d/ε)`` total cost — without contradicting
the theorems, because the composed matrix is dense (its column sparsity
is ``m₂``, far above ``1/(9ε)``).

Measured: the minimal *final* dimension of the single CountSketch vs the
two-stage construction on ``D₁``, at a ``d`` large enough that the
quadratic term dominates the dense ``d/ε²`` term.  Expected shape:
``m*(CountSketch) ≈ 1.7 d²`` (birthday) while ``m*(two-stage)`` tracks
the Gaussian level ``≈ c·d/ε²``, well below it.
"""

from __future__ import annotations

import numpy as np

from ..core.collisions import birthday_lower_bound_m
from ..core.tester import minimal_m
from ..hardinstances.dbeta import DBeta
from ..sketch.compose import TwoStageSketch
from ..sketch.countsketch import CountSketch
from ..sketch.gaussian import GaussianSketch
from ..utils.rng import spawn
from ..utils.tables import TextTable
from .harness import Experiment, ExperimentResult, scaled_int

__all__ = ["TwoStageExperiment"]


class TwoStageExperiment(Experiment):
    """CountSketch -> Gaussian composition vs a single CountSketch."""

    experiment_id = "E14"
    title = "Two-stage sketching escapes the d^2 barrier (extension)"
    paper_claim = (
        "no single s<=1/(9eps) sketch has o(d^2) rows; dense "
        "compositions are exempt"
    )

    def _run(self, scale: float, rng) -> ExperimentResult:
        result = self._result()
        epsilon = 0.3
        delta = 0.25
        d = 32 if scale >= 0.5 else 24
        n = 8 * d * d
        trials = scaled_int(50, scale, minimum=15)
        instance = DBeta(n=n, d=d, reps=1)

        # Single CountSketch: the quadratic birthday threshold.
        single = CountSketch(m=d, n=n)
        single_search = minimal_m(
            single, instance, epsilon, delta, trials=trials, m_min=d,
            rng=spawn(rng), workers=self.workers, cache=self.cache,
            shard=self.shard, batch=self.batch,
        )

        # Two-stage: inner CountSketch at a comfortable m1 >> d^2, outer
        # Gaussian swept over the final dimension.
        m1 = 8 * d * d
        composed = TwoStageSketch(
            CountSketch(m=m1, n=n), GaussianSketch(m=d, n=m1)
        )
        composed_search = minimal_m(
            composed, instance, epsilon, delta, trials=trials, m_min=d,
            rng=spawn(rng), workers=self.workers, cache=self.cache,
            shard=self.shard, batch=self.batch,
        )

        table = TextTable(
            title=(
                f"E14: minimal final dimension on D_1 "
                f"(d={d}, eps={epsilon:g}, delta={delta:g}, "
                f"trials={trials})"
            ),
            columns=["construction", "m*", "m*/d^2",
                     "apply cost / column"],
        )
        probe = np.ones((n, 1))
        m_single = single_search.m_star
        m_two = composed_search.m_star
        cost_single = (
            single.with_m(m_single).sample(spawn(rng), lazy=True)
            .apply_cost(probe)
            if m_single else float("nan")
        )
        cost_two = (
            composed.with_m(m_two).sample(spawn(rng), lazy=True)
            .apply_cost(probe)
            if m_two else float("nan")
        )
        table.add_row([
            "CountSketch (single)", m_single,
            m_single / (d * d) if m_single else float("nan"), cost_single,
        ])
        table.add_row([
            "CountSketch->Gaussian", m_two,
            m_two / (d * d) if m_two else float("nan"), cost_two,
        ])
        result.tables.append(table)

        if m_single and m_two:
            result.metrics["single_m_star"] = m_single
            result.metrics["two_stage_m_star"] = m_two
            result.metrics["escape_factor"] = m_single / m_two
        result.metrics["birthday_prediction"] = birthday_lower_bound_m(
            d, delta
        )
        result.notes.append(
            "the composition's final dimension sits well below the "
            "single sparse sketch's quadratic threshold — consistent "
            "with the lower bounds, which only constrain sparse maps"
        )
        return result
