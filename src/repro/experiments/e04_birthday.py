"""E4 — Lemma 7 + birthday paradox: bucket collisions kill ``s = 1``.

On ``D_{8ε}`` draws, the ``q = d/(8ε)`` chosen columns of a CountSketch
matrix hash into ``m`` buckets; Lemma 7 forbids any bucket holding two of
them.  We measure the empirical collision probability over ``m`` and
compare it with the exact birthday formula ``1 - ∏(1 - i/m)``, and verify
that collisions do coincide with embedding failures.
"""

from __future__ import annotations

from ..core.collisions import (
    birthday_collision_probability,
    has_bucket_collision,
)
from ..core.rank_certificate import rank_certificate
from ..hardinstances.dbeta import DBeta
from ..sketch.countsketch import CountSketch
from ..utils.rng import spawn
from ..utils.tables import TextTable
from .harness import Experiment, ExperimentResult, scaled_int

__all__ = ["BirthdayCollisionExperiment"]


class BirthdayCollisionExperiment(Experiment):
    """Empirical vs predicted collision rate, and collision→failure."""

    experiment_id = "E4"
    title = "Bucket collisions follow the birthday paradox (Lemma 7)"
    paper_claim = "no bucket may hold two chosen dimensions; P follows q,m"

    def _run(self, scale: float, rng) -> ExperimentResult:
        result = self._result()
        epsilon = 1.0 / 16.0
        d = 8
        reps = round(1.0 / (8.0 * epsilon))
        q = reps * d
        n = 4096
        trials = scaled_int(120, scale, minimum=30)
        instance = DBeta(n=n, d=d, reps=reps)
        ms = [64, 128, 256, 512, 1024, 2048]
        if scale < 0.5:
            ms = [64, 256, 1024]
        table = TextTable(
            title=(
                f"E4: collision probability of q={q} columns in m buckets "
                f"(trials={trials})"
            ),
            columns=[
                "m", "empirical", "predicted", "fail_given_collision",
                "fail_given_no_collision", "rank_deficient_of_failures",
            ],
        )
        max_gap = 0.0
        total_failures = 0
        total_rank_drops = 0
        for m in ms:
            family = CountSketch(m=m, n=n)
            collisions = 0
            fail_and_coll = 0
            fail_and_free = 0
            free = 0
            rank_drops = 0
            failures = 0
            for _ in range(trials):
                # Eager on purpose: collision/rank checks read the
                # explicit matrix immediately below.
                sketch = family.sample(spawn(rng), lazy=False)
                draw = instance.sample_draw(spawn(rng))
                collided = has_bucket_collision(
                    sketch.matrix, draw.rows, 1.0 - epsilon, 1.0 + epsilon
                )
                cert = rank_certificate(sketch.matrix, draw, epsilon)
                failed = cert.interval_failure
                if failed:
                    failures += 1
                    rank_drops += int(cert.rank_deficient)
                if collided:
                    collisions += 1
                    fail_and_coll += int(failed)
                else:
                    free += 1
                    fail_and_free += int(failed)
            empirical = collisions / trials
            predicted = birthday_collision_probability(q, m)
            max_gap = max(max_gap, abs(empirical - predicted))
            fail_coll = fail_and_coll / collisions if collisions else 0.0
            fail_free = fail_and_free / free if free else 0.0
            rank_fraction = rank_drops / failures if failures else 0.0
            total_failures += failures
            total_rank_drops += rank_drops
            table.add_row([
                m, empirical, predicted, fail_coll, fail_free,
                rank_fraction,
            ])
        result.tables.append(table)
        result.metrics["max_empirical_vs_predicted_gap"] = max_gap
        if total_failures:
            # The NN13b footnote-1 ablation: with reps > 1 most failures
            # perturb norms without annihilating a direction, so the rank
            # test (unlike the interval test) misses them.
            result.metrics["rank_deficient_failure_fraction"] = (
                total_rank_drops / total_failures
            )
        result.notes.append(
            "collisions track the exact birthday formula; a collision "
            "almost always implies embedding failure (Lemma 7), and "
            "failures without collisions are rare; NN13b's rank test "
            "misses most failures at reps > 1 (footnote 1)"
        )
        return result
