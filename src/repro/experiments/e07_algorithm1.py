"""E7 — Algorithm 1 finds large-inner-product pairs at rate ~ d²/m.

We run the paper's Algorithm 1 on the Remark 10 block-Hadamard matrix —
which satisfies the abundance assumption by construction (every entry of
every column is ``√(8ε)``-heavy) — over a grid of target dimensions
``m``.  Corollary 17 predicts that a pair with inner product at least
``(8-κ)ε`` is found with probability ``Ω(min{d²/m, 1})``; the measured
success rate should decay with ``m`` accordingly, and the number of
colliding pairs found should track the same shape.

The ablation of DESIGN.md §5(1) is included: the greedy Algorithm 1 rate
is compared against an exhaustive scan over all pairs of chosen columns
(an upper bound on any pair-finding strategy).
"""

from __future__ import annotations

import math

import numpy as np

from ..core.algorithm1 import run_algorithm1
from ..core.heavy import good_columns
from ..core.lemmas import KAPPA
from ..hardinstances.dbeta import DBeta
from ..sketch.hadamard_block import HadamardBlockSketch
from ..utils.rng import spawn
from ..utils.tables import TextTable
from .harness import Experiment, ExperimentResult, scaled_int

__all__ = ["Algorithm1Experiment"]


class Algorithm1Experiment(Experiment):
    """Success rate of Algorithm 1 vs target dimension."""

    experiment_id = "E7"
    title = "Algorithm 1 pair finding (Lemmas 12/13, Corollary 17)"
    paper_claim = "a (8-kappa)eps pair is found w.p. Omega(min{d^2/m, 1})"

    def _run(self, scale: float, rng) -> ExperimentResult:
        result = self._result()
        epsilon = 1.0 / 32.0
        d = 32
        block = 4  # = 1/(8 eps)
        n = 8 * d * d
        trials = scaled_int(80, scale, minimum=20)
        threshold = (8.0 - KAPPA) * epsilon
        theta = math.sqrt(8.0 * epsilon)
        min_heavy = max(1, int(1.0 / (16.0 * epsilon)))
        m_factors = [0.25, 0.5, 1.0, 2.0, 4.0]
        if scale < 0.5:
            m_factors = [0.25, 1.0, 4.0]
        table = TextTable(
            title=(
                f"E7: Algorithm 1 on block-Hadamard Pi "
                f"(d={d}, eps={epsilon:g}, trials={trials})"
            ),
            columns=[
                "m", "d^2/m", "avg_pairs", "greedy_success",
                "exhaustive_success",
            ],
        )
        rates = []
        for factor in m_factors:
            m = int(factor * d * d)
            if m % block:
                m += block - m % block
            family = HadamardBlockSketch(
                m=m, n=n, block_order=block, permute=True
            )
            instance = DBeta(n=n, d=d, reps=1)
            pair_counts = []
            greedy_hits = 0
            exhaustive_hits = 0
            for _ in range(trials):
                # Eager on purpose: Algorithm 1 walks the explicit matrix.
                sketch = family.sample(spawn(rng), lazy=False)
                pi = sketch.matrix
                draw = instance.sample_draw(spawn(rng))
                good = good_columns(pi, epsilon, theta, min_heavy)
                good_lookup = set(int(c) for c in good)
                chosen = [c for c in draw.rows if int(c) in good_lookup]
                if len(chosen) < 2:
                    pair_counts.append(0)
                    continue
                trace = run_algorithm1(
                    pi, chosen, good, epsilon, d=d, rng=spawn(rng)
                )
                pair_counts.append(trace.pair_count)
                dense_cols = np.asarray(
                    pi.tocsc()[:, draw.rows].toarray(), dtype=float
                )
                gram = dense_cols.T @ dense_cols
                np.fill_diagonal(gram, 0.0)
                if np.any(np.abs(gram) >= threshold):
                    exhaustive_hits += 1
                for ci, cj in trace.pairs:
                    a = np.asarray(
                        pi.tocsc()[:, ci].toarray()
                    ).ravel()
                    b = np.asarray(
                        pi.tocsc()[:, cj].toarray()
                    ).ravel()
                    if abs(float(a @ b)) >= threshold:
                        greedy_hits += 1
                        break
            greedy_rate = greedy_hits / trials
            exhaustive_rate = exhaustive_hits / trials
            rates.append((m, greedy_rate, exhaustive_rate))
            table.add_row([
                m, d * d / m, float(np.mean(pair_counts)),
                greedy_rate, exhaustive_rate,
            ])
        result.tables.append(table)
        if len(rates) >= 2:
            first, last = rates[0], rates[-1]
            result.metrics["exhaustive_rate_at_small_m"] = first[2]
            result.metrics["exhaustive_rate_at_large_m"] = last[2]
            result.metrics["greedy_rate_at_small_m"] = first[1]
            if last[2] > 0:
                result.metrics["decay_factor"] = first[2] / last[2]
        result.notes.append(
            "success rates decay as m grows past d^2, matching "
            "min{d^2/m, 1}; the greedy rate tracks the exhaustive upper "
            "bound within a constant"
        )
        return result
