"""E3 — Lemma 6: embedding columns must have norm ``1 ± ε``.

Lemma 6 says an ``s = 1`` subspace embedding for the hard mixture must
have almost every nonzero entry of absolute value ``1 ± ε``.  We probe the
converse direction experimentally: CountSketch matrices whose entries are
rescaled by a factor ``c`` are run against ``D_1``, and the failure
probability is measured as ``c`` crosses the ``[1-ε, 1+ε]`` boundary.  The
transition should be sharp: near-zero failure strictly inside, certain
failure outside.
"""

from __future__ import annotations

from ..core.tester import failure_estimate
from ..hardinstances.dbeta import DBeta
from ..sketch.base import Sketch
from ..sketch.countsketch import CountSketch
from ..utils.rng import RngLike, spawn
from ..utils.tables import TextTable
from .harness import Experiment, ExperimentResult, scaled_int

__all__ = ["ScaledCountSketch", "ColumnNormExperiment"]


class ScaledCountSketch(CountSketch):
    """CountSketch with all entries multiplied by a constant ``c``.

    The Lemma 6 probe family: its columns have norm exactly ``|c|``, so it
    is a valid embedding for ``D_1`` iff ``|c| ∈ [1-ε, 1+ε]`` (up to
    bucket collisions).
    """

    def __init__(self, m: int, n: int, c: float = 1.0):
        super().__init__(m, n)
        if c == 0:
            raise ValueError("c must be nonzero")
        self._c = float(c)

    @property
    def c(self) -> float:
        return self._c

    @property
    def name(self) -> str:
        return f"ScaledCountSketch[c={self._c:g}]"

    def _resize_params(self) -> dict:
        return {"m": self.m, "n": self.n, "c": self._c}

    def sample(self, rng: RngLike = None, lazy: bool = False) -> Sketch:
        # Scaling needs the materialized matrix; ``lazy`` is ignored.
        base = super().sample(rng)
        return Sketch(base.matrix * self._c, family=self)


class ColumnNormExperiment(Experiment):
    """Failure probability of ``c``-scaled CountSketch on ``D_1``."""

    experiment_id = "E3"
    title = "Column norms must be 1 ± eps (Lemma 6)"
    paper_claim = "(1 - 2delta/d) fraction of entries have |value| = 1 ± eps"

    def _run(self, scale: float, rng) -> ExperimentResult:
        result = self._result()
        epsilon = 0.1
        d, n = 8, 4096
        m = 40 * d * d  # comfortably above the D_1 birthday threshold
        trials = scaled_int(80, scale, minimum=20)
        instance = DBeta(n=n, d=d, reps=1)
        table = TextTable(
            title=(
                f"E3: failure of c-scaled CountSketch on D_1 "
                f"(d={d}, m={m}, eps={epsilon:g}, trials={trials})"
            ),
            columns=["c", "|c-1|/eps", "failure", "ci_low", "ci_high"],
        )
        cs = [0.85, 0.88, 0.92, 0.96, 1.0, 1.04, 1.08, 1.12, 1.15]
        if scale < 0.5:
            cs = [0.85, 0.95, 1.0, 1.05, 1.15]
        inside_max = 0.0
        outside_min = 1.0
        for c in cs:
            family = ScaledCountSketch(m=m, n=n, c=c)
            est = failure_estimate(
                family, instance, epsilon, trials=trials,
                rng=spawn(rng), workers=self.workers, cache=self.cache,
                shard=self.shard, batch=self.batch,
            )
            rel = abs(c - 1.0) / epsilon
            table.add_row([c, rel, est.point, est.low, est.high])
            if rel <= 0.8:
                inside_max = max(inside_max, est.point)
            if rel >= 1.2:
                outside_min = min(outside_min, est.point)
        result.tables.append(table)
        result.metrics["max_failure_inside"] = inside_max
        result.metrics["min_failure_outside"] = outside_min
        result.notes.append(
            "sharp transition at |c-1| = eps confirms the Lemma 6 "
            "norm constraint"
        )
        return result
