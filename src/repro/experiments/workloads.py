"""Synthetic workload generators for the application experiments (E11).

The paper motivates OSEs with regression, low-rank approximation and
clustering on large matrices; these generators produce controlled versions
of those inputs (with known optima where possible).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..utils.rng import RngLike, as_generator
from ..utils.validation import check_in_range, check_positive_int

__all__ = [
    "regression_problem",
    "lowrank_matrix",
    "clustered_points",
]


def regression_problem(n: int, d: int, noise: float = 0.1,
                       coherent: bool = False,
                       rng: RngLike = None) -> Tuple[np.ndarray, np.ndarray]:
    """Overdetermined least-squares instance ``(A, b)``.

    ``b = A x† + noise·g`` for a hidden ``x†``.  With ``coherent=True`` a
    few rows carry most of the mass (large leverage scores) — the regime
    where uniform row sampling fails but oblivious sketches do not.
    """
    n = check_positive_int(n, "n")
    d = check_positive_int(d, "d")
    if d > n:
        raise ValueError(f"need n ≥ d, got n={n}, d={d}")
    if noise < 0:
        raise ValueError(f"noise must be nonnegative, got {noise}")
    gen = as_generator(rng)
    a = gen.standard_normal((n, d))
    if coherent:
        # Concentrate signal on d "spike" rows, damp the rest.
        a *= 0.01
        spikes = gen.choice(n, size=d, replace=False)
        a[spikes] = gen.standard_normal((d, d)) * 10.0
    x_true = gen.standard_normal(d)
    b = a @ x_true + noise * gen.standard_normal(n)
    return a, b


def lowrank_matrix(n: int, c: int, k: int, decay: float = 0.5,
                   rng: RngLike = None) -> np.ndarray:
    """An ``n × c`` matrix with a planted rank-``k`` head and a decaying
    tail.

    Singular values: ``1`` for the top ``k``; ``decay^{j-k}`` beyond, so
    the optimal rank-``k`` error is controlled by ``decay``.
    """
    n = check_positive_int(n, "n")
    c = check_positive_int(c, "c")
    k = check_positive_int(k, "k")
    decay = check_in_range(decay, "decay", 0.0, 1.0)
    gen = as_generator(rng)
    rank = min(n, c)
    if k > rank:
        raise ValueError(f"k ({k}) exceeds max rank ({rank})")
    u, _ = np.linalg.qr(gen.standard_normal((n, rank)))
    v, _ = np.linalg.qr(gen.standard_normal((c, rank)))
    sigma = np.ones(rank)
    tail = np.arange(1, rank - k + 1)
    sigma[k:] = decay**tail
    return (u * sigma) @ v.T


def clustered_points(count: int, n: int, k: int, spread: float = 0.1,
                     rng: RngLike = None) -> Tuple[np.ndarray, np.ndarray]:
    """``count`` points in ``R^n`` around ``k`` well-separated centers.

    Returns ``(points, labels)``; centers are random orthogonal directions
    so the ground-truth clustering is recoverable at small ``spread``.
    """
    count = check_positive_int(count, "count")
    n = check_positive_int(n, "n")
    k = check_positive_int(k, "k")
    if k > count:
        raise ValueError(f"k ({k}) cannot exceed count ({count})")
    if k > n:
        raise ValueError(f"k ({k}) cannot exceed the dimension ({n})")
    if spread < 0:
        raise ValueError(f"spread must be nonnegative, got {spread}")
    gen = as_generator(rng)
    centers, _ = np.linalg.qr(gen.standard_normal((n, k)))
    centers = centers.T  # k × n orthonormal rows
    labels = gen.integers(0, k, size=count)
    points = centers[labels] + spread * gen.standard_normal((count, n))
    return points, labels
