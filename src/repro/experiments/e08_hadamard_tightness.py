"""E8 — Remark 10: the ``d²`` bound of Theorem 9 is tight.

The block-Hadamard construction with block order ``1/(8ε)`` is run on
``D_1`` over a sweep of ``m`` around ``d²``.  Expected shape: failure
probability ≈ the birthday rate ``≈ d²/(2m)`` (two chosen columns landing
on identical block-Hadamard copies), so the construction succeeds at
``m = O(d²/δ)`` and fails below — exactly the tightness statement of
Remark 10 combined with Theorem 9's ``m > d²`` necessity.

The ablation of DESIGN.md §5(4) is included: the sound-but-incomplete
Lemma 4 witness detector is compared against exact SVD failure detection
on the same draws.
"""

from __future__ import annotations

from ..core.collisions import birthday_collision_probability
from ..core.witness import lemma4_witness
from ..hardinstances.dbeta import DBeta
from ..linalg.distortion import distortion_of_product
from ..sketch.hadamard_block import HadamardBlockSketch
from ..utils.rng import spawn
from ..utils.tables import TextTable
from .harness import Experiment, ExperimentResult, scaled_int

__all__ = ["HadamardTightnessExperiment"]


class HadamardTightnessExperiment(Experiment):
    """Failure crossover of the Remark 10 construction around m = d²."""

    experiment_id = "E8"
    title = "Block-Hadamard tightness around m = d^2 (Theorem 9/Remark 10)"
    paper_claim = "an s = 1/(8eps) OSE exists at m = O(d^2), none below"

    def _run(self, scale: float, rng) -> ExperimentResult:
        result = self._result()
        epsilon = 1.0 / 16.0
        d = 12
        block = 2  # = 1/(8 eps)
        n = 4096
        trials = scaled_int(100, scale, minimum=30)
        instance = DBeta(n=n, d=d, reps=1)
        factors = [0.25, 0.5, 1.0, 2.0, 4.0, 8.0]
        if scale < 0.5:
            factors = [0.25, 1.0, 8.0]
        table = TextTable(
            title=(
                f"E8: block-Hadamard failure on D_1 "
                f"(d={d}, eps={epsilon:g}, trials={trials})"
            ),
            columns=[
                "m", "m/d^2", "failure(svd)", "birthday pred",
                "witness detects",
            ],
        )
        failures = []
        for factor in factors:
            m = int(factor * d * d)
            if m % block:
                m += block - m % block
            family = HadamardBlockSketch(
                m=m, n=n, block_order=block, permute=True
            )
            svd_failures = 0
            witness_hits = 0
            for _ in range(trials):
                # Eager on purpose: the witness search below reads the
                # explicit matrix.
                sketch = family.sample(spawn(rng), lazy=False)
                draw = instance.sample_draw(spawn(rng))
                failed = distortion_of_product(
                    draw.sketched_basis(sketch.matrix)
                ) > epsilon
                if failed:
                    svd_failures += 1
                    report = lemma4_witness(
                        sketch.matrix, draw, epsilon, trials=64,
                        rng=spawn(rng),
                    )
                    if report is not None and report.escape.point >= 0.25:
                        witness_hits += 1
            failure_rate = svd_failures / trials
            detect_rate = (
                witness_hits / svd_failures if svd_failures else 1.0
            )
            predicted = birthday_collision_probability(d, m)
            failures.append((m, failure_rate))
            table.add_row([
                m, m / (d * d), failure_rate, predicted, detect_rate,
            ])
        result.tables.append(table)
        result.metrics["failure_at_smallest_m"] = failures[0][1]
        result.metrics["failure_at_largest_m"] = failures[-1][1]
        # Crossover: largest probed m whose failure rate is still > 0.25.
        above = [m for m, f in failures if f > 0.25]
        result.metrics["crossover_m_over_d2"] = (
            max(above) / (d * d) if above else 0.0
        )
        result.notes.append(
            "failure follows the birthday rate d^2/(2m): certain failure "
            "well below d^2, vanishing failure at m >> d^2 — Remark 10's "
            "construction is tight"
        )
        return result
