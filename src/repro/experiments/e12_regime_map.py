"""E12 — which lower bound dominates where (Section 1's discussion).

The paper situates its results against NN13b, NN14 and the dense
``d/ε²`` floor: the new ``ε^{O(δ)}d²`` bound extends the quadratic regime
from ``d = Ω(1/ε⁴)`` down to ``d = Ω(1/ε^{2+O(δ)})``.  This experiment
evaluates all closed-form bounds over a ``(d, ε)`` grid and prints the
dominance map, plus the regime-threshold comparison.
"""

from __future__ import annotations

from ..core.bounds import (
    compare_lower_bounds,
    max_sparsity_for_quadratic,
    quadratic_regime_threshold,
)
from ..utils.tables import TextTable
from .harness import Experiment, ExperimentResult

__all__ = ["RegimeMapExperiment"]


class RegimeMapExperiment(Experiment):
    """Dominance map of the lower bounds over ``(d, ε)``."""

    experiment_id = "E12"
    title = "Lower-bound regime map (Section 1 discussion)"
    paper_claim = "quadratic regime extends to d = Omega(1/eps^{2+O(delta)})"

    def _run(self, scale: float, rng) -> ExperimentResult:
        result = self._result()
        delta = 0.05
        ds = [2**j for j in range(4, 21, 2)]
        inv_epsilons = [8, 16, 32, 64, 128]

        # --- s = 1 map (Theorem 8 vs NN13b vs dense) -------------------
        s1_table = TextTable(
            title=f"E12a: dominant bound, s=1 (delta={delta:g})",
            columns=["d"] + [f"eps=1/{ie}" for ie in inv_epsilons],
        )
        for d in ds:
            row = [d]
            for inv_eps in inv_epsilons:
                comp = compare_lower_bounds(d, 1.0 / inv_eps, delta, s=1)
                row.append(comp.dominant)
            s1_table.add_row(row)
        result.tables.append(s1_table)

        # --- s = 1/(9 eps) map (Theorem 18 vs NN14 vs dense) ------------
        sparse_table = TextTable(
            title=f"E12b: dominant bound, s=1/(9eps) (delta={delta:g})",
            columns=["d"] + [f"eps=1/{ie}" for ie in inv_epsilons],
        )
        theorem18_wins = 0
        nn14_would_win = 0
        cells = 0
        for d in ds:
            row = [d]
            for inv_eps in inv_epsilons:
                epsilon = 1.0 / inv_eps
                s = max_sparsity_for_quadratic(epsilon)
                comp = compare_lower_bounds(d, epsilon, delta, s=s)
                row.append(comp.dominant)
                cells += 1
                if comp.dominant in ("theorem18", "theorem20"):
                    theorem18_wins += 1
                quadratic = {
                    k: v for k, v in comp.bounds.items()
                    if k in ("nn14", "theorem18")
                }
                if quadratic and max(
                    quadratic, key=quadratic.get
                ) == "nn14":
                    nn14_would_win += 1
            sparse_table.add_row(row)
        result.tables.append(sparse_table)

        # --- regime thresholds -----------------------------------------
        thr_table = TextTable(
            title="E12c: minimum d for the quadratic regime",
            columns=["eps", "NN14 needs d >=", "Theorem 18 needs d >="],
        )
        improvement = 0.0
        for inv_eps in inv_epsilons:
            thresholds = quadratic_regime_threshold(1.0 / inv_eps, delta)
            thr_table.add_row([
                f"1/{inv_eps}", thresholds["nn14"], thresholds["theorem18"],
            ])
            improvement = max(
                improvement, thresholds["nn14"] / thresholds["theorem18"]
            )
        result.tables.append(thr_table)

        result.metrics["paper_bound_dominance_fraction"] = (
            theorem18_wins / cells
        )
        result.metrics["nn14_beats_theorem18_fraction"] = (
            nn14_would_win / cells
        )
        result.metrics["max_regime_improvement"] = improvement
        result.notes.append(
            "theorem18 dominates nn14 everywhere in the sparse map "
            "(epsilon^{K1 delta} >> epsilon^2), and the quadratic regime "
            "threshold improves from 1/eps^4 to ~1/eps^2"
        )
        return result
