"""E13 (extension) — does the lower bound care about *exact* sparsity?

The paper's model fixes the maximum number of nonzeros per column.  A
natural question is whether relaxing to *expected* column sparsity
(entry-wise sparse JL with density ``q = s/m``) escapes the bounds.

The measured answer is stronger than the bound itself: at small matched
sparsity the expected-sparsity sketch is not an ``(ε, δ)``-embedding at
*any* target dimension.  The number of nonzeros per column is
``Binomial(m, s/m) ≈ Poisson(s)``, so the squared column norm is
``Poisson(s)/s`` — its fluctuations (relative σ = ``1/√s``) violate the
Lemma 6 norm condition ``1 ± ε`` for every ``s ≪ 1/ε²``, independent of
``m``.  Only when the expected sparsity passes ``~1/ε²`` does the
expected-sparsity family start embedding at all — far above the paper's
``s ≤ 1/(9ε)`` regime.  The exact-count model is therefore the right
one, and the lower bounds apply a fortiori to the relaxed model.
"""

from __future__ import annotations

import math

from ..core.tester import failure_estimate
from ..hardinstances.mixtures import section3_mixture
from ..sketch.osnap import OSNAP
from ..sketch.sparse_jl import SparseJL
from ..utils.rng import spawn
from ..utils.tables import TextTable
from .harness import Experiment, ExperimentResult, scaled_int

__all__ = ["ExpectedSparsityExperiment"]


class ExpectedSparsityExperiment(Experiment):
    """SparseJL (expected sparsity) vs OSNAP (exact) on the hard mixture."""

    experiment_id = "E13"
    title = "Expected vs exact column sparsity (model-robustness extension)"
    paper_claim = (
        "the lower-bound model fixes exact sparsity; the relaxation to "
        "expected sparsity is strictly weaker (Lemma 6 fails pointwise)"
    )

    def _run(self, scale: float, rng) -> ExperimentResult:
        result = self._result()
        epsilon = 1.0 / 16.0
        d = 8
        reps = round(1.0 / (8.0 * epsilon))
        q_support = reps * d
        n = max(4096, 4 * q_support * q_support)
        trials = scaled_int(80, scale, minimum=20)
        instance = section3_mixture(n=n, d=d, epsilon=epsilon)

        # --- matched small sparsity: the relaxation collapses ------------
        ms = [128, 512, 2048, 8192]
        if scale < 0.5:
            ms = [128, 2048]
        s = 2
        small_table = TextTable(
            title=(
                f"E13a: failure at matched sparsity {s} "
                f"(d={d}, eps={epsilon:g}, trials={trials})"
            ),
            columns=["m", "OSNAP(s=2)", "SparseJL(E[s]=2)"],
        )
        jl_min_failure = 1.0
        osnap_final = 1.0
        for m in ms:
            osnap = OSNAP(m=m, n=n, s=s)
            jl = SparseJL(m=m, n=n, q=min(0.5, s / m))
            est_osnap = failure_estimate(
                osnap, instance, epsilon, trials=trials,
                rng=spawn(rng), workers=self.workers, cache=self.cache,
                shard=self.shard, batch=self.batch,
            )
            est_jl = failure_estimate(
                jl, instance, epsilon, trials=trials,
                rng=spawn(rng), workers=self.workers, cache=self.cache,
                shard=self.shard, batch=self.batch,
            )
            jl_min_failure = min(jl_min_failure, est_jl.point)
            osnap_final = est_osnap.point
            small_table.add_row([m, est_osnap.point, est_jl.point])
        result.tables.append(small_table)

        # --- sparsity sweep at fixed m: where does SparseJL recover? -----
        m = 4096
        sweep_table = TextTable(
            title=(
                f"E13b: failure vs expected sparsity at m={m} "
                f"(1/eps^2 = {int(1 / epsilon**2)})"
            ),
            columns=["E[s]", "rel. norm fluctuation 1/sqrt(s)",
                     "SparseJL failure"],
        )
        recovery_s = None
        for s_exp in (2, 8, 32, 128, 512):
            jl = SparseJL(m=m, n=n, q=min(1.0, s_exp / m))
            est = failure_estimate(
                jl, instance, epsilon, trials=trials,
                rng=spawn(rng), workers=self.workers, cache=self.cache,
                shard=self.shard, batch=self.batch,
            )
            sweep_table.add_row(
                [s_exp, 1.0 / math.sqrt(s_exp), est.point]
            )
            if recovery_s is None and est.point <= 0.25:
                recovery_s = s_exp
        result.tables.append(sweep_table)

        result.metrics["sparsejl_min_failure_small_s"] = jl_min_failure
        result.metrics["osnap_failure_at_max_m"] = osnap_final
        if recovery_s is not None:
            result.metrics["sparsejl_recovery_sparsity"] = recovery_s
        result.notes.append(
            "expected-sparsity sketches fail at EVERY m for small E[s]: "
            "Poisson column norms violate Lemma 6 outright; they only "
            "recover near E[s] ~ 1/eps^2, far above the paper's s <= "
            "1/(9eps) regime — exact-count sparsity is the right model"
        )
        return result
