"""``# repro-lint: disable=...`` suppression-comment parsing.

Three forms are recognized, all case-sensitive on the rule codes:

* ``# repro-lint: disable=RPL003`` — suppress the listed codes (comma
  separated) on the line carrying the comment;
* ``# repro-lint: disable-next-line=RPL003`` — same, for the following
  line (useful when the flagged expression spans a black-formatted call);
* ``# repro-lint: disable-file=RPL003`` — suppress the listed codes for
  the whole file.

``disable`` / ``disable-next-line`` / ``disable-file`` without ``=CODES``
suppress *every* rule at that granularity; prefer naming codes so future
rules still fire.

Every parsed directive is also kept as a :class:`Directive` record, so
the engine can attribute each suppressed violation back to the directive
that silenced it — a directive that silences *nothing* is stale and is
itself reported (RPL901).
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, FrozenSet, List, NamedTuple, Optional, Set, Tuple

__all__ = ["Directive", "Suppressions", "parse_suppressions"]

_DIRECTIVE = re.compile(
    r"#\s*repro-lint:\s*"
    r"(?P<kind>disable-file|disable-next-line|disable)"
    r"(?:\s*=\s*(?P<codes>[A-Za-z0-9_,\s]+))?"
)

#: Sentinel meaning "all rule codes".
ALL = frozenset({"*"})


class Directive(NamedTuple):
    """One suppression comment at a concrete source location.

    ``target`` is the line whose violations the directive silences
    (``None`` for ``disable-file``, which silences the whole file).
    """

    line: int
    col: int
    kind: str
    codes: FrozenSet[str]
    target: Optional[int]

    def matches(self, line: int, code: str) -> bool:
        """Whether this directive suppresses ``code`` at ``line``."""
        if "*" not in self.codes and code not in self.codes:
            return False
        return self.target is None or self.target == line


class Suppressions(NamedTuple):
    """Parsed suppression directives for one file."""

    by_line: Dict[int, FrozenSet[str]]
    file_wide: FrozenSet[str]
    directives: Tuple[Directive, ...] = ()

    def is_suppressed(self, line: int, code: str) -> bool:
        if "*" in self.file_wide or code in self.file_wide:
            return True
        codes = self.by_line.get(line)
        if codes is None:
            return False
        return "*" in codes or code in codes

    def matching(self, line: int, code: str) -> List[int]:
        """Indices of every directive that suppresses ``code`` at ``line``."""
        return [index for index, directive in enumerate(self.directives)
                if directive.matches(line, code)]


def _parse_codes(raw: object) -> FrozenSet[str]:
    if raw is None:
        return ALL
    codes = {part.strip().upper() for part in str(raw).split(",") if part.strip()}
    return frozenset(codes) if codes else ALL


def parse_suppressions(source: str) -> Suppressions:
    """Extract suppression directives from ``source``'s comments.

    Uses the tokenizer (not line regexes alone) so directives inside
    string literals are not mistaken for comments.  Files the tokenizer
    rejects fall back to no suppressions — the engine reports them as
    syntax errors anyway.
    """
    by_line: Dict[int, Set[str]] = {}
    file_wide: Set[str] = set()
    directives: List[Directive] = []
    try:
        tokens: List[tokenize.TokenInfo] = list(
            tokenize.generate_tokens(io.StringIO(source).readline)
        )
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return Suppressions(by_line={}, file_wide=frozenset())
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _DIRECTIVE.search(token.string)
        if match is None:
            continue
        codes = _parse_codes(match.group("codes"))
        kind = match.group("kind")
        if kind == "disable-file":
            file_wide.update(codes)
            target: Optional[int] = None
        elif kind == "disable-next-line":
            target = token.start[0] + 1
            by_line.setdefault(target, set()).update(codes)
        else:
            target = token.start[0]
            by_line.setdefault(target, set()).update(codes)
        directives.append(Directive(
            line=token.start[0], col=token.start[1], kind=kind,
            codes=codes, target=target,
        ))
    return Suppressions(
        by_line={line: frozenset(codes) for line, codes in by_line.items()},
        file_wide=frozenset(file_wide),
        directives=tuple(directives),
    )
