"""``# repro-lint: disable=...`` suppression-comment parsing.

Three forms are recognized, all case-sensitive on the rule codes:

* ``# repro-lint: disable=RPL003`` — suppress the listed codes (comma
  separated) on the line carrying the comment;
* ``# repro-lint: disable-next-line=RPL003`` — same, for the following
  line (useful when the flagged expression spans a black-formatted call);
* ``# repro-lint: disable-file=RPL003`` — suppress the listed codes for
  the whole file.

``disable`` / ``disable-next-line`` / ``disable-file`` without ``=CODES``
suppress *every* rule at that granularity; prefer naming codes so future
rules still fire.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, FrozenSet, List, NamedTuple, Set

__all__ = ["Suppressions", "parse_suppressions"]

_DIRECTIVE = re.compile(
    r"#\s*repro-lint:\s*"
    r"(?P<kind>disable-file|disable-next-line|disable)"
    r"(?:\s*=\s*(?P<codes>[A-Za-z0-9_,\s]+))?"
)

#: Sentinel meaning "all rule codes".
ALL = frozenset({"*"})


class Suppressions(NamedTuple):
    """Parsed suppression directives for one file."""

    by_line: Dict[int, FrozenSet[str]]
    file_wide: FrozenSet[str]

    def is_suppressed(self, line: int, code: str) -> bool:
        if "*" in self.file_wide or code in self.file_wide:
            return True
        codes = self.by_line.get(line)
        if codes is None:
            return False
        return "*" in codes or code in codes


def _parse_codes(raw: object) -> FrozenSet[str]:
    if raw is None:
        return ALL
    codes = {part.strip().upper() for part in str(raw).split(",") if part.strip()}
    return frozenset(codes) if codes else ALL


def parse_suppressions(source: str) -> Suppressions:
    """Extract suppression directives from ``source``'s comments.

    Uses the tokenizer (not line regexes alone) so directives inside
    string literals are not mistaken for comments.  Files the tokenizer
    rejects fall back to no suppressions — the engine reports them as
    syntax errors anyway.
    """
    by_line: Dict[int, Set[str]] = {}
    file_wide: Set[str] = set()
    try:
        tokens: List[tokenize.TokenInfo] = list(
            tokenize.generate_tokens(io.StringIO(source).readline)
        )
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return Suppressions(by_line={}, file_wide=frozenset())
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _DIRECTIVE.search(token.string)
        if match is None:
            continue
        codes = _parse_codes(match.group("codes"))
        kind = match.group("kind")
        if kind == "disable-file":
            file_wide.update(codes)
        elif kind == "disable-next-line":
            by_line.setdefault(token.start[0] + 1, set()).update(codes)
        else:
            by_line.setdefault(token.start[0], set()).update(codes)
    return Suppressions(
        by_line={line: frozenset(codes) for line, codes in by_line.items()},
        file_wide=frozenset(file_wide),
    )
