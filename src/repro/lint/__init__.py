"""``repro.lint`` — project-specific determinism & sparse-pitfall linter.

An AST-based static-analysis pass that turns this repository's runtime
bug history (order-dependent RNG fan-out, ``np.matrix`` leakage from
``.todense()``, sparse-comparison densification, per-trial sparse
assembly) into machine-enforced rules, gated in CI alongside ruff and
mypy.  See ``docs/static_analysis.md`` for the rule catalog and
``python -m repro.lint --list-rules`` for a quick reference.

Programmatic use::

    from repro.lint import lint_source, lint_paths

    violations = lint_source(code, "src/repro/sketch/foo.py")
    violations, files = lint_paths(["src", "tests"])
"""

from .baseline import (
    DEFAULT_BASELINE_NAME,
    fingerprint_violations,
    load_baseline,
    partition_by_baseline,
    write_baseline,
)
from .cli import main
from .engine import (
    DEFAULT_EXCLUDES,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
)
from .rules import RULES, FileContext, Rule, Violation, all_codes, classify_path
from .suppressions import Directive, Suppressions, parse_suppressions
from .visitor import ModuleSummary, summarize_module

__all__ = [
    "DEFAULT_BASELINE_NAME",
    "DEFAULT_EXCLUDES",
    "Directive",
    "FileContext",
    "ModuleSummary",
    "RULES",
    "Rule",
    "Suppressions",
    "Violation",
    "all_codes",
    "classify_path",
    "fingerprint_violations",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "main",
    "parse_suppressions",
    "partition_by_baseline",
    "summarize_module",
    "write_baseline",
]
