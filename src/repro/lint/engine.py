"""Lint engine: file discovery, parsing, rule dispatch, suppression."""

from __future__ import annotations

import ast
from concurrent.futures import ProcessPoolExecutor
from functools import partial
from pathlib import Path
from typing import FrozenSet, Iterable, Iterator, List, Optional, Sequence

from .rules import FileContext, Violation, classify_path
from .suppressions import parse_suppressions
from .visitor import collect_violations

__all__ = [
    "DEFAULT_EXCLUDES",
    "iter_python_files",
    "lint_source",
    "lint_file",
    "lint_paths",
]

#: Directory/file name fragments skipped during discovery.  Lint fixtures
#: deliberately contain violations and must not fail the repo-wide run;
#: lint them explicitly (as the self-tests do) to exercise the rules.
DEFAULT_EXCLUDES = (
    "lint_fixtures",
    "__pycache__",
    ".git",
    ".venv",
    "build",
    "dist",
    ".egg-info",
)


def iter_python_files(paths: Sequence[str],
                      excludes: Sequence[str] = DEFAULT_EXCLUDES
                      ) -> Iterator[Path]:
    """Yield ``.py`` files under ``paths``, skipping excluded fragments.

    Files listed explicitly on the command line bypass the exclusion
    filter — naming a path is an unambiguous request to lint it.
    """

    def excluded(candidate: Path) -> bool:
        return any(fragment in candidate.parts for fragment in excludes)

    for raw in paths:
        path = Path(raw)
        if path.is_file():
            if path.suffix == ".py":
                yield path
        elif path.is_dir():
            for found in sorted(path.rglob("*.py")):
                if not excluded(found):
                    yield found
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")


def _filter_codes(violations: Iterable[Violation],
                  select: Optional[FrozenSet[str]],
                  ignore: Optional[FrozenSet[str]]) -> List[Violation]:
    kept = []
    for violation in violations:
        if select is not None and violation.code not in select:
            continue
        if ignore is not None and violation.code in ignore:
            continue
        kept.append(violation)
    return kept


def _render_codes(codes: FrozenSet[str]) -> str:
    return "all rules" if "*" in codes else ", ".join(sorted(codes))


def lint_source(source: str, path: str, *,
                context: Optional[FileContext] = None,
                select: Optional[FrozenSet[str]] = None,
                ignore: Optional[FrozenSet[str]] = None) -> List[Violation]:
    """Lint ``source`` as if it lived at ``path``.

    The path (or an explicit ``context``) decides which path-scoped rules
    apply, so callers — the fixture tests in particular — can lint any
    snippet under any role by passing a virtual path.

    Suppression directives are attributed: each suppressed violation marks
    the directive(s) that silenced it, and any directive left unmatched is
    stale and reported as RPL901 at the directive's own location (RPL901
    itself is never subject to suppression — a stale directive cannot hide
    its own staleness).
    """
    if context is None:
        context = classify_path(path)
    try:
        tree = ast.parse(source, filename=context.path)
    except SyntaxError as exc:
        return _filter_codes(
            [Violation(
                path=context.path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                code="RPL900",
                message=f"syntax error: {exc.msg}",
                source_line=(exc.text or "").rstrip("\n"),
            )],
            select, ignore,
        )
    suppressions = parse_suppressions(source)
    violations = collect_violations(
        tree, context, source_lines=source.splitlines()
    )
    lines = source.splitlines()
    used: set = set()
    visible: List[Violation] = []
    for violation in violations:
        matched = suppressions.matching(violation.line, violation.code)
        if matched:
            used.update(matched)
        else:
            visible.append(violation)
    for index, directive in enumerate(suppressions.directives):
        if index in used:
            continue
        text = ""
        if 1 <= directive.line <= len(lines):
            text = lines[directive.line - 1].rstrip("\n")
        visible.append(Violation(
            path=context.path, line=directive.line, col=directive.col,
            code="RPL901",
            message=(
                f"stale suppression: `{directive.kind}` of "
                f"{_render_codes(directive.codes)} matches no violation; "
                f"remove the directive"
            ),
            source_line=text,
        ))
    return _filter_codes(visible, select, ignore)


def lint_file(path: Path, *,
              select: Optional[FrozenSet[str]] = None,
              ignore: Optional[FrozenSet[str]] = None) -> List[Violation]:
    """Lint one file from disk."""
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return [Violation(
            path=str(path), line=1, col=0, code="RPL900",
            message=f"unreadable file: {exc}",
        )]
    return lint_source(source, str(path), select=select, ignore=ignore)


def _lint_file_task(path_str: str,
                    select: Optional[FrozenSet[str]],
                    ignore: Optional[FrozenSet[str]]) -> List[Violation]:
    """Picklable per-file unit of work for ``lint_paths(jobs=N)``."""
    return lint_file(Path(path_str), select=select, ignore=ignore)


def lint_paths(paths: Sequence[str], *,
               excludes: Sequence[str] = DEFAULT_EXCLUDES,
               select: Optional[FrozenSet[str]] = None,
               ignore: Optional[FrozenSet[str]] = None,
               jobs: int = 1,
               ) -> "tuple[List[Violation], int]":
    """Lint every Python file under ``paths``.

    ``jobs > 1`` fans files out over a process pool; results are gathered
    in discovery order, so output is byte-identical to a serial run.

    Returns ``(violations, files_checked)``.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be positive, got {jobs}")
    files = list(iter_python_files(paths, excludes))
    violations: List[Violation] = []
    if jobs == 1 or len(files) <= 1:
        for path in files:
            violations.extend(lint_file(path, select=select, ignore=ignore))
        return violations, len(files)
    task = partial(_lint_file_task, select=select, ignore=ignore)
    with ProcessPoolExecutor(max_workers=min(jobs, len(files))) as pool:
        for found in pool.map(task, [str(path) for path in files]):
            violations.extend(found)
    return violations, len(files)
