"""AST visitor implementing the ``RPL`` determinism / sparse-pitfall rules.

One :class:`LintVisitor` walks a parsed module and emits
:class:`~repro.lint.rules.Violation` records.  Path-sensitive rules are
gated on the :class:`~repro.lint.rules.FileContext` computed from the
file's (possibly virtual) path, so fixtures can exercise any scope by
being linted under a synthetic path.

The visitor is purely syntactic with two small semantic aids, both scoped
to the enclosing function (or module) body:

* *draw taint* (RPL002) — names assigned from expressions that draw values
  off a generator (``x = parent.integers(...)``) are remembered, so
  ``default_rng(x)`` is caught even when the draw is not nested directly
  in the seeding call;
* *sparse taint* (RPL004) — names assigned from sparse constructors or
  ``.tocsr()``-style conversions are remembered, so ``a != b`` on such
  names is caught without type inference.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from .rules import FileContext, Violation

__all__ = ["LintVisitor", "collect_violations"]

#: ``np.random.<name>`` / ``numpy.random.<name>`` calls that mutate or read
#: the hidden global state, or draw from it.
_NP_GLOBAL_FUNCS = frozenset({
    "seed", "get_state", "set_state",
    "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "normal", "standard_normal", "uniform", "choice",
    "permutation", "shuffle", "binomial", "poisson", "exponential",
    "beta", "gamma", "laplace", "chisquare", "bytes",
})

#: stdlib ``random.<name>`` module-level calls (global Mersenne state).
_STDLIB_GLOBAL_FUNCS = frozenset({
    "seed", "random", "randint", "randrange", "uniform", "choice",
    "choices", "shuffle", "sample", "gauss", "normalvariate", "betavariate",
    "expovariate", "getrandbits",
})

#: Callables that consume seed material and build an RNG / seed sequence.
_SEED_CONSUMERS = frozenset({
    "default_rng", "SeedSequence", "Generator",
    "PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64",
})

#: Generator methods that draw from (and advance) a stream.
_DRAW_METHODS = frozenset({
    "integers", "random", "choice", "bytes", "normal", "standard_normal",
    "uniform", "randint", "permutation", "permuted", "binomial",
})

#: scipy.sparse constructors / converters that yield sparse matrices.
_SPARSE_CONSTRUCTORS = frozenset({
    "csr_matrix", "csc_matrix", "coo_matrix", "lil_matrix", "dok_matrix",
    "bsr_matrix", "dia_matrix", "csr_array", "csc_array", "coo_array",
    "lil_array", "dok_array", "bsr_array", "dia_array",
})

_SPARSE_CONVERTERS = frozenset({
    "tocsr", "tocsc", "tocoo", "tolil", "todok", "tobsr", "todia",
})

#: Extra ``scipy.sparse`` helpers that also build matrices in loops.
_SPARSE_FACTORY_FUNCS = frozenset({
    "eye", "identity", "diags", "spdiags", "rand", "random",
    "random_array", "kron", "block_diag", "hstack", "vstack", "bmat",
})

_NUMPY_ROOTS = frozenset({"np", "numpy"})
_SPARSE_ROOTS = frozenset({"sp", "sparse", "scipy"})


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _literal(node: ast.AST) -> Optional[ast.Constant]:
    """The float/int Constant under an optional unary ``+``/``-``."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.UAdd, ast.USub)):
        node = node.operand
    return node if isinstance(node, ast.Constant) else None


def _contains_draw_call(node: ast.AST) -> bool:
    """Whether any sub-expression draws from a generator stream."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
            if sub.func.attr in _DRAW_METHODS:
                # ``np.random.integers`` does not exist; any dotted chain
                # ending in a draw method is generator-shaped enough.
                return True
    return False


def _is_super_receiver(func: ast.AST) -> bool:
    """Whether ``func`` is ``super().sample``-shaped."""
    return (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Call)
        and isinstance(func.value.func, ast.Name)
        and func.value.func.id == "super"
    )


class _Scope:
    """Per-function (or module) name-taint bookkeeping."""

    def __init__(self) -> None:
        self.draw_tainted: Set[str] = set()
        self.sparse_tainted: Set[str] = set()


class LintVisitor(ast.NodeVisitor):
    """Single-pass visitor emitting violations for every enabled rule."""

    def __init__(self, context: FileContext,
                 source_lines: Optional[List[str]] = None) -> None:
        self.context = context
        self.violations: List[Violation] = []
        self._lines = source_lines or []
        self._scopes: List[_Scope] = [_Scope()]
        self._loop_depth = 0

    # -- plumbing ---------------------------------------------------------

    def _report(self, node: ast.AST, code: str, message: str) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        text = ""
        if 1 <= line <= len(self._lines):
            text = self._lines[line - 1].rstrip("\n")
        self.violations.append(Violation(
            path=self.context.path, line=line, col=col,
            code=code, message=message, source_line=text,
        ))

    @property
    def _scope(self) -> _Scope:
        return self._scopes[-1]

    def _visit_function(self, node: ast.AST) -> None:
        self._scopes.append(_Scope())
        outer_depth, self._loop_depth = self._loop_depth, 0
        self.generic_visit(node)
        self._loop_depth = outer_depth
        self._scopes.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function
    visit_Lambda = _visit_function

    def _visit_loop(self, node: ast.AST) -> None:
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    visit_For = _visit_loop
    visit_AsyncFor = _visit_loop
    visit_While = _visit_loop

    # -- taint tracking ---------------------------------------------------

    def _is_sparse_expr(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Attribute) and \
                    node.func.attr in _SPARSE_CONVERTERS:
                return True
            dotted = _dotted(node.func)
            if dotted is not None and \
                    dotted.split(".")[-1] in _SPARSE_CONSTRUCTORS:
                return True
        if isinstance(node, ast.Name):
            return node.id in self._scope.sparse_tainted
        return False

    def visit_Assign(self, node: ast.Assign) -> None:
        targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
        if targets:
            if _contains_draw_call(node.value):
                self._scope.draw_tainted.update(targets)
            else:
                self._scope.draw_tainted.difference_update(targets)
            if self._is_sparse_expr(node.value):
                self._scope.sparse_tainted.update(targets)
            else:
                self._scope.sparse_tainted.difference_update(targets)
        self.generic_visit(node)

    # -- rules ------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        self._check_global_rng(node)
        self._check_child_seed(node)
        self._check_todense(node)
        self._check_sparse_in_loop(node)
        self._check_eager_sample(node)
        self._check_test_randomness(node)
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        self._check_sparse_compare(node)
        self._check_float_equality(node)
        self.generic_visit(node)

    def _check_global_rng(self, node: ast.Call) -> None:
        """RPL001 — global RNG state in library code."""
        if self.context.is_test:
            return
        dotted = _dotted(node.func)
        if dotted is None:
            return
        parts = dotted.split(".")
        if (
            len(parts) == 3
            and parts[0] in _NUMPY_ROOTS
            and parts[1] == "random"
            and parts[2] in _NP_GLOBAL_FUNCS
        ):
            self._report(
                node, "RPL001",
                f"call to the global NumPy RNG `{dotted}`; route randomness "
                f"through repro.utils.rng (as_generator/spawn)",
            )
            return
        if (
            len(parts) == 2
            and parts[0] == "random"
            and parts[1] in _STDLIB_GLOBAL_FUNCS
        ):
            self._report(
                node, "RPL001",
                f"call to the stdlib global RNG `{dotted}`; use a seeded "
                f"numpy Generator instead",
            )
            return
        if parts[-1] == "default_rng" and not node.args and not node.keywords:
            self._report(
                node, "RPL001",
                "bare default_rng() draws OS entropy in library code; "
                "accept an RngLike and use repro.utils.rng.as_generator",
            )

    def _check_child_seed(self, node: ast.Call) -> None:
        """RPL002 — the PR 1 bug: seed material drawn off a parent stream."""
        dotted = _dotted(node.func)
        if dotted is None or dotted.split(".")[-1] not in _SEED_CONSUMERS:
            return
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            tainted_name = (
                isinstance(arg, ast.Name)
                and arg.id in self._scope.draw_tainted
            )
            if tainted_name or _contains_draw_call(arg):
                self._report(
                    node, "RPL002",
                    f"`{dotted.split('.')[-1]}` seeded from values drawn "
                    f"off another generator's stream; child seeds then "
                    f"depend on draw order — use SeedSequence.spawn "
                    f"(repro.utils.rng.spawn/spawn_seeds)",
                )
                return

    def _check_todense(self, node: ast.Call) -> None:
        """RPL003 — ``.todense()`` returns np.matrix."""
        if isinstance(node.func, ast.Attribute) and node.func.attr == "todense":
            self._report(
                node, "RPL003",
                ".todense() returns np.matrix with surprising operator "
                "semantics; use .toarray()",
            )

    def _check_sparse_in_loop(self, node: ast.Call) -> None:
        """RPL005 — sparse assembly / densification inside hot loops."""
        if not self.context.is_hot or self._loop_depth == 0:
            return
        if isinstance(node.func, ast.Attribute) and \
                node.func.attr in ("toarray", "todense"):
            self._report(
                node, "RPL005",
                f".{node.func.attr}() inside a loop in a hot module; "
                f"densify once outside the loop or use a matrix-free "
                f"kernel (repro.sketch.kernels)",
            )
            return
        dotted = _dotted(node.func)
        if dotted is None:
            return
        parts = dotted.split(".")
        name = parts[-1]
        if name in _SPARSE_CONSTRUCTORS or (
            len(parts) >= 2
            and parts[0] in _SPARSE_ROOTS
            and name in _SPARSE_FACTORY_FUNCS
        ):
            self._report(
                node, "RPL005",
                f"sparse construction `{dotted}` inside a loop in a hot "
                f"module; hoist it or apply matrix-free",
            )

    def _check_eager_sample(self, node: ast.Call) -> None:
        """RPL007 — sample() must pick lazy= explicitly in trial engines."""
        if not self.context.is_trial_engine:
            return
        is_sample_method = (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "sample"
            and not _is_super_receiver(node.func)
        )
        is_sample_helper = (
            isinstance(node.func, ast.Name) and node.func.id == "sample_sketch"
        )
        if not (is_sample_method or is_sample_helper):
            return
        if any(kw.arg == "lazy" for kw in node.keywords):
            return
        self._report(
            node, "RPL007",
            "sample(...) without lazy= at a trial-engine call site; pass "
            "lazy=True to skip matrix assembly, or lazy=False to document "
            "that the explicit matrix is needed",
        )

    def _check_test_randomness(self, node: ast.Call) -> None:
        """RPL008 — unseeded randomness in tests/benchmarks."""
        if not self.context.is_test:
            return
        dotted = _dotted(node.func)
        if dotted is None:
            return
        parts = dotted.split(".")
        name = parts[-1]
        bare = not node.args and not node.keywords
        if name in ("default_rng", "SeedSequence") and bare:
            self._report(
                node, "RPL008",
                f"unseeded {name}() in a test; pass an explicit seed or a "
                f"spawned child (repro.utils.rng.spawn)",
            )
            return
        if name in _SEED_CONSUMERS - {"default_rng", "SeedSequence", "Generator"} \
                and bare:
            self._report(
                node, "RPL008",
                f"unseeded bit generator {name}() in a test; seed it "
                f"explicitly",
            )
            return
        if len(parts) == 2 and parts[0] == "random" \
                and name in _STDLIB_GLOBAL_FUNCS:
            self._report(
                node, "RPL008",
                f"stdlib global RNG `{dotted}` in a test; use a seeded "
                f"numpy Generator",
            )
            return
        if name == "randoms":
            for kw in node.keywords:
                if kw.arg == "use_true_random" and \
                        isinstance(kw.value, ast.Constant) and \
                        kw.value.value is True:
                    self._report(
                        node, "RPL008",
                        "hypothesis randoms(use_true_random=True) bypasses "
                        "example replay; drop it so failures reproduce",
                    )
                    return

    def _check_sparse_compare(self, node: ast.Compare) -> None:
        """RPL004 — == / != with a sparse operand."""
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            return
        operands = [node.left] + list(node.comparators)
        if any(self._is_sparse_expr(operand) for operand in operands):
            self._report(
                node, "RPL004",
                "== / != on a sparse matrix densifies or yields a sparse "
                "boolean (SparseEfficiencyWarning); compare canonical CSC "
                "structure (indptr/indices/data) instead",
            )

    def _check_float_equality(self, node: ast.Compare) -> None:
        """RPL006 — exact equality against a non-integral float literal."""
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            return
        for operand in [node.left] + list(node.comparators):
            constant = _literal(operand)
            if constant is None or not isinstance(constant.value, float):
                continue
            if not float(constant.value).is_integer():
                self._report(
                    node, "RPL006",
                    f"exact comparison against float literal "
                    f"{constant.value!r}; use np.isclose/math.isclose with "
                    f"an explicit tolerance",
                )
                return


def collect_violations(tree: ast.AST, context: FileContext,
                       source_lines: Optional[List[str]] = None
                       ) -> List[Violation]:
    """Run :class:`LintVisitor` over ``tree`` and return its findings."""
    visitor = LintVisitor(context, source_lines=source_lines)
    visitor.visit(tree)
    return visitor.violations


# Names referenced by the engine for rule-count sanity checks.
_CHECK_METHODS: Dict[str, str] = {
    "RPL001": "_check_global_rng",
    "RPL002": "_check_child_seed",
    "RPL003": "_check_todense",
    "RPL004": "_check_sparse_compare",
    "RPL005": "_check_sparse_in_loop",
    "RPL006": "_check_float_equality",
    "RPL007": "_check_eager_sample",
    "RPL008": "_check_test_randomness",
}
