"""AST visitor implementing the ``RPL`` determinism / sparse-pitfall rules.

Linting a module is a **two-pass** analysis:

1. :func:`summarize_module` walks every module-level function once and
   computes, by fixpoint over the module-local call graph, which
   functions *return rng-drawn values* — ``def pick(gen): return
   gen.integers(2**32)`` and any helper that merely forwards such a
   return.  This is the call-graph taint model: a draw is tracked across
   helper-function boundaries instead of only within one body.
2. :class:`LintVisitor` walks the module emitting
   :class:`~repro.lint.rules.Violation` records, consulting the pass-1
   summary wherever a rule cares whether an expression carries drawn
   values (RPL002's seed-consumer check in particular).

Path-sensitive rules are gated on the
:class:`~repro.lint.rules.FileContext` computed from the file's (possibly
virtual) path, so fixtures can exercise any scope by being linted under a
synthetic path.

Within pass 2 the visitor keeps two per-scope name taints:

* *draw taint* (RPL002) — names assigned from expressions that draw values
  off a generator (``x = parent.integers(...)``, or ``x = helper(...)``
  where pass 1 marked ``helper`` draw-returning) are remembered, so
  ``default_rng(x)`` is caught even when the draw is not nested directly
  in the seeding call;
* *sparse taint* (RPL004) — names assigned from sparse constructors or
  ``.tocsr()``-style conversions are remembered, so ``a != b`` on such
  names is caught without type inference.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from .rules import FileContext, Violation, is_shard_primitive_module

__all__ = ["LintVisitor", "ModuleSummary", "collect_violations",
           "summarize_module"]

#: ``np.random.<name>`` / ``numpy.random.<name>`` calls that mutate or read
#: the hidden global state, or draw from it.
_NP_GLOBAL_FUNCS = frozenset({
    "seed", "get_state", "set_state",
    "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "normal", "standard_normal", "uniform", "choice",
    "permutation", "shuffle", "binomial", "poisson", "exponential",
    "beta", "gamma", "laplace", "chisquare", "bytes",
})

#: stdlib ``random.<name>`` module-level calls (global Mersenne state).
_STDLIB_GLOBAL_FUNCS = frozenset({
    "seed", "random", "randint", "randrange", "uniform", "choice",
    "choices", "shuffle", "sample", "gauss", "normalvariate", "betavariate",
    "expovariate", "getrandbits",
})

#: Callables that consume seed material and build an RNG / seed sequence.
_SEED_CONSUMERS = frozenset({
    "default_rng", "SeedSequence", "Generator",
    "PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64",
})

#: Generator methods that draw from (and advance) a stream.
_DRAW_METHODS = frozenset({
    "integers", "random", "choice", "bytes", "normal", "standard_normal",
    "uniform", "randint", "permutation", "permuted", "binomial",
})

#: scipy.sparse constructors / converters that yield sparse matrices.
_SPARSE_CONSTRUCTORS = frozenset({
    "csr_matrix", "csc_matrix", "coo_matrix", "lil_matrix", "dok_matrix",
    "bsr_matrix", "dia_matrix", "csr_array", "csc_array", "coo_array",
    "lil_array", "dok_array", "bsr_array", "dia_array",
})

_SPARSE_CONVERTERS = frozenset({
    "tocsr", "tocsc", "tocoo", "tolil", "todok", "tobsr", "todia",
})

#: Extra ``scipy.sparse`` helpers that also build matrices in loops.
_SPARSE_FACTORY_FUNCS = frozenset({
    "eye", "identity", "diags", "spdiags", "rand", "random",
    "random_array", "kron", "block_diag", "hstack", "vstack", "bmat",
})

_NUMPY_ROOTS = frozenset({"np", "numpy"})
_SPARSE_ROOTS = frozenset({"sp", "sparse", "scipy"})

#: Parameters that shape a probe result and therefore must appear in its
#: cache spec (RPL102).  ``seed`` material is covered separately by the
#: fingerprint the spec already embeds.
_CACHE_RELEVANT_PARAMS = frozenset({"batch", "trials", "decision",
                                    "confidence"})

#: Counter words with a canonical ``<word>_`` prefix (RPL104); the prefix
#: set mirrors ``NON_RESULT_COUNTER_PREFIXES`` in experiments/harness.py.
_COUNTER_PREFIX_WORDS = ("cache", "checkpoint", "shard")

#: Guard-function name fragments that normalize batch/shard identity
#: cases (RPL105).
_IDENTITY_GUARD_FRAGMENTS = ("check_batch", "normalize_shard")


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _literal(node: ast.AST) -> Optional[ast.Constant]:
    """The float/int Constant under an optional unary ``+``/``-``."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.UAdd, ast.USub)):
        node = node.operand
    return node if isinstance(node, ast.Constant) else None


def _is_super_receiver(func: ast.AST) -> bool:
    """Whether ``func`` is ``super().sample``-shaped."""
    return (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Call)
        and isinstance(func.value.func, ast.Name)
        and func.value.func.id == "super"
    )


def _param_names(node: ast.AST) -> List[str]:
    """All parameter names of a function definition node."""
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return []
    arguments = node.args
    params = list(arguments.posonlyargs) + list(arguments.args) \
        + list(arguments.kwonlyargs)
    if arguments.vararg is not None:
        params.append(arguments.vararg)
    if arguments.kwarg is not None:
        params.append(arguments.kwarg)
    return [param.arg for param in params]


# -- pass 1: module-level call-graph draw summaries -----------------------


class ModuleSummary:
    """Pass-1 facts about a module, consumed by :class:`LintVisitor`.

    ``draw_returning`` holds the names of module-level functions whose
    return value derives from a generator draw — directly, or through
    calls to other draw-returning functions in the same module (computed
    as a fixpoint over the local call graph).
    """

    def __init__(self, draw_returning: FrozenSet[str] = frozenset()) -> None:
        self.draw_returning = draw_returning

    def __repr__(self) -> str:
        return f"ModuleSummary(draw_returning={sorted(self.draw_returning)})"


def _direct_draw(node: ast.AST) -> bool:
    """Whether ``node`` contains a generator-method draw, ignoring local
    function calls (those are resolved by the fixpoint)."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
            if sub.func.attr in _DRAW_METHODS:
                return True
    return False


def _local_calls(node: ast.AST, local_names: Set[str]) -> Set[str]:
    """Module-local functions called by bare name anywhere under ``node``."""
    found: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name) \
                and sub.func.id in local_names:
            found.add(sub.func.id)
    return found


def _function_return_facts(
    func: ast.AST, local_names: Set[str],
) -> Tuple[bool, Set[str]]:
    """``(returns_draw_directly, local functions feeding its returns)``.

    A linear scan keeps per-name facts: a name assigned from a
    draw-containing expression is draw-tainted; a name assigned from an
    expression calling local functions inherits those as dependencies.
    Returns of tainted names (or draw-containing expressions) make the
    function directly draw-returning; returns touching dependency-carrying
    names defer to the fixpoint.
    """
    tainted: Set[str] = set()
    deps_of: Dict[str, Set[str]] = {}
    returns_draw = False
    return_deps: Set[str] = set()
    for sub in ast.walk(func):
        if isinstance(sub, ast.Assign):
            targets = [t.id for t in sub.targets if isinstance(t, ast.Name)]
            if not targets:
                continue
            value_draws = _direct_draw(sub.value)
            value_deps = _local_calls(sub.value, local_names)
            for name in [n for n in ast.walk(sub.value)
                         if isinstance(n, ast.Name)]:
                if name.id in tainted:
                    value_draws = True
                value_deps |= deps_of.get(name.id, set())
            for target in targets:
                if value_draws:
                    tainted.add(target)
                else:
                    tainted.discard(target)
                deps_of[target] = value_deps
        elif isinstance(sub, ast.Return) and sub.value is not None:
            if _direct_draw(sub.value):
                returns_draw = True
            return_deps |= _local_calls(sub.value, local_names)
            for name in [n for n in ast.walk(sub.value)
                         if isinstance(n, ast.Name)]:
                if name.id in tainted:
                    returns_draw = True
                return_deps |= deps_of.get(name.id, set())
    return returns_draw, return_deps


def summarize_module(tree: ast.AST) -> ModuleSummary:
    """Pass 1: which module-level functions return rng-drawn values."""
    functions: Dict[str, ast.AST] = {}
    for node in getattr(tree, "body", []):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions[node.name] = node
    local_names = set(functions)
    direct: Dict[str, bool] = {}
    deps: Dict[str, Set[str]] = {}
    for name, func in functions.items():
        direct[name], deps[name] = _function_return_facts(func, local_names)
    draw_returning = {name for name, flag in direct.items() if flag}
    changed = True
    while changed:
        changed = False
        for name in functions:
            if name in draw_returning:
                continue
            if deps[name] & draw_returning:
                draw_returning.add(name)
                changed = True
    return ModuleSummary(frozenset(draw_returning))


# -- pass 2: the lint walk ------------------------------------------------


class _Scope:
    """Per-function (or module) name-taint bookkeeping."""

    def __init__(self) -> None:
        self.draw_tainted: Set[str] = set()
        self.sparse_tainted: Set[str] = set()


class LintVisitor(ast.NodeVisitor):
    """Pass-2 visitor emitting violations for every enabled rule."""

    def __init__(self, context: FileContext,
                 source_lines: Optional[List[str]] = None,
                 summary: Optional[ModuleSummary] = None) -> None:
        self.context = context
        self.violations: List[Violation] = []
        self._lines = source_lines or []
        self._summary = summary or ModuleSummary()
        self._scopes: List[_Scope] = [_Scope()]
        self._loop_depth = 0

    # -- plumbing ---------------------------------------------------------

    def _report(self, node: ast.AST, code: str, message: str) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        text = ""
        if 1 <= line <= len(self._lines):
            text = self._lines[line - 1].rstrip("\n")
        self.violations.append(Violation(
            path=self.context.path, line=line, col=col,
            code=code, message=message, source_line=text,
        ))

    @property
    def _scope(self) -> _Scope:
        return self._scopes[-1]

    def _visit_function(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._check_spec_keys(node)
            self._check_identity_delegation(node)
        self._scopes.append(_Scope())
        outer_depth, self._loop_depth = self._loop_depth, 0
        self.generic_visit(node)
        self._loop_depth = outer_depth
        self._scopes.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function
    visit_Lambda = _visit_function

    def _visit_loop(self, node: ast.AST) -> None:
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    visit_For = _visit_loop
    visit_AsyncFor = _visit_loop
    visit_While = _visit_loop

    # -- taint tracking ---------------------------------------------------

    def _contains_draw_call(self, node: ast.AST) -> bool:
        """Whether any sub-expression draws from a generator stream —
        directly via a draw method, or through a module-local function
        pass 1 marked draw-returning."""
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            if isinstance(sub.func, ast.Attribute) and \
                    sub.func.attr in _DRAW_METHODS:
                # ``np.random.integers`` does not exist; any dotted chain
                # ending in a draw method is generator-shaped enough.
                return True
            if isinstance(sub.func, ast.Name) and \
                    sub.func.id in self._summary.draw_returning:
                return True
        return False

    def _is_sparse_expr(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Attribute) and \
                    node.func.attr in _SPARSE_CONVERTERS:
                return True
            dotted = _dotted(node.func)
            if dotted is not None and \
                    dotted.split(".")[-1] in _SPARSE_CONSTRUCTORS:
                return True
        if isinstance(node, ast.Name):
            return node.id in self._scope.sparse_tainted
        return False

    def visit_Assign(self, node: ast.Assign) -> None:
        targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
        if targets:
            if self._contains_draw_call(node.value):
                self._scope.draw_tainted.update(targets)
            else:
                self._scope.draw_tainted.difference_update(targets)
            if self._is_sparse_expr(node.value):
                self._scope.sparse_tainted.update(targets)
            else:
                self._scope.sparse_tainted.difference_update(targets)
        self.generic_visit(node)

    # -- rules ------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        self._check_global_rng(node)
        self._check_child_seed(node)
        self._check_todense(node)
        self._check_sparse_in_loop(node)
        self._check_eager_sample(node)
        self._check_test_randomness(node)
        self._check_json_emission(node)
        self._check_counter_prefix(node)
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        self._check_sparse_compare(node)
        self._check_float_equality(node)
        self.generic_visit(node)

    def visit_BinOp(self, node: ast.BinOp) -> None:
        self._check_shard_arithmetic(node)
        self.generic_visit(node)

    def _check_global_rng(self, node: ast.Call) -> None:
        """RPL001 — global RNG state in library code."""
        if self.context.is_test:
            return
        dotted = _dotted(node.func)
        if dotted is None:
            return
        parts = dotted.split(".")
        if (
            len(parts) == 3
            and parts[0] in _NUMPY_ROOTS
            and parts[1] == "random"
            and parts[2] in _NP_GLOBAL_FUNCS
        ):
            self._report(
                node, "RPL001",
                f"call to the global NumPy RNG `{dotted}`; route randomness "
                f"through repro.utils.rng (as_generator/spawn)",
            )
            return
        if (
            len(parts) == 2
            and parts[0] == "random"
            and parts[1] in _STDLIB_GLOBAL_FUNCS
        ):
            self._report(
                node, "RPL001",
                f"call to the stdlib global RNG `{dotted}`; use a seeded "
                f"numpy Generator instead",
            )
            return
        if parts[-1] == "default_rng" and not node.args and not node.keywords:
            self._report(
                node, "RPL001",
                "bare default_rng() draws OS entropy in library code; "
                "accept an RngLike and use repro.utils.rng.as_generator",
            )

    def _check_child_seed(self, node: ast.Call) -> None:
        """RPL002 — the PR 1 bug: seed material drawn off a parent stream."""
        dotted = _dotted(node.func)
        if dotted is None or dotted.split(".")[-1] not in _SEED_CONSUMERS:
            return
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            tainted_name = (
                isinstance(arg, ast.Name)
                and arg.id in self._scope.draw_tainted
            )
            if tainted_name or self._contains_draw_call(arg):
                self._report(
                    node, "RPL002",
                    f"`{dotted.split('.')[-1]}` seeded from values drawn "
                    f"off another generator's stream; child seeds then "
                    f"depend on draw order — use SeedSequence.spawn "
                    f"(repro.utils.rng.spawn/spawn_seeds)",
                )
                return

    def _check_todense(self, node: ast.Call) -> None:
        """RPL003 — ``.todense()`` returns np.matrix."""
        if isinstance(node.func, ast.Attribute) and node.func.attr == "todense":
            self._report(
                node, "RPL003",
                ".todense() returns np.matrix with surprising operator "
                "semantics; use .toarray()",
            )

    def _check_sparse_in_loop(self, node: ast.Call) -> None:
        """RPL005 — sparse assembly / densification inside hot loops."""
        if not self.context.is_hot or self._loop_depth == 0:
            return
        if isinstance(node.func, ast.Attribute) and \
                node.func.attr in ("toarray", "todense"):
            self._report(
                node, "RPL005",
                f".{node.func.attr}() inside a loop in a hot module; "
                f"densify once outside the loop or use a matrix-free "
                f"kernel (repro.sketch.kernels)",
            )
            return
        dotted = _dotted(node.func)
        if dotted is None:
            return
        parts = dotted.split(".")
        name = parts[-1]
        if name in _SPARSE_CONSTRUCTORS or (
            len(parts) >= 2
            and parts[0] in _SPARSE_ROOTS
            and name in _SPARSE_FACTORY_FUNCS
        ):
            self._report(
                node, "RPL005",
                f"sparse construction `{dotted}` inside a loop in a hot "
                f"module; hoist it or apply matrix-free",
            )

    def _check_eager_sample(self, node: ast.Call) -> None:
        """RPL007 — sample() must pick lazy= explicitly in trial engines."""
        if not self.context.is_trial_engine:
            return
        is_sample_method = (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "sample"
            and not _is_super_receiver(node.func)
        )
        is_sample_helper = (
            isinstance(node.func, ast.Name) and node.func.id == "sample_sketch"
        )
        if not (is_sample_method or is_sample_helper):
            return
        if any(kw.arg == "lazy" for kw in node.keywords):
            return
        self._report(
            node, "RPL007",
            "sample(...) without lazy= at a trial-engine call site; pass "
            "lazy=True to skip matrix assembly, or lazy=False to document "
            "that the explicit matrix is needed",
        )

    def _check_test_randomness(self, node: ast.Call) -> None:
        """RPL008 — unseeded randomness in tests/benchmarks."""
        if not self.context.is_test:
            return
        dotted = _dotted(node.func)
        if dotted is None:
            return
        parts = dotted.split(".")
        name = parts[-1]
        bare = not node.args and not node.keywords
        if name in ("default_rng", "SeedSequence") and bare:
            self._report(
                node, "RPL008",
                f"unseeded {name}() in a test; pass an explicit seed or a "
                f"spawned child (repro.utils.rng.spawn)",
            )
            return
        if name in _SEED_CONSUMERS - {"default_rng", "SeedSequence", "Generator"} \
                and bare:
            self._report(
                node, "RPL008",
                f"unseeded bit generator {name}() in a test; seed it "
                f"explicitly",
            )
            return
        if len(parts) == 2 and parts[0] == "random" \
                and name in _STDLIB_GLOBAL_FUNCS:
            self._report(
                node, "RPL008",
                f"stdlib global RNG `{dotted}` in a test; use a seeded "
                f"numpy Generator",
            )
            return
        if name == "randoms":
            for kw in node.keywords:
                if kw.arg == "use_true_random" and \
                        isinstance(kw.value, ast.Constant) and \
                        kw.value.value is True:
                    self._report(
                        node, "RPL008",
                        "hypothesis randoms(use_true_random=True) bypasses "
                        "example replay; drop it so failures reproduce",
                    )
                    return

    def _check_json_emission(self, node: ast.Call) -> None:
        """RPL101 — strict JSON emission in result-IO modules."""
        if self.context.is_test or not self.context.is_result_io:
            return
        dotted = _dotted(node.func)
        if dotted not in ("json.dump", "json.dumps"):
            return
        keywords = {kw.arg: kw.value for kw in node.keywords
                    if kw.arg is not None}
        allow_nan = keywords.get("allow_nan")
        strict_nan = (
            isinstance(allow_nan, ast.Constant) and allow_nan.value is False
        )
        has_default = "default" in keywords
        wrapped_payload = bool(node.args) and (
            isinstance(node.args[0], ast.Call)
            and _dotted(node.args[0].func) is not None
            and _dotted(node.args[0].func).split(".")[-1]
            in ("to_builtin", "canonical_json")
        )
        missing = []
        if not strict_nan:
            missing.append("allow_nan=False")
        if not (has_default or wrapped_payload):
            missing.append("default=json_default (or a to_builtin(...) "
                           "payload)")
        if missing:
            self._report(
                node, "RPL101",
                f"`{dotted}` in a result-IO module without "
                f"{' and '.join(missing)}; NaN tokens and numpy scalars "
                f"must fail at the emit site, not in a reader",
            )

    def _check_counter_prefix(self, node: ast.Call) -> None:
        """RPL104 — bookkeeping counters must carry their canonical prefix."""
        if self.context.is_test:
            return
        dotted = _dotted(node.func)
        if dotted is None or dotted.split(".")[-1] not in ("add_count",
                                                           "increment"):
            return
        if not node.args:
            return
        first = node.args[0]
        if not isinstance(first, ast.Constant) or \
                not isinstance(first.value, str):
            return
        name = first.value
        if name.startswith("count_"):
            self._report(
                node, "RPL104",
                f"counter {name!r} uses the reserved `count_` result-metric "
                f"namespace; counters surface as count_<name> automatically",
            )
            return
        for word in _COUNTER_PREFIX_WORDS:
            if word in name and not name.startswith(word + "_"):
                self._report(
                    node, "RPL104",
                    f"counter {name!r} mentions `{word}` but does not start "
                    f"with `{word}_`; bookkeeping counters must match "
                    f"NON_RESULT_COUNTER_PREFIXES so they never leak into "
                    f"count_* result metrics",
                )
                return

    def _check_shard_arithmetic(self, node: ast.BinOp) -> None:
        """RPL103 — hand-rolled shard/span arithmetic in library code."""
        if self.context.is_test or \
                is_shard_primitive_module(self.context.path):
            return
        if not isinstance(node.op, (ast.Mult, ast.FloorDiv, ast.Mod, ast.Div)):
            return
        for operand in (node.left, node.right):
            dotted = _dotted(operand)
            if dotted is None:
                continue
            tail = dotted.split(".")[-1]
            if "shard" in tail:
                self._report(
                    node, "RPL103",
                    f"arithmetic on `{dotted}` hand-rolls shard/span "
                    f"partitioning; use shard_spans (repro.utils.parallel) "
                    f"/ spawn_slice (repro.utils.rng), which tile exactly",
                )
                return

    def _check_spec_keys(self, node: ast.AST) -> None:
        """RPL102 — cache-relevant params must reach the spec payload."""
        if self.context.is_test:
            return
        relevant = [p for p in _param_names(node)
                    if p in _CACHE_RELEVANT_PARAMS]
        if not relevant:
            return
        talks_to_cache = False
        string_literals: Set[str] = set()
        keyword_names: Set[str] = set()
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call) and \
                    isinstance(sub.func, ast.Attribute) and \
                    sub.func.attr in ("get", "put", "peek"):
                receiver = _dotted(sub.func.value)
                if receiver is not None and "cache" in receiver.split(".")[-1]:
                    talks_to_cache = True
            if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                string_literals.add(sub.value)
            if isinstance(sub, ast.keyword) and sub.arg is not None:
                keyword_names.add(sub.arg)
        if not talks_to_cache:
            return
        for param in relevant:
            if param in string_literals or param in keyword_names:
                continue
            self._report(
                node, "RPL102",
                f"function takes cache-relevant parameter `{param}` and "
                f"talks to a probe cache, but `{param}` never appears as a "
                f"spec key or keyword argument; omitting it collides "
                f"distinct results on one cache key",
            )

    def _check_identity_delegation(self, node: ast.AST) -> None:
        """RPL105 — batch/shard params need an identity guard or pure
        forwarding."""
        if self.context.is_test or not self.context.is_trial_engine:
            return
        params = [p for p in _param_names(node) if p in ("batch", "shard")]
        if not params:
            return
        for param in params:
            if self._has_identity_guard(node, param):
                continue
            bad = self._computational_use(node, param)
            if bad is not None:
                self._report(
                    bad, "RPL105",
                    f"`{param}` used computationally without an identity-"
                    f"case guard; normalize it first (_check_batch / "
                    f"normalize_shard / explicit None-or-1 comparison) so "
                    f"batch=None/1 and shard=None delegate to the serial "
                    f"path bitwise",
                )

    def _has_identity_guard(self, func: ast.AST, param: str) -> bool:
        for sub in ast.walk(func):
            if isinstance(sub, ast.Call):
                dotted = _dotted(sub.func)
                if dotted is not None and any(
                    fragment in dotted.split(".")[-1]
                    for fragment in _IDENTITY_GUARD_FRAGMENTS
                ):
                    return True
            if isinstance(sub, ast.Compare) and \
                    self._is_identity_compare(sub, param):
                return True
        return False

    @staticmethod
    def _is_identity_compare(node: ast.Compare, param: str) -> bool:
        operands = [node.left] + list(node.comparators)
        mentions = any(isinstance(o, ast.Name) and o.id == param
                       for o in operands)
        if not mentions:
            return False
        for operand in operands:
            if isinstance(operand, ast.Constant) and \
                    operand.value in (None, 1):
                return True
            if isinstance(operand, (ast.Tuple, ast.List, ast.Set)) and all(
                isinstance(e, ast.Constant) and e.value in (None, 1)
                for e in operand.elts
            ):
                return True
        return False

    @staticmethod
    def _computational_use(func: ast.AST, param: str) -> Optional[ast.AST]:
        """First node computing with ``param`` (vs merely forwarding it)."""
        computational = (ast.BinOp, ast.UnaryOp, ast.BoolOp, ast.Subscript,
                         ast.Compare)
        for sub in ast.walk(func):
            if not isinstance(sub, computational):
                continue
            for name in ast.walk(sub):
                if isinstance(name, ast.Name) and name.id == param:
                    return sub
        return None

    def _check_sparse_compare(self, node: ast.Compare) -> None:
        """RPL004 — == / != with a sparse operand."""
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            return
        operands = [node.left] + list(node.comparators)
        if any(self._is_sparse_expr(operand) for operand in operands):
            self._report(
                node, "RPL004",
                "== / != on a sparse matrix densifies or yields a sparse "
                "boolean (SparseEfficiencyWarning); compare canonical CSC "
                "structure (indptr/indices/data) instead",
            )

    def _check_float_equality(self, node: ast.Compare) -> None:
        """RPL006 — exact equality against a non-integral float literal."""
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            return
        for operand in [node.left] + list(node.comparators):
            constant = _literal(operand)
            if constant is None or not isinstance(constant.value, float):
                continue
            if not float(constant.value).is_integer():
                self._report(
                    node, "RPL006",
                    f"exact comparison against float literal "
                    f"{constant.value!r}; use np.isclose/math.isclose with "
                    f"an explicit tolerance",
                )
                return


def collect_violations(tree: ast.AST, context: FileContext,
                       source_lines: Optional[List[str]] = None
                       ) -> List[Violation]:
    """Run both passes over ``tree`` and return pass 2's findings."""
    summary = summarize_module(tree)
    visitor = LintVisitor(context, source_lines=source_lines,
                          summary=summary)
    visitor.visit(tree)
    return visitor.violations


# Names referenced by the engine for rule-count sanity checks.
_CHECK_METHODS: Dict[str, str] = {
    "RPL001": "_check_global_rng",
    "RPL002": "_check_child_seed",
    "RPL003": "_check_todense",
    "RPL004": "_check_sparse_compare",
    "RPL005": "_check_sparse_in_loop",
    "RPL006": "_check_float_equality",
    "RPL007": "_check_eager_sample",
    "RPL008": "_check_test_randomness",
    "RPL101": "_check_json_emission",
    "RPL102": "_check_spec_keys",
    "RPL103": "_check_shard_arithmetic",
    "RPL104": "_check_counter_prefix",
    "RPL105": "_check_identity_delegation",
}
