"""Command-line interface: ``python -m repro.lint [paths...]``.

Exit codes: ``0`` — no new violations; ``1`` — new violations found (or a
file failed to parse); ``2`` — usage error (bad flags, unknown rule code,
missing path, unreadable baseline).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import IO, List, Optional

from .baseline import (
    DEFAULT_BASELINE_NAME,
    load_baseline,
    partition_by_baseline,
    write_baseline,
)
from .engine import DEFAULT_EXCLUDES, lint_paths
from .reporter import report_json, report_text
from .rules import RULES, all_codes, normalize_codes

__all__ = ["build_parser", "main"]

USAGE_ERROR = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "AST-based determinism and sparse-pitfall linter for this "
            "repository (rules RPL001-RPL008, RPL101-RPL105, RPL901)."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src", "tests", "benchmarks"],
        help="files or directories to lint (default: src tests benchmarks)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline", default=DEFAULT_BASELINE_NAME, metavar="FILE",
        help=(
            f"baseline file of grandfathered violations "
            f"(default: {DEFAULT_BASELINE_NAME}; a missing file is an "
            f"empty baseline)"
        ),
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline file and report every violation",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="grandfather all current violations into the baseline and exit 0",
    )
    parser.add_argument(
        "--select", metavar="CODES",
        help="comma-separated rule codes to enable exclusively",
    )
    parser.add_argument(
        "--ignore", metavar="CODES",
        help="comma-separated rule codes to disable",
    )
    parser.add_argument(
        "--exclude", action="append", default=None, metavar="FRAGMENT",
        help=(
            "path fragment to skip during discovery (repeatable; defaults: "
            + ", ".join(DEFAULT_EXCLUDES) + ")"
        ),
    )
    parser.add_argument(
        "--no-default-excludes", action="store_true",
        help="do not apply the default exclusion list",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help=(
            "lint files on a pool of N worker processes; output order and "
            "bytes are identical to a serial run (default: 1)"
        ),
    )
    return parser


def _list_rules(stream: IO[str]) -> None:
    for code in all_codes():
        rule = RULES[code]
        stream.write(f"{code} [{rule.name}] — {rule.summary}\n")
        stream.write(f"    scope: {rule.scope}\n")


def main(argv: Optional[List[str]] = None,
         stdout: Optional[IO[str]] = None,
         stderr: Optional[IO[str]] = None) -> int:
    out = stdout if stdout is not None else sys.stdout
    err = stderr if stderr is not None else sys.stderr
    parser = build_parser()
    try:
        options = parser.parse_args(argv)
    except SystemExit as exc:
        # argparse exits 2 on usage errors and 0 on --help; preserve both.
        return int(exc.code or 0)

    if options.list_rules:
        _list_rules(out)
        return 0

    try:
        select = normalize_codes(options.select, option="--select")
        ignore = normalize_codes(options.ignore, option="--ignore")
    except ValueError as exc:
        err.write(f"error: {exc}\n")
        return USAGE_ERROR

    excludes: List[str] = [] if options.no_default_excludes \
        else list(DEFAULT_EXCLUDES)
    excludes.extend(options.exclude or [])

    if options.jobs < 1:
        err.write(f"error: --jobs must be positive, got {options.jobs}\n")
        return USAGE_ERROR

    try:
        violations, files_checked = lint_paths(
            options.paths, excludes=excludes, select=select, ignore=ignore,
            jobs=options.jobs,
        )
    except FileNotFoundError as exc:
        err.write(f"error: {exc}\n")
        return USAGE_ERROR

    baseline_path = Path(options.baseline)
    if options.write_baseline:
        count = write_baseline(baseline_path, violations)
        out.write(
            f"wrote {count} grandfathered violation(s) to {baseline_path}\n"
        )
        return 0

    if options.no_baseline:
        new, grandfathered = list(violations), []
    else:
        try:
            entries = load_baseline(baseline_path)
        except ValueError as exc:
            err.write(f"error: {exc}\n")
            return USAGE_ERROR
        new, grandfathered = partition_by_baseline(violations, entries)

    reporter = report_json if options.format == "json" else report_text
    reporter(new, grandfathered, out, files_checked=files_checked)
    return 1 if new else 0
