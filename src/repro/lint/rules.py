"""Rule registry for the ``repro.lint`` static-analysis pass.

Each rule encodes one determinism or sparse-efficiency failure mode that
was actually hit (and fixed) in this repository's history — see
``docs/static_analysis.md`` for the full catalog with the originating bug
per rule.  Rules are identified by a stable ``RPLnnn`` code used in
reports, ``# repro-lint: disable=CODE`` suppressions, and the baseline
file.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import PurePath
from typing import Dict, List, Optional, Tuple

__all__ = [
    "Rule",
    "Violation",
    "FileContext",
    "RULES",
    "all_codes",
    "get_rule",
    "classify_path",
    "normalize_codes",
]


@dataclass(frozen=True)
class Rule:
    """Metadata for one lint rule.

    ``scope`` is a human-readable description of where the rule applies;
    the actual gating lives in the visitor via :class:`FileContext`.
    """

    code: str
    name: str
    summary: str
    rationale: str
    scope: str = "all files"


@dataclass(frozen=True)
class Violation:
    """One reported rule violation at a concrete source location."""

    path: str
    line: int
    col: int
    code: str
    message: str
    source_line: str = ""

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.code} {self.message}"


@dataclass(frozen=True)
class FileContext:
    """Path-derived role of a file, used to scope path-sensitive rules.

    * ``is_test`` — under ``tests/`` / ``benchmarks/`` or a ``test_*.py``
      file: RPL008 applies, RPL001's library-only checks do not.
    * ``is_hot`` — library module under ``sketch/``, ``core/`` or
      ``linalg/``: RPL005 (sparse work inside loops) applies.
    * ``is_trial_engine`` — library module under ``core/``,
      ``experiments/`` or ``utils/``: RPL007 (eager ``sample``) applies.
    """

    path: str
    is_test: bool = False
    is_hot: bool = False
    is_trial_engine: bool = False


_TEST_PARTS = frozenset({"tests", "benchmarks"})
_HOT_PARTS = frozenset({"sketch", "core", "linalg"})
_TRIAL_PARTS = frozenset({"core", "experiments", "utils"})


def classify_path(path: str) -> FileContext:
    """Derive a :class:`FileContext` from a (possibly virtual) file path."""
    pure = PurePath(str(path).replace("\\", "/"))
    parts = set(pure.parts)
    name = pure.name
    is_test = bool(parts & _TEST_PARTS) or name.startswith("test_")
    is_library = not is_test
    return FileContext(
        path=pure.as_posix(),
        is_test=is_test,
        is_hot=is_library and bool(parts & _HOT_PARTS),
        is_trial_engine=is_library and bool(parts & _TRIAL_PARTS),
    )


_RULE_LIST: Tuple[Rule, ...] = (
    Rule(
        code="RPL001",
        name="global-rng",
        summary="use of the global NumPy/stdlib RNG state",
        rationale=(
            "np.random.seed / np.random.<dist> and stdlib random.<fn> share "
            "hidden global state, so results depend on call order and "
            "thread scheduling; bare default_rng() in library code draws OS "
            "entropy and is unreproducible.  The seed repo's determinism "
            "contract (PR 1) routes all randomness through repro.utils.rng."
        ),
        scope="library code (tests are covered by RPL008)",
    ),
    Rule(
        code="RPL002",
        name="child-seed-from-parent-stream",
        summary="seeding an RNG from values drawn off another generator",
        rationale=(
            "default_rng(parent.integers(...)) was the PR 1 bug: child "
            "streams depended on how much the parent had already drawn, so "
            "trial results changed with execution order.  Derive children "
            "with SeedSequence.spawn (repro.utils.rng.spawn/spawn_seeds)."
        ),
    ),
    Rule(
        code="RPL003",
        name="todense-call",
        summary=".todense() returns np.matrix; use .toarray()",
        rationale=(
            "scipy's .todense() yields np.matrix, whose * and ** semantics "
            "silently differ from ndarray; PR 1 replaced every .todense() "
            "with .toarray() after shape-semantics bugs."
        ),
    ),
    Rule(
        code="RPL004",
        name="sparse-equality",
        summary="== / != comparison on sparse operands",
        rationale=(
            "Sparse != densifies (SparseEfficiencyWarning) and sparse == "
            "compares elementwise into a sparse boolean — both were hit in "
            "StreamingSketcher.merge (PR 1), which now compares structure "
            "(indptr/indices/data) on canonical CSC instead."
        ),
    ),
    Rule(
        code="RPL005",
        name="sparse-work-in-loop",
        summary="sparse construction or toarray() inside a for/while loop",
        rationale=(
            "Per-iteration sparse assembly or densification dominates hot "
            "paths; PR 2's matrix-free kernels exist precisely to keep "
            "per-trial loops free of scipy matrix builds."
        ),
        scope="hot library modules (sketch/, core/, linalg/)",
    ),
    Rule(
        code="RPL006",
        name="float-equality",
        summary="float-literal equality with == / != instead of isclose",
        rationale=(
            "Exact equality against non-integral float literals breaks "
            "under rounding differences between code paths (e.g. kernel vs "
            "materialized apply); use np.isclose/math.isclose with an "
            "explicit tolerance."
        ),
    ),
    Rule(
        code="RPL007",
        name="eager-sample",
        summary="sample(...) without an explicit lazy= at trial-engine call sites",
        rationale=(
            "PR 2 made kernel-backed families skip scipy matrix assembly "
            "with sample(lazy=True); trial-engine call sites must choose "
            "lazy= explicitly so eager materialization is a documented "
            "decision, never an accident."
        ),
        scope="trial-engine library modules (core/, experiments/, utils/)",
    ),
    Rule(
        code="RPL008",
        name="unseeded-test-randomness",
        summary="test randomness not derived from a seed",
        rationale=(
            "Unseeded default_rng()/SeedSequence()/bit generators, stdlib "
            "random.<fn>, or hypothesis randoms(use_true_random=True) make "
            "test failures unreproducible; every test stream must come from "
            "an explicit seed or a derived child (repro.utils.rng.spawn)."
        ),
        scope="tests and benchmarks",
    ),
    Rule(
        code="RPL900",
        name="syntax-error",
        summary="file could not be parsed",
        rationale="A file that does not parse cannot be linted or imported.",
    ),
)

RULES: Dict[str, Rule] = {rule.code: rule for rule in _RULE_LIST}


def all_codes() -> List[str]:
    """Every registered rule code, in catalog order."""
    return [rule.code for rule in _RULE_LIST]


def get_rule(code: str) -> Rule:
    try:
        return RULES[code]
    except KeyError:
        raise KeyError(f"unknown rule code {code!r}; known: {all_codes()}")


def normalize_codes(raw: Optional[str], *, option: str) -> Optional[frozenset]:
    """Parse a comma-separated ``--select``/``--ignore`` code list."""
    if raw is None:
        return None
    codes = frozenset(
        part.strip().upper() for part in raw.split(",") if part.strip()
    )
    unknown = codes - set(RULES)
    if unknown:
        raise ValueError(
            f"{option}: unknown rule code(s) {sorted(unknown)}; "
            f"known: {all_codes()}"
        )
    return codes
