"""Rule registry for the ``repro.lint`` static-analysis pass.

Each rule encodes one determinism or sparse-efficiency failure mode that
was actually hit (and fixed) in this repository's history — see
``docs/static_analysis.md`` for the full catalog with the originating bug
per rule.  Rules are identified by a stable ``RPLnnn`` code used in
reports, ``# repro-lint: disable=CODE`` suppressions, and the baseline
file.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import PurePath
from typing import Dict, List, Optional, Tuple

__all__ = [
    "Rule",
    "Violation",
    "FileContext",
    "RULES",
    "all_codes",
    "get_rule",
    "classify_path",
    "is_shard_primitive_module",
    "normalize_codes",
]


@dataclass(frozen=True)
class Rule:
    """Metadata for one lint rule.

    ``scope`` is a human-readable description of where the rule applies;
    the actual gating lives in the visitor via :class:`FileContext`.
    """

    code: str
    name: str
    summary: str
    rationale: str
    scope: str = "all files"


@dataclass(frozen=True)
class Violation:
    """One reported rule violation at a concrete source location."""

    path: str
    line: int
    col: int
    code: str
    message: str
    source_line: str = ""

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.code} {self.message}"


@dataclass(frozen=True)
class FileContext:
    """Path-derived role of a file, used to scope path-sensitive rules.

    * ``is_test`` — under ``tests/`` / ``benchmarks/`` or a ``test_*.py``
      file: RPL008 applies, RPL001's library-only checks do not.
    * ``is_hot`` — library module under ``sketch/``, ``core/`` or
      ``linalg/``: RPL005 (sparse work inside loops) applies.
    * ``is_trial_engine`` — library module under ``core/``,
      ``experiments/`` or ``utils/``: RPL007 (eager ``sample``) applies,
      and RPL105 (batch/shard identity delegation) applies.
    * ``is_result_io`` — library module under ``cache/``, ``observe/``,
      ``experiments/`` or ``core/``, whose JSON writes feed caches,
      ledgers, or result files: RPL101 (strict JSON emission) applies.
    """

    path: str
    is_test: bool = False
    is_hot: bool = False
    is_trial_engine: bool = False
    is_result_io: bool = False


_TEST_PARTS = frozenset({"tests", "benchmarks"})
_HOT_PARTS = frozenset({"sketch", "core", "linalg"})
_TRIAL_PARTS = frozenset({"core", "experiments", "utils"})
_RESULT_IO_PARTS = frozenset({"cache", "observe", "experiments", "core"})

#: Library files allowed to hand-roll shard/span arithmetic: these *are*
#: the sanctioned primitives (``shard_spans``, ``spawn_slice``) RPL103
#: tells everyone else to call.
_SHARD_PRIMITIVE_SUFFIXES = (
    "utils/parallel.py",
    "utils/rng.py",
)


def classify_path(path: str) -> FileContext:
    """Derive a :class:`FileContext` from a (possibly virtual) file path."""
    pure = PurePath(str(path).replace("\\", "/"))
    parts = set(pure.parts)
    name = pure.name
    is_test = bool(parts & _TEST_PARTS) or name.startswith("test_")
    is_library = not is_test
    return FileContext(
        path=pure.as_posix(),
        is_test=is_test,
        is_hot=is_library and bool(parts & _HOT_PARTS),
        is_trial_engine=is_library and bool(parts & _TRIAL_PARTS),
        is_result_io=is_library and bool(parts & _RESULT_IO_PARTS),
    )


def is_shard_primitive_module(path: str) -> bool:
    """True for the modules that implement the shard/span primitives."""
    posix = str(path).replace("\\", "/")
    return posix.endswith(_SHARD_PRIMITIVE_SUFFIXES)


_RULE_LIST: Tuple[Rule, ...] = (
    Rule(
        code="RPL001",
        name="global-rng",
        summary="use of the global NumPy/stdlib RNG state",
        rationale=(
            "np.random.seed / np.random.<dist> and stdlib random.<fn> share "
            "hidden global state, so results depend on call order and "
            "thread scheduling; bare default_rng() in library code draws OS "
            "entropy and is unreproducible.  The seed repo's determinism "
            "contract (PR 1) routes all randomness through repro.utils.rng."
        ),
        scope="library code (tests are covered by RPL008)",
    ),
    Rule(
        code="RPL002",
        name="child-seed-from-parent-stream",
        summary="seeding an RNG from values drawn off another generator",
        rationale=(
            "default_rng(parent.integers(...)) was the PR 1 bug: child "
            "streams depended on how much the parent had already drawn, so "
            "trial results changed with execution order.  Derive children "
            "with SeedSequence.spawn (repro.utils.rng.spawn/spawn_seeds)."
        ),
    ),
    Rule(
        code="RPL003",
        name="todense-call",
        summary=".todense() returns np.matrix; use .toarray()",
        rationale=(
            "scipy's .todense() yields np.matrix, whose * and ** semantics "
            "silently differ from ndarray; PR 1 replaced every .todense() "
            "with .toarray() after shape-semantics bugs."
        ),
    ),
    Rule(
        code="RPL004",
        name="sparse-equality",
        summary="== / != comparison on sparse operands",
        rationale=(
            "Sparse != densifies (SparseEfficiencyWarning) and sparse == "
            "compares elementwise into a sparse boolean — both were hit in "
            "StreamingSketcher.merge (PR 1), which now compares structure "
            "(indptr/indices/data) on canonical CSC instead."
        ),
    ),
    Rule(
        code="RPL005",
        name="sparse-work-in-loop",
        summary="sparse construction or toarray() inside a for/while loop",
        rationale=(
            "Per-iteration sparse assembly or densification dominates hot "
            "paths; PR 2's matrix-free kernels exist precisely to keep "
            "per-trial loops free of scipy matrix builds."
        ),
        scope="hot library modules (sketch/, core/, linalg/)",
    ),
    Rule(
        code="RPL006",
        name="float-equality",
        summary="float-literal equality with == / != instead of isclose",
        rationale=(
            "Exact equality against non-integral float literals breaks "
            "under rounding differences between code paths (e.g. kernel vs "
            "materialized apply); use np.isclose/math.isclose with an "
            "explicit tolerance."
        ),
    ),
    Rule(
        code="RPL007",
        name="eager-sample",
        summary="sample(...) without an explicit lazy= at trial-engine call sites",
        rationale=(
            "PR 2 made kernel-backed families skip scipy matrix assembly "
            "with sample(lazy=True); trial-engine call sites must choose "
            "lazy= explicitly so eager materialization is a documented "
            "decision, never an accident."
        ),
        scope="trial-engine library modules (core/, experiments/, utils/)",
    ),
    Rule(
        code="RPL008",
        name="unseeded-test-randomness",
        summary="test randomness not derived from a seed",
        rationale=(
            "Unseeded default_rng()/SeedSequence()/bit generators, stdlib "
            "random.<fn>, or hypothesis randoms(use_true_random=True) make "
            "test failures unreproducible; every test stream must come from "
            "an explicit seed or a derived child (repro.utils.rng.spawn)."
        ),
        scope="tests and benchmarks",
    ),
    Rule(
        code="RPL101",
        name="lenient-json-emission",
        summary="json.dump/dumps without allow_nan=False plus a numpy-safe "
                "default",
        rationale=(
            "PR 6's NaN JSONL bug: json.dumps happily writes nonstandard "
            "NaN/Infinity tokens that only Python's lenient parser reads "
            "back, and numpy scalars crash the encoder after the run has "
            "already finished.  Every JSON write that feeds a cache store, "
            "ledger, checkpoint, or result file must pass allow_nan=False "
            "and handle numpy payloads (default=json_default or a "
            "to_builtin/canonical_json wrapper)."
        ),
        scope="result-IO library modules (cache/, observe/, experiments/, "
              "core/)",
    ),
    Rule(
        code="RPL102",
        name="spec-key-omission",
        summary="cache-relevant parameter not reflected in the cache spec "
                "payload",
        rationale=(
            "PR 6's effective-m drift: failure_estimate grew a batch= "
            "parameter that changed results but was missing from the probe "
            "spec, so batched and serial runs collided on one cache key.  "
            "A function that both takes a result-shaping parameter (batch, "
            "trials, decision, confidence) and talks to a probe cache must "
            "mention that parameter as a spec dict key or keyword argument."
        ),
        scope="library code",
    ),
    Rule(
        code="RPL103",
        name="hand-rolled-shard-arithmetic",
        summary="shard/span index arithmetic outside shard_spans/spawn_slice",
        rationale=(
            "PR 7's shard-span overlap: ad-hoc `shard_index * per_shard` "
            "arithmetic produced overlapping seed slices under uneven "
            "division.  All shard partitioning goes through "
            "repro.utils.parallel.shard_spans and repro.utils.rng."
            "spawn_slice, which are batch-aligned and tested for exact "
            "tiling."
        ),
        scope="library code except the primitives themselves "
              "(utils/parallel.py, utils/rng.py)",
    ),
    Rule(
        code="RPL104",
        name="counter-prefix-contract",
        summary="bookkeeping counter outside the NON_RESULT_COUNTER_PREFIXES "
                "naming contract",
        rationale=(
            "count_* metrics on ExperimentResult must stay bit-identical "
            "across cache states and shard layouts, so bookkeeping counters "
            "are excluded by name prefix (cache_, checkpoint_, shard_ — "
            "NON_RESULT_COUNTER_PREFIXES in experiments/harness.py).  A "
            "counter named `hits_cache` or `count_shard_x` dodges the "
            "filter and leaks execution-dependent values into results."
        ),
        scope="library code",
    ),
    Rule(
        code="RPL105",
        name="batch-shard-identity-bypass",
        summary="batch=/shard= parameter used computationally without an "
                "identity-case guard",
        rationale=(
            "batch=None/1 must delegate bitwise to the serial path and "
            "shard=None to the unsharded one (PR 6/7 contract: the fast "
            "path may differ in the last ulp only when explicitly opted "
            "into).  A function that computes with its batch/shard "
            "parameter must first normalize it (_check_batch, "
            "normalize_shard, or an explicit None/1 comparison) or purely "
            "forward it."
        ),
        scope="trial-engine library modules (core/, experiments/, utils/)",
    ),
    Rule(
        code="RPL900",
        name="syntax-error",
        summary="file could not be parsed",
        rationale="A file that does not parse cannot be linted or imported.",
    ),
    Rule(
        code="RPL901",
        name="stale-suppression",
        summary="repro-lint suppression directive that suppresses nothing",
        rationale=(
            "A `# repro-lint: disable` comment that no longer matches any "
            "violation is dead weight: it hides future regressions at that "
            "site and misleads readers into thinking the rule still fires "
            "there.  Remove the directive (the text reporter lists every "
            "stale one)."
        ),
    ),
)

RULES: Dict[str, Rule] = {rule.code: rule for rule in _RULE_LIST}


def all_codes() -> List[str]:
    """Every registered rule code, in catalog order."""
    return [rule.code for rule in _RULE_LIST]


def get_rule(code: str) -> Rule:
    try:
        return RULES[code]
    except KeyError:
        raise KeyError(f"unknown rule code {code!r}; known: {all_codes()}")


def normalize_codes(raw: Optional[str], *, option: str) -> Optional[frozenset]:
    """Parse a comma-separated ``--select``/``--ignore`` code list."""
    if raw is None:
        return None
    codes = frozenset(
        part.strip().upper() for part in raw.split(",") if part.strip()
    )
    unknown = codes - set(RULES)
    if unknown:
        raise ValueError(
            f"{option}: unknown rule code(s) {sorted(unknown)}; "
            f"known: {all_codes()}"
        )
    return codes
