"""Text and JSON reporters for lint results."""

from __future__ import annotations

import json
from collections import Counter
from typing import IO, List

from .rules import RULES, Violation

__all__ = ["report_text", "report_json"]


def report_text(new: List[Violation], grandfathered: List[Violation],
                stream: IO[str], *, files_checked: int) -> None:
    """Human-readable report: one line per violation plus a summary."""
    for violation in sorted(new, key=lambda v: (v.path, v.line, v.col, v.code)):
        stream.write(violation.render() + "\n")
        if violation.source_line.strip():
            stream.write(f"    {violation.source_line.strip()}\n")
    stale = sorted(
        (v for v in new if v.code == "RPL901"),
        key=lambda v: (v.path, v.line, v.col),
    )
    if stale:
        stream.write(
            "\nstale suppressions — delete these directives to fix:\n"
        )
        for violation in stale:
            stream.write(f"  {violation.path}:{violation.line}: "
                         f"{violation.source_line.strip()}\n")
    counts = Counter(violation.code for violation in new)
    summary = ", ".join(f"{code}×{n}" for code, n in sorted(counts.items()))
    if new:
        stream.write(
            f"\n{len(new)} violation(s) in {files_checked} file(s)"
            f" [{summary}]\n"
        )
    else:
        stream.write(f"0 violations in {files_checked} file(s)\n")
    if grandfathered:
        stream.write(
            f"{len(grandfathered)} grandfathered violation(s) suppressed by "
            f"the baseline\n"
        )


def report_json(new: List[Violation], grandfathered: List[Violation],
                stream: IO[str], *, files_checked: int) -> None:
    """Machine-readable report mirroring the text reporter's content."""

    def as_dict(violation: Violation) -> dict:
        return {
            "path": violation.path,
            "line": violation.line,
            "col": violation.col,
            "code": violation.code,
            "rule": RULES[violation.code].name if violation.code in RULES
            else violation.code,
            "message": violation.message,
            "source_line": violation.source_line,
        }

    payload = {
        "files_checked": files_checked,
        "violations": [
            as_dict(v)
            for v in sorted(new, key=lambda v: (v.path, v.line, v.col, v.code))
        ],
        "grandfathered": len(grandfathered),
        "counts": dict(Counter(v.code for v in new)),
    }
    json.dump(payload, stream, indent=2, sort_keys=True)
    stream.write("\n")
