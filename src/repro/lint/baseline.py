"""Baseline file support — grandfathering pre-existing violations.

The baseline is a committed JSON file mapping stable fingerprints to the
violations they grandfather.  A fingerprint hashes the file path, rule
code, the *text* of the offending line, and an occurrence counter — not
the line number — so unrelated edits above a grandfathered line do not
invalidate it, while editing the offending line itself (or adding a new
identical violation) surfaces it again.

Policy: the baseline exists so the gate could be landed atop an imperfect
tree; new code must never add entries.  Each entry carries the violation
message as a tracking note.  Regenerate with ``--write-baseline`` only
when deliberately grandfathering, and prefer fixing or an inline
``# repro-lint: disable=CODE`` with justification.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

from .rules import Violation

__all__ = [
    "DEFAULT_BASELINE_NAME",
    "fingerprint_violations",
    "load_baseline",
    "write_baseline",
    "partition_by_baseline",
]

DEFAULT_BASELINE_NAME = ".repro-lint-baseline.json"

_FORMAT_VERSION = 1


def fingerprint_violations(violations: Iterable[Violation]
                           ) -> List[Tuple[str, Violation]]:
    """Pair each violation with its stable fingerprint.

    The occurrence counter disambiguates identical lines (same path, code
    and text), keeping fingerprints unique and order-stable.
    """
    seen: Dict[Tuple[str, str, str], int] = {}
    fingerprinted = []
    for violation in violations:
        key = (violation.path, violation.code, violation.source_line.strip())
        occurrence = seen.get(key, 0)
        seen[key] = occurrence + 1
        digest = hashlib.sha256(
            "|".join([*key, str(occurrence)]).encode("utf-8")
        ).hexdigest()[:16]
        fingerprinted.append((digest, violation))
    return fingerprinted


def load_baseline(path: Path) -> Dict[str, dict]:
    """Load baseline entries; a missing file is an empty baseline."""
    if not path.exists():
        return {}
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"unreadable baseline file {path}: {exc}") from exc
    if not isinstance(payload, dict) or "entries" not in payload:
        raise ValueError(
            f"baseline file {path} is not a repro-lint baseline "
            f"(missing 'entries')"
        )
    entries = payload["entries"]
    if not isinstance(entries, dict):
        raise ValueError(f"baseline file {path}: 'entries' must be an object")
    return entries


def write_baseline(path: Path, violations: Iterable[Violation]) -> int:
    """Write a baseline grandfathering exactly ``violations``."""
    entries = {
        digest: {
            "path": violation.path,
            "code": violation.code,
            "line": violation.line,
            "text": violation.source_line.strip(),
            "note": violation.message,
        }
        for digest, violation in fingerprint_violations(violations)
    }
    payload = {"version": _FORMAT_VERSION, "entries": entries}
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return len(entries)


def partition_by_baseline(violations: Iterable[Violation],
                          entries: Dict[str, dict]
                          ) -> Tuple[List[Violation], List[Violation]]:
    """Split violations into ``(new, grandfathered)`` against a baseline."""
    new: List[Violation] = []
    old: List[Violation] = []
    for digest, violation in fingerprint_violations(violations):
        (old if digest in entries else new).append(violation)
    return new, old
