"""Post-hoc rendering of a run ledger into plain-text tables.

``python -m repro.observe summarize LEDGER`` (and :func:`summarize` on an
event list) reconstructs, from the JSON-lines events alone:

* a run overview — one row per experiment with status, probe/trial
  totals, and wall-clock time;
* one table per ``minimal_m`` search listing every probe
  ``(m, failures, trials, rate, phase, verdict, seconds)``;
* a wall-clock breakdown aggregated over ``trace`` spans and trial
  batches;
* counter aggregates per experiment;
* probe-cache hit rates (from ``cache_hit``/``cache_miss`` events) and
  resumed-from-checkpoint experiments, when a run used ``--cache-dir``.

The renderer never requires end events: a crashed ``all --scale 1.0`` run
summarizes up to its last flushed line, with incomplete experiments and
searches marked as such.

A ledger holding events from several processes — shard passes appending
to one file, or multiple segments read together — is **regrouped per
shard/pid stream** before rendering: the accumulators above assume each
``*_start`` pairs with the next ``*_end`` of the same process, which
interleaved streams would scramble (probes of shard 1 landing inside
shard 0's search tables).  Each stream renders as its own section.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..utils.tables import TextTable
from .ledger import read_event_segments, read_events

__all__ = ["summarize", "summarize_path", "summarize_paths"]

#: Event fields that identify/timestamp rather than count; skipped when
#: folding ``counters`` events into per-experiment aggregates.
_NON_COUNTER_FIELDS = ("t", "mono", "kind", "experiment", "pid", "shard")


class _Search:
    """Accumulator for one ``minimal_m_start`` … ``minimal_m_end`` span."""

    def __init__(self, experiment: str, start: Dict[str, Any]) -> None:
        self.experiment = experiment
        self.start = start
        self.probes: List[Dict[str, Any]] = []
        self.end: Optional[Dict[str, Any]] = None


class _Experiment:
    """Accumulator for one ``experiment_start`` … ``experiment_end`` span."""

    def __init__(self, name: str,
                 start: Optional[Dict[str, Any]] = None) -> None:
        self.name = name
        self.start: Dict[str, Any] = start or {}
        self.end: Optional[Dict[str, Any]] = None
        self.probes = 0
        self.trials = 0
        self.searches = 0
        self.counters: Dict[str, int] = {}
        self.cache_hits = 0
        self.cache_misses = 0


def _fmt_seconds(value: Any) -> str:
    return f"{float(value):.2f}" if value is not None else "?"


def _clamp_negative_intervals(
    events: List[Dict[str, Any]],
) -> Tuple[List[Dict[str, Any]], int]:
    """Copy events, clamping negative ``elapsed`` fields to ``0.0``.

    Legacy ledgers timed spans by differencing ``time.time()``; a
    wall-clock step (NTP correction) mid-span could record a negative
    interval.  Current emitters stamp ``mono`` and derive durations from
    it, but ``summarize`` must render old ledgers too — so negative
    intervals are clamped rather than propagated into totals, and the
    renderer reports how many were clamped so a repaired summary is never
    mistaken for a clean one.
    """
    cleaned: List[Dict[str, Any]] = []
    clamped = 0
    for event in events:
        value = event.get("elapsed")
        if isinstance(value, (int, float)) and value < 0:
            event = {**event, "elapsed": 0.0}
            clamped += 1
        cleaned.append(event)
    return cleaned, clamped


def _mono_span(start: Dict[str, Any], end: Dict[str, Any]) -> Optional[float]:
    """Duration between two events via their monotonic stamps, if valid.

    ``mono`` has no shared epoch across processes, so the stamps are only
    comparable when both events carry the same ``pid``.
    """
    if start.get("pid") != end.get("pid"):
        return None
    try:
        span = float(end["mono"]) - float(start["mono"])
    except (KeyError, TypeError, ValueError):
        return None
    return span if span >= 0 else None


def _stream_key(event: Dict[str, Any]) -> Optional[Tuple[Any, ...]]:
    """Which shard/pid stream an event belongs to (None = unattributed).

    Shard label takes precedence over pid: one shard re-run in a fresh
    process (crash recovery) still folds into the same stream.
    """
    shard = event.get("shard")
    if isinstance(shard, str):
        return ("shard", shard)
    pid = event.get("pid")
    if pid is not None:
        return ("pid", int(pid))
    return None


def _stream_order(key: Optional[Tuple[Any, ...]]) -> Tuple[Any, ...]:
    """Sort key: shards by index, then pids, then unattributed."""
    if key is None:
        return (2, 0, "")
    scope, value = key
    if scope == "shard":
        head = str(value).split("/", 1)[0]
        index = int(head) if head.isdigit() else 0
        return (0, index, str(value))
    return (1, value, "")


def _stream_title(key: Optional[Tuple[Any, ...]]) -> str:
    if key is None:
        return "unattributed events"
    scope, value = key
    return f"shard {value}" if scope == "shard" else f"pid {value}"


def summarize(events: List[Dict[str, Any]]) -> str:
    """Render an event list (see :func:`repro.observe.read_events`).

    Events from multiple shard/pid streams are grouped per stream and
    rendered as separate sections (see the module docstring); a
    single-stream ledger renders without section headers.
    """
    streams: Dict[Optional[Tuple[Any, ...]], List[Dict[str, Any]]] = {}
    for event in events:
        streams.setdefault(_stream_key(event), []).append(event)
    if len(streams) <= 1:
        return _render_stream(events)
    parts: List[str] = []
    for key in sorted(streams, key=_stream_order):
        parts.append(f"=== {_stream_title(key)} "
                     f"({len(streams[key])} events) ===")
        parts.append(_render_stream(streams[key]))
    parts.append(
        f"({len(events)} events across {len(streams)} shard/pid streams)"
    )
    return "\n\n".join(parts)


def _render_stream(events: List[Dict[str, Any]]) -> str:
    """Render one process's event stream (the pre-shard ``summarize``)."""
    events, clamped = _clamp_negative_intervals(events)
    experiments: List[_Experiment] = []
    searches: List[_Search] = []
    spans: Dict[str, List[float]] = {}
    batches = 0
    cache_hits = 0
    cache_misses = 0
    resumed: List[str] = []
    current_exp: Optional[_Experiment] = None
    current_search: Optional[_Search] = None
    header: Optional[Dict[str, Any]] = None

    for event in events:
        kind = event.get("kind")
        if kind == "cli_start":
            header = event
        elif kind == "experiment_start":
            current_exp = _Experiment(str(event.get("experiment")), event)
            experiments.append(current_exp)
        elif kind == "experiment_end":
            if current_exp is not None:
                current_exp.end = event
            current_exp = None
        elif kind == "minimal_m_start":
            name = current_exp.name if current_exp is not None else "?"
            current_search = _Search(name, event)
            searches.append(current_search)
            if current_exp is not None:
                current_exp.searches += 1
        elif kind == "probe":
            if current_search is None:
                name = current_exp.name if current_exp is not None else "?"
                current_search = _Search(name, {})
                searches.append(current_search)
            current_search.probes.append(event)
            if current_exp is not None:
                current_exp.probes += 1
        elif kind == "minimal_m_end":
            if current_search is not None:
                current_search.end = event
            current_search = None
        elif kind == "trace":
            spans.setdefault(str(event.get("name")), []).append(
                float(event.get("elapsed", 0.0))
            )
            if current_exp is not None:
                current_exp.trials += int(event.get("trials", 0) or 0)
        elif kind == "counters":
            if current_exp is not None:
                for key, value in event.items():
                    if key in _NON_COUNTER_FIELDS:
                        continue
                    current_exp.counters[key] = \
                        current_exp.counters.get(key, 0) + int(value)
        elif kind == "batch_done":
            batches += 1
        elif kind == "cache_hit":
            cache_hits += 1
            if current_exp is not None:
                current_exp.cache_hits += 1
        elif kind == "cache_miss":
            cache_misses += 1
            if current_exp is not None:
                current_exp.cache_misses += 1
        elif kind == "experiment_resumed":
            resumed.append(str(event.get("experiment")))

    parts: List[str] = []
    if header is not None:
        ids = ", ".join(str(x) for x in header.get("experiments", []))
        parts.append(
            f"run: {ids} (scale={header.get('scale')}, "
            f"seed={header.get('seed')}, workers={header.get('workers')})"
        )

    overview = TextTable(
        title="Run overview",
        columns=["experiment", "status", "searches", "probes", "trials",
                 "seconds"],
    )
    for exp in experiments:
        status = "done" if exp.end is not None else "INCOMPLETE"
        elapsed = exp.end.get("elapsed") if exp.end is not None else None
        if elapsed is None and exp.end is not None:
            elapsed = _mono_span(exp.start, exp.end)
        overview.add_row([
            exp.name, status, exp.searches, exp.probes, exp.trials,
            _fmt_seconds(elapsed) if elapsed is not None else "?",
        ])
    for name in resumed:
        overview.add_row([name, "resumed", 0, 0, 0, "-"])
    if experiments or resumed:
        parts.append(overview.render())

    if cache_hits or cache_misses:
        lookups = cache_hits + cache_misses
        rate = 100.0 * cache_hits / lookups
        cache_table = TextTable(
            title=(f"Probe cache: {cache_hits}/{lookups} hits "
                   f"({rate:.1f}%)"),
            columns=["experiment", "hits", "misses", "hit rate"],
        )
        for exp in experiments:
            exp_lookups = exp.cache_hits + exp.cache_misses
            if not exp_lookups:
                continue
            cache_table.add_row([
                exp.name, exp.cache_hits, exp.cache_misses,
                f"{100.0 * exp.cache_hits / exp_lookups:.1f}%",
            ])
        parts.append(cache_table.render())

    for index, search in enumerate(searches, start=1):
        start = search.start
        bits = []
        if "m_min" in start:
            bits.append(f"m in [{start.get('m_min')}, {start.get('m_max')}]")
        if "decision" in start:
            bits.append(f"decision={start.get('decision')}")
        if "delta" in start:
            bits.append(f"delta={start.get('delta')}")
        if search.end is None:
            bits.append("INCOMPLETE")
        elif search.end.get("found"):
            bits.append(f"m*={search.end.get('m_star')}")
        else:
            bits.append("not found")
        table = TextTable(
            title=(f"minimal_m #{index} ({search.experiment})"
                   + (": " + ", ".join(bits) if bits else "")),
            columns=["m", "failures", "trials", "rate", "phase", "verdict",
                     "seconds"],
        )
        for probe in search.probes:
            trials = int(probe.get("trials", 0) or 0)
            failures = int(probe.get("successes", 0) or 0)
            rate = failures / trials if trials else float("nan")
            table.add_row([
                probe.get("m"), failures, trials, f"{rate:.3f}",
                probe.get("phase", "?"),
                "pass" if probe.get("passed") else "fail",
                _fmt_seconds(probe.get("elapsed", 0.0)),
            ])
        parts.append(table.render())

    if spans:
        breakdown = TextTable(
            title="Wall-clock breakdown (trace spans)",
            columns=["span", "calls", "total s", "mean s"],
        )
        for name in sorted(spans, key=lambda n: -sum(spans[n])):
            values = spans[name]
            total = sum(values)
            breakdown.add_row([
                name, len(values), f"{total:.2f}",
                f"{total / len(values):.4f}",
            ])
        parts.append(breakdown.render())

    for exp in experiments:
        if not exp.counters:
            continue
        table = TextTable(
            title=f"Counters ({exp.name})", columns=["counter", "count"]
        )
        for name in sorted(exp.counters):
            table.add_row([name, exp.counters[name]])
        parts.append(table.render())

    footer = (
        f"({len(events)} events, {len(experiments)} experiments, "
        f"{len(searches)} searches, {batches} trial batches)"
    )
    if clamped:
        footer += (
            f"\nWARNING: {clamped} negative interval(s) clamped to 0.00 "
            f"(wall-clock step in a legacy ledger)"
        )
    parts.append(footer)
    return "\n\n".join(parts)


def summarize_path(path: Union[str, Path]) -> str:
    """Read a JSON-lines ledger file and render its summary."""
    return summarize(read_events(path))


def summarize_paths(paths: List[Union[str, Path]]) -> str:
    """Read several ledger segments and render one grouped summary.

    Segments are concatenated in argument order (torn trailing lines
    tolerated per segment — see :func:`read_event_segments`) and then
    regrouped per shard/pid stream by :func:`summarize`.
    """
    return summarize(read_event_segments(paths))
