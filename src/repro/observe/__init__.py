"""Observability layer: run ledger, tracing, and operation counters.

Long ``minimal_m`` searches and full-scale experiment runs are expensive
to re-measure, so this package turns them into inspectable artifacts:

* :class:`RunLedger` appends structured JSON-lines events (experiment
  start/end, every ``minimal_m`` probe, trial-batch dispatch/completion,
  traced spans, counter aggregates) to a file; install one with
  ``with RunLedger(path): ...`` or the CLI's ``--ledger PATH``;
* :func:`trace` times a named span into the ledger;
* :class:`Counters` aggregates operation counts (sketch samples, kernel
  applies, trials) that surface as ``count_*`` metrics on
  ``ExperimentResult``;
* ``python -m repro.observe summarize LEDGER`` renders a ledger back
  into per-probe tables and wall-clock breakdowns (see
  :mod:`repro.observe.summarize`).

Everything is a no-op-by-default: with no ledger installed, the
instrumented hot paths pay one context-variable read, and emission never
consumes randomness — serial and parallel runs of one seed produce
bit-identical results and identical deterministic event views
(:func:`deterministic_view`).
"""

from .counters import Counters, add_count, counters, use_counters
from .ledger import (
    EXECUTION_KINDS,
    TIMING_FIELDS,
    RunLedger,
    current_ledger,
    deterministic_view,
    emit_event,
    read_event_segments,
    read_events,
    use_ledger,
)
from .trace import trace

__all__ = [
    "EXECUTION_KINDS",
    "TIMING_FIELDS",
    "Counters",
    "RunLedger",
    "add_count",
    "counters",
    "current_ledger",
    "deterministic_view",
    "emit_event",
    "read_event_segments",
    "read_events",
    "trace",
    "use_counters",
    "use_ledger",
]
