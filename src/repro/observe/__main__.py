"""Command-line entry point for ledger inspection.

Usage::

    python -m repro.observe summarize RUN.jsonl
"""

from __future__ import annotations

import argparse
import sys

from .summarize import summarize_path


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.observe",
        description="Inspect run ledgers written with --ledger PATH.",
    )
    commands = parser.add_subparsers(dest="command")
    summarize = commands.add_parser(
        "summarize",
        help="render per-probe tables and wall-clock breakdowns from a "
             "JSON-lines ledger",
    )
    summarize.add_argument("ledger", metavar="LEDGER",
                           help="path to a JSON-lines ledger file")
    return parser


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_usage(sys.stderr)
        return 2
    try:
        print(summarize_path(args.ledger))
    except OSError as exc:
        print(f"cannot read ledger: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
