"""Command-line entry point for ledger inspection.

Usage::

    python -m repro.observe summarize RUN.jsonl
    python -m repro.observe summarize shard-0.jsonl shard-1.jsonl ...

Multiple files are read as segments of one run (e.g. per-shard ledgers)
and summarized grouped per shard/pid stream.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .summarize import summarize_paths


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.observe",
        description="Inspect run ledgers written with --ledger PATH.",
    )
    commands = parser.add_subparsers(dest="command")
    summarize = commands.add_parser(
        "summarize",
        help="render per-probe tables and wall-clock breakdowns from a "
             "JSON-lines ledger",
    )
    summarize.add_argument("ledger", metavar="LEDGER", nargs="+",
                           help="JSON-lines ledger file(s); several files "
                                "are read as segments of one run")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_usage(sys.stderr)
        return 2
    # read_event_segments tolerates absent segments (a shard that never
    # wrote), but every file named on the command line must exist — a
    # typo'd path silently summarizing as "0 events" helps nobody.
    for path in args.ledger:
        if not Path(path).exists():
            print(f"cannot read ledger: {path}: no such file",
                  file=sys.stderr)
            return 2
    try:
        print(summarize_paths(args.ledger))
    except OSError as exc:
        print(f"cannot read ledger: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
