"""Process-global operation counters for the trial engine.

A :class:`Counters` object is a plain name → integer aggregate.  The
library keeps one per process (:func:`counters`) and the instrumented hot
paths bump it through :func:`add_count` — a dictionary increment, cheap
enough to stay on unconditionally.

Worker processes count into their *own* global; the trial engine
(:mod:`repro.utils.parallel`) snapshots the per-chunk delta inside each
worker and merges it back into the parent, so totals are identical for
serial and parallel runs of the same workload.  :meth:`Experiment.run
<repro.experiments.harness.Experiment.run>` exposes the per-run delta as
``count_*`` entries on ``ExperimentResult.metrics``.

Concurrent *threads* in one process (the estimation server runs each
request in a thread) would cross-pollute a single global: request A's
snapshot/diff would absorb request B's increments, poisoning both the
``count_*`` metrics and the counter deltas the probe cache stores for
warm replay.  :func:`use_counters` scopes a request-local aggregate via a
``ContextVar`` — ``asyncio.to_thread`` copies the calling context, so
everything a request computes counts into its own aggregate, exactly as
a dedicated process would.

This module deliberately imports nothing from the rest of the library so
the hot-path modules (``sketch/``, ``utils/parallel.py``) can depend on it
without import cycles.
"""

from __future__ import annotations

import contextlib
import contextvars
from typing import Dict, Iterator, Mapping, Optional

__all__ = ["Counters", "counters", "add_count", "use_counters"]


class Counters:
    """A named-integer aggregate with snapshot/delta/merge arithmetic."""

    __slots__ = ("_counts",)

    def __init__(self, counts: Optional[Mapping[str, int]] = None) -> None:
        self._counts: Dict[str, int] = dict(counts or {})

    def increment(self, name: str, by: int = 1) -> None:
        """Add ``by`` to counter ``name`` (creating it at zero)."""
        self._counts[name] = self._counts.get(name, 0) + by

    def get(self, name: str) -> int:
        """Current value of ``name`` (zero when never incremented)."""
        return self._counts.get(name, 0)

    def snapshot(self) -> Dict[str, int]:
        """A frozen copy of the current counts, for later :meth:`diff`."""
        return dict(self._counts)

    def diff(self, baseline: Mapping[str, int]) -> Dict[str, int]:
        """Counts accrued since ``baseline`` (only nonzero deltas)."""
        return {
            name: value - baseline.get(name, 0)
            for name, value in self._counts.items()
            if value != baseline.get(name, 0)
        }

    def merge(self, delta: Mapping[str, int]) -> None:
        """Fold another aggregate's counts (e.g. a worker delta) in."""
        for name, value in delta.items():
            self.increment(name, value)

    def clear(self) -> None:
        """Reset every counter to zero."""
        self._counts.clear()

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)

    def __iter__(self) -> Iterator[str]:
        return iter(self._counts)

    def __len__(self) -> int:
        return len(self._counts)

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name}={value}" for name, value in sorted(self._counts.items())
        )
        return f"Counters({inner})"


#: The per-process aggregate; see the module docstring for the
#: serial/parallel merge discipline.
_GLOBAL = Counters()

#: Scoped override installed by :func:`use_counters`; ``None`` means the
#: process-global aggregate is in effect.
_SCOPED: "contextvars.ContextVar[Optional[Counters]]" = \
    contextvars.ContextVar("repro_counters", default=None)


def counters() -> Counters:
    """The current :class:`Counters` aggregate.

    The process-global one unless a :func:`use_counters` scope is active
    in the calling context.
    """
    scoped = _SCOPED.get()
    return scoped if scoped is not None else _GLOBAL


def add_count(name: str, by: int = 1) -> None:
    """Bump the current counter ``name`` — the hot-path entry point."""
    counters().increment(name, by)


@contextlib.contextmanager
def use_counters(aggregate: Counters) -> Iterator[Counters]:
    """Route :func:`add_count`/:func:`counters` to ``aggregate``.

    The override is context-local: other threads and asyncio tasks keep
    their own view, and ``asyncio.to_thread`` work started inside the
    scope inherits it (the context is copied into the worker thread).
    The caller owns the aggregate — fold it into the global with
    :meth:`Counters.merge` afterwards if process totals should include
    the scoped work.
    """
    token = _SCOPED.set(aggregate)
    try:
        yield aggregate
    finally:
        _SCOPED.reset(token)
