"""Structured run ledger: JSON-lines events for long experiment runs.

A :class:`RunLedger` collects structured events — experiment start/end,
``minimal_m`` probes, trial-batch dispatch/completion, counter aggregates,
traced wall-clock spans — and appends them as JSON lines to a file, so a
multi-hour (or crashed) run leaves a durable, machine-readable record.
``python -m repro.observe summarize LEDGER`` renders it back into tables.

Design constraints, in order:

* **off the hot path** — with no ledger installed, every instrumentation
  site is a single ``ContextVar.get`` returning ``None``; with one
  installed, lines are buffered and flushed in batches;
* **never perturbs determinism** — emission consumes no randomness, and
  the *deterministic view* of a ledger (execution-scope events dropped,
  timing fields stripped; see :func:`deterministic_view`) is identical for
  serial and parallel runs of the same seed;
* **fork-safe** — a ledger only accepts events from the process that
  created it, so pool workers inheriting the context variable can never
  write duplicate or torn lines.

Usage::

    with RunLedger("run.jsonl", progress=True):
        run_experiment("E1", scale=0.05, rng=0, workers=2)

Entering the ledger installs it as the current sink; instrumented library
code emits through :func:`emit_event` without threading a handle around.
"""

from __future__ import annotations

import contextlib
import contextvars
import json
import os
import sys
import threading
import time
from pathlib import Path
from typing import Any, Dict, IO, Iterator, List, Optional, Union

import numpy as np

__all__ = [
    "EXECUTION_KINDS",
    "TIMING_FIELDS",
    "RunLedger",
    "current_ledger",
    "deterministic_view",
    "emit_event",
    "read_event_segments",
    "read_events",
    "use_ledger",
]

#: Event kinds that describe *how* work was executed (worker ids, chunk
#: spans, probe-cache reuse) rather than *what* was computed; excluded
#: from the deterministic view because chunking legitimately differs
#: across ``workers`` settings and cache hits/misses across cache states.
EXECUTION_KINDS = frozenset({
    "batch_dispatch", "batch_done",
    "cache_hit", "cache_miss", "checkpoint_save", "experiment_resumed",
    "shard_partial", "shard_pending", "shard_round",
})

#: Per-event fields that carry wall-clock or process identity and are
#: stripped from the deterministic view.  ``shard`` is identity, not
#: payload: an N-shard run merged back together must produce the same
#: view as a serial run (see :mod:`repro.shard`).  ``mono`` is the
#: monotonic companion of ``t`` (see :meth:`RunLedger.emit`).
TIMING_FIELDS = frozenset({"t", "mono", "elapsed", "worker", "workers",
                           "pid", "shard"})


def _json_default(value: Any) -> Any:
    """JSON fallback for numpy scalars/arrays inside event payloads."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(
        f"ledger event field of type {type(value).__name__} is not "
        f"JSON-serializable"
    )


class RunLedger:
    """Buffered JSON-lines event sink with optional live progress echo.

    Parameters
    ----------
    path:
        Destination file; events are *appended*, so successive runs can
        share one ledger.  ``None`` keeps events in memory only.
    progress:
        Echo one human-readable line per semantic event to stderr.
    buffer_lines:
        Serialized lines held before a write+flush; keeps emission off the
        hot path without risking more than a tail of events on a crash.
    keep_events:
        Retain events on :attr:`events` for in-process inspection.
        Defaults to ``True`` exactly when ``path`` is ``None``.
    shard:
        Optional shard label (e.g. ``"1/3"``) stamped on every event, so
        segments from concurrent shard passes can share a ledger file (or
        be read together with :func:`read_event_segments`) and still be
        regrouped per shard by ``summarize``.

    Every event additionally carries the emitting process id as ``pid``;
    both stamps are identity fields (:data:`TIMING_FIELDS`) and never
    reach the deterministic view.
    """

    def __init__(self, path: Union[str, Path, None] = None, *,
                 progress: bool = False, buffer_lines: int = 256,
                 keep_events: Optional[bool] = None,
                 shard: Optional[str] = None) -> None:
        if buffer_lines < 1:
            raise ValueError(
                f"buffer_lines must be positive, got {buffer_lines}"
            )
        self._path = Path(path) if path is not None else None
        self._progress = progress
        self._buffer: List[str] = []
        self._buffer_lines = buffer_lines
        self._keep = (path is None) if keep_events is None else keep_events
        self._events: List[Dict[str, Any]] = []
        self._shard = shard
        self._pid = os.getpid()
        self._handle: Optional[IO[str]] = None
        self._closed = False
        self._token: Optional[contextvars.Token] = None
        # Reentrant because ``emit`` flushes inline once the buffer fills.
        # The estimation server emits from several compute threads into
        # one shared request-log ledger; without the lock, two threads
        # could interleave buffer appends and flushes into torn lines.
        self._lock = threading.RLock()

    @property
    def path(self) -> Optional[Path]:
        return self._path

    @property
    def events(self) -> List[Dict[str, Any]]:
        """Events retained in memory (see ``keep_events``)."""
        return list(self._events)

    def emit(self, kind: str, **fields: Any) -> None:
        """Record one event; a no-op after close and in forked children.

        Events carry two clocks: ``t`` (``time.time``) for display, and
        ``mono`` (``time.perf_counter``) for durations.  Wall clock can
        step backwards (NTP corrections), which used to make ``summarize``
        compute negative spans from ``t`` differences; ``mono`` is
        monotonic within a process, so intra-process intervals derived
        from it are always nonnegative.  ``mono`` has no meaningful epoch
        and is only comparable between events with the same ``pid``.
        """
        if self._closed or os.getpid() != self._pid:
            return
        event: Dict[str, Any] = {"t": time.time(),
                                 "mono": time.perf_counter(),
                                 "kind": kind, "pid": self._pid}
        if self._shard is not None:
            event.setdefault("shard", self._shard)
        event.update(fields)
        with self._lock:
            if self._closed:
                return
            if self._keep:
                self._events.append(event)
            if self._path is not None:
                # allow_nan=False: a non-finite field would otherwise
                # write a nonstandard NaN/Infinity token that only
                # Python's lenient parser reads back — fail at the emit
                # site instead.
                self._buffer.append(json.dumps(event, allow_nan=False,
                                               default=_json_default))
                if len(self._buffer) >= self._buffer_lines:
                    self.flush()
        if self._progress:
            line = _progress_line(event)
            if line is not None:
                print(line, file=sys.stderr)

    def flush(self) -> None:
        """Write buffered lines through to disk."""
        with self._lock:
            if not self._buffer or self._path is None:
                return
            if self._handle is None:
                self._handle = open(self._path, "a", encoding="utf-8")
            self._handle.write("\n".join(self._buffer) + "\n")
            self._handle.flush()
            self._buffer.clear()

    def close(self) -> None:
        """Flush and stop accepting events (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self.flush()
            if self._handle is not None:
                self._handle.close()
                self._handle = None
            self._closed = True

    def __enter__(self) -> "RunLedger":
        self._token = _CURRENT.set(self)
        return self

    def __exit__(self, *exc_info: Any) -> None:
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None
        self.close()

    def __repr__(self) -> str:
        target = str(self._path) if self._path is not None else "<memory>"
        state = "closed" if self._closed else "open"
        return f"RunLedger({target}, {state}, {len(self._events)} kept)"


_CURRENT: "contextvars.ContextVar[Optional[RunLedger]]" = \
    contextvars.ContextVar("repro_run_ledger", default=None)


def current_ledger() -> Optional[RunLedger]:
    """The installed ledger, or ``None`` (the default no-op sink)."""
    return _CURRENT.get()


def emit_event(kind: str, **fields: Any) -> None:
    """Emit to the current ledger; a cheap no-op when none is installed."""
    ledger = _CURRENT.get()
    if ledger is not None:
        ledger.emit(kind, **fields)


@contextlib.contextmanager
def use_ledger(ledger: Optional[RunLedger]) -> Iterator[Optional[RunLedger]]:
    """Install ``ledger`` as the current sink without taking ownership.

    Unlike entering the ledger itself, leaving this context does *not*
    close it — useful for scoping one ledger over several runs.
    """
    token = _CURRENT.set(ledger)
    try:
        yield ledger
    finally:
        _CURRENT.reset(token)


def deterministic_view(events: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """The payload subsequence guaranteed identical across ``workers``.

    Drops execution-scope events (:data:`EXECUTION_KINDS`) and strips
    timing/identity fields (:data:`TIMING_FIELDS`) from the rest.  For a
    fixed seed, serial and parallel runs of the same workload produce
    equal deterministic views — the observability analogue of the trial
    engine's bit-identical-results contract.
    """
    view = []
    for event in events:
        if event.get("kind") in EXECUTION_KINDS:
            continue
        view.append({
            key: value for key, value in event.items()
            if key not in TIMING_FIELDS
        })
    return view


def read_events(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Parse a JSON-lines ledger file back into event dictionaries.

    A torn trailing line (crash mid-write) is tolerated and skipped; any
    earlier unparseable line raises, since that indicates corruption
    rather than an interrupted run.
    """
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    events: List[Dict[str, Any]] = []
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            if number == len(lines):
                break
            raise ValueError(
                f"{path}: unparseable ledger line {number}: {line[:80]!r}"
            ) from None
    return events


def read_event_segments(
    paths: List[Union[str, Path]],
) -> List[Dict[str, Any]]:
    """Parse several ledger segments into one event list, in order.

    A sharded run typically leaves one ledger file per shard pass (or per
    worker process).  Each segment gets the same torn-trailing-line
    tolerance as :func:`read_events` — a shard killed mid-write loses at
    most its final line, never the other shards' segments — while a
    corrupt line in the *middle* of any segment still raises.  A segment
    that does not exist (a shard killed before its first write) reads as
    empty.
    """
    events: List[Dict[str, Any]] = []
    for path in paths:
        if not Path(path).exists():
            continue
        events.extend(read_events(path))
    return events


def _progress_line(event: Dict[str, Any]) -> Optional[str]:
    """One-line stderr rendering of a semantic event (None = silent)."""
    kind = event.get("kind")
    if kind == "cli_start":
        ids = ", ".join(event.get("experiments", []))
        return (f"[observe] run start: {ids} "
                f"(scale={event.get('scale')}, seed={event.get('seed')}, "
                f"workers={event.get('workers')})")
    if kind == "experiment_start":
        return (f"[observe] {event.get('experiment')} start "
                f"(scale={event.get('scale')})")
    if kind == "minimal_m_start":
        return (f"[observe]   minimal_m: m in "
                f"[{event.get('m_min')}, {event.get('m_max')}] "
                f"decision={event.get('decision')} "
                f"trials/probe={event.get('trials')}")
    if kind == "probe":
        verdict = "pass" if event.get("passed") else "fail"
        return (f"[observe]     probe m={event.get('m')}: "
                f"{event.get('successes')}/{event.get('trials')} failures "
                f"({verdict}, {event.get('phase')}) "
                f"[{event.get('elapsed', 0.0):.2f}s]")
    if kind == "minimal_m_end":
        if event.get("found"):
            outcome = f"m* = {event.get('m_star')}"
        else:
            outcome = "not found (m_max failed)"
        return (f"[observe]   minimal_m done: {outcome} after "
                f"{event.get('probes')} probes "
                f"[{event.get('elapsed', 0.0):.2f}s]")
    if kind == "experiment_end":
        return (f"[observe] {event.get('experiment')} done "
                f"[{event.get('elapsed', 0.0):.1f}s]")
    if kind == "experiment_resumed":
        return (f"[observe] {event.get('experiment')} resumed from "
                f"checkpoint (seed={event.get('seed')}, "
                f"scale={event.get('scale')})")
    return None
