"""Lightweight wall-clock tracing for named spans.

:func:`trace` wraps a block and emits a ``trace`` event (name, caller
fields, elapsed seconds) to the current ledger.  With no ledger installed
it skips the timing entirely, so instrumented call sites cost one context
variable read.
"""

from __future__ import annotations

import contextlib
import time
from typing import Any, Iterator

from .ledger import current_ledger, emit_event

__all__ = ["trace"]


@contextlib.contextmanager
def trace(name: str, **fields: Any) -> Iterator[None]:
    """Time a block and emit a ``trace`` ledger event on exit.

    ``fields`` become event payload entries and must therefore be
    deterministic quantities (trial counts, dimensions — not wall-clock
    or worker identity) so the ledger's deterministic-view contract holds;
    the reserved keys ``name``/``elapsed``/``kind`` cannot be overridden.
    The event is emitted even when the block raises, recording the time
    spent before the failure.
    """
    if current_ledger() is None:
        yield
        return
    started = time.perf_counter()
    try:
        yield
    finally:
        emit_event(
            "trace", name=name,
            elapsed=time.perf_counter() - started, **fields
        )
