"""Sketch composition and stacking.

Two standard constructions over existing families:

* :class:`TwoStageSketch` — ``Π = Π₂ Π₁``: an inner sketch with cheap
  application (CountSketch at its quadratic-but-unavoidable ``m₁``)
  followed by an outer sketch with optimal dimension (Gaussian/SRHT at
  ``m₂ = O(d/ε²)``).  This is the practical response to the paper's lower
  bounds: the total cost stays ``O(nnz(A)) + poly(d/ε)`` while the final
  dimension escapes the ``d²`` barrier — without contradicting the
  theorems, since the composed matrix is dense.  Experiment E14 measures
  this escape.
* :class:`StackedSketch` — vertical concatenation ``[Π₁; Π₂; …]/√k`` of
  independent sketches: averages the quadratic forms, trading target
  dimension for variance reduction.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
import scipy.sparse as sp

from ..utils.rng import RngLike, as_generator, spawn
from .base import Sketch, SketchFamily, sample_sketch

__all__ = ["TwoStageSketch", "StackedSketch"]


def _to_dense(matrix) -> np.ndarray:
    if sp.issparse(matrix):
        return np.asarray(matrix.toarray(), dtype=float)
    return np.asarray(matrix, dtype=float)


class TwoStageSketch(SketchFamily):
    """Composition ``Π = Π_outer · Π_inner`` of two sketch families.

    The inner family's ambient dimension is the overall ``n``; the outer
    family's ambient dimension must equal the inner target dimension.
    """

    def __init__(self, inner: SketchFamily, outer: SketchFamily):
        if outer.n != inner.m:
            raise ValueError(
                f"outer ambient dimension ({outer.n}) must equal inner "
                f"target dimension ({inner.m})"
            )
        super().__init__(outer.m, inner.n)
        self._inner = inner
        self._outer = outer

    @property
    def inner(self) -> SketchFamily:
        return self._inner

    @property
    def outer(self) -> SketchFamily:
        return self._outer

    @property
    def name(self) -> str:
        return f"TwoStage({self._inner.name} -> {self._outer.name})"

    def with_m(self, m: int) -> "TwoStageSketch":
        """Resize the *outer* stage (the final dimension)."""
        return TwoStageSketch(self._inner, self._outer.with_m(m))

    def spec(self) -> dict:
        """Canonical description embedding both stage specs."""
        return {
            "type": type(self).__qualname__,
            "inner": self._inner.spec(),
            "outer": self._outer.spec(),
        }

    def sample(self, rng: RngLike = None, lazy: bool = False) -> Sketch:
        gen = as_generator(rng)
        inner = sample_sketch(self._inner, spawn(gen), lazy=lazy)
        outer = sample_sketch(self._outer, spawn(gen), lazy=lazy)
        composed = _ComposedSketch(inner, outer, self)
        return composed


class _ComposedSketch(Sketch):
    """Sampled two-stage sketch applying the stages in sequence."""

    def __init__(self, inner: Sketch, outer: Sketch,
                 family: TwoStageSketch):
        self._inner = inner
        self._outer = outer
        self._family = family
        self._lazy = None

    @property
    def matrix(self):
        """Explicit composed matrix (materialized on first access)."""
        if self._lazy is None:
            self._lazy = self._outer.apply(_to_dense(self._inner.matrix))
        return self._lazy

    @property
    def _matrix(self):
        return self.matrix

    @property
    def shape(self) -> tuple:
        return (self._outer.m, self._inner.n)

    @property
    def m(self) -> int:
        return self._outer.m

    @property
    def n(self) -> int:
        return self._inner.n

    def apply(self, a):
        """Apply the stages in sequence (never materializes ``Π``)."""
        return self._outer.apply(self._inner.apply(a))

    def basis_image(self, draw):
        """``ΠU`` by chaining stages — no composed-matrix materialization."""
        return self._outer.apply(self._inner.basis_image(draw))

    def apply_cost(self, a) -> int:
        """Sum of the per-stage costs (the intermediate image is dense)."""
        columns = 1 if a.ndim == 1 else a.shape[1]
        inner_image_cost = self._outer.apply_cost(
            np.ones((self._inner.m, columns))
        )
        return self._inner.apply_cost(a) + inner_image_cost


class StackedSketch(SketchFamily):
    """Vertical concatenation of independent sketches, scaled ``1/√k``.

    ``‖Πx‖² = (1/k) Σ_i ‖Π_i x‖²`` — the average of ``k`` independent
    quadratic forms, so the variance of the squared norm shrinks by
    ``1/k`` at the price of ``k×`` the rows.
    """

    def __init__(self, families: Sequence[SketchFamily]):
        if not families:
            raise ValueError("need at least one family to stack")
        n = families[0].n
        for family in families:
            if family.n != n:
                raise ValueError(
                    "all stacked families must share the ambient dimension"
                )
        super().__init__(sum(f.m for f in families), n)
        self._families = list(families)

    @property
    def families(self) -> list:
        return list(self._families)

    @property
    def name(self) -> str:
        inner = ", ".join(f.name for f in self._families)
        return f"Stacked[{inner}]"

    def spec(self) -> dict:
        """Canonical description embedding every block's spec."""
        return {
            "type": type(self).__qualname__,
            "families": [family.spec() for family in self._families],
        }

    def sample(self, rng: RngLike = None, lazy: bool = False) -> Sketch:
        # Stacking needs every block materialized anyway; ``lazy`` is a
        # no-op beyond interface uniformity.
        gen = as_generator(rng)
        scale = 1.0 / np.sqrt(len(self._families))
        blocks = []
        for family in self._families:
            piece = family.sample(spawn(gen)).matrix
            blocks.append(
                piece.multiply(scale) if sp.issparse(piece)
                else piece * scale
            )
        if all(sp.issparse(b) for b in blocks):
            matrix = sp.vstack(blocks, format="csc")
        else:
            matrix = np.vstack([_to_dense(b) for b in blocks])
        return Sketch(matrix, family=self)
