"""Sketching-matrix constructions: CountSketch, OSNAP, Gaussian, and more."""

from .base import Sketch, SketchFamily, sample_sketch
from .compose import StackedSketch, TwoStageSketch
from .countsketch import CountSketch
from .gaussian import GaussianSketch
from .hadamard_block import HadamardBlockSketch, block_hadamard_matrix
from .kernels import (
    ApplyKernel,
    ColumnScatterKernel,
    CooScatterKernel,
    RowGatherKernel,
)
from .leverage_sampling import LeverageSampling
from .osnap import OSNAP
from .row_sampling import RowSampling
from .sparse_jl import SparseJL
from .srht import SRHT, SRHTOperator, SRHTSketch
from .streaming import StreamingSketcher

__all__ = [
    "Sketch",
    "SketchFamily",
    "sample_sketch",
    "ApplyKernel",
    "ColumnScatterKernel",
    "CooScatterKernel",
    "RowGatherKernel",
    "StackedSketch",
    "TwoStageSketch",
    "LeverageSampling",
    "CountSketch",
    "GaussianSketch",
    "HadamardBlockSketch",
    "block_hadamard_matrix",
    "OSNAP",
    "RowSampling",
    "SparseJL",
    "SRHT",
    "SRHTOperator",
    "SRHTSketch",
    "StreamingSketcher",
]
