"""Base classes for sketching-matrix families.

A *family* (e.g. "CountSketch with m rows and n columns") is a distribution
over matrices; calling :meth:`SketchFamily.sample` draws one concrete
:class:`Sketch`.  This separation mirrors Definition 1: the oblivious
subspace embedding is the distribution, and the embedding property is a
statement about the probability that a sampled matrix works for a fixed
subspace.

Structured sparse families additionally attach an
:class:`~repro.sketch.kernels.ApplyKernel` to their sketches: a matrix-free
(hash-row, sign)-style representation whose application is bit-identical to
the materialized matmul but skips the per-trial matrix build.  With
``sample(..., lazy=True)`` the explicit matrix is not assembled at all
until something (structural statistics, composition, a sparse right-hand
side) actually asks for :attr:`Sketch.matrix`.
"""

from __future__ import annotations

import abc
from typing import (TYPE_CHECKING, Any, Dict, Optional, Sequence, Tuple,
                    Union)

import numpy as np
import scipy.sparse as sp

from ..linalg.gram import max_column_sparsity
from ..linalg.sparse_ops import densify, nnz
from ..observe.counters import add_count
from ..utils.rng import RngLike
from ..utils.serialization import to_builtin
from ..utils.validation import check_positive_int
from .kernels import ApplyKernel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .batched import BatchedTrialKernel

__all__ = ["Sketch", "SketchFamily", "sample_sketch"]

MatrixLike = Union[np.ndarray, sp.spmatrix]


class Sketch:
    """A concrete sampled sketching matrix ``Π ∈ R^{m×n}``.

    Wraps the matrix together with the family that produced it, and provides
    the application operator and basic structural statistics.  When a
    matrix-free ``kernel`` is attached, ``matrix`` may be ``None`` — the
    explicit form is then assembled lazily on first access, and the
    application/statistics helpers answer from the kernel directly.
    """

    def __init__(self, matrix: Optional[MatrixLike] = None,
                 family: Optional["SketchFamily"] = None,
                 kernel: Optional[ApplyKernel] = None) -> None:
        if matrix is None and kernel is None:
            raise ValueError(
                "a sketch needs an explicit matrix or an apply kernel"
            )
        if matrix is not None and matrix.ndim != 2:
            raise ValueError("a sketch must be a matrix")
        self._materialized = matrix
        self._family = family
        self._kernel = kernel

    @property
    def matrix(self) -> MatrixLike:
        """The underlying matrix, assembled from the kernel on first use."""
        if self._materialized is None:
            kernel = self._kernel
            assert kernel is not None  # __init__ requires matrix or kernel
            self._materialized = kernel.materialize()
        return self._materialized

    @property
    def kernel(self) -> Optional[ApplyKernel]:
        """The matrix-free application kernel, when the family has one."""
        return getattr(self, "_kernel", None)

    @property
    def is_materialized(self) -> bool:
        """Whether the explicit matrix has been assembled."""
        return getattr(self, "_materialized", None) is not None

    @property
    def family(self) -> Optional["SketchFamily"]:
        """The family this sketch was sampled from, when known."""
        return self._family

    @property
    def shape(self) -> Tuple[int, ...]:
        materialized = getattr(self, "_materialized", None)
        if materialized is not None:
            return materialized.shape
        kernel = self.kernel
        if kernel is not None:
            return kernel.shape
        return self.matrix.shape

    @property
    def m(self) -> int:
        """Target (row) dimension."""
        return self.shape[0]

    @property
    def n(self) -> int:
        """Ambient (column) dimension."""
        return self.shape[1]

    @property
    def nnz(self) -> int:
        """Number of nonzero entries."""
        kernel = self.kernel
        if kernel is not None and not self.is_materialized:
            return kernel.nnz()
        return nnz(self.matrix)

    @property
    def column_sparsity(self) -> int:
        """Maximum number of nonzeros in a column — the paper's ``s``."""
        kernel = self.kernel
        if kernel is not None and not self.is_materialized:
            return kernel.max_column_nnz()
        return max_column_sparsity(self.matrix)

    def apply(self, a: MatrixLike) -> np.ndarray:
        """Compute ``ΠA`` (or ``Πx`` for a vector), densified.

        Dense inputs dispatch to the matrix-free kernel when one is
        attached (bit-identical to the materialized product); sparse
        inputs and kernel-less sketches multiply by the explicit matrix.
        """
        if sp.issparse(a):
            a_arr = a
        else:
            a_arr = np.asarray(a, dtype=float)
            if a_arr.ndim not in (1, 2):
                raise ValueError(
                    f"can only apply a sketch to a 1-D vector or 2-D "
                    f"matrix, got a {a_arr.ndim}-D input"
                )
        if a_arr.shape[0] != self.n:
            kind = "vector" if a_arr.ndim == 1 else "matrix"
            raise ValueError(
                f"cannot apply {self.shape} sketch to a {kind} with "
                f"leading dimension {a_arr.shape[0]} (expected {self.n})"
            )
        kernel = self.kernel
        if kernel is not None and not sp.issparse(a_arr):
            add_count("kernel_applies")
            return np.asarray(kernel.apply(a_arr), dtype=float)
        add_count("matrix_applies")
        result = self.matrix @ a_arr
        if sp.issparse(result):
            result = result.toarray()
        return np.asarray(result, dtype=float)

    def basis_image(self, draw: Any) -> np.ndarray:
        """Compute ``ΠU`` for a hard-instance draw.

        Kernel-backed sketches answer matrix-free: structured draws via the
        kernel's column scatter/gather (no matrix, no per-trial build),
        unstructured draws via the kernel's dense apply.  Both are
        bit-identical to the materialized path, which remains the fallback.
        """
        kernel = self.kernel
        if kernel is not None:
            add_count("kernel_applies")
            if getattr(draw, "structured", False):
                return kernel.sketched_basis(draw)
            return np.asarray(kernel.apply(draw.u), dtype=float)
        add_count("matrix_applies")
        return draw.sketched_basis(self.matrix)

    def apply_cost(self, a: MatrixLike) -> int:
        """Multiplication count of :meth:`apply` on ``a``.

        Defaults to the exact sparse count (computed from the kernel's
        per-column sparsity when the matrix is not materialized);
        implicit-operator sketches (SRHT) override with their
        fast-transform cost.
        """
        from ..linalg.sparse_ops import sketch_apply_cost

        kernel = self.kernel
        if kernel is not None and not self.is_materialized:
            return sketch_apply_cost(kernel, a)
        return sketch_apply_cost(self.matrix, a)

    def dense(self) -> np.ndarray:
        """The sketch as a dense ndarray."""
        return densify(self.matrix)

    def __repr__(self) -> str:
        origin = f" from {self._family!r}" if self._family is not None else ""
        lazy = "" if self.is_materialized else ", lazy"
        return f"Sketch(shape={self.shape}, nnz={self.nnz}{lazy}{origin})"


class SketchFamily(abc.ABC):
    """A distribution over ``m × n`` sketching matrices.

    Subclasses implement :meth:`sample`.  The constructor validates and
    stores the common dimensions so subclasses only validate their own
    extra parameters.
    """

    def __init__(self, m: int, n: int) -> None:
        self._m = check_positive_int(m, "m")
        self._n = check_positive_int(n, "n")

    @property
    def m(self) -> int:
        """Target (row) dimension of sampled sketches."""
        return self._m

    @property
    def n(self) -> int:
        """Ambient (column) dimension of sampled sketches."""
        return self._n

    @property
    def name(self) -> str:
        """Human-readable family name (class name by default)."""
        return type(self).__name__

    @abc.abstractmethod
    def sample(self, rng: RngLike = None, lazy: bool = False) -> Sketch:
        """Draw one sketching matrix from the family.

        ``lazy=True`` defers assembling the explicit matrix for families
        with a matrix-free kernel; the randomness consumed is identical
        either way, so lazy and eager draws at the same seed hold the same
        matrix.  Families without a kernel ignore the flag.
        """

    def sample_trial_batch(
        self, seeds: Sequence[np.random.SeedSequence],
    ) -> Optional["BatchedTrialKernel"]:
        """Sample ``len(seeds)`` sketches as one batched trial kernel.

        ``seeds[i]`` is trial ``i``'s spawned ``SeedSequence``; the batch
        consumes each sub-stream exactly as ``sample(seeds[i], lazy=True)``
        would, so ``trial_kernel(i)`` matches the serial draw.  The default
        stacks per-trial kernels (vectorizing only the reduction);
        structured families override with fully vectorized samplers.
        Returns ``None`` when the family has no kernel path — callers then
        fall back to the serial per-trial loop, re-using the same seeds.
        """
        from .batched import stacked_from_family

        return stacked_from_family(self, list(seeds))

    def spec(self) -> Dict[str, Any]:
        """Canonical JSON-able description of this family.

        Used as the sketch-family component of content-addressed cache
        keys (:mod:`repro.cache`): two families with equal specs must be
        the same distribution.  The default covers any subclass whose
        :meth:`_resize_params` returns its full constructor signature;
        families composed of other families override to embed the inner
        specs.
        """
        return {
            "type": type(self).__qualname__,
            "params": to_builtin(self._resize_params()),
        }

    def with_m(self, m: int) -> "SketchFamily":
        """A copy of this family with a different target dimension.

        Subclasses with extra parameters must override when those parameters
        depend on ``m``.  Used by the minimal-``m`` search in
        :mod:`repro.core.tester`.
        """
        params = dict(self._resize_params())
        params["m"] = m
        return type(self)(**params)

    def _resize_params(self) -> Dict[str, Any]:
        """Constructor kwargs for :meth:`with_m`; subclasses extend."""
        return {"m": self._m, "n": self._n}

    def __repr__(self) -> str:
        return f"{self.name}(m={self._m}, n={self._n})"


def sample_sketch(family: SketchFamily, rng: RngLike = None,
                  lazy: bool = False) -> Sketch:
    """Sample from ``family``, requesting lazy materialization if supported.

    Pre-``lazy`` families (external subclasses with a ``sample(rng)``
    signature) fall back to an eager draw; the signature mismatch raises
    before any randomness is consumed, so the fallback re-samples from the
    same stream deterministically.
    """
    add_count("sketch_samples")
    if not lazy:
        return family.sample(rng)
    try:
        return family.sample(rng, lazy=True)
    except TypeError:
        return family.sample(rng)
