"""Base classes for sketching-matrix families.

A *family* (e.g. "CountSketch with m rows and n columns") is a distribution
over matrices; calling :meth:`SketchFamily.sample` draws one concrete
:class:`Sketch`.  This separation mirrors Definition 1: the oblivious
subspace embedding is the distribution, and the embedding property is a
statement about the probability that a sampled matrix works for a fixed
subspace.
"""

from __future__ import annotations

import abc
from typing import Optional, Union

import numpy as np
import scipy.sparse as sp

from ..linalg.gram import max_column_sparsity
from ..linalg.sparse_ops import densify, nnz
from ..utils.rng import RngLike
from ..utils.validation import check_positive_int

__all__ = ["Sketch", "SketchFamily"]

MatrixLike = Union[np.ndarray, sp.spmatrix]


class Sketch:
    """A concrete sampled sketching matrix ``Π ∈ R^{m×n}``.

    Wraps the matrix together with the family that produced it, and provides
    the application operator and basic structural statistics.
    """

    def __init__(self, matrix: MatrixLike,
                 family: Optional["SketchFamily"] = None):
        if matrix.ndim != 2:
            raise ValueError("a sketch must be a matrix")
        self._matrix = matrix
        self._family = family

    @property
    def matrix(self) -> MatrixLike:
        """The underlying matrix (dense ndarray or scipy sparse)."""
        return self._matrix

    @property
    def family(self) -> Optional["SketchFamily"]:
        """The family this sketch was sampled from, when known."""
        return self._family

    @property
    def shape(self) -> tuple:
        return self._matrix.shape

    @property
    def m(self) -> int:
        """Target (row) dimension."""
        return self._matrix.shape[0]

    @property
    def n(self) -> int:
        """Ambient (column) dimension."""
        return self._matrix.shape[1]

    @property
    def nnz(self) -> int:
        """Number of nonzero entries."""
        return nnz(self._matrix)

    @property
    def column_sparsity(self) -> int:
        """Maximum number of nonzeros in a column — the paper's ``s``."""
        return max_column_sparsity(self._matrix)

    def apply(self, a: MatrixLike) -> np.ndarray:
        """Compute ``ΠA`` (or ``Πx`` for a vector), densified."""
        a_arr = a if sp.issparse(a) else np.asarray(a, dtype=float)
        if a_arr.shape[0] != self.n:
            raise ValueError(
                f"cannot apply {self.shape} sketch to input with leading "
                f"dimension {a_arr.shape[0]}"
            )
        result = self._matrix @ a_arr
        if sp.issparse(result):
            result = result.toarray()
        return np.asarray(result, dtype=float)

    def basis_image(self, draw) -> np.ndarray:
        """Compute ``ΠU`` for a hard-instance draw.

        Defaults to the draw's structured fast path on the explicit
        matrix; implicit/composed sketches override to avoid
        materialization.
        """
        return draw.sketched_basis(self._matrix)

    def apply_cost(self, a: MatrixLike) -> int:
        """Multiplication count of :meth:`apply` on ``a``.

        Defaults to the exact sparse count; implicit-operator sketches
        (SRHT) override with their fast-transform cost.
        """
        from ..linalg.sparse_ops import sketch_apply_cost

        return sketch_apply_cost(self._matrix, a)

    def dense(self) -> np.ndarray:
        """The sketch as a dense ndarray."""
        return densify(self._matrix)

    def __repr__(self) -> str:
        origin = f" from {self._family!r}" if self._family is not None else ""
        return f"Sketch(shape={self.shape}, nnz={self.nnz}{origin})"


class SketchFamily(abc.ABC):
    """A distribution over ``m × n`` sketching matrices.

    Subclasses implement :meth:`sample`.  The constructor validates and
    stores the common dimensions so subclasses only validate their own
    extra parameters.
    """

    def __init__(self, m: int, n: int):
        self._m = check_positive_int(m, "m")
        self._n = check_positive_int(n, "n")

    @property
    def m(self) -> int:
        """Target (row) dimension of sampled sketches."""
        return self._m

    @property
    def n(self) -> int:
        """Ambient (column) dimension of sampled sketches."""
        return self._n

    @property
    def name(self) -> str:
        """Human-readable family name (class name by default)."""
        return type(self).__name__

    @abc.abstractmethod
    def sample(self, rng: RngLike = None) -> Sketch:
        """Draw one sketching matrix from the family."""

    def with_m(self, m: int) -> "SketchFamily":
        """A copy of this family with a different target dimension.

        Subclasses with extra parameters must override when those parameters
        depend on ``m``.  Used by the minimal-``m`` search in
        :mod:`repro.core.tester`.
        """
        params = dict(self._resize_params())
        params["m"] = m
        return type(self)(**params)

    def _resize_params(self) -> dict:
        """Constructor kwargs for :meth:`with_m`; subclasses extend."""
        return {"m": self._m, "n": self._n}

    def __repr__(self) -> str:
        return f"{self.name}(m={self._m}, n={self._n})"
