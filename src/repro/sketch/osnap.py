"""OSNAP sketches (Nelson–Nguyễn): ``s`` nonzeros per column.

Two classical variants are provided, matching the two samplings discussed
in the literature (and in the paper's introduction):

* ``"uniform"`` — each column gets ``s`` nonzero rows chosen uniformly
  *without replacement*, each value ``±1/√s``.
* ``"block"`` — the rows are partitioned into ``s`` contiguous blocks of
  size ``m/s``; each column gets exactly one ``±1/√s`` entry per block.

Both have exact column sparsity ``s``; CountSketch is the special case
``s = 1`` of either.  The known upper bounds are
``m = Θ(d log(d/δ)/ε²)`` with ``s = Θ(log(d/δ)/ε)``, or
``m = Θ(d^{1+γ} log(d/δ)/ε²)`` with ``s = Θ(1/(γε))`` for constant γ.
The paper's Theorems 18/20 lower-bound ``m`` for every ``s ≤ 1/(9ε)``;
experiment E9 sweeps ``s`` and measures the trade-off.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from ..linalg.sparse_ops import from_triplets
from ..observe.counters import add_count
from ..utils.rng import RngLike, as_generator
from ..utils.validation import (
    check_epsilon,
    check_positive_int,
    check_probability,
)
from .base import Sketch, SketchFamily
from .batched import BatchedColumnScatter
from .kernels import ColumnScatterKernel

__all__ = ["OSNAP"]

_VARIANTS = ("uniform", "block")


class OSNAP(SketchFamily):
    """OSNAP family with exact column sparsity ``s``.

    Parameters
    ----------
    m:
        Target dimension.  For the ``"block"`` variant it must be divisible
        by ``s``.
    n:
        Ambient dimension.
    s:
        Number of nonzeros per column; values are ``±1/√s``.
    variant:
        ``"uniform"`` (positions without replacement per column) or
        ``"block"`` (one position per row block).
    """

    def __init__(self, m: int, n: int, s: int, variant: str = "uniform"):
        super().__init__(m, n)
        self._s = check_positive_int(s, "s")
        if self._s > self.m:
            raise ValueError(
                f"column sparsity s ({self._s}) cannot exceed m ({self.m})"
            )
        if variant not in _VARIANTS:
            raise ValueError(
                f"variant must be one of {_VARIANTS}, got {variant!r}"
            )
        if variant == "block" and self.m % self._s != 0:
            raise ValueError(
                f"block variant requires s | m, got m={self.m}, s={self._s}"
            )
        self._variant = variant

    @property
    def s(self) -> int:
        """Column sparsity."""
        return self._s

    @property
    def variant(self) -> str:
        return self._variant

    @property
    def name(self) -> str:
        return f"OSNAP[s={self._s},{self._variant}]"

    def _resize_params(self) -> dict:
        return {
            "m": self.m,
            "n": self.n,
            "s": self._s,
            "variant": self._variant,
        }

    def with_m(self, m: int) -> "OSNAP":
        """Copy with a new target dimension (rounded up for block variant)."""
        if self._variant == "block" and m % self._s != 0:
            m = m + (self._s - m % self._s)
        params = self._resize_params()
        params["m"] = max(m, self._s)
        if self._variant == "block" and params["m"] % self._s != 0:
            params["m"] += self._s - params["m"] % self._s
        return OSNAP(**params)

    def sample(self, rng: RngLike = None, lazy: bool = False) -> Sketch:
        """Sample an OSNAP matrix with exactly ``s`` nonzeros per column.

        The sketch carries a matrix-free :class:`ColumnScatterKernel`
        (rows sorted within each column into canonical CSC order);
        ``lazy=True`` skips assembling the scipy matrix entirely.
        """
        gen = as_generator(rng)
        s, m, n = self._s, self.m, self.n
        if self._variant == "uniform":
            rows = self._sample_rows_without_replacement(gen, s, m, n)
        else:
            block = m // s
            offsets = (np.arange(s) * block)[:, None]
            rows = offsets + gen.integers(0, block, size=(s, n))
        signs = gen.choice((-1.0, 1.0), size=(s, n))
        values = signs / math.sqrt(s)
        order = np.argsort(rows, axis=0, kind="stable")
        kernel = ColumnScatterKernel(
            np.take_along_axis(rows, order, axis=0),
            np.take_along_axis(values, order, axis=0),
            (m, n),
        )
        matrix = None
        if not lazy:
            cols = np.broadcast_to(np.arange(n), (s, n))
            matrix = from_triplets(
                rows.ravel(), np.ascontiguousarray(cols).ravel(),
                values.ravel(), (m, n)
            )
        return Sketch(matrix, family=self, kernel=kernel)

    def sample_trial_batch(
        self, seeds: Sequence[np.random.SeedSequence],
    ) -> Optional[BatchedColumnScatter]:
        """Per-trial ``(s, n)`` rows and signs, one sub-stream per trial.

        Each entry consumes its seed exactly like :meth:`sample`, but the
        rows stay in drawn order — the canonical per-column sort (the most
        expensive part of the serial sampler) is skipped, because the
        batched scatter does not need it and
        :meth:`BatchedColumnScatter.trial_kernel` can replay it on demand.
        The RNG outputs are handed to the batch kernel as-is, never copied
        into a stacked buffer.
        """
        if not seeds:
            return None
        s, m, n = self._s, self.m, self.n
        rows = []
        signs = []
        block = m // s if self._variant == "block" else 0
        offsets = (np.arange(s) * block)[:, None]
        for seed in seeds:
            gen = as_generator(seed)
            if self._variant == "uniform":
                rows.append(self._distinct_rows_unsorted(gen, s, m, n))
            else:
                rows.append(offsets + gen.integers(0, block, size=(s, n)))
            signs.append(gen.choice((-1.0, 1.0), size=(s, n)))
        add_count("sketch_samples", len(seeds))
        return BatchedColumnScatter(rows, signs, 1.0 / math.sqrt(s), (m, n))

    @staticmethod
    def _distinct_rows_unsorted(gen: np.random.Generator, s: int,
                                m: int, n: int) -> np.ndarray:
        """Stream-identical to :meth:`_sample_rows_without_replacement`.

        Consumes the same variates and rejection-resamples the same
        columns (a column has a duplicate iff some unordered pair of its
        rows coincides, however it is detected), but finds the duplicates
        by pairwise comparison instead of a per-column sort — cheaper for
        the small ``s`` of interest, and the batched scatter never needs
        the sorted order.  After the first round only the just-resampled
        columns are re-checked: untouched columns are already
        duplicate-free, so the surviving bad sets (and hence the variates
        drawn for them) match the serial sampler's full-width re-scan
        exactly.
        """
        if s == 1:
            return gen.integers(0, m, size=(1, n))
        if 2 * s > m:
            # Dense regime: random permutation per column, keep s rows.
            return np.argsort(gen.random((m, n)), axis=0)[:s]
        rows = gen.integers(0, m, size=(s, n))
        active: Optional[np.ndarray] = None
        draw = rows
        while True:
            duplicated = np.zeros(draw.shape[1], dtype=bool)
            for i in range(s - 1):
                for j in range(i + 1, s):
                    duplicated |= draw[i] == draw[j]
            hit = np.flatnonzero(duplicated)
            if hit.size == 0:
                return rows
            bad = hit if active is None else active[hit]
            draw = gen.integers(0, m, size=(s, bad.size))
            rows[:, bad] = draw
            active = bad

    @staticmethod
    def _sample_rows_without_replacement(gen: np.random.Generator, s: int,
                                         m: int, n: int) -> np.ndarray:
        """``s`` distinct uniform rows per column, vectorized.

        Rejection-resamples columns containing duplicates; for ``s ≪ m``
        this converges in a couple of rounds, avoiding a Python loop over
        all ``n`` columns.
        """
        if s == 1:
            return gen.integers(0, m, size=(1, n))
        if 2 * s > m:
            # Dense regime: random permutation per column, keep s rows.
            return np.argsort(gen.random((m, n)), axis=0)[:s]
        rows = gen.integers(0, m, size=(s, n))
        while True:
            ordered = np.sort(rows, axis=0)
            bad = np.flatnonzero(np.any(np.diff(ordered, axis=0) == 0,
                                        axis=0))
            if bad.size == 0:
                return rows
            rows[:, bad] = gen.integers(0, m, size=(s, bad.size))

    @staticmethod
    def recommended_m(d: int, epsilon: float, delta: float,
                      constant: float = 2.0) -> int:
        """Upper bound ``m = Θ(d log(d/δ)/ε²)`` for ``s = Θ(log(d/δ)/ε)``."""
        d = check_positive_int(d, "d")
        epsilon = check_epsilon(epsilon)
        delta = check_probability(delta, "delta")
        return max(1, math.ceil(
            constant * d * math.log(max(d / delta, 2.0)) / epsilon**2
        ))

    @staticmethod
    def recommended_s(d: int, epsilon: float, delta: float,
                      constant: float = 1.0) -> int:
        """Matching sparsity ``s = Θ(log(d/δ)/ε)`` for :meth:`recommended_m`."""
        d = check_positive_int(d, "d")
        epsilon = check_epsilon(epsilon)
        delta = check_probability(delta, "delta")
        return max(1, math.ceil(
            constant * math.log(max(d / delta, 2.0)) / epsilon
        ))

    @staticmethod
    def recommended_m_gamma(d: int, epsilon: float, delta: float,
                            gamma: float, constant: float = 2.0) -> int:
        """Alternative upper bound ``m = Θ(d^{1+γ} log(d/δ)/ε²)``.

        The matching sparsity is ``s = Θ(1/(γ ε))`` — this is the regime
        the paper's ``s ≤ 1/(9ε)`` constraint addresses.
        """
        d = check_positive_int(d, "d")
        epsilon = check_epsilon(epsilon)
        delta = check_probability(delta, "delta")
        if gamma <= 0:
            raise ValueError(f"gamma must be positive, got {gamma}")
        return max(1, math.ceil(
            constant * d ** (1.0 + gamma)
            * math.log(max(d / delta, 2.0)) / epsilon**2
        ))
