"""Leverage-score row sampling — the principled *non-oblivious* method.

Uniform row sampling fails on coherent inputs (E11); sampling rows with
probability proportional to their leverage scores (with the usual
``1/√(m p_i)`` rescaling) fixes that — but it must *see the matrix first*,
which is exactly what obliviousness forbids.  Including it completes the
comparison: the paper's lower bounds constrain only the oblivious column.

Unlike the oblivious families, this one is constructed *for* a specific
matrix ``A`` (or a subspace basis): :meth:`for_matrix` computes the exact
scores, or accepts externally approximated ones (see
:mod:`repro.apps.leverage`).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np
import scipy.sparse as sp

from ..apps.leverage import exact_leverage_scores
from ..observe.counters import add_count
from ..utils.rng import RngLike, as_generator
from ..utils.validation import check_matrix, check_positive_int
from .base import Sketch, SketchFamily
from .batched import BatchedRowGather
from .kernels import RowGatherKernel

__all__ = ["LeverageSampling"]


class LeverageSampling(SketchFamily):
    """Row sampling from a fixed probability vector with rescaling.

    Row ``i`` of ``A`` is selected in each of the ``m`` draws with
    probability ``p_i`` (with replacement) and rescaled by
    ``1/√(m p_i)``, so ``E[ΠᵀΠ] = I``.

    Parameters
    ----------
    m, n:
        Sketch dimensions.
    probabilities:
        Length-``n`` sampling distribution (nonnegative, sums to 1).
        Zero-probability rows are never sampled — callers should mix in a
        uniform floor if the scores can vanish.
    """

    def __init__(self, m: int, n: int, probabilities):
        super().__init__(m, n)
        p = np.asarray(probabilities, dtype=float)
        if p.shape != (self.n,):
            raise ValueError(
                f"probabilities must have shape ({self.n},), got {p.shape}"
            )
        if np.any(p < 0) or not np.isclose(p.sum(), 1.0, rtol=1e-8):
            raise ValueError("probabilities must be nonnegative and sum to 1")
        self._p = p

    @property
    def probabilities(self) -> np.ndarray:
        return self._p.copy()

    @property
    def name(self) -> str:
        return "LeverageSampling"

    def _resize_params(self) -> dict:
        return {"m": self.m, "n": self.n, "probabilities": self._p}

    def with_m(self, m: int) -> "LeverageSampling":
        return LeverageSampling(m=m, n=self.n, probabilities=self._p)

    @classmethod
    def for_matrix(cls, a, m: int, uniform_mix: float = 0.1,
                   scores=None) -> "LeverageSampling":
        """Build the sampler from (exact or supplied) leverage scores of
        ``a``.

        ``uniform_mix`` blends in a uniform floor — standard practice so
        that approximation error in the scores cannot zero out a needed
        row.
        """
        a = check_matrix(a, "a")
        check_positive_int(m, "m")
        if not (0.0 <= uniform_mix <= 1.0):
            raise ValueError(
                f"uniform_mix must lie in [0, 1], got {uniform_mix}"
            )
        if scores is None:
            scores = exact_leverage_scores(a)
        scores = np.asarray(scores, dtype=float)
        if scores.shape != (a.shape[0],) or np.any(scores < 0):
            raise ValueError("scores must be nonnegative, one per row")
        total = scores.sum()
        if total == 0:
            raise ValueError("all leverage scores are zero")
        p = (1 - uniform_mix) * scores / total + uniform_mix / a.shape[0]
        return cls(m=m, n=a.shape[0], probabilities=p)

    def sample(self, rng: RngLike = None, lazy: bool = False) -> Sketch:
        """Sample ``Π``; application is a pure row gather (kernel-backed)."""
        gen = as_generator(rng)
        rows = gen.choice(self.n, size=self.m, p=self._p)
        values = 1.0 / np.sqrt(self.m * self._p[rows])
        kernel = RowGatherKernel(rows, values, (self.m, self.n))
        matrix = None
        if not lazy:
            matrix = sp.csc_matrix(
                (values, (np.arange(self.m), rows)), shape=(self.m, self.n)
            )
        return Sketch(matrix, family=self, kernel=kernel)

    def sample_trial_batch(
        self, seeds: Sequence[np.random.SeedSequence],
    ) -> Optional[BatchedRowGather]:
        """Stacked ``(B, m)`` sampled rows, one sub-stream per trial."""
        if not seeds:
            return None
        batch = len(seeds)
        cols = np.empty((batch, self.m), dtype=np.int64)
        for index, seed in enumerate(seeds):
            gen = as_generator(seed)
            cols[index] = gen.choice(self.n, size=self.m, p=self._p)
        values = 1.0 / np.sqrt(self.m * self._p[cols])
        add_count("sketch_samples", batch)
        return BatchedRowGather(cols, values, (self.m, self.n))
