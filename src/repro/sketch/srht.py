"""Subsampled Randomized Hadamard Transform (SRHT).

``Π = √(n/m) · P H D`` where ``D`` is a random ±1 diagonal, ``H`` the
(normalized) Walsh–Hadamard transform and ``P`` samples ``m`` rows
uniformly.  Applying it costs ``O(n log n)`` per vector via the fast
transform — the middle ground between dense Gaussian and CountSketch in the
application comparison (experiment E11).

The ambient dimension ``n`` must be a power of two; callers with other
``n`` should zero-pad (``apps``-level helpers do this automatically).
"""

from __future__ import annotations

import math

import numpy as np
import scipy.sparse as sp

from ..linalg.hadamard import fwht
from ..utils.rng import RngLike, as_generator
from ..utils.validation import (
    check_epsilon,
    check_positive_int,
    check_power_of_two,
    check_probability,
)
from .base import Sketch, SketchFamily

__all__ = ["SRHT", "SRHTOperator"]


class SRHTOperator:
    """A sampled SRHT as an implicit operator with a fast ``apply``.

    Also materializes the explicit matrix lazily for code paths (distortion
    checks) that want it.
    """

    def __init__(self, signs: np.ndarray, rows: np.ndarray, n: int, m: int):
        self._signs = signs
        self._rows = rows
        self._n = n
        self._m = m
        self._scale = 1.0 / math.sqrt(m)  # combined with unnormalized FWHT
        self._dense = None

    def apply(self, a: np.ndarray) -> np.ndarray:
        """Compute ``ΠA`` in ``O(n log n)`` per column via the FWHT."""
        a = np.asarray(a, dtype=float)
        if a.shape[0] != self._n:
            raise ValueError(
                f"operator expects leading dimension {self._n}, "
                f"got {a.shape[0]}"
            )
        mixed = fwht(self._signs.reshape((-1,) + (1,) * (a.ndim - 1)) * a)
        # Π = √(n/m)·P·(H/√n)·D, so with the unnormalized FWHT the overall
        # coefficient collapses to 1/√m per selected row.
        return self._scale * mixed[self._rows]

    def dense_matrix(self) -> np.ndarray:
        """Materialize the explicit ``m × n`` matrix."""
        if self._dense is None:
            self._dense = self.apply(np.eye(self._n))
        return self._dense


class SRHTSketch(Sketch):
    """A sampled SRHT: fast implicit ``apply``, lazily materialized matrix."""

    def __init__(self, operator: SRHTOperator, family: "SRHT"):
        self._operator = operator
        self._lazy_matrix = None
        self._family = family

    @property
    def operator(self) -> SRHTOperator:
        return self._operator

    @property
    def matrix(self) -> np.ndarray:
        """Explicit ``m × n`` matrix (materialized on first access)."""
        if self._lazy_matrix is None:
            self._lazy_matrix = self._operator.dense_matrix()
        return self._lazy_matrix

    # Sketch reads self._matrix in its helpers; route through the lazy one.
    @property
    def _matrix(self) -> np.ndarray:
        return self.matrix

    @property
    def shape(self) -> tuple:
        return (self._operator._m, self._operator._n)

    @property
    def m(self) -> int:
        return self._operator._m

    @property
    def n(self) -> int:
        return self._operator._n

    def apply(self, a) -> np.ndarray:
        """``ΠA`` in ``O(n log n)`` per column via the FWHT."""
        a = np.asarray(a, dtype=float) if not sp.issparse(a) \
            else np.asarray(a.toarray(), dtype=float)
        return self._operator.apply(a)

    def apply_cost(self, a) -> int:
        """FWHT cost: ``n log₂ n`` multiplications per column of ``a``."""
        n = self.n
        columns = 1 if a.ndim == 1 else a.shape[1]
        return int(n * math.log2(n)) * columns


class SRHT(SketchFamily):
    """SRHT family; ``n`` must be a power of two."""

    def __init__(self, m: int, n: int):
        check_power_of_two(n, "n")
        super().__init__(m, n)
        if m > n:
            raise ValueError(f"SRHT requires m ≤ n, got m={m}, n={n}")

    def sample(self, rng: RngLike = None, lazy: bool = False) -> Sketch:
        # SRHT is already implicit (FWHT-based); ``lazy`` is a no-op.
        gen = as_generator(rng)
        signs = gen.choice((-1.0, 1.0), size=self.n)
        rows = gen.choice(self.n, size=self.m, replace=False)
        op = SRHTOperator(signs, rows, self.n, self.m)
        return SRHTSketch(op, family=self)

    @staticmethod
    def recommended_m(d: int, epsilon: float, delta: float,
                      constant: float = 4.0) -> int:
        """Standard guarantee ``m = Θ((d + log(n/δ)) log(d/δ) / ε²)``.

        We use the simplified ``(d log d)/ε²``-type expression adequate for
        the experiments here.
        """
        d = check_positive_int(d, "d")
        epsilon = check_epsilon(epsilon)
        delta = check_probability(delta, "delta")
        return max(1, math.ceil(
            constant * d * math.log(max(d / delta, 2.0)) / epsilon**2
        ))
