"""Sparse Johnson–Lindenstrauss (Achlioptas-style) sign sketches.

``Π`` has i.i.d. entries that are 0 with probability ``1 - q`` and
``±1/√(qm)`` with probability ``q/2`` each, so each entry has variance
``1/m``.  Unlike CountSketch/OSNAP the column sparsity is only *expected*
(``qm`` per column), which makes this family a useful contrast in the
sparsity-vs-dimension experiments: the paper's lower bounds are phrased in
terms of exact per-column sparsity, and this family sits just outside that
model.
"""

from __future__ import annotations

import math

import numpy as np
import scipy.sparse as sp

from ..utils.rng import RngLike, as_generator
from ..utils.validation import check_probability
from .base import Sketch, SketchFamily
from .kernels import CooScatterKernel

__all__ = ["SparseJL"]


class SparseJL(SketchFamily):
    """Entry-wise sparse sign sketch with density ``q``.

    Parameters
    ----------
    m, n:
        Sketch dimensions.
    q:
        Probability that an entry is nonzero; ``q = 1`` recovers the dense
        Rademacher sketch (Achlioptas), ``q = 1/3`` his classical sparse
        variant.
    """

    def __init__(self, m: int, n: int, q: float = 1.0 / 3.0):
        super().__init__(m, n)
        self._q = check_probability(q, "q", allow_one=True)

    @property
    def q(self) -> float:
        """Entry density."""
        return self._q

    @property
    def expected_column_sparsity(self) -> float:
        """Expected nonzeros per column, ``q · m``."""
        return self._q * self.m

    @property
    def name(self) -> str:
        return f"SparseJL[q={self._q:g}]"

    def _resize_params(self) -> dict:
        return {"m": self.m, "n": self.n, "q": self._q}

    def sample(self, rng: RngLike = None, lazy: bool = False) -> Sketch:
        """Sample ``Π``; the sparse path carries a matrix-free kernel.

        The dense regime (``q ≥ 0.5``) has no useful sparse structure, so
        it always materializes and ignores ``lazy``.
        """
        gen = as_generator(rng)
        scale = 1.0 / math.sqrt(self._q * self.m)
        if self._q >= 0.5:
            # Dense-ish: simpler and faster to materialize directly.
            mask = gen.random((self.m, self.n)) < self._q
            signs = gen.choice((-1.0, 1.0), size=(self.m, self.n))
            return Sketch(np.where(mask, signs * scale, 0.0), family=self)
        # Sparse path: sample the number of nonzeros, then positions.
        total = self.m * self.n
        count = gen.binomial(total, self._q)
        flat = gen.choice(total, size=count, replace=False)
        rows, cols = np.divmod(flat, self.n)
        values = gen.choice((-1.0, 1.0), size=count) * scale
        kernel = CooScatterKernel.from_triplets(
            rows, cols, values, (self.m, self.n)
        )
        matrix = None
        if not lazy:
            matrix = sp.coo_matrix(
                (values, (rows, cols)), shape=(self.m, self.n)
            ).tocsc()
        return Sketch(matrix, family=self, kernel=kernel)
