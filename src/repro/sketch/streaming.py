"""Streaming and distributed sketching.

Sketches are linear maps, which gives them two properties database
systems rely on:

* **streaming** — ``ΠA`` can be accumulated one row (or row block) of
  ``A`` at a time: a row ``a_iᵀ`` contributes ``Π[:, i] · a_iᵀ``;
* **mergeability** — shards sketched with the *same* sampled ``Π`` can
  be combined by addition: if ``A = A₁ + A₂`` (row-disjoint shards padded
  with zeros), then ``ΠA = ΠA₁ + ΠA₂``.

:class:`StreamingSketcher` wraps a sampled sketch with an accumulator
supporting ``update_rows`` / ``merge`` / ``result``, so a tall matrix can
be sketched in a single pass over its rows, or in parallel across shards
that share the sketch seed.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np
import scipy.sparse as sp

from ..utils.rng import RngLike
from ..utils.validation import check_positive_int
from .base import Sketch, SketchFamily

__all__ = ["StreamingSketcher"]


class StreamingSketcher:
    """Accumulate ``ΠA`` over row updates of a tall matrix ``A``.

    Parameters
    ----------
    family:
        The sketch family; one matrix is sampled at construction.
    columns:
        Number of columns of the matrices that will be streamed (the
        width of the accumulator).
    rng:
        Seed for the sampled sketch.  Two sketchers built from the same
        family and seed hold identical matrices and can merge.

    Example
    -------
    >>> from repro.sketch import CountSketch
    >>> left = StreamingSketcher(CountSketch(m=64, n=1000), columns=3,
    ...                          rng=7)
    >>> right = StreamingSketcher(CountSketch(m=64, n=1000), columns=3,
    ...                           rng=7)
    >>> # ... left.update_rows(...) on one shard, right on another ...
    >>> combined = left.merge(right).result()  # doctest: +SKIP
    """

    def __init__(self, family: SketchFamily, columns: int,
                 rng: RngLike = None, sketch: Optional[Sketch] = None):
        self._family = family
        self._columns = check_positive_int(columns, "columns")
        self._sketch = sketch if sketch is not None else family.sample(rng)
        self._csc = (
            self._sketch.matrix.tocsc()
            if sp.issparse(self._sketch.matrix)
            else sp.csc_matrix(np.asarray(self._sketch.matrix, dtype=float))
        )
        # Canonical form (sorted indices, no duplicates) so two sketchers
        # built from the same family and seed are structurally comparable
        # array-by-array in merge().
        self._csc.sum_duplicates()
        self._csc.sort_indices()
        self._accumulator = np.zeros((family.m, columns))
        self._rows_seen = 0

    @property
    def sketch(self) -> Sketch:
        """The underlying sampled sketch."""
        return self._sketch

    @property
    def rows_seen(self) -> int:
        """Total number of row updates applied."""
        return self._rows_seen

    def update_rows(self, row_indices: Sequence[int],
                    rows: np.ndarray) -> "StreamingSketcher":
        """Add the contribution of rows ``A[row_indices] = rows``.

        ``rows`` has shape ``(len(row_indices), columns)``.  Returns
        ``self`` for chaining.  Feeding the same row index twice *adds*
        (turnstile-update semantics).
        """
        indices = np.asarray(row_indices, dtype=int)
        rows = np.atleast_2d(np.asarray(rows, dtype=float))
        if rows.shape != (indices.size, self._columns):
            raise ValueError(
                f"rows must have shape ({indices.size}, {self._columns}), "
                f"got {rows.shape}"
            )
        if indices.size and (
            indices.min() < 0 or indices.max() >= self._family.n
        ):
            raise ValueError("row index out of range for the sketch")
        # Contribution of rows R at indices I: Π[:, I] @ R.
        self._accumulator += self._csc[:, indices] @ rows
        self._rows_seen += indices.size
        return self

    def update_matrix(self, a, start_row: int = 0) -> "StreamingSketcher":
        """Stream a whole block ``A[start_row : start_row + len(a)]``."""
        a = np.atleast_2d(np.asarray(a, dtype=float))
        indices = np.arange(start_row, start_row + a.shape[0])
        return self.update_rows(indices, a)

    def merge(self, other: "StreamingSketcher") -> "StreamingSketcher":
        """Merge another shard's accumulator into this one (in place).

        Both sketchers must have been built from the same sampled sketch
        (same family and seed); this is verified structurally.
        """
        if not isinstance(other, StreamingSketcher):
            raise TypeError("can only merge with another StreamingSketcher")
        if type(self._family) is not type(other._family):
            raise ValueError(
                f"cannot merge shards from different sketch families: "
                f"{type(self._family).__name__} vs "
                f"{type(other._family).__name__}"
            )
        if self._csc.shape != other._csc.shape:
            raise ValueError(
                f"cannot merge shards with different sketch shapes: "
                f"{self._csc.shape} vs {other._csc.shape}"
            )
        if self._accumulator.shape != other._accumulator.shape:
            raise ValueError("shards have different accumulator shapes")
        # Structural comparison of the canonicalized CSC arrays: cheap,
        # exact, and — unlike a sparse `!=` — free of scipy's
        # SparseEfficiencyWarning and its O(nnz) intermediate matrix.
        same = (
            np.array_equal(self._csc.indptr, other._csc.indptr)
            and np.array_equal(self._csc.indices, other._csc.indices)
            and np.array_equal(self._csc.data, other._csc.data)
        )
        if not same:
            raise ValueError(
                "shards were sketched with different matrices; build both "
                "from the same family and seed"
            )
        self._accumulator += other._accumulator
        self._rows_seen += other._rows_seen
        return self

    def result(self) -> np.ndarray:
        """The accumulated ``ΠA`` so far (a copy)."""
        return self._accumulator.copy()
