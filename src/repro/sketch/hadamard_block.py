"""The Remark 10 block-Hadamard construction.

The paper's Remark 10 exhibits a matrix certifying that the ``d²`` lower
bound of Theorem 9 is tight: let ``H`` be a Hadamard matrix of order
``1/(8ε)`` and let ``Π`` be the horizontal concatenation of copies of an
``m × m`` block-diagonal matrix whose diagonal blocks are ``√(8ε) H``, with
``m = O(d²)``.  Every column then has exactly ``1/(8ε)`` entries of
absolute value ``√(8ε)`` (unit column norm), and ``Π`` is a
``(0, δ)``-subspace-embedding for ``U ~ D_1`` for constant ``δ``.

The construction is deterministic; we expose it as a (degenerate)
:class:`SketchFamily` whose :meth:`sample` optionally randomizes the column
order, so it plugs into the same testing harness as the random families.
Experiment E8 runs it above and below ``m ≍ d²`` to exhibit the tightness
crossover.
"""

from __future__ import annotations

import math
from typing import Optional

import scipy.sparse as sp

from ..linalg.hadamard import hadamard_matrix
from ..utils.rng import RngLike, as_generator
from ..utils.validation import check_positive_int, check_power_of_two
from .base import Sketch, SketchFamily

__all__ = ["HadamardBlockSketch", "block_hadamard_matrix"]


def block_hadamard_matrix(m: int, n: int, block_order: int) -> sp.csc_matrix:
    """The deterministic Remark 10 matrix.

    ``m`` must be a multiple of ``block_order`` (a power of two).  The
    ``m × m`` block-diagonal matrix with diagonal blocks
    ``H / √block_order`` (unit-norm columns; the paper's ``√(8ε) H`` with
    ``block_order = 1/(8ε)``) is horizontally tiled to ``n`` columns; a
    final partial copy is truncated column-wise if ``n`` is not a multiple
    of ``m``.
    """
    block_order = check_power_of_two(block_order, "block_order")
    m = check_positive_int(m, "m")
    n = check_positive_int(n, "n")
    if m % block_order != 0:
        raise ValueError(
            f"m ({m}) must be a multiple of block_order ({block_order})"
        )
    h = hadamard_matrix(block_order) / math.sqrt(block_order)
    blocks_per_copy = m // block_order
    one_copy = sp.block_diag([sp.csc_matrix(h)] * blocks_per_copy,
                             format="csc")
    copies = []
    remaining = n
    while remaining > 0:
        take = min(remaining, m)
        copies.append(one_copy[:, :take])
        remaining -= take
    return sp.hstack(copies, format="csc")


class HadamardBlockSketch(SketchFamily):
    """Remark 10 family: deterministic block-Hadamard columns.

    Parameters
    ----------
    m, n:
        Sketch dimensions; ``m`` must be a multiple of ``block_order``.
    block_order:
        Hadamard block size (power of two); the column sparsity.  For the
        paper's setting, ``block_order = 1/(8ε)``.
    permute:
        When True (default), :meth:`sample` applies a random column
        permutation and random column signs; the embedding guarantee is
        invariant under both, and the randomization avoids accidental
        alignment with structured test subspaces.
    """

    def __init__(self, m: int, n: int, block_order: int,
                 permute: bool = True):
        block_order = check_power_of_two(block_order, "block_order")
        if m % block_order != 0:
            raise ValueError(
                f"m ({m}) must be a multiple of block_order ({block_order})"
            )
        super().__init__(m, n)
        self._block_order = block_order
        self._permute = bool(permute)
        self._base: Optional[sp.csc_matrix] = None

    @property
    def block_order(self) -> int:
        """Hadamard block size (= column sparsity)."""
        return self._block_order

    @property
    def name(self) -> str:
        return f"HadamardBlock[b={self._block_order}]"

    def _resize_params(self) -> dict:
        return {
            "m": self.m,
            "n": self.n,
            "block_order": self._block_order,
            "permute": self._permute,
        }

    def with_m(self, m: int) -> "HadamardBlockSketch":
        """Copy with ``m`` rounded up to a multiple of the block order."""
        b = self._block_order
        m = max(m, b)
        if m % b != 0:
            m += b - m % b
        params = self._resize_params()
        params["m"] = m
        return HadamardBlockSketch(**params)

    def _base_matrix(self) -> sp.csc_matrix:
        if self._base is None:
            self._base = block_hadamard_matrix(
                self.m, self.n, self._block_order
            )
        return self._base

    def sample(self, rng: RngLike = None, lazy: bool = False) -> Sketch:
        # Deterministic base matrix is cached on the family; ``lazy`` is a
        # no-op beyond interface uniformity.
        matrix = self._base_matrix()
        if self._permute:
            gen = as_generator(rng)
            perm = gen.permutation(self.n)
            signs = gen.choice((-1.0, 1.0), size=self.n)
            matrix = (matrix[:, perm] @ sp.diags(signs)).tocsc()
        return Sketch(matrix, family=self)

    @staticmethod
    def for_epsilon(d: int, epsilon: float, n: int,
                    m_factor: float = 1.0) -> "HadamardBlockSketch":
        """Family with the paper's parameters: block order ≈ ``1/(8ε)``.

        ``m_factor`` scales the target dimension relative to ``d²`` (the
        Remark 10 guarantee holds at ``m = O(d²)``; E8 sweeps the factor to
        find the crossover).  The block order is rounded up to a power of
        two.
        """
        check_positive_int(d, "d")
        if not (0 < epsilon < 1):
            raise ValueError(f"epsilon must lie in (0, 1), got {epsilon}")
        order = 1
        while order < 1.0 / (8.0 * epsilon):
            order *= 2
        m = max(order, int(math.ceil(m_factor * d * d)))
        if m % order != 0:
            m += order - m % order
        return HadamardBlockSketch(m=m, n=n, block_order=order)
