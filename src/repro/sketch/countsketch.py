"""CountSketch: the extreme sparse OSE with one nonzero per column.

Each column of ``Π`` carries a single ±1 entry in a uniformly random row.
Applying it to ``A`` costs ``O(nnz(A))`` — the fastest possible — at the
price of a target dimension ``m = Θ(d²/(δε²))`` (Clarkson–Woodruff).  The
paper's Theorem 8 shows this quadratic ``m`` is optimal: our experiments E1
and E2 measure the empirical threshold and its scaling exponents.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from ..linalg.sparse_ops import from_triplets
from ..observe.counters import add_count
from ..utils.rng import RngLike, as_generator
from ..utils.validation import check_epsilon, check_probability
from .base import Sketch, SketchFamily
from .batched import BatchedColumnScatter
from .kernels import ColumnScatterKernel

__all__ = ["CountSketch"]


class CountSketch(SketchFamily):
    """The Clarkson–Woodruff CountSketch family (column sparsity ``s = 1``).

    Parameters
    ----------
    m:
        Target dimension (number of rows, i.e. hash buckets).
    n:
        Ambient dimension.
    """

    #: Column sparsity of every sampled sketch.
    column_sparsity = 1

    def sample(self, rng: RngLike = None, lazy: bool = False) -> Sketch:
        """Sample ``Π``: per column one ±1 entry in a uniform row.

        The sketch carries a matrix-free :class:`ColumnScatterKernel`
        (its one-nonzero-per-column layout is already canonical CSC);
        ``lazy=True`` skips assembling the scipy matrix entirely.
        """
        gen = as_generator(rng)
        rows = gen.integers(0, self.m, size=self.n)
        signs = gen.choice((-1.0, 1.0), size=self.n)
        kernel = ColumnScatterKernel(
            rows[np.newaxis, :], signs[np.newaxis, :], (self.m, self.n)
        )
        matrix = None
        if not lazy:
            cols = np.arange(self.n)
            matrix = from_triplets(rows, cols, signs, (self.m, self.n))
        return Sketch(matrix, family=self, kernel=kernel)

    def sample_trial_batch(
        self, seeds: Sequence[np.random.SeedSequence],
    ) -> Optional[BatchedColumnScatter]:
        """Per-trial ``(1, n)`` hash rows and signs, one sub-stream per
        trial — each entry consumes its seed exactly like :meth:`sample`.
        The RNG outputs are handed to the batch kernel as-is (reshaped
        views, never copied into a stacked buffer)."""
        if not seeds:
            return None
        rows = []
        signs = []
        for seed in seeds:
            gen = as_generator(seed)
            rows.append(gen.integers(0, self.m, size=self.n)[np.newaxis, :])
            signs.append(gen.choice((-1.0, 1.0), size=self.n)[np.newaxis, :])
        add_count("sketch_samples", len(seeds))
        return BatchedColumnScatter(rows, signs, 1.0, (self.m, self.n))

    @staticmethod
    def recommended_m(d: int, epsilon: float, delta: float,
                      constant: float = 2.0) -> int:
        """Upper-bound target dimension ``m = Θ(d²/(δε²))``.

        ``constant`` is the leading constant; the classical analysis gives
        ``m ≥ c · d²/(δ ε²)`` for a modest ``c`` (2 suffices for the
        second-moment argument).
        """
        epsilon = check_epsilon(epsilon)
        delta = check_probability(delta, "delta")
        return max(1, math.ceil(constant * d * d / (delta * epsilon**2)))

    @staticmethod
    def lower_bound_m(d: int, epsilon: float, delta: float,
                      constant: float = 1.0) -> float:
        """The paper's Theorem 8 lower bound ``m = Ω(d²/(ε²δ))``."""
        epsilon = check_epsilon(epsilon)
        delta = check_probability(delta, "delta")
        return constant * d * d / (epsilon**2 * delta)
