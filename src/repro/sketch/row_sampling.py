"""Uniform row sampling — a *non*-oblivious baseline.

``Π`` selects ``m`` rows uniformly (with rescaling ``√(n/m)``).  It is a
subspace embedding only for incoherent subspaces; on the paper's hard
instances (whose mass sits on few coordinates) it fails catastrophically no
matter how large ``m`` is, illustrating why obliviousness plus sparsity is
the interesting regime.  Used as a control in experiments E1 and E11.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np
import scipy.sparse as sp

from ..observe.counters import add_count
from ..utils.rng import RngLike, as_generator
from .base import Sketch, SketchFamily
from .batched import BatchedRowGather
from .kernels import RowGatherKernel

__all__ = ["RowSampling"]


class RowSampling(SketchFamily):
    """Uniform row-sampling family with ``√(n/m)`` rescaling."""

    def __init__(self, m: int, n: int):
        super().__init__(m, n)
        if m > n:
            raise ValueError(f"cannot sample m={m} rows from n={n}")

    def sample(self, rng: RngLike = None, lazy: bool = False) -> Sketch:
        """Sample ``Π``; application is a pure row gather (kernel-backed)."""
        gen = as_generator(rng)
        rows = gen.choice(self.n, size=self.m, replace=False)
        scale = math.sqrt(self.n / self.m)
        values = np.full(self.m, scale)
        kernel = RowGatherKernel(rows, values, (self.m, self.n))
        matrix = None
        if not lazy:
            matrix = sp.csc_matrix(
                (values, (np.arange(self.m), rows)),
                shape=(self.m, self.n),
            )
        return Sketch(matrix, family=self, kernel=kernel)

    def sample_trial_batch(
        self, seeds: Sequence[np.random.SeedSequence],
    ) -> Optional[BatchedRowGather]:
        """Stacked ``(B, m)`` selected rows, one sub-stream per trial."""
        if not seeds:
            return None
        batch = len(seeds)
        cols = np.empty((batch, self.m), dtype=np.int64)
        for index, seed in enumerate(seeds):
            gen = as_generator(seed)
            cols[index] = gen.choice(self.n, size=self.m, replace=False)
        scale = math.sqrt(self.n / self.m)
        values = np.full((batch, self.m), scale)
        add_count("sketch_samples", batch)
        return BatchedRowGather(cols, values, (self.m, self.n))

    def with_m(self, m: int) -> "RowSampling":
        return RowSampling(m=min(m, self.n), n=self.n)
