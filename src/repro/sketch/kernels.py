"""Matrix-free application kernels for structured sparse sketches.

Every structured sparse family (CountSketch, OSNAP, sparse-JL, row
sampling, leverage sampling) is fully described by a small index/value
representation — e.g. CountSketch by one (hash row, sign) pair per column.
Applying ``Π`` to a dense matrix is then a pure index scatter or gather:
the ``O(nnz(A)·s)`` application the paper's introduction quotes as the
whole point of sparse OSEs.  The kernels here perform that application
directly from the representation, so the Monte-Carlo trial loop never has
to build (and sort) a scipy matrix per trial.

Bit-identity contract
---------------------
Every kernel's :meth:`~ApplyKernel.apply` produces output **bit-identical**
(``np.array_equal``, not ``allclose``) to ``self.materialize() @ a``, and
:meth:`~ApplyKernel.materialize` produces the same canonical CSC matrix as
the eager construction in the corresponding family.  This is what lets
:func:`repro.core.tester.failure_estimate` switch to the kernel path
without perturbing any recorded experiment number: the accumulation order
of each scatter mirrors scipy's CSC matvec loop (columns in ascending
order, entries within a column in ascending row order), which is why the
triplet arrays below are required to be stored in canonical CSC order.

``tests/test_apply_kernels.py`` pins the contract across shapes, dtypes,
memory layouts and hard-instance draws.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from ..observe.counters import add_count

#: A ``(m, n)`` sketch dimension pair (anything int-pair-shaped accepted).
ShapeLike = Tuple[int, int]

__all__ = [
    "ApplyKernel",
    "ColumnScatterKernel",
    "RowGatherKernel",
    "CooScatterKernel",
    "SCATTER_MAX_COLUMNS",
    "SCATTER_MAX_REPS",
]

#: Widest right-hand side the bincount scatter handles itself.  Beyond
#: this, a compiled sparse matmul on the (cheaply, canonically) assembled
#: CSC matrix wins, so :meth:`ApplyKernel.apply` switches over — the
#: assembly is O(nnz) index bookkeeping with none of the COO sort that
#: makes per-trial materialization expensive.
SCATTER_MAX_COLUMNS = 4

#: Largest ``reps = 1/β`` for which the direct hard-instance scatter is
#: used.  NumPy reduces axes of ≤ 8 elements with a simple sequential
#: loop, so the scatter (which is sequential by construction) matches the
#: materialized path bit-for-bit; above that, pairwise summation could
#: reorder the additions, so we fall back to the gather path that repeats
#: the materialized arithmetic exactly.
SCATTER_MAX_REPS = 8


def _as_float64(a: Any) -> np.ndarray:
    """``a`` as float64, matching the upcast scipy applies before matvecs."""
    return np.asarray(a, dtype=np.float64)


class ApplyKernel(abc.ABC):
    """Matrix-free representation of a sampled sparse sketch ``Π``."""

    def __init__(self, shape: ShapeLike) -> None:
        m, n = shape
        if m <= 0 or n <= 0:
            raise ValueError(f"kernel shape must be positive, got {shape}")
        self._shape: Tuple[int, int] = (int(m), int(n))
        self._csc: Optional[sp.csc_matrix] = None

    @property
    def shape(self) -> Tuple[int, int]:
        return self._shape

    @property
    def m(self) -> int:
        """Target (row) dimension."""
        return self._shape[0]

    @property
    def n(self) -> int:
        """Ambient (column) dimension."""
        return self._shape[1]

    @abc.abstractmethod
    def apply(self, a: np.ndarray) -> np.ndarray:
        """``Πa`` for a dense 1-D or 2-D ``a``, bit-identical to CSC matmul."""

    @abc.abstractmethod
    def _materialize(self) -> sp.csc_matrix:
        """Assemble the canonical CSC matrix (sorted indices, no duplicates)."""

    @abc.abstractmethod
    def per_column_nnz(self) -> np.ndarray:
        """Stored entries per column — the cost model's per-column ``s``."""

    @abc.abstractmethod
    def column_gather(self, idx: Any) -> np.ndarray:
        """Dense ``Π[:, idx]``, exactly as ``csc[:, idx].toarray()``."""

    @abc.abstractmethod
    def representation(self) -> Dict[str, np.ndarray]:
        """The index/value arrays defining ``Π``, keyed by role.

        The public accessor for the sampled representation — what the
        batched trial engine stacks across draws and what benchmarks
        introspect, without reaching into private attributes.  Keys by
        kernel type: ``{"rows", "values"}`` for column scatters,
        ``{"cols", "values"}`` for row gathers, and
        ``{"rows", "cols", "values"}`` for triplet kernels.  The arrays
        are the kernel's own (not copies); treat them as read-only.
        """

    def materialize(self) -> sp.csc_matrix:
        """The explicit matrix (cached after the first call)."""
        if self._csc is None:
            add_count("kernel_materializations")
            self._csc = self._materialize()
        return self._csc

    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.per_column_nnz().sum())

    def max_column_nnz(self) -> int:
        """Maximum entries in any column — the paper's ``s``."""
        per_column = self.per_column_nnz()
        return int(per_column.max()) if per_column.size else 0

    def sketched_basis(self, draw: Any) -> np.ndarray:
        """``ΠU`` for a structured hard-instance draw.

        Default: gather the ``reps·d`` selected columns of ``Π`` and
        combine them with the draw's own (materialized-path) arithmetic,
        which keeps the result bit-identical while skipping the per-trial
        matrix build.  Subclasses override with direct scatters when they
        can preserve the accumulation order.
        """
        return draw.combine_sketched_columns(self.column_gather(draw.rows))


class ColumnScatterKernel(ApplyKernel):
    """Exactly ``s`` nonzeros per column (CountSketch ``s = 1``, OSNAP).

    Parameters
    ----------
    rows:
        ``(s, n)`` integer array; ``rows[:, j]`` are the nonzero rows of
        column ``j``, **strictly increasing** down the axis (canonical CSC
        order; the families sort once at sampling time).
    values:
        ``(s, n)`` float array of the matching entries.
    shape:
        The sketch dimensions ``(m, n)``.
    """

    def __init__(self, rows: np.ndarray, values: np.ndarray,
                 shape: ShapeLike) -> None:
        super().__init__(shape)
        rows = np.asarray(rows)
        values = np.asarray(values, dtype=np.float64)
        if rows.ndim != 2 or rows.shape != values.shape:
            raise ValueError(
                f"rows and values must share a (s, n) shape, got "
                f"{rows.shape} and {values.shape}"
            )
        if rows.shape[1] != self.n:
            raise ValueError(
                f"expected {self.n} columns, got {rows.shape[1]}"
            )
        if rows.size and (rows.min() < 0 or rows.max() >= self.m):
            raise ValueError("row index out of range")
        self._rows = rows
        self._values = values
        self._s = rows.shape[0]

    @property
    def s(self) -> int:
        """Exact column sparsity."""
        return self._s

    def representation(self) -> Dict[str, np.ndarray]:
        return {"rows": self._rows, "values": self._values}

    def apply(self, a: np.ndarray) -> np.ndarray:
        a = np.asarray(a)
        if a.ndim == 1:
            # Flat order (column-major over j, row order within a column)
            # replays the CSC matvec accumulation sequence exactly.
            weights = self._values * _as_float64(a)
            return np.bincount(
                self._rows.T.ravel(), weights=weights.T.ravel(),
                minlength=self.m,
            )
        if a.shape[1] <= SCATTER_MAX_COLUMNS:
            # One 1-D scatter per output column: scipy's csc @ dense also
            # processes right-hand-side columns independently, so this is
            # the bit-identical narrow path.
            af = _as_float64(a)
            width = af.shape[1]
            flat_rows = self._rows.T.ravel()
            out = np.empty((self.m, width))
            for j in range(width):
                weights = self._values * af[:, j]
                out[:, j] = np.bincount(
                    flat_rows, weights=weights.T.ravel(), minlength=self.m
                )
            return out
        return self.materialize() @ a

    def _materialize(self) -> sp.csc_matrix:
        indptr = np.arange(0, self._s * self.n + 1, self._s)
        return sp.csc_matrix(
            (self._values.T.ravel(), self._rows.T.ravel(), indptr),
            shape=self.shape,
        )

    def per_column_nnz(self) -> np.ndarray:
        return np.full(self.n, self._s, dtype=np.int64)

    def column_gather(self, idx: Any) -> np.ndarray:
        idx = np.asarray(idx, dtype=np.int64)
        # Fortran order matches ``csc[:, idx].toarray()`` — downstream
        # reductions are layout-sensitive at the ULP level, so bit-identity
        # requires matching the memory order, not just the values.
        sub = np.zeros((self.m, idx.size), order="F")
        # Rows are distinct within a column, so plain assignment suffices.
        sub[self._rows[:, idx], np.arange(idx.size)] = self._values[:, idx]
        return sub

    def sketched_basis(self, draw: Any) -> np.ndarray:
        if draw.reps > SCATTER_MAX_REPS:
            return super().sketched_basis(draw)
        # Direct scatter into the (m, d) output: entry t of selected
        # column j lands in output column j // reps.  Flattening j-major
        # (entries within a column inner) replays the materialized path's
        # accumulation order — sequential over the reps axis — so the
        # result is bit-identical for reps ≤ SCATTER_MAX_REPS.
        weights = draw.signs * (1.0 / np.sqrt(draw.reps))
        sel_rows = self._rows[:, draw.rows]
        sel_vals = self._values[:, draw.rows] * weights
        out_cols = np.repeat(np.arange(draw.d), draw.reps)
        out = np.zeros((self.m, draw.d))
        np.add.at(
            out,
            (sel_rows.T.ravel(), np.repeat(out_cols, self._s)),
            sel_vals.T.ravel(),
        )
        return out


class RowGatherKernel(ApplyKernel):
    """Exactly one nonzero per *row* (row sampling, leverage sampling).

    Output row ``i`` is ``values[i] · a[cols[i]]`` — a pure gather with no
    accumulation at all, so bit-identity with the materialized product is
    structural.

    Parameters
    ----------
    cols:
        ``(m,)`` integer array: the selected input row per output row
        (repeats allowed — leverage sampling draws with replacement).
    values:
        ``(m,)`` float array of rescaling coefficients.
    shape:
        The sketch dimensions ``(m, n)``.
    """

    def __init__(self, cols: np.ndarray, values: np.ndarray,
                 shape: ShapeLike) -> None:
        super().__init__(shape)
        cols = np.asarray(cols)
        values = np.asarray(values, dtype=np.float64)
        if cols.shape != (self.m,) or values.shape != (self.m,):
            raise ValueError(
                f"cols and values must have shape ({self.m},), got "
                f"{cols.shape} and {values.shape}"
            )
        if cols.size and (cols.min() < 0 or cols.max() >= self.n):
            raise ValueError("column index out of range")
        self._cols = cols
        self._values = values

    def representation(self) -> Dict[str, np.ndarray]:
        return {"cols": self._cols, "values": self._values}

    def apply(self, a: np.ndarray) -> np.ndarray:
        af = _as_float64(a)
        if af.ndim == 1:
            return self._values * af[self._cols]
        return self._values[:, None] * af[self._cols]

    def _materialize(self) -> sp.csc_matrix:
        # Stable sort by column keeps row indices ascending within each
        # column: directly the canonical CSC layout.
        order = np.argsort(self._cols, kind="stable")
        counts = np.bincount(self._cols, minlength=self.n)
        indptr = np.concatenate(([0], np.cumsum(counts)))
        return sp.csc_matrix(
            (self._values[order], order, indptr), shape=self.shape
        )

    def per_column_nnz(self) -> np.ndarray:
        return np.bincount(self._cols, minlength=self.n)

    def column_gather(self, idx: Any) -> np.ndarray:
        idx = np.asarray(idx, dtype=np.int64)
        # F-order to match ``csc[:, idx].toarray()`` (see ColumnScatterKernel).
        return np.asfortranarray(np.where(
            self._cols[:, None] == idx[None, :], self._values[:, None], 0.0
        ))


class CooScatterKernel(ApplyKernel):
    """General triplet kernel (sparse-JL's Bernoulli entry pattern).

    Triplets must be in canonical CSC order — ascending ``(col, row)``
    with no duplicate coordinates; :meth:`from_triplets` sorts arbitrary
    (duplicate-free) input once at construction time.
    """

    def __init__(self, rows: np.ndarray, cols: np.ndarray,
                 values: np.ndarray, shape: ShapeLike) -> None:
        super().__init__(shape)
        rows = np.asarray(rows)
        cols = np.asarray(cols)
        values = np.asarray(values, dtype=np.float64)
        if not (rows.ndim == 1 and rows.shape == cols.shape == values.shape):
            raise ValueError("rows, cols and values must be equal-length 1-D")
        if rows.size:
            if rows.min() < 0 or rows.max() >= self.m:
                raise ValueError("row index out of range")
            if cols.min() < 0 or cols.max() >= self.n:
                raise ValueError("column index out of range")
            keys = cols.astype(np.int64) * self.m + rows
            if np.any(np.diff(keys) <= 0):
                raise ValueError(
                    "triplets must be in canonical CSC order without "
                    "duplicates (see CooScatterKernel.from_triplets)"
                )
        self._rows = rows
        self._cols = cols
        self._values = values

    @classmethod
    def from_triplets(cls, rows: Any, cols: Any, values: Any,
                      shape: ShapeLike) -> "CooScatterKernel":
        """Canonicalize duplicate-free triplets and build the kernel."""
        rows = np.asarray(rows)
        cols = np.asarray(cols)
        values = np.asarray(values, dtype=np.float64)
        order = np.argsort(cols.astype(np.int64) * shape[0] + rows)
        return cls(rows[order], cols[order], values[order], shape)

    def representation(self) -> Dict[str, np.ndarray]:
        return {"rows": self._rows, "cols": self._cols,
                "values": self._values}

    def apply(self, a: np.ndarray) -> np.ndarray:
        a = np.asarray(a)
        if a.ndim == 1:
            af = _as_float64(a)
            return np.bincount(
                self._rows,
                weights=self._values * af[self._cols],
                minlength=self.m,
            )
        if a.shape[1] <= SCATTER_MAX_COLUMNS:
            # One 1-D scatter per output column (see ColumnScatterKernel).
            af = _as_float64(a)
            width = af.shape[1]
            gathered = af[self._cols]
            out = np.empty((self.m, width))
            for j in range(width):
                out[:, j] = np.bincount(
                    self._rows, weights=self._values * gathered[:, j],
                    minlength=self.m,
                )
            return out
        return self.materialize() @ a

    def _materialize(self) -> sp.csc_matrix:
        counts = np.bincount(self._cols, minlength=self.n)
        indptr = np.concatenate(([0], np.cumsum(counts)))
        return sp.csc_matrix(
            (self._values, self._rows, indptr), shape=self.shape
        )

    def per_column_nnz(self) -> np.ndarray:
        return np.bincount(self._cols, minlength=self.n)

    def column_gather(self, idx: Any) -> np.ndarray:
        idx = np.asarray(idx, dtype=np.int64)
        # F-order to match ``csc[:, idx].toarray()`` (see ColumnScatterKernel).
        sub = np.zeros((self.m, idx.size), order="F")
        starts = np.searchsorted(self._cols, idx, side="left")
        ends = np.searchsorted(self._cols, idx, side="right")
        for j, (lo, hi) in enumerate(zip(starts, ends)):
            sub[self._rows[lo:hi], j] = self._values[lo:hi]
        return sub
