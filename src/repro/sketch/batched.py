"""Batched trial kernels: ``B`` sketch draws applied in one vectorized call.

The Monte-Carlo loop in :mod:`repro.core.tester` pays per-trial Python
overhead for every draw: one sampler call, one scatter, one ``(m, d)`` SVD.
This module fuses ``B`` trials.  A :class:`BatchedTrialKernel` holds the
stacked index/value representations of ``B`` independently sampled sketches
(e.g. ``(B, s, n)`` hash rows and signs for the column-scatter families),
applies all of them to structured hard-instance draws with a single
batch-axis ``np.bincount`` scatter (or mask gather), and reduces the
distortions with one gufunc-batched :func:`np.linalg.svd` over the stacked
products.

Row compaction
--------------
``ΠU`` for a structured ``D_β`` draw has at most ``s·reps·d`` potentially
nonzero rows — typically far fewer than ``m`` — and removing zero rows
changes no singular value.  Every ``sketched_bases`` implementation
therefore returns *row-compacted* stacks ``(B, k_pad, d)`` with
``k_pad ≤ m``, which is what makes the batched SVD cheaper than ``B``
full-height ones.  The true row count still decides the ``m < d``
annihilation rule; see
:func:`repro.linalg.distortion.distortions_of_products`.

Determinism contract
--------------------
The batch path owns its accumulation order (it may differ from the serial
kernels at the ULP level, e.g. for ``reps > SCATTER_MAX_REPS`` where the
serial path switches to the gather arithmetic), but it is *canonical*:
a fixed seed gives bit-identical results across serial/parallel execution
and cold/warm cache, because chunk decomposition is pinned to the batch
size and every data-dependent choice (``k_pad``, group order) is a pure
function of the chunk's draws.  For the column-scatter families the
per-trial accumulation order actually coincides with the serial scatter
(entries are inserted selected-column-major with the ``s`` axis inner, and
distinct within-column rows mean no bin ever receives two entries from
the same column), so those products are bit-identical to the serial
kernels' on the surviving rows — ``tests/test_batched_trials.py`` pins
this.

Samplers
--------
Families override :meth:`repro.sketch.base.SketchFamily.sample_trial_batch`
to build these kernels with *stream-faithful* vectorized sampling: the
per-trial sub-streams (one spawned ``SeedSequence`` per trial) consume
exactly the same variates as the serial samplers, so ``trial_kernel(i)``
reconstructs the very kernel ``sample(seeds[i], lazy=True)`` would have
produced.  Families whose draws are kernel-less (dense Gaussian, SRHT,
dense-regime sparse-JL) fall back to :class:`StackedKernelBatch` or to the
serial path entirely.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..linalg.distortion import distortion_of_product, distortions_of_products
from ..observe.counters import add_count
from .kernels import (
    ApplyKernel,
    ColumnScatterKernel,
    RowGatherKernel,
    ShapeLike,
)

__all__ = [
    "BatchedTrialKernel",
    "BatchedColumnScatter",
    "BatchedRowGather",
    "StackedKernelBatch",
    "stacked_from_family",
]

#: Soft cap on the boolean gather mask (batch × m × reps·d elements) built
#: by :class:`BatchedRowGather`; larger groups are processed in batch-axis
#: slices.  Purely a memory knob — the slice boundaries are a function of
#: the group shape alone, so results are unaffected.
_GATHER_MASK_MAX_ELEMS = 1 << 27


def _uniform_group(draws: Sequence[Any]) -> Tuple[int, int, np.ndarray,
                                                  np.ndarray]:
    """Validate a uniform ``(reps, d)`` group and stack its support arrays."""
    reps = int(draws[0].reps)
    d = int(draws[0].d)
    for draw in draws[1:]:
        if int(draw.reps) != reps or int(draw.d) != d:
            raise ValueError(
                "sketched_bases needs draws with uniform (reps, d); "
                "group mixed draws via BatchedTrialKernel.distortions"
            )
    drows = np.stack([np.asarray(draw.rows, dtype=np.int64)
                      for draw in draws])
    dsigns = np.stack([np.asarray(draw.signs, dtype=np.float64)
                       for draw in draws])
    return reps, d, drows, dsigns


def _compact_rows(products: np.ndarray, d: int) -> np.ndarray:
    """Drop all-zero rows from a ``(B, m, d)`` stack, padding to a common
    height ``k_pad = min(m, max(d, max nonzero rows per trial))``.

    Surviving rows keep their relative order (stable partition), so the
    compacted products equal the originals with zero rows deleted.
    """
    batch, m, _ = products.shape
    if m <= d:
        return products
    hit = products.any(axis=2)
    counts = hit.sum(axis=1)
    k_pad = int(min(m, max(d, counts.max() if batch else 0)))
    if k_pad >= m:
        return products
    order = np.argsort(~hit, axis=1, kind="stable")[:, :k_pad]
    return np.take_along_axis(products, order[:, :, None], axis=1)


class BatchedTrialKernel(abc.ABC):
    """Stacked matrix-free representation of ``B`` sampled sketches."""

    def __init__(self, batch: int, shape: ShapeLike) -> None:
        m, n = shape
        if batch <= 0:
            raise ValueError(f"batch must be positive, got {batch}")
        if m <= 0 or n <= 0:
            raise ValueError(f"kernel shape must be positive, got {shape}")
        self._batch = int(batch)
        self._shape: Tuple[int, int] = (int(m), int(n))

    @property
    def batch(self) -> int:
        """Number of stacked sketch draws ``B``."""
        return self._batch

    @property
    def shape(self) -> Tuple[int, int]:
        """Common ``(m, n)`` shape of every stacked sketch."""
        return self._shape

    @property
    def m(self) -> int:
        """Target (row) dimension."""
        return self._shape[0]

    @property
    def n(self) -> int:
        """Ambient (column) dimension."""
        return self._shape[1]

    @abc.abstractmethod
    def sketched_bases(self, draws: Sequence[Any],
                       indices: Optional[Sequence[int]] = None) -> np.ndarray:
        """Row-compacted products ``Π_i U_i`` for a uniform-``(reps, d)``
        group of structured draws, stacked as ``(len(draws), k_pad, d)``.

        ``indices[i]`` names the batch slot whose sketch applies to
        ``draws[i]`` (all slots in order when omitted).  Mixed-``reps``
        draws — e.g. from a :class:`~repro.hardinstances.mixtures.\
MixtureInstance` — must go through :meth:`distortions`, which groups them.
        """

    @abc.abstractmethod
    def trial_kernel(self, index: int) -> ApplyKernel:
        """The per-trial :class:`ApplyKernel` for batch slot ``index``,
        identical to what the family's serial ``sample(..., lazy=True)``
        would have attached at the same sub-stream."""

    def distortions(self, draws: Sequence[Any]) -> np.ndarray:
        """Per-trial distortions for one draw per batch slot.

        Groups the draws by ``(reps, d)`` (mixture components differ),
        runs one vectorized ``sketched_bases`` + batched SVD per group in
        deterministic (sorted-key) order, and scatters the results back
        into trial order.  Unstructured draws fall back to the per-trial
        kernel apply, bit-identical to the serial path.
        """
        if len(draws) != self._batch:
            raise ValueError(
                f"expected {self._batch} draws, got {len(draws)}"
            )
        out = np.empty(len(draws))
        groups: Dict[Tuple[int, int], List[int]] = {}
        for index, draw in enumerate(draws):
            if getattr(draw, "structured", False):
                key = (int(draw.reps), int(draw.d))
                groups.setdefault(key, []).append(index)
            else:
                product = self.trial_kernel(index).apply(
                    np.asarray(draw.u, dtype=np.float64)
                )
                out[index] = distortion_of_product(product)
        for key in sorted(groups):
            idx = groups[key]
            products = self.sketched_bases([draws[i] for i in idx],
                                           indices=idx)
            out[idx] = distortions_of_products(products, rows=self.m)
        add_count("batched_kernel_applies", len(draws))
        return out

    def _resolve_indices(self, draws: Sequence[Any],
                         indices: Optional[Sequence[int]]) -> np.ndarray:
        if indices is None:
            if len(draws) != self._batch:
                raise ValueError(
                    f"expected {self._batch} draws (or explicit indices), "
                    f"got {len(draws)}"
                )
            return np.arange(self._batch)
        idx = np.asarray(indices, dtype=np.int64)
        if idx.ndim != 1 or idx.size != len(draws):
            raise ValueError("indices must be 1-D with one entry per draw")
        if idx.size and (idx.min() < 0 or idx.max() >= self._batch):
            raise ValueError("batch index out of range")
        return idx

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(batch={self._batch}, "
                f"shape={self._shape})")


class BatchedColumnScatter(BatchedTrialKernel):
    """``B`` stacked column-scatter sketches (CountSketch, OSNAP).

    Parameters
    ----------
    rows:
        ``B`` integer arrays of shape ``(s, n)`` (a sequence, or an
        equivalent stacked ``(B, s, n)`` array): ``rows[b][:, j]`` are the
        nonzero rows of column ``j`` of sketch ``b``, in *drawn* (not
        sorted) order — the batched scatter does not need canonical order,
        and keeping the raw draw lets :meth:`trial_kernel` replay the
        serial sort exactly.  Rows must be distinct within each column
        (the families guarantee this), which is what makes the scatter
        order canonical.  Per-trial arrays are stored as given — the
        samplers hand over the RNG output without stacking, because a
        stacked ``(B, s, n)`` copy costs more than the whole scatter.
    signs:
        ``B`` matching ``(s, n)`` float arrays of Rademacher signs.
    scale:
        Common entry magnitude (``1/√s``); entries are ``signs · scale``.
    shape:
        The per-sketch dimensions ``(m, n)``.
    """

    def __init__(self, rows: Sequence[np.ndarray],
                 signs: Sequence[np.ndarray], scale: float,
                 shape: ShapeLike) -> None:
        rows = [np.asarray(trial) for trial in rows]
        signs = [np.asarray(trial, dtype=np.float64) for trial in signs]
        super().__init__(len(rows), shape)
        if len(signs) != len(rows):
            raise ValueError(
                f"got {len(rows)} row arrays but {len(signs)} sign arrays"
            )
        first = rows[0].shape
        for trial_rows, trial_signs in zip(rows, signs):
            if (trial_rows.ndim != 2 or trial_rows.shape != first
                    or trial_signs.shape != first):
                raise ValueError(
                    f"every trial needs rows and signs of one (s, n) "
                    f"shape, got {trial_rows.shape} and {trial_signs.shape}"
                )
        if first[1] != self.n:
            raise ValueError(f"expected {self.n} columns, got {first[1]}")
        self._rows = [trial.astype(np.int64, copy=False) for trial in rows]
        for trial_rows in self._rows:
            if trial_rows.size and (trial_rows.min() < 0
                                    or trial_rows.max() >= self.m):
                raise ValueError("row index out of range")
        self._signs = signs
        self._scale = float(scale)
        self._s = first[0]

    @property
    def s(self) -> int:
        """Exact column sparsity."""
        return self._s

    def representation(self) -> Dict[str, np.ndarray]:
        """The stacked arrays (see :meth:`ApplyKernel.representation`)."""
        rows = np.stack(self._rows)
        signs = np.stack(self._signs)
        return {"rows": rows, "signs": signs,
                "values": signs * self._scale}

    def trial_kernel(self, index: int) -> ColumnScatterKernel:
        rows = self._rows[index]
        values = self._signs[index] * self._scale
        # The serial samplers sort the drawn rows into canonical CSC order
        # with a stable argsort; replaying that here on the same drawn
        # arrays reconstructs the serial kernel bit-for-bit.
        order = np.argsort(rows, axis=0, kind="stable")
        return ColumnScatterKernel(
            np.take_along_axis(rows, order, axis=0),
            np.take_along_axis(values, order, axis=0),
            self.shape,
        )

    def sketched_bases(self, draws: Sequence[Any],
                       indices: Optional[Sequence[int]] = None) -> np.ndarray:
        idx = self._resolve_indices(draws, indices)
        reps, d, drows, dsigns = _uniform_group(draws)
        group = idx.size
        q = reps * d
        weights = dsigns * (1.0 / np.sqrt(reps))            # (B, q)
        bix = np.arange(group)[:, None, None]
        # Gather the s nonzeros of each selected column, one small (s, q)
        # slice per trial — the draws touch only q = reps·d of the n
        # columns, so per-trial gathers beat any stacked-array indexing.
        sel_rows = np.empty((group, self._s, q), dtype=np.int64)
        sel_vals = np.empty((group, self._s, q))
        for pos, slot in enumerate(idx):
            sel_rows[pos] = self._rows[slot][:, drows[pos]]
            sel_vals[pos] = self._signs[slot][:, drows[pos]]
        sel_vals *= self._scale
        sel_vals = sel_vals * weights[:, None, :]
        # Compact row ids: per trial, the unique touched rows in ascending
        # order.  k_pad is a pure function of the chunk's draws, so chunked
        # execution is deterministic.
        m = self.m
        keys = bix * m + sel_rows                           # (B, s, q)
        uniq, inv = np.unique(keys.ravel(), return_inverse=True)
        starts = np.searchsorted(uniq // m, np.arange(group + 1))
        counts = np.diff(starts)
        k_pad = int(max(d, counts.max()))
        rowc = (np.arange(uniq.size) - starts[uniq // m])[inv]
        rowc = rowc.reshape(group, self._s, q)
        out_cols = np.repeat(np.arange(d), reps)            # (q,)
        lin = (bix * k_pad + rowc) * d + out_cols[None, None, :]
        # Flatten selected-column-major with the s axis inner: within each
        # trial this is exactly the serial scatter's insertion order, and
        # distinct within-column rows mean every output bin accumulates
        # its entries in the same sequence — the products are bit-identical
        # to the serial kernel scatter on the surviving rows.
        flat = np.bincount(
            np.transpose(lin, (0, 2, 1)).ravel(),
            weights=np.transpose(sel_vals, (0, 2, 1)).ravel(),
            minlength=group * k_pad * d,
        )
        return flat.reshape(group, k_pad, d)


class BatchedRowGather(BatchedTrialKernel):
    """``B`` stacked row-gather sketches (row sampling, leverage sampling).

    Parameters
    ----------
    cols:
        ``(B, m)`` integer array: the selected input row per output row of
        each sketch (repeats allowed — leverage sampling draws with
        replacement).
    values:
        ``(B, m)`` float array of rescaling coefficients.
    shape:
        The per-sketch dimensions ``(m, n)``.
    """

    def __init__(self, cols: np.ndarray, values: np.ndarray,
                 shape: ShapeLike) -> None:
        cols = np.asarray(cols)
        values = np.asarray(values, dtype=np.float64)
        if cols.ndim != 2 or cols.shape != values.shape:
            raise ValueError(
                f"cols and values must share a (B, m) shape, got "
                f"{cols.shape} and {values.shape}"
            )
        super().__init__(cols.shape[0], shape)
        if cols.shape[1] != self.m:
            raise ValueError(
                f"expected {self.m} rows per sketch, got {cols.shape[1]}"
            )
        if cols.size and (cols.min() < 0 or cols.max() >= self.n):
            raise ValueError("column index out of range")
        self._cols = cols.astype(np.int64, copy=False)
        self._values = values

    def representation(self) -> Dict[str, np.ndarray]:
        """The stacked arrays (see :meth:`ApplyKernel.representation`)."""
        return {"cols": self._cols, "values": self._values}

    def trial_kernel(self, index: int) -> RowGatherKernel:
        return RowGatherKernel(self._cols[index], self._values[index],
                               self.shape)

    def sketched_bases(self, draws: Sequence[Any],
                       indices: Optional[Sequence[int]] = None) -> np.ndarray:
        idx = self._resolve_indices(draws, indices)
        reps, d, drows, dsigns = _uniform_group(draws)
        weights = dsigns * (1.0 / np.sqrt(reps))
        cols = self._cols[idx]
        values = self._values[idx]
        # The (step, m, q) boolean mask dominates memory; slice the batch
        # axis to bound it.  Slice boundaries depend only on the group
        # shape, and each trial's product is independent, so slicing does
        # not change any value.
        q = reps * d
        step = max(1, _GATHER_MASK_MAX_ELEMS // max(1, self.m * q))
        pieces = [
            self._gather_group(cols[lo:lo + step], values[lo:lo + step],
                               drows[lo:lo + step], weights[lo:lo + step],
                               reps, d)
            for lo in range(0, idx.size, step)
        ]
        if len(pieces) == 1:
            return pieces[0]
        k_pad = max(piece.shape[1] for piece in pieces)
        out = np.zeros((idx.size, k_pad, d))
        at = 0
        for piece in pieces:
            out[at:at + piece.shape[0], :piece.shape[1]] = piece
            at += piece.shape[0]
        return out

    def _gather_group(self, cols: np.ndarray, values: np.ndarray,
                      drows: np.ndarray, weights: np.ndarray,
                      reps: int, d: int) -> np.ndarray:
        group, q = drows.shape
        mask = cols[:, :, None] == drows[:, None, :]        # (B, m, q)
        hit = mask.any(axis=2)
        counts = hit.sum(axis=1)
        k_pad = int(min(self.m, max(d, counts.max() if group else 0)))
        if k_pad < self.m:
            order = np.argsort(~hit, axis=1, kind="stable")[:, :k_pad]
            mask = np.take_along_axis(mask, order[:, :, None], axis=1)
            kept = np.take_along_axis(values, order, axis=1)
        else:
            kept = values
        gathered = np.where(mask, weights[:, None, :], 0.0)
        summed = gathered.reshape(group, k_pad, d, reps).sum(axis=3)
        return summed * kept[:, :, None]


class StackedKernelBatch(BatchedTrialKernel):
    """Generic batch over per-trial :class:`ApplyKernel` objects.

    The fallback batched engine for families without a specialized
    vectorized sampler (sparse-JL's Bernoulli pattern has a variable nnz
    per draw): each product is computed by the trial's own kernel — the
    exact serial arithmetic — and only the row compaction and the SVD
    reduction are batched.
    """

    def __init__(self, kernels: Sequence[ApplyKernel],
                 shape: ShapeLike) -> None:
        super().__init__(len(kernels), shape)
        for kernel in kernels:
            if tuple(kernel.shape) != self.shape:
                raise ValueError(
                    f"all kernels must share shape {self.shape}, got "
                    f"{kernel.shape}"
                )
        self._kernels = list(kernels)

    def trial_kernel(self, index: int) -> ApplyKernel:
        return self._kernels[index]

    def sketched_bases(self, draws: Sequence[Any],
                       indices: Optional[Sequence[int]] = None) -> np.ndarray:
        idx = self._resolve_indices(draws, indices)
        products = np.stack([
            self._kernels[int(slot)].sketched_basis(draw)
            for slot, draw in zip(idx, draws)
        ])
        return _compact_rows(products, products.shape[2])


def stacked_from_family(family: Any,
                        seeds: Sequence[np.random.SeedSequence]
                        ) -> Optional[StackedKernelBatch]:
    """Build the generic kernel batch by sampling ``family`` per trial.

    Returns ``None`` when the family yields any kernel-less sketch (dense
    Gaussian, SRHT, dense-regime sparse-JL) — the caller then falls back
    to the serial per-trial path.  Sampling consumes each ``SeedSequence``
    identically to the serial path, and seeds are re-usable (a fresh
    generator is created per draw), so the fallback replays the same
    streams.
    """
    from .base import sample_sketch

    if not seeds:
        return None
    kernels = []
    for seed in seeds:
        kernel = sample_sketch(family, seed, lazy=True).kernel
        if kernel is None:
            return None
        kernels.append(kernel)
    return StackedKernelBatch(kernels, (family.m, family.n))
