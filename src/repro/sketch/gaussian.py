"""Dense Gaussian sketch — the classical OSE with optimal target dimension.

``Π`` has i.i.d. ``N(0, 1/m)`` entries and is an ``(ε, δ)``-OSE already at
``m = Θ((d + log(1/δ))/ε²)``, which is optimal without any sparsity
constraint (Nelson–Nguyễn 2014).  It is the quality baseline every sparse
construction is compared against: minimal ``m``, but dense, so applying it
costs ``O(m · nnz(A))``.
"""

from __future__ import annotations

import math

from ..utils.rng import RngLike, as_generator
from ..utils.validation import check_epsilon, check_positive_int, check_probability
from .base import Sketch, SketchFamily

__all__ = ["GaussianSketch"]


class GaussianSketch(SketchFamily):
    """Family of dense ``m × n`` matrices with i.i.d. ``N(0, 1/m)`` entries."""

    def sample(self, rng: RngLike = None, lazy: bool = False) -> Sketch:
        # ``lazy`` is accepted for interface uniformity; a dense Gaussian
        # matrix has no matrix-free structure to defer.
        gen = as_generator(rng)
        matrix = gen.standard_normal((self.m, self.n)) / math.sqrt(self.m)
        return Sketch(matrix, family=self)

    @staticmethod
    def recommended_m(d: int, epsilon: float, delta: float,
                      constant: float = 8.0) -> int:
        """Optimal target dimension ``m = Θ((d + log(1/δ))/ε²)``."""
        d = check_positive_int(d, "d")
        epsilon = check_epsilon(epsilon)
        delta = check_probability(delta, "delta")
        return max(1, math.ceil(
            constant * (d + math.log(1.0 / delta)) / epsilon**2
        ))
