"""Command-line entry point for the determinism sanitizer.

Usage::

    python -m repro.sanitize run -- E1 --scale 0.05 --seed 7
    python -m repro.sanitize run --workers 4 --batch 8 --shards 3 \\
        --report sanitize.json -- E1 --scale 0.02

Arguments after ``--`` are parsed with the :mod:`repro.experiments` CLI
grammar (experiment id or ``all``, ``--scale``, ``--seed``); arguments
before it configure the sanitizer's axis battery.  For every selected
experiment the battery runs a serial reference plus three candidate
configurations (``--workers N``, ``--batch B`` at two worker counts, a
``--shards K`` shard/merge/replay protocol), diffing each recorded
RNG-stream trace against the reference and comparing result bytes —
see :mod:`repro.sanitize.runner`.  Exit status 0 means zero divergences
across all configurations; 1 means at least one, detailed on stderr and
in the ``--report`` JSON.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Tuple


def _split_argv(argv: List[str]) -> Tuple[List[str], List[str]]:
    """Split ``argv`` at the first ``--`` separator."""
    if "--" in argv:
        at = argv.index("--")
        return argv[:at], argv[at + 1:]
    return argv, []


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sanitize",
        description="Runtime determinism sanitizer: re-execute an "
                    "experiment across workers/batch/shard configurations "
                    "and diff the RNG stream traces.",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    run = commands.add_parser(
        "run",
        help="run the axis battery; experiment selection follows '--' "
             "using the repro.experiments CLI grammar",
    )
    run.add_argument(
        "--workers", type=int, default=4, metavar="N",
        help="worker-pool width of the parallel candidate (default 4)",
    )
    run.add_argument(
        "--batch", type=int, default=8, metavar="B",
        help="batched-kernel width of the batch candidate (default 8)",
    )
    run.add_argument(
        "--shards", type=int, default=3, metavar="K",
        help="shard count of the shard/merge/replay candidate (default 3)",
    )
    run.add_argument(
        "--report", default=None, metavar="PATH",
        help="also write the structured divergence report as JSON to PATH",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    before, after = _split_argv(argv)
    options = _build_parser().parse_args(before)
    for name in ("workers", "batch", "shards"):
        if getattr(options, name) < 1:
            print(f"--{name} must be positive, got "
                  f"{getattr(options, name)}", file=sys.stderr)
            return 2
    from ..experiments.__main__ import _build_parser as _experiments_parser
    from ..experiments.registry import EXPERIMENTS, experiment_ids

    workload = _experiments_parser().parse_args(after)
    if workload.experiment is None:
        print("no experiment selected: pass e.g. `-- E1 --scale 0.05`",
              file=sys.stderr)
        return 2
    targets = (
        experiment_ids() if workload.experiment.lower() == "all"
        else [workload.experiment.upper()]
    )
    for eid in targets:
        if eid not in EXPERIMENTS:
            print(f"unknown experiment {eid!r}; known: "
                  f"{', '.join(experiment_ids())}", file=sys.stderr)
            return 2
    from .runner import sanitize_run, write_report

    report = sanitize_run(
        targets, scale=workload.scale, seed=workload.seed,
        workers=options.workers, batch=options.batch,
        shards=options.shards,
    )
    if options.report is not None:
        write_report(report, options.report)
    for experiment_report in report["experiments"]:
        print(f"sanitize {experiment_report['experiment']} "
              f"scale={experiment_report['scale']} "
              f"seed={experiment_report['seed']}")
        for axis in experiment_report["axes"]:
            if axis["divergences"] or not axis["result_match"]:
                status = "DIVERGENT"
            else:
                status = "clean"
            print(f"  {axis['axis']}: {status} "
                  f"({axis['stream_events']} stream events, "
                  f"{axis['cache_events']} cache events)")
            for divergence in axis["divergences"]:
                print(divergence["report"], file=sys.stderr)
            if not axis["result_match"]:
                print(f"  {axis['axis']}: result bytes differ from the "
                      f"reference run", file=sys.stderr)
    if report["status"] == "ok":
        print("no divergences: stream traces and result bytes agree "
              "across all configurations")
        return 0
    print("determinism divergence detected — see report above",
          file=sys.stderr)
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
