"""Trace canonicalisation, divergence diffing, and intra-trace checks.

The comparison layer of :mod:`repro.sanitize`.  A *trace* is the plain
list of event dicts a :class:`~repro.sanitize.recorder.StreamTraceRecorder`
captured: ``channel="stream"`` events from the RNG fan-out primitives
(:func:`repro.utils.rng.spawn_seeds` / ``spawn_slice``) and
``channel="cache"`` events from the probe cache.  Two executions of the
same workload at the same seed must produce **identical** stream traces
— same events, same order, same spawn-tree positions — regardless of
``workers``, ``batch``, caching, or sharding; any difference is a
determinism bug, even when the final result bytes happen to agree.

Three failure classes are distinguished:

* ``stream-divergence`` — the runs derived different child streams (a
  different parent, a different fan-out width, a different primitive).
* ``draw-count-drift`` — same primitive on the same parent sequence, but
  at a different spawn counter: something consumed extra children (or
  skipped some) before this point.
* ``double-consumption`` — *within one trace*, the same parent handed
  out overlapping child-index ranges.  A live ``SeedSequence`` cannot do
  this (spawning advances its counter), so an overlap proves two
  distinct sequence objects shared one spawn-tree position — the classic
  rebuilt-parent race that silently correlates "independent" trials.

Stack provenance attached by the recorder is excluded from comparison
(:func:`canonical_event`): a cache-hit replay legitimately reaches a
spawn through different frames than a cold run while consuming exactly
the same streams.  Stdlib-only by design.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, NamedTuple, Optional, Tuple

__all__ = [
    "DeterminismError",
    "Divergence",
    "cache_events",
    "canonical_event",
    "check_trace",
    "diff_traces",
    "format_divergence",
    "stream_events",
]

#: Event keys carrying provenance rather than identity; never compared.
_PROVENANCE_KEYS = frozenset({"stack"})


class DeterminismError(Exception):
    """A determinism contract was violated.

    Raised by the ``sanitized=`` re-execution hook
    (:func:`repro.sanitize.runtime.sanitized_rerun`) and carried in the
    sanitizer CLI's report.  ``divergence`` holds the structured
    :class:`Divergence` when one is available.
    """

    def __init__(self, message: str,
                 divergence: Optional["Divergence"] = None) -> None:
        super().__init__(message)
        self.divergence = divergence


class Divergence(NamedTuple):
    """One detected determinism fault, anchored to a trace position.

    ``reference``/``candidate`` are the full recorded events (provenance
    included) on each side; for intra-trace faults (``double-consumption``)
    they are the two conflicting events of the *same* trace.
    """

    index: int
    axis: str
    kind: str
    reference: Optional[Dict[str, Any]]
    candidate: Optional[Dict[str, Any]]
    detail: str

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able form for divergence reports."""
        return {
            "index": self.index,
            "axis": self.axis,
            "kind": self.kind,
            "reference": self.reference,
            "candidate": self.candidate,
            "detail": self.detail,
        }


def canonical_event(event: Dict[str, Any]) -> Dict[str, Any]:
    """``event`` stripped to its comparable identity (no provenance)."""
    return {
        key: value for key, value in event.items()
        if key not in _PROVENANCE_KEYS
    }


def stream_events(trace: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """The RNG fan-out events of ``trace``, in recording order."""
    return [e for e in trace if e.get("channel", "stream") == "stream"]


def cache_events(trace: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """The probe-cache events of ``trace``, in recording order."""
    return [e for e in trace if e.get("channel") == "cache"]


def _parent_id(event: Dict[str, Any]) -> Tuple[str, Tuple[int, ...]]:
    """Spawn-tree identity of the parent sequence behind ``event``."""
    return (
        json.dumps(event.get("entropy")),
        tuple(int(k) for k in event.get("spawn_key", ())),
    )


def _parent_label(event: Dict[str, Any]) -> str:
    entropy = event.get("entropy")
    text = str(entropy)
    if len(text) > 24:
        text = text[:21] + "..."
    return f"entropy={text} spawn_key={list(event.get('spawn_key', []))}"


def _handed_range(event: Dict[str, Any]) -> Optional[Tuple[int, int]]:
    """Child-index range ``event`` handed to its caller, or ``None``.

    ``spawn`` hands out every derived child; ``spawn_slice`` reserves
    ``total`` spawn slots but hands out only ``[start, stop)`` — shards
    of one parent legitimately reserve overlapping totals, so only the
    handed-out slice participates in double-consumption checks.
    """
    base = int(event.get("base", 0))
    kind = event.get("kind")
    if kind == "spawn":
        return (base, base + int(event.get("count", 0)))
    if kind == "spawn_slice":
        return (base + int(event.get("start", 0)),
                base + int(event.get("stop", 0)))
    return None


def check_trace(trace: List[Dict[str, Any]], *,
                axis: str = "trace") -> List[Divergence]:
    """Intra-trace faults of one recording: double-consumed child streams.

    Returns one ``double-consumption`` :class:`Divergence` per
    overlapping pair.  These are hard errors even when final bytes agree:
    two call sites drawing from the same child stream correlate trials
    that every estimator in :mod:`repro.core.tester` assumes independent.
    """
    faults: List[Divergence] = []
    handed: Dict[Tuple[str, Tuple[int, ...]],
                 List[Tuple[int, Dict[str, Any], Tuple[int, int]]]] = {}
    for index, event in enumerate(stream_events(trace)):
        span = _handed_range(event)
        if span is None or span[0] >= span[1]:
            continue
        parent = _parent_id(event)
        for prev_index, prev_event, prev_span in handed.get(parent, []):
            lo = max(span[0], prev_span[0])
            hi = min(span[1], prev_span[1])
            if lo < hi:
                faults.append(Divergence(
                    index=index,
                    axis=axis,
                    kind="double-consumption",
                    reference=prev_event,
                    candidate=event,
                    detail=(
                        f"children [{lo}, {hi}) of parent "
                        f"{_parent_label(event)} were handed out twice "
                        f"(stream events #{prev_index} and #{index}): two "
                        f"seed sequences share one spawn-tree position, "
                        f"so 'independent' trials draw correlated streams"
                    ),
                ))
        handed.setdefault(parent, []).append((index, event, span))
    return faults


def diff_traces(reference: List[Dict[str, Any]],
                candidate: List[Dict[str, Any]], *,
                axis: str = "") -> Optional[Divergence]:
    """First divergent stream event between two recordings, or ``None``.

    Comparison is positional over :func:`canonical_event` forms —
    determinism means the *sequence* of fan-outs matches, not merely the
    set.  A mismatch where kind and parent agree but the spawn counter
    (``base``) differs is classified as ``draw-count-drift``; a length
    mismatch as ``missing-events``/``extra-events``.
    """
    ref = stream_events(reference)
    cand = stream_events(candidate)
    for index, (r, c) in enumerate(zip(ref, cand)):
        r_id, c_id = canonical_event(r), canonical_event(c)
        if r_id == c_id:
            continue
        kind = "stream-divergence"
        if (r_id.get("kind") == c_id.get("kind")
                and _parent_id(r) == _parent_id(c)
                and r_id.get("base") != c_id.get("base")):
            kind = "draw-count-drift"
            detail = (
                f"same fan-out on parent {_parent_label(r)} but at spawn "
                f"counter {c_id.get('base')} instead of {r_id.get('base')}:"
                f" something consumed a different number of child streams "
                f"before this point"
            )
        else:
            detail = (
                f"stream event #{index} differs: reference derived "
                f"{r_id.get('kind')} on {_parent_label(r)}, candidate "
                f"{c_id.get('kind')} on {_parent_label(c)}"
            )
        return Divergence(index=index, axis=axis, kind=kind,
                          reference=r, candidate=c, detail=detail)
    if len(ref) != len(cand):
        index = min(len(ref), len(cand))
        return Divergence(
            index=index,
            axis=axis,
            kind="missing-events" if len(cand) < len(ref)
            else "extra-events",
            reference=ref[index] if index < len(ref) else None,
            candidate=cand[index] if index < len(cand) else None,
            detail=(
                f"reference recorded {len(ref)} stream events, candidate "
                f"{len(cand)}; traces agree up to event #{index}"
            ),
        )
    return None


def _describe_event(event: Optional[Dict[str, Any]]) -> List[str]:
    if event is None:
        return ["    (no event — trace ended)"]
    identity = canonical_event(event)
    parts = [f"{key}={identity[key]!r}" for key in sorted(identity)]
    lines = ["    " + " ".join(parts)]
    for frame in event.get("stack", []):
        lines.append(f"      at {frame}")
    return lines


def format_divergence(divergence: Divergence) -> str:
    """Multi-line human-readable report of one divergence."""
    lines = [
        f"first divergence at stream event #{divergence.index}"
        f" [{divergence.axis}]: {divergence.kind}",
        f"  {divergence.detail}",
        "  reference event:",
        *_describe_event(divergence.reference),
        "  candidate event:",
        *_describe_event(divergence.candidate),
    ]
    return "\n".join(lines)
