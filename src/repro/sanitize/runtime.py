"""``sanitized=`` re-execution: run once as configured, replay serially,
and diff the two stream traces.

:func:`sanitized_rerun` is the engine behind the ``sanitized=`` keyword
of :func:`repro.core.tester.failure_estimate` /
``distortion_samples`` / ``minimal_m``: the probe runs *twice* — first
exactly as the caller configured it (workers, cache, batch), then as a
cache-off serial replay from the same stream state — and the two
recordings must agree event for event, and the two results bit for bit.
Any disagreement raises :class:`~repro.sanitize.diff.DeterminismError`
naming the first divergent draw.

The serial replay is possible without perturbing the caller's generator
because those probes only ever *spawn* from it, never draw: the
:func:`~repro.utils.rng.seed_fingerprint` taken before the candidate run
fully determines every child stream, so :func:`replay_generator` can
rebuild an equivalent generator from the fingerprint alone.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

import numpy as np

from ..utils.rng import RngLike, as_generator, seed_fingerprint
from .diff import (
    DeterminismError,
    Divergence,
    check_trace,
    diff_traces,
    format_divergence,
)
from .recorder import StreamTraceRecorder

__all__ = ["SanitizedCall", "replay_generator", "sanitized_rerun"]

#: The re-executable shape ``sanitized_rerun`` drives: a closure over
#: every probe parameter except ``(rng, workers, cache)``, which the
#: harness varies between the candidate and the reference leg.
SanitizedCall = Callable[[Any, Optional[int], Any], Any]


def replay_generator(fingerprint: Dict[str, Any]) -> np.random.Generator:
    """A generator whose spawn behaviour matches ``fingerprint`` exactly.

    Rebuilds the :class:`numpy.random.SeedSequence` a
    :func:`~repro.utils.rng.seed_fingerprint` describes — entropy, spawn
    key, pool size — and advances its spawn counter to
    ``children_spawned`` by deriving (and discarding) that many children,
    the only sanctioned way to move the counter.  The result spawns
    bit-identical child streams to the fingerprinted generator; its
    *drawn* stream is also identical, though ``sanitized`` probes never
    draw from the parent.
    """
    entropy = fingerprint.get("entropy")
    seq = np.random.SeedSequence(
        entropy=entropy,
        spawn_key=tuple(int(key) for key in fingerprint.get("spawn_key", [])),
        pool_size=int(fingerprint.get("pool_size", 4)),
    )
    children = int(fingerprint.get("children_spawned", 0))
    if children:
        seq.spawn(children)
    return np.random.default_rng(seq)


def _results_equal(a: Any, b: Any) -> bool:
    """Bit-level result equality (arrays compared by exact bytes)."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return (
            isinstance(a, np.ndarray)
            and isinstance(b, np.ndarray)
            and a.dtype == b.dtype
            and a.shape == b.shape
            and a.tobytes() == b.tobytes()
        )
    return bool(a == b)


def _raise_on_faults(label: str, faults: List[Divergence]) -> None:
    if faults:
        first = faults[0]
        raise DeterminismError(
            f"{label}: {len(faults)} double-consumed child stream(s)\n"
            + format_divergence(first),
            divergence=first,
        )


def sanitized_rerun(label: str, call: SanitizedCall, *,
                    rng: RngLike = None,
                    workers: Optional[int] = 1,
                    cache: Optional[Any] = None) -> Any:
    """Run ``call`` as configured, then as a serial cache-off replay,
    and require both legs to agree.

    ``call(rng, workers, cache)`` must execute the probe with exactly
    those three knobs and all other parameters closed over.  The
    candidate leg receives the caller's own generator (so the caller's
    stream advances exactly as an unsanitized call would), ``workers``
    and ``cache`` as given; the reference leg receives a
    :func:`replay_generator` of the pre-run fingerprint, ``workers=1``
    and ``cache=None``.  Returns the candidate result.

    Raises
    ------
    DeterminismError
        If either leg double-consumes a child stream, if the stream
        traces diverge (including draw-count drift, a hard error even
        when final bytes agree), or if the results differ bitwise.
    """
    gen = as_generator(rng)
    fingerprint = seed_fingerprint(gen)
    if fingerprint is None:
        raise DeterminismError(
            f"{label}: sanitized= needs a generator backed by a "
            f"SeedSequence; this one was restored from a raw bit-generator"
            f" state, so its stream cannot be replayed without perturbing"
            f" it"
        )
    candidate_recorder = StreamTraceRecorder(label=f"{label}:candidate")
    with candidate_recorder.activate():
        candidate = call(gen, workers, cache)
    candidate_trace = candidate_recorder.trace()
    _raise_on_faults(
        f"{label} (candidate run)",
        check_trace(candidate_trace, axis=f"{label}:candidate"),
    )
    reference_recorder = StreamTraceRecorder(label=f"{label}:reference")
    with reference_recorder.activate():
        reference = call(replay_generator(fingerprint), 1, None)
    reference_trace = reference_recorder.trace()
    _raise_on_faults(
        f"{label} (serial replay)",
        check_trace(reference_trace, axis=f"{label}:reference"),
    )
    divergence = diff_traces(
        reference_trace, candidate_trace,
        axis=f"{label}: workers={workers}"
             f"{' cached' if cache is not None else ''} vs serial replay",
    )
    if divergence is not None:
        raise DeterminismError(format_divergence(divergence),
                               divergence=divergence)
    if not _results_equal(reference, candidate):
        raise DeterminismError(
            f"{label}: stream traces agree but results differ between the"
            f" configured run and the serial cache-off replay — a cache"
            f" record, merge, or reduction produced wrong bytes"
            f" (candidate={candidate!r}, reference={reference!r})"
        )
    return candidate
