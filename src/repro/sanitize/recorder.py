"""Stream-trace recorder: captures RNG fan-out and cache-key events.

A :class:`StreamTraceRecorder` is simultaneously a *stream observer*
(installed via :func:`repro.utils.rng.use_stream_observer`, receiving
every ``spawn``/``spawn_slice``/fallback draw with its spawn-tree
position and draw counter) and a *cache observer*
(:func:`repro.sanitize.hooks.use_cache_observer`, receiving every probe
cache lookup and write with its content-addressed key).
:meth:`StreamTraceRecorder.activate` installs both for a ``with`` block;
outside such a block recording is off and the instrumented call sites
pay a single ``ContextVar.get`` each — observation never consumes
randomness or changes any computed value.

Each event is stamped with stack provenance (the first few non-plumbing
frames of the call site) so a divergence report can say *where* the
offending fan-out happened.  Provenance is excluded from trace
comparison — see :func:`repro.sanitize.diff.canonical_event`.
"""

from __future__ import annotations

import contextlib
import sys
from typing import Any, Dict, Iterator, List

from ..utils.rng import use_stream_observer
from .hooks import use_cache_observer

__all__ = ["StreamTraceRecorder"]

#: Maximum provenance frames stamped on one event.
_STACK_LIMIT = 6

#: Call-site filename fragments excluded from provenance: observer
#: plumbing and the instrumented primitives themselves carry no signal.
_SKIP_FRAGMENTS = (
    "/sanitize/",
    "/utils/rng.py",
    "/contextlib.py",
)


def _provenance(limit: int = _STACK_LIMIT) -> List[str]:
    """The nearest ``limit`` interesting frames of the current stack."""
    frames: List[str] = []
    frame = sys._getframe(1)
    while frame is not None and len(frames) < limit:
        code = frame.f_code
        filename = code.co_filename.replace("\\", "/")
        if not any(fragment in filename for fragment in _SKIP_FRAGMENTS):
            frames.append(f"{filename}:{frame.f_lineno}:{code.co_name}")
        frame = frame.f_back
    return frames


class StreamTraceRecorder:
    """Accumulates the canonical event trace of one execution.

    Parameters
    ----------
    label:
        Free-form tag identifying the recorded execution (shown in
        divergence reports).
    provenance:
        Stamp each event with call-site stack frames (default).  Disable
        for micro-benchmarks; traces compare identically either way.
    """

    def __init__(self, label: str = "trace",
                 provenance: bool = True) -> None:
        self.label = label
        self._provenance = provenance
        self._events: List[Dict[str, Any]] = []

    def record_stream_event(self, kind: str, **fields: Any) -> None:
        """Stream-observer hook (see :func:`repro.utils.rng.use_stream_observer`)."""
        self._record("stream", kind, fields)

    def record_cache_event(self, kind: str, **fields: Any) -> None:
        """Cache-observer hook (see :func:`repro.sanitize.hooks.use_cache_observer`)."""
        self._record("cache", kind, fields)

    def _record(self, channel: str, kind: str,
                fields: Dict[str, Any]) -> None:
        event: Dict[str, Any] = {"channel": channel, "kind": kind, **fields}
        if self._provenance:
            event["stack"] = _provenance()
        self._events.append(event)

    @contextlib.contextmanager
    def activate(self) -> Iterator["StreamTraceRecorder"]:
        """Install this recorder as both stream and cache observer."""
        with use_stream_observer(self), use_cache_observer(self):
            yield self

    def trace(self) -> List[Dict[str, Any]]:
        """A snapshot copy of the recorded events, in order."""
        return list(self._events)

    def clear(self) -> None:
        """Drop all recorded events (reuse between runs is discouraged —
        one recorder per execution keeps double-consumption checks
        meaningful across cache-coordinated re-runs like shard rounds)."""
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)

    def __repr__(self) -> str:
        return (f"StreamTraceRecorder({self.label!r}, "
                f"{len(self._events)} events)")
