"""Low-level observer hooks the sanitizer installs.

Deliberately stdlib-only: :mod:`repro.cache.probes` imports this module
to report cache-key traffic, so anything heavier (numpy, other ``repro``
packages) would create an import cycle ``cache`` → ``sanitize`` →
``cache``.  The RNG-side twin of this hook lives in
:func:`repro.utils.rng.use_stream_observer`.

With no observer installed — the default — every reporting site pays
exactly one ``ContextVar.get`` returning ``None``; observation never
changes which cache records are read or written.
"""

from __future__ import annotations

import contextlib
import contextvars
from typing import Any, Iterator, Optional

__all__ = [
    "cache_observer",
    "record_cache_event",
    "use_cache_observer",
]

#: The installed cache observer (see :func:`use_cache_observer`), or
#: ``None``.
_CACHE_OBSERVER: "contextvars.ContextVar[Optional[Any]]" = \
    contextvars.ContextVar("repro_cache_observer", default=None)


def cache_observer() -> Optional[Any]:
    """The installed cache observer, or ``None`` (the default)."""
    return _CACHE_OBSERVER.get()


@contextlib.contextmanager
def use_cache_observer(observer: Any) -> Iterator[Any]:
    """Install ``observer`` as the current cache observer.

    The observer must expose ``record_cache_event(kind, **fields)``; it
    is called from :mod:`repro.cache.probes` with every logical lookup
    (``cache_hit``/``cache_miss``) and every record write (``cache_put``),
    carrying the content-addressed key.  :mod:`repro.sanitize` records
    these alongside the RNG stream trace so a divergence report can say
    *which* probe key went wrong, not just which draw.
    """
    token = _CACHE_OBSERVER.set(observer)
    try:
        yield observer
    finally:
        _CACHE_OBSERVER.reset(token)


def record_cache_event(kind: str, **fields: Any) -> None:
    """Report one cache event to the installed observer, if any."""
    observer = _CACHE_OBSERVER.get()
    if observer is not None:
        observer.record_cache_event(kind, **fields)
