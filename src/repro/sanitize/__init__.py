"""``repro.sanitize`` — runtime determinism sanitizer.

The repository's determinism contract — bit-identical results across
``workers``, cache states, ``batch`` settings, and shard/merge/replay
runs at a fixed seed — is enforced at runtime by *stream tracing*: every
RNG fan-out (:func:`repro.utils.rng.spawn_seeds` / ``spawn_slice``) and
every probe-cache key is reported to an installed observer, recorded as
a canonical trace, and diffed between a reference serial execution and a
candidate configuration.  The first divergent draw is reported with its
spawn-tree path, stack provenance, and the configuration axis that broke
— and double-consumed child streams or draw-count drift are hard errors
even when the final bytes happen to agree.

Three entry points:

* ``sanitized=True`` on :func:`repro.core.tester.failure_estimate` /
  ``distortion_samples`` / ``minimal_m`` — the probe re-executes as a
  serial cache-off replay and both legs must agree
  (:func:`~repro.sanitize.runtime.sanitized_rerun`).
* ``python -m repro.sanitize run -- E1 --scale 0.05`` — the config-axis
  battery over whole experiments (:mod:`repro.sanitize.runner`), gated
  in CI as the sanitizer smoke.
* The pieces themselves — :class:`StreamTraceRecorder`,
  :func:`diff_traces`, :func:`check_trace` — for bespoke harnesses.

Recording is off by default; with no observer installed every
instrumented site pays one ``ContextVar.get`` returning ``None``.  See
``docs/static_analysis.md`` ("Determinism sanitizer") for the design and
the companion RPL1xx lint rules.
"""

from .diff import (
    DeterminismError,
    Divergence,
    cache_events,
    canonical_event,
    check_trace,
    diff_traces,
    format_divergence,
    stream_events,
)
from .hooks import cache_observer, record_cache_event, use_cache_observer
from .recorder import StreamTraceRecorder
from .runtime import SanitizedCall, replay_generator, sanitized_rerun

__all__ = [
    "DeterminismError",
    "Divergence",
    "SanitizedCall",
    "StreamTraceRecorder",
    "cache_events",
    "cache_observer",
    "canonical_event",
    "check_trace",
    "diff_traces",
    "format_divergence",
    "record_cache_event",
    "replay_generator",
    "sanitized_rerun",
    "stream_events",
    "use_cache_observer",
]
