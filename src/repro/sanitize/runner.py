"""Config-axis sanitizer battery: serial vs workers vs batch vs shards.

Drives one experiment through every execution strategy that promises
determinism and diffs the recorded stream traces against the serial
reference run:

* ``workers=N`` — the process-pool trial engine must derive exactly the
  serial run's child streams and reproduce its result bit for bit.
* ``batch=B`` — the batched kernel engine owns a *different* (canonical)
  accumulation order, so its values are not compared against the serial
  reference; its stream trace must still match (batching may not change
  which streams are consumed), and its result must be bit-identical
  across ``workers`` settings.
* ``shards=K`` — the full shard/merge/replay protocol of
  :func:`repro.shard.sharded_call`.  Every per-shard pass gets its own
  recorder (rounds re-run the schedule from scratch, so cross-round
  stream reuse is legitimate — but *within* one pass double-consumption
  is a hard error), and the final serial replay's trace must equal the
  serial reference's: a pure cache-hit replay consumes exactly the
  streams a cold run would.

The battery is what ``python -m repro.sanitize run`` executes and what
the CI sanitizer smoke gate runs at a fixed seed.
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..experiments.registry import run_experiment
from ..shard import sharded_call
from ..utils.parallel import resolve_workers
from ..utils.serialization import json_default, to_builtin
from .diff import Divergence, cache_events, check_trace, diff_traces, \
    format_divergence, stream_events
from .recorder import StreamTraceRecorder

__all__ = ["sanitize_experiment", "sanitize_run", "write_report"]


def _result_payload(result: Any) -> str:
    """Canonical JSON bytes of an experiment result, for bit comparison."""
    return json.dumps(to_builtin(result.to_dict()), sort_keys=True,
                      allow_nan=False, default=json_default)


def _axis_entry(axis: str, trace: List[Dict[str, Any]],
                divergences: List[Divergence],
                result_match: bool) -> Dict[str, Any]:
    return {
        "axis": axis,
        "stream_events": len(stream_events(trace)),
        "cache_events": len(cache_events(trace)),
        "result_match": bool(result_match),
        "divergences": [
            {**d.to_dict(), "report": format_divergence(d)}
            for d in divergences
        ],
    }


def sanitize_experiment(experiment_id: str, *, scale: float = 0.05,
                        seed: Optional[int] = 0, workers: int = 4,
                        batch: int = 8, shards: int = 3,
                        shard_dir: Optional[Union[str, Path]] = None
                        ) -> Dict[str, Any]:
    """Run the full axis battery for one experiment; returns the report.

    The report's ``status`` is ``"ok"`` only when every axis recorded
    zero divergences and reproduced the expected result bytes.
    ``shard_dir`` overrides the temporary directory the shard axis uses
    for its probe stores (useful when inspecting a failure).

    ``workers`` sizes the parallel candidate's pool; ``0``/``None`` means
    all *available* CPUs, and explicit values are clamped to the process's
    scheduler affinity (:func:`repro.utils.parallel.available_cpus`) — a
    cpuset-limited container never fans out past its actual CPU slice.
    The clamp cannot change any compared value: results are bit-identical
    across ``workers`` settings by the trial-engine contract.
    """
    workers = min(resolve_workers(workers), resolve_workers(0))
    axes: List[Dict[str, Any]] = []

    def run_traced(label: str, **kwargs: Any
                   ) -> Tuple[Any, List[Dict[str, Any]]]:
        recorder = StreamTraceRecorder(label=f"{experiment_id}:{label}")
        with recorder.activate():
            result = run_experiment(experiment_id, scale=scale, rng=seed,
                                    **kwargs)
        return result, recorder.trace()

    reference, reference_trace = run_traced("serial", workers=1)
    reference_payload = _result_payload(reference)
    axes.append(_axis_entry(
        "serial(reference)", reference_trace,
        check_trace(reference_trace, axis="serial"), result_match=True,
    ))

    candidate, trace = run_traced(f"workers={workers}", workers=workers)
    divergences = check_trace(trace, axis=f"workers={workers}")
    drift = diff_traces(reference_trace, trace,
                        axis=f"workers={workers} vs serial")
    if drift is not None:
        divergences.append(drift)
    axes.append(_axis_entry(
        f"workers={workers}", trace, divergences,
        result_match=_result_payload(candidate) == reference_payload,
    ))

    batched_serial, trace_b1 = run_traced(
        f"batch={batch}:workers=1", workers=1, batch=batch,
    )
    batched_pool, trace_bn = run_traced(
        f"batch={batch}:workers={workers}", workers=workers, batch=batch,
    )
    divergences = check_trace(trace_b1, axis=f"batch={batch}:workers=1")
    divergences += check_trace(
        trace_bn, axis=f"batch={batch}:workers={workers}",
    )
    drift = diff_traces(
        trace_b1, trace_bn,
        axis=f"batch={batch}: workers={workers} vs workers=1",
    )
    if drift is not None:
        divergences.append(drift)
    drift = diff_traces(reference_trace, trace_b1,
                        axis=f"batch={batch} vs serial")
    if drift is not None:
        divergences.append(drift)
    axes.append(_axis_entry(
        f"batch={batch}", trace_bn, divergences,
        result_match=(_result_payload(batched_serial)
                      == _result_payload(batched_pool)),
    ))

    passes: List[Tuple[str, List[Dict[str, Any]]]] = []

    def sharded(shard_cache: Any, shard: Any) -> Any:
        tag = "replay" if shard is None else f"pass{shard.index}"
        recorder = StreamTraceRecorder(
            label=f"{experiment_id}:shards={shards}:{tag}",
        )
        try:
            with recorder.activate():
                return run_experiment(
                    experiment_id, scale=scale, rng=seed, workers=1,
                    cache=shard_cache, shard=shard,
                )
        finally:
            passes.append((tag, recorder.trace()))

    if shard_dir is not None:
        sharded_result = sharded_call(sharded, shards, shard_dir)
    else:
        with tempfile.TemporaryDirectory(prefix="repro-sanitize-") as tmp:
            sharded_result = sharded_call(sharded, shards, tmp)
    divergences = []
    for tag, pass_trace in passes:
        divergences += check_trace(pass_trace,
                                   axis=f"shards={shards}:{tag}")
    replay_tag, replay_trace = passes[-1]
    drift = diff_traces(reference_trace, replay_trace,
                        axis=f"shards={shards} {replay_tag} vs serial")
    if drift is not None:
        divergences.append(drift)
    axes.append(_axis_entry(
        f"shards={shards}", replay_trace, divergences,
        result_match=_result_payload(sharded_result) == reference_payload,
    ))

    clean = all(
        entry["result_match"] and not entry["divergences"]
        for entry in axes
    )
    return {
        "experiment": experiment_id,
        "scale": scale,
        "seed": seed,
        "axes": axes,
        "status": "ok" if clean else "divergent",
    }


def sanitize_run(experiment_ids: List[str], *, scale: float = 0.05,
                 seed: Optional[int] = 0, workers: int = 4,
                 batch: int = 8, shards: int = 3) -> Dict[str, Any]:
    """Axis battery over several experiments; aggregates their reports."""
    reports = [
        sanitize_experiment(eid, scale=scale, seed=seed, workers=workers,
                            batch=batch, shards=shards)
        for eid in experiment_ids
    ]
    clean = all(report["status"] == "ok" for report in reports)
    return {
        "experiments": reports,
        "status": "ok" if clean else "divergent",
    }


def write_report(report: Dict[str, Any],
                 path: Union[str, Path]) -> Path:
    """Write a divergence report as JSON; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(report, indent=2, sort_keys=True, allow_nan=False,
                   default=json_default)
    )
    return path
