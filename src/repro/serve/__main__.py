"""Entrypoint: ``python -m repro.serve``.

Starts the estimation server and runs until SIGTERM/SIGINT, then drains
in-flight work before exiting (a second signal is not needed — the gate
refuses new computations the moment draining begins).

The bound address is printed to stdout as ``serving on http://H:P``
before requests are accepted, so callers using ``--port 0`` (tests, the
CI smoke job) can discover the OS-assigned port by reading one line.

Exit codes: ``0`` clean shutdown, ``2`` usage error (argparse).
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import signal
import sys
from pathlib import Path
from typing import List, Optional

from .http import ServeHTTP
from .service import EstimationService

__all__ = ["main"]

#: Default name of the request-log ledger inside ``--cache-dir``.
LEDGER_FILENAME = "serve-ledger.jsonl"


def _positive_int(text: str) -> int:
    value = int(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {text!r}"
        )
    return value


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve failure_estimate/minimal_m/... over HTTP with "
                    "a shared probe cache.",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8400,
                        help="bind port; 0 = OS-assigned "
                             "(default: 8400)")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="probe-cache directory shared with CLI runs; "
                             "omitted = no warm store")
    parser.add_argument("--ledger", type=Path, default=None,
                        help="request-log ledger path (default: "
                             f"<cache-dir>/{LEDGER_FILENAME} when "
                             "--cache-dir is given, else no ledger)")
    parser.add_argument("--max-inflight", type=_positive_int, default=4,
                        help="bound on distinct concurrent computations; "
                             "excess requests get 429 (default: 4)")
    parser.add_argument("--workers", type=_positive_int, default=1,
                        help="trial-engine workers per computation "
                             "(default: 1)")
    return parser


async def _serve(args: argparse.Namespace) -> int:
    ledger_path: Optional[Path] = args.ledger
    if ledger_path is None and args.cache_dir is not None:
        ledger_path = args.cache_dir / LEDGER_FILENAME
    if ledger_path is not None:
        ledger_path.parent.mkdir(parents=True, exist_ok=True)
    service = EstimationService(
        args.cache_dir, ledger_path=ledger_path,
        max_inflight=args.max_inflight, workers=args.workers,
    )
    server = ServeHTTP(service, host=args.host, port=args.port)
    await server.start()
    host, port = server.address
    print(f"serving on http://{host}:{port}", flush=True)

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError, RuntimeError):
            loop.add_signal_handler(signum, stop.set)
    try:
        await server.serve_until(stop)
    finally:
        service.close()
    print("drained; bye", flush=True)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    return asyncio.run(_serve(args))


if __name__ == "__main__":
    sys.exit(main())
