"""Request-parameter validation for the estimation service.

The service accepts sketch families and hard instances as their canonical
``spec()`` dictionaries — exactly the JSON shapes that already name probes
in the content-addressed cache (:mod:`repro.cache.keys`).  This module
turns a spec back into a live object, restricted to a fixed registry of
constructible types, and **verifies the round trip**: the rebuilt object's
own ``spec()`` must re-serialize to the request's canonical JSON.  That
one check subsumes a field-by-field validator — an unknown key, a wrong
type, or a value a constructor normalizes differently all surface as a
round-trip mismatch and reject the request before any trial runs.

Validation failures raise :class:`BadRequest`, which the HTTP layer maps
to a 400 response; nothing here ever reaches a 500.
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Dict, List, Optional, Type

from ..cache.keys import canonical_json
from ..hardinstances import (
    DBeta,
    HardInstance,
    MixtureInstance,
    PermutedIdentity,
    SpikedSubspace,
)
from ..sketch import (
    CountSketch,
    GaussianSketch,
    HadamardBlockSketch,
    LeverageSampling,
    OSNAP,
    RowSampling,
    SketchFamily,
    SparseJL,
    SRHT,
)

__all__ = [
    "BadRequest",
    "FAMILIES",
    "INSTANCES",
    "family_from_spec",
    "instance_from_spec",
    "optional_field",
    "require",
    "require_positive_int",
    "require_positive_float",
]


class BadRequest(ValueError):
    """A request parameter failed validation (HTTP 400, never 500)."""


#: Sketch families constructible from a request spec, by ``spec()`` type.
FAMILIES: Dict[str, Type[SketchFamily]] = {
    cls.__qualname__: cls
    for cls in (
        CountSketch,
        GaussianSketch,
        HadamardBlockSketch,
        LeverageSampling,
        OSNAP,
        RowSampling,
        SparseJL,
        SRHT,
    )
}

#: Hard instances constructible from a request spec, by ``spec()`` type.
#: :class:`MixtureInstance` is handled recursively by
#: :func:`instance_from_spec` rather than listed here.
INSTANCES: Dict[str, Type[HardInstance]] = {
    cls.__qualname__: cls
    for cls in (DBeta, PermutedIdentity, SpikedSubspace)
}


def require(payload: Dict[str, Any], field: str) -> Any:
    """The value of a required request field, or :class:`BadRequest`."""
    if field not in payload:
        raise BadRequest(f"missing required field {field!r}")
    return payload[field]


def require_positive_int(value: Any, field: str) -> int:
    """Coerce a request field to a positive ``int`` (bools rejected)."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise BadRequest(f"{field} must be a positive integer, got "
                         f"{value!r}")
    if value <= 0:
        raise BadRequest(f"{field} must be positive, got {value}")
    return value


def require_positive_float(value: Any, field: str) -> float:
    """Coerce a request field to a positive finite ``float``."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise BadRequest(f"{field} must be a positive number, got "
                         f"{value!r}")
    result = float(value)
    if not result > 0 or result != result or result == float("inf"):
        raise BadRequest(f"{field} must be positive and finite, got "
                         f"{value!r}")
    return result


def _construct(cls: Type[Any], kwargs: Dict[str, Any],
               what: str) -> Any:
    """Build ``cls`` from spec fields, filtered to its signature.

    Inherited specs can carry fields a subclass constructor no longer
    takes (``PermutedIdentity`` reports the ``reps``/``distinct_rows`` of
    its :class:`DBeta` base); the round-trip check in the callers is what
    guarantees the dropped fields were redundant rather than meaningful.
    """
    try:
        accepted = set(inspect.signature(cls).parameters)
    except (TypeError, ValueError):  # pragma: no cover - builtins only
        accepted = set(kwargs)
    filtered = {name: value for name, value in kwargs.items()
                if name in accepted}
    try:
        return cls(**filtered)
    except (TypeError, ValueError) as exc:
        raise BadRequest(f"invalid {what} spec for "
                         f"{cls.__qualname__}: {exc}") from None


def _spec_mismatch(request: Any, canonical: Any,
                   path: str) -> Optional[str]:
    """First inconsistency between a request spec and a canonical one.

    The request may *omit* fields (constructor defaults fill them in),
    but every field it does send must round-trip to the same canonical
    value — an unknown key, a wrong value, or a value the constructor
    normalizes differently is a mismatch.  Nested dicts are checked
    recursively so partial family ``params`` work; lists (mixture
    components) must match element-wise.
    """
    if isinstance(request, dict) and isinstance(canonical, dict):
        for name, value in request.items():
            if name not in canonical:
                return f"unknown field {path}{name}"
            found = _spec_mismatch(value, canonical[name],
                                   f"{path}{name}.")
            if found is not None:
                return found
        return None
    if isinstance(request, list) and isinstance(canonical, list):
        if len(request) != len(canonical):
            return (f"{path.rstrip('.')} has {len(request)} entries, "
                    f"canonically {len(canonical)}")
        for index, (req, canon) in enumerate(zip(request, canonical)):
            found = _spec_mismatch(req, canon, f"{path}{index}.")
            if found is not None:
                return found
        return None
    if canonical_json(request) != canonical_json(canonical):
        return (f"{path.rstrip('.')} is {canonical_json(request)}, "
                f"canonically {canonical_json(canonical)}")
    return None


def _verify_round_trip(built: Any, spec: Dict[str, Any],
                       what: str) -> None:
    mismatch = _spec_mismatch(spec, built.spec(), "")
    if mismatch is not None:
        raise BadRequest(
            f"{what} spec does not round-trip through "
            f"{type(built).__qualname__}: {mismatch} "
            f"(canonical spec: {canonical_json(built.spec())})"
        )


def family_from_spec(spec: Any) -> SketchFamily:
    """Rebuild a :class:`~repro.sketch.base.SketchFamily` from its spec.

    Accepts the ``{"type": ..., "params": {...}}`` shape produced by
    :meth:`SketchFamily.spec` — the same dictionary that keys the probe
    cache, so a replayed server request hashes identically to the
    original offline computation.
    """
    if not isinstance(spec, dict):
        raise BadRequest(f"family must be a spec object, got "
                         f"{type(spec).__name__}")
    kind = spec.get("type")
    if kind not in FAMILIES:
        raise BadRequest(
            f"unknown sketch family {kind!r}; serveable families: "
            f"{', '.join(sorted(FAMILIES))}"
        )
    params = spec.get("params")
    if not isinstance(params, dict):
        raise BadRequest(f"family spec for {kind} must carry a params "
                         f"object")
    built = _construct(FAMILIES[kind], params, "family")
    _verify_round_trip(built, spec, "family")
    return built


def instance_from_spec(spec: Any) -> HardInstance:
    """Rebuild a :class:`~repro.hardinstances.HardInstance` from its spec.

    Instance specs are flat (``{"type", "n", "d", ...extras}``);
    :class:`MixtureInstance` specs nest component specs and are rebuilt
    recursively.
    """
    if not isinstance(spec, dict):
        raise BadRequest(f"instance must be a spec object, got "
                         f"{type(spec).__name__}")
    kind = spec.get("type")
    if kind == MixtureInstance.__qualname__:
        components_spec = spec.get("components")
        if not isinstance(components_spec, list) or not components_spec:
            raise BadRequest("MixtureInstance spec must carry a non-empty "
                             "components list")
        components = [instance_from_spec(comp) for comp in components_spec]
        built: HardInstance = _construct(
            MixtureInstance,
            {"components": components, "weights": spec.get("weights")},
            "instance",
        )
        _verify_round_trip(built, spec, "instance")
        return built
    if kind not in INSTANCES:
        serveable: List[str] = sorted(INSTANCES)
        serveable.append(MixtureInstance.__qualname__)
        raise BadRequest(
            f"unknown hard instance {kind!r}; serveable instances: "
            f"{', '.join(sorted(serveable))}"
        )
    kwargs = {name: value for name, value in spec.items() if name != "type"}
    built = _construct(INSTANCES[kind], kwargs, "instance")
    _verify_round_trip(built, spec, "instance")
    return built


def optional_field(payload: Dict[str, Any], field: str,
                   default: Any,
                   coerce: Optional[Callable[[Any, str], Any]] = None
                   ) -> Any:
    """An optional request field with a default and optional coercion."""
    if field not in payload or payload[field] is None:
        return default
    value = payload[field]
    return coerce(value, field) if coerce is not None else value
