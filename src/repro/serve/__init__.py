"""Sketch-as-a-service: the async estimation server.

``python -m repro.serve --port 8400 --cache-dir cache/`` exposes the
library's Monte-Carlo probes (:func:`~repro.core.tester.failure_estimate`,
:func:`~repro.core.tester.minimal_m`, …) as JSON-over-HTTP endpoints with
the guarantees the batch CLI already has — deterministic seeding, a
shared content-addressed warm cache, ledger observability — plus the two
a long-running server needs: **single-flight coalescing** of concurrent
identical requests and **bounded-inflight backpressure**.

Layering (each importable on its own):

* :mod:`repro.serve.params` — spec validation (round-trip verified);
* :mod:`repro.serve.flight` — coalescing gate + 429 backpressure;
* :mod:`repro.serve.service` — endpoint planning and execution;
* :mod:`repro.serve.http` — the asyncio HTTP/1.1 transport;
* :mod:`repro.serve.client` — a stdlib client.

Every response carries a ``replay`` envelope (normalized params, seed,
spawn key, seed fingerprint, request key): feed the same seed to the
offline API or CLI and you get the bit-identical answer — the server
adds availability and warmth, never a different result.  See
``docs/serving.md``.
"""

from .client import ServeClient, ServeError
from .flight import Draining, Overloaded, SingleFlightGate
from .http import ServeHTTP
from .params import BadRequest, family_from_spec, instance_from_spec
from .service import ENDPOINTS, EstimationService

__all__ = [
    "ENDPOINTS",
    "BadRequest",
    "Draining",
    "EstimationService",
    "Overloaded",
    "ServeClient",
    "ServeError",
    "ServeHTTP",
    "SingleFlightGate",
    "family_from_spec",
    "instance_from_spec",
]
