"""The estimation service: validated, coalesced, replayable probes.

:class:`EstimationService` is the transport-independent core of
``python -m repro.serve``: it maps endpoint names plus JSON payloads to
computations from :mod:`repro.core.tester` and
:mod:`repro.experiments.registry`, and owns everything that makes the
server more than a loop around them:

* **validation** — family/instance specs are rebuilt and round-trip
  verified (:mod:`repro.serve.params`); bad parameters raise
  :class:`~repro.serve.params.BadRequest` before any trial runs;
* **determinism** — each request derives its generator from
  ``SeedSequence(seed, spawn_key)``, so a request with spawn key ``()``
  is *the same computation* as the offline API/CLI at ``rng=seed`` and
  returns a bit-identical result; the ``replay`` envelope in every
  response (normalized params + seed fingerprint + request key) is a
  complete recipe for reproducing the answer offline;
* **coalescing and backpressure** — requests are keyed by the canonical
  hash of their normalized params + seed fingerprint and routed through a
  :class:`~repro.serve.flight.SingleFlightGate`;
* **shared warm cache** — computations run against the server's
  :class:`~repro.cache.ProbeCache`, the same on-disk store CLI runs use,
  so answers computed by either are warm for both;
* **isolation** — each request computes under its own
  :func:`~repro.observe.counters.use_counters` scope (exact per-request
  cache hit/miss tallies, no cross-request pollution of cached counter
  deltas) and logs into the shared request-ledger
  (:class:`~repro.observe.RunLedger`), which ``observe summarize``
  renders unchanged.
"""

from __future__ import annotations

import asyncio
import threading
import time
from pathlib import Path
from typing import Any, Callable, Dict, NamedTuple, Optional, Tuple, Union

import numpy as np

from ..cache import ProbeCache
from ..cache.keys import cache_key
from ..core.tester import distortion_samples, failure_estimate, minimal_m
from ..experiments.registry import experiment_ids, run_experiment
from ..observe.counters import Counters, counters, use_counters
from ..observe.ledger import RunLedger, emit_event, use_ledger
from ..sketch import sample_sketch
from ..utils.rng import seed_fingerprint
from ..utils.stats import BernoulliEstimate
from .flight import SingleFlightGate
from .params import (
    BadRequest,
    family_from_spec,
    instance_from_spec,
    optional_field,
    require,
    require_positive_float,
    require_positive_int,
)

__all__ = ["ENDPOINTS", "EstimationService"]

#: Compute endpoints served under ``POST /v1/<endpoint>``.
ENDPOINTS = (
    "sketch_apply",
    "failure_estimate",
    "distortion_samples",
    "minimal_m",
    "run_experiment",
)

_DECISIONS = ("point", "confident_pass", "confident_fail")


class _Plan(NamedTuple):
    """A validated request: coalescing key, replay envelope, computation."""

    endpoint: str
    key: str
    replay: Dict[str, Any]
    compute: Callable[[], Dict[str, Any]]


def _estimate_dict(est: BernoulliEstimate) -> Dict[str, Any]:
    """JSON shape of a :class:`~repro.utils.stats.BernoulliEstimate`."""
    return {
        "successes": int(est.successes),
        "trials": int(est.trials),
        "confidence": float(est.confidence),
        "point": float(est.point),
        "low": float(est.low),
        "high": float(est.high),
    }


def _seed_of(payload: Dict[str, Any]) -> Tuple[int, Tuple[int, ...]]:
    """Extract and validate the request's seed-derivation fields."""
    seed = payload.get("seed", 0)
    if isinstance(seed, bool) or not isinstance(seed, int) or seed < 0:
        raise BadRequest(f"seed must be a nonnegative integer, got "
                         f"{seed!r}")
    raw_key = payload.get("spawn_key", [])
    if not isinstance(raw_key, list):
        raise BadRequest("spawn_key must be a list of nonnegative "
                         "integers")
    spawn_key = []
    for item in raw_key:
        if isinstance(item, bool) or not isinstance(item, int) or item < 0:
            raise BadRequest("spawn_key must be a list of nonnegative "
                             f"integers, got {raw_key!r}")
        spawn_key.append(item)
    return seed, tuple(spawn_key)


def _require_bool(value: Any, field: str) -> bool:
    if not isinstance(value, bool):
        raise BadRequest(f"{field} must be a boolean, got {value!r}")
    return value


class EstimationService:
    """Transport-independent request handling for the serve endpoints.

    Parameters
    ----------
    cache_dir:
        Directory of the shared :class:`~repro.cache.ProbeCache`; ``None``
        disables the warm store (every request computes).
    ledger_path:
        Request-log destination.  ``None`` keeps the service silent;
        otherwise every request appends ``request_*`` events plus the
        computation's own events (cache hits, batch dispatches) —
        flushed per event, so the log is live for ``observe summarize``.
    max_inflight:
        Bound on *distinct* concurrent computations (coalesced followers
        are free); excess new work is rejected as 429/Overloaded.
    workers:
        ``workers`` setting forwarded to every trial engine call.
        ``1`` (the default) keeps each request single-process; the
        service's own concurrency comes from handling requests in
        parallel threads.
    """

    def __init__(self, cache_dir: Union[str, Path, None] = None, *,
                 ledger_path: Union[str, Path, None] = None,
                 max_inflight: int = 4, workers: int = 1) -> None:
        self._cache = ProbeCache(cache_dir) if cache_dir is not None \
            else None
        if ledger_path is not None:
            self._ledger: Optional[RunLedger] = RunLedger(
                ledger_path, buffer_lines=1, keep_events=False,
            )
        else:
            self._ledger = None
        self._gate = SingleFlightGate(max_inflight)
        self._workers = workers
        self._metrics = Counters()
        self._merge_lock = threading.Lock()
        self._closed = False

    @property
    def gate(self) -> SingleFlightGate:
        return self._gate

    @property
    def cache(self) -> Optional[ProbeCache]:
        return self._cache

    @property
    def ledger(self) -> Optional[RunLedger]:
        return self._ledger

    # ------------------------------------------------------------------
    # request handling

    async def handle(self, endpoint: str,
                     payload: Dict[str, Any]) -> Dict[str, Any]:
        """Validate, coalesce, and execute one request.

        Returns the full response envelope.  Raises
        :class:`~repro.serve.params.BadRequest`,
        :class:`~repro.serve.flight.Overloaded`, or
        :class:`~repro.serve.flight.Draining` for the transport layer to
        map onto 400/429/503.
        """
        plan = self._plan(endpoint, payload)

        async def thunk() -> Dict[str, Any]:
            return await asyncio.to_thread(self._execute, plan)

        response, coalesced = await self._gate.run(plan.key, thunk)
        self._metrics.increment("requests_total")
        self._metrics.increment(f"requests_{endpoint}")
        if coalesced:
            self._metrics.increment("requests_coalesced")
        return response

    def _plan(self, endpoint: str, payload: Any) -> _Plan:
        if endpoint not in ENDPOINTS:
            raise BadRequest(
                f"unknown endpoint {endpoint!r}; serveable endpoints: "
                f"{', '.join(ENDPOINTS)}"
            )
        if not isinstance(payload, dict):
            raise BadRequest("request body must be a JSON object")
        seed, spawn_key = _seed_of(payload)
        seq = np.random.SeedSequence(seed, spawn_key=spawn_key)
        fingerprint = seed_fingerprint(seq)
        planner = getattr(self, f"_plan_{endpoint}")
        normalized, compute = planner(payload, seed, spawn_key)
        key = cache_key(f"serve:{endpoint}", {
            "params": normalized,
            "seed_fingerprint": fingerprint,
        })
        replay = {
            "endpoint": endpoint,
            "params": normalized,
            "seed": seed,
            "spawn_key": list(spawn_key),
            "seed_fingerprint": fingerprint,
            "key": key,
        }
        return _Plan(endpoint, key, replay, compute)

    def _request_rng(self, seed: int,
                     spawn_key: Tuple[int, ...]) -> np.random.Generator:
        """The request's generator — identical to offline ``rng=seed``
        when the spawn key is empty, since ``default_rng(seed)`` records
        exactly ``SeedSequence(seed)``."""
        return np.random.default_rng(
            np.random.SeedSequence(seed, spawn_key=spawn_key)
        )

    def _execute(self, plan: _Plan) -> Dict[str, Any]:
        """Run one planned computation (called in a worker thread).

        Scopes a request-local counter aggregate (exact cache tallies, no
        cross-request pollution of cached counter deltas) and installs
        the shared request ledger for the computation's events.
        """
        start = time.perf_counter()
        request_counters = Counters()
        key8 = plan.key[:16]
        try:
            with use_ledger(self._ledger), use_counters(request_counters):
                emit_event("request_start", endpoint=plan.endpoint,
                           key=key8)
                try:
                    value = plan.compute()
                except ValueError as exc:
                    raise BadRequest(str(exc)) from exc
                hits = request_counters.get("cache_hit")
                misses = request_counters.get("cache_miss")
                emit_event("request_done", endpoint=plan.endpoint,
                           key=key8, elapsed=time.perf_counter() - start,
                           cache_hits=hits, cache_misses=misses)
        except BaseException as exc:
            with use_ledger(self._ledger):
                emit_event("request_failed", endpoint=plan.endpoint,
                           key=key8, error=type(exc).__name__,
                           elapsed=time.perf_counter() - start)
            raise
        finally:
            with self._merge_lock:
                counters().merge(request_counters.snapshot())
        return {
            "endpoint": plan.endpoint,
            "result": value,
            "replay": plan.replay,
            "cache": {"hits": hits, "misses": misses},
        }

    # ------------------------------------------------------------------
    # endpoint planners

    def _plan_failure_estimate(
        self, payload: Dict[str, Any], seed: int,
        spawn_key: Tuple[int, ...],
    ) -> Tuple[Dict[str, Any], Callable[[], Dict[str, Any]]]:
        family = family_from_spec(require(payload, "family"))
        instance = instance_from_spec(require(payload, "instance"))
        epsilon = require_positive_float(require(payload, "epsilon"),
                                         "epsilon")
        trials = require_positive_int(require(payload, "trials"), "trials")
        fresh_sketch = _require_bool(payload.get("fresh_sketch", True),
                                     "fresh_sketch")
        batch = optional_field(payload, "batch", None,
                               require_positive_int)
        normalized = {
            "family": family.spec(),
            "instance": instance.spec(),
            "epsilon": epsilon,
            "trials": trials,
            "fresh_sketch": fresh_sketch,
            "batch": batch,
        }

        def compute() -> Dict[str, Any]:
            est = failure_estimate(
                family, instance, epsilon, trials,
                rng=self._request_rng(seed, spawn_key),
                fresh_sketch=fresh_sketch, workers=self._workers,
                cache=self._cache, batch=batch,
            )
            return _estimate_dict(est)

        return normalized, compute

    def _plan_distortion_samples(
        self, payload: Dict[str, Any], seed: int,
        spawn_key: Tuple[int, ...],
    ) -> Tuple[Dict[str, Any], Callable[[], Dict[str, Any]]]:
        family = family_from_spec(require(payload, "family"))
        instance = instance_from_spec(require(payload, "instance"))
        trials = require_positive_int(require(payload, "trials"), "trials")
        batch = optional_field(payload, "batch", None,
                               require_positive_int)
        normalized = {
            "family": family.spec(),
            "instance": instance.spec(),
            "trials": trials,
            "batch": batch,
        }

        def compute() -> Dict[str, Any]:
            values = distortion_samples(
                family, instance, trials,
                rng=self._request_rng(seed, spawn_key),
                workers=self._workers, cache=self._cache, batch=batch,
            )
            return {
                "distortions": [float(x) for x in values],
                "trials": int(values.size),
            }

        return normalized, compute

    def _plan_minimal_m(
        self, payload: Dict[str, Any], seed: int,
        spawn_key: Tuple[int, ...],
    ) -> Tuple[Dict[str, Any], Callable[[], Dict[str, Any]]]:
        family = family_from_spec(require(payload, "family"))
        instance = instance_from_spec(require(payload, "instance"))
        epsilon = require_positive_float(require(payload, "epsilon"),
                                         "epsilon")
        delta = require_positive_float(require(payload, "delta"), "delta")
        if delta >= 1.0:
            raise BadRequest(f"delta must lie in (0, 1), got {delta}")
        trials = optional_field(payload, "trials", 200,
                                require_positive_int)
        m_min = optional_field(payload, "m_min", 1, require_positive_int)
        m_max = optional_field(payload, "m_max", 1_000_000,
                               require_positive_int)
        if m_max < m_min:
            raise BadRequest(f"m_max ({m_max}) must be >= m_min ({m_min})")
        growth = optional_field(payload, "growth", 2.0,
                                require_positive_float)
        if growth <= 1.0:
            raise BadRequest(f"growth must exceed 1, got {growth}")
        decision = payload.get("decision", "point")
        if decision not in _DECISIONS:
            raise BadRequest(
                f"decision must be one of {', '.join(_DECISIONS)}; got "
                f"{decision!r}"
            )
        normalized = {
            "family": family.spec(),
            "instance": instance.spec(),
            "epsilon": epsilon,
            "delta": delta,
            "trials": trials,
            "m_min": m_min,
            "m_max": m_max,
            "growth": growth,
            "decision": decision,
        }

        def compute() -> Dict[str, Any]:
            result = minimal_m(
                family, instance, epsilon, delta, trials=trials,
                m_min=m_min, m_max=m_max, growth=growth,
                decision=decision,
                rng=self._request_rng(seed, spawn_key),
                workers=self._workers, cache=self._cache,
            )
            return {
                "m_star": result.m_star,
                "found": bool(result.found),
                "pending": bool(result.pending),
                "delta": float(result.delta),
                "evaluations": [
                    {"m": int(m), **_estimate_dict(est)}
                    for m, est in result.evaluations
                ],
            }

        return normalized, compute

    def _plan_sketch_apply(
        self, payload: Dict[str, Any], seed: int,
        spawn_key: Tuple[int, ...],
    ) -> Tuple[Dict[str, Any], Callable[[], Dict[str, Any]]]:
        family = family_from_spec(require(payload, "family"))
        matrix = require(payload, "matrix")
        try:
            a = np.asarray(matrix, dtype=float)
        except (TypeError, ValueError):
            raise BadRequest("matrix must be a rectangular nested list "
                             "of numbers") from None
        if a.ndim != 2:
            raise BadRequest(f"matrix must be 2-dimensional, got "
                             f"{a.ndim} dimension(s)")
        if a.shape[0] != family.n:
            raise BadRequest(
                f"matrix has {a.shape[0]} rows but the family's ambient "
                f"dimension is n={family.n}"
            )
        if not np.all(np.isfinite(a)):
            raise BadRequest("matrix entries must be finite")
        normalized = {
            "family": family.spec(),
            "matrix": a.tolist(),
        }

        def compute() -> Dict[str, Any]:
            sketch = sample_sketch(
                family, self._request_rng(seed, spawn_key),
            )
            out = np.asarray(sketch.apply(a))
            return {
                "result": out.tolist(),
                "shape": [int(dim) for dim in out.shape],
            }

        return normalized, compute

    def _plan_run_experiment(
        self, payload: Dict[str, Any], seed: int,
        spawn_key: Tuple[int, ...],
    ) -> Tuple[Dict[str, Any], Callable[[], Dict[str, Any]]]:
        experiment = require(payload, "experiment")
        known = experiment_ids()
        if experiment not in known:
            raise BadRequest(
                f"unknown experiment {experiment!r}; serveable "
                f"experiments: {', '.join(known)}"
            )
        scale = optional_field(payload, "scale", 1.0,
                               require_positive_float)
        batch = optional_field(payload, "batch", None,
                               require_positive_int)
        normalized = {
            "experiment": experiment,
            "scale": scale,
            "batch": batch,
        }

        def compute() -> Dict[str, Any]:
            result = run_experiment(
                experiment, scale=scale,
                rng=self._request_rng(seed, spawn_key),
                workers=self._workers, cache=self._cache, batch=batch,
            )
            return result.to_dict()

        return normalized, compute

    # ------------------------------------------------------------------
    # introspection endpoints

    def healthz(self) -> Dict[str, Any]:
        """Liveness payload for ``GET /healthz``."""
        return {
            "status": "draining" if self._gate.draining else "ok",
            "inflight": self._gate.inflight,
            "max_inflight": self._gate.max_inflight,
            "endpoints": list(ENDPOINTS),
        }

    def metrics(self) -> Dict[str, Any]:
        """Counter snapshot for ``GET /metrics``.

        ``counters`` is the process-global aggregate (every request's
        delta is merged in after it completes); ``server`` is the
        request-level bookkeeping (totals, per-endpoint, coalesced,
        rejected).
        """
        with self._merge_lock:
            aggregate = counters().snapshot()
        return {
            "counters": aggregate,
            "server": self._metrics.as_dict(),
            "inflight": self._gate.inflight,
            "max_inflight": self._gate.max_inflight,
            "draining": self._gate.draining,
        }

    def note_rejected(self) -> None:
        """Record one backpressure rejection (called by the transport)."""
        self._metrics.increment("requests_rejected")
        with use_ledger(self._ledger):
            emit_event("request_rejected")

    # ------------------------------------------------------------------
    # lifecycle

    async def drain(self) -> None:
        """Refuse new computations and wait for in-flight ones."""
        await self._gate.drain()

    def close(self) -> None:
        """Flush and release the ledger and cache (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._ledger is not None:
            self._ledger.close()
        if self._cache is not None:
            self._cache.close()
