"""Minimal asyncio HTTP/1.1 transport for the estimation service.

A deliberately small stdlib-only server — request line, headers,
``Content-Length`` body, one JSON response, connection closed — because
the service's value is in :mod:`repro.serve.service`, not in HTTP
plumbing.  Routes:

* ``GET /healthz`` — liveness + inflight gauge;
* ``GET /metrics`` — counter snapshot (global + server bookkeeping);
* ``POST /v1/<endpoint>`` — one of
  :data:`repro.serve.service.ENDPOINTS`, JSON body in, JSON envelope out.

Error mapping: validation failures → 400, unknown path → 404, wrong
method → 405, backpressure → **429 with a ``Retry-After`` header**,
draining → 503, anything else → 500.  Response bodies are serialized
with sorted keys and ``allow_nan=False``, so a response's bytes are a
deterministic function of its payload — the property the warm-cache
byte-identity checks rely on.

Shutdown is graceful: :meth:`ServeHTTP.shutdown` stops the listener,
lets every accepted connection finish (in-flight computations drain via
the single-flight gate), then closes the service.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Set, Tuple

from ..utils.serialization import json_default
from .flight import Draining, Overloaded
from .params import BadRequest
from .service import ENDPOINTS, EstimationService

__all__ = ["ServeHTTP", "encode_body"]

_MAX_BODY_BYTES = 64 * 1024 * 1024
_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def encode_body(payload: Dict[str, Any]) -> bytes:
    """Canonical response bytes: sorted keys, strict JSON, UTF-8."""
    return json.dumps(payload, sort_keys=True, allow_nan=False,
                      default=json_default).encode("utf-8")


class ServeHTTP:
    """Asyncio stream server binding an :class:`EstimationService`."""

    def __init__(self, service: EstimationService,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self._service = service
        self._host = host
        self._port = port
        self._server: Optional["asyncio.base_events.Server"] = None
        self._connections: Set["asyncio.Task[None]"] = set()

    @property
    def service(self) -> EstimationService:
        return self._service

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — resolves ``port=0`` requests."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not started")
        host, port = self._server.sockets[0].getsockname()[:2]
        return str(host), int(port)

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port,
        )

    async def serve_until(self, stop: "asyncio.Event") -> None:
        """Serve until ``stop`` is set, then shut down gracefully."""
        if self._server is None:
            await self.start()
        await stop.wait()
        await self.shutdown()

    async def shutdown(self) -> None:
        """Stop accepting, drain connections and computations, close."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        while self._connections:
            await asyncio.gather(*list(self._connections),
                                 return_exceptions=True)
        await self._service.drain()
        self._service.close()

    # ------------------------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            await self._handle_request(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover - peer went away
                pass

    async def _handle_request(self, reader: asyncio.StreamReader,
                              writer: asyncio.StreamWriter) -> None:
        request_line = (await reader.readline()).decode(
            "latin-1").rstrip("\r\n")
        if not request_line:
            return
        parts = request_line.split(" ")
        if len(parts) != 3:
            await self._respond(writer, 400,
                                {"error": "malformed request line"})
            return
        method, path, _version = parts
        headers: Dict[str, str] = {}
        while True:
            line = (await reader.readline()).decode("latin-1")
            if line in ("\r\n", "\n", ""):
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            await self._respond(writer, 400,
                                {"error": "bad Content-Length"})
            return
        if length < 0 or length > _MAX_BODY_BYTES:
            await self._respond(writer, 400,
                                {"error": "unacceptable Content-Length"})
            return
        body = await reader.readexactly(length) if length else b""
        status, payload, extra = await self._dispatch(method, path, body)
        await self._respond(writer, status, payload, extra)

    async def _dispatch(
        self, method: str, path: str, body: bytes,
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "healthz is GET-only"}, {}
            return 200, self._service.healthz(), {}
        if path == "/metrics":
            if method != "GET":
                return 405, {"error": "metrics is GET-only"}, {}
            return 200, self._service.metrics(), {}
        if not path.startswith("/v1/"):
            return 404, {"error": f"unknown path {path!r}"}, {}
        endpoint = path[len("/v1/"):]
        if endpoint not in ENDPOINTS:
            return 404, {
                "error": f"unknown endpoint {endpoint!r}",
                "endpoints": list(ENDPOINTS),
            }, {}
        if method != "POST":
            return 405, {"error": "compute endpoints are POST-only"}, {}
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return 400, {"error": f"request body is not JSON: {exc}"}, {}
        try:
            response = await self._service.handle(endpoint, payload)
        except BadRequest as exc:
            return 400, {"error": str(exc)}, {}
        except Overloaded as exc:
            self._service.note_rejected()
            return 429, {
                "error": str(exc),
                "retry_after": exc.retry_after,
            }, {"Retry-After": f"{max(1, round(exc.retry_after))}"}
        except Draining as exc:
            return 503, {"error": str(exc)}, {}
        except Exception as exc:  # noqa: BLE001 - boundary: report, not die
            return 500, {
                "error": f"{type(exc).__name__}: {exc}",
            }, {}
        return 200, response, {}

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       payload: Dict[str, Any],
                       extra_headers: Optional[Dict[str, str]] = None
                       ) -> None:
        body = encode_body(payload)
        reason = _STATUS_TEXT.get(status, "Unknown")
        lines = [
            f"HTTP/1.1 {status} {reason}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        for name, value in (extra_headers or {}).items():
            lines.append(f"{name}: {value}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head + body)
        await writer.drain()
