"""Small stdlib client for the estimation service.

``http.client`` only — usable from any Python without this package's
dependencies installed (copy the file, point it at a server).  One
request per connection, matching the server's ``Connection: close``
discipline.

Usage::

    client = ServeClient("http://127.0.0.1:8400")
    client.healthz()
    response = client.call("failure_estimate", {
        "family": {"type": "CountSketch", "params": {"m": 16, "n": 64}},
        "instance": {"type": "PermutedIdentity", "n": 64, "d": 4},
        "epsilon": 0.5, "trials": 50, "seed": 0,
    })
    response["result"]            # the estimate
    response["replay"]            # offline-reproduction recipe
    response["cache"]             # per-request hit/miss tally
"""

from __future__ import annotations

import http.client
import json
import urllib.parse
from typing import Any, Dict, Optional

__all__ = ["ServeClient", "ServeError"]


class ServeError(RuntimeError):
    """A non-200 server response.

    ``status`` is the HTTP code; ``payload`` the decoded error body;
    ``retry_after`` the parsed ``Retry-After`` hint on 429s (seconds),
    else ``None``.
    """

    def __init__(self, status: int, payload: Dict[str, Any],
                 retry_after: Optional[float] = None) -> None:
        super().__init__(
            f"server returned {status}: "
            f"{payload.get('error', payload)}"
        )
        self.status = status
        self.payload = payload
        self.retry_after = retry_after


class ServeClient:
    """JSON-over-HTTP client for ``python -m repro.serve``."""

    def __init__(self, base_url: str, timeout: float = 600.0) -> None:
        parsed = urllib.parse.urlsplit(base_url)
        if parsed.scheme not in ("http", ""):
            raise ValueError(
                f"only http:// urls are supported, got {base_url!r}"
            )
        netloc = parsed.netloc or parsed.path
        host, _, port = netloc.partition(":")
        if not host:
            raise ValueError(f"no host in base url {base_url!r}")
        self._host = host
        self._port = int(port) if port else 80
        self._timeout = timeout

    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        connection = http.client.HTTPConnection(
            self._host, self._port, timeout=self._timeout,
        )
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body, sort_keys=True,
                                     allow_nan=False).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=payload,
                               headers=headers)
            response = connection.getresponse()
            raw = response.read()
            decoded: Dict[str, Any] = json.loads(raw.decode("utf-8"))
            if response.status != 200:
                retry_after: Optional[float] = None
                header = response.getheader("Retry-After")
                if header is not None:
                    try:
                        retry_after = float(header)
                    except ValueError:
                        retry_after = None
                raise ServeError(response.status, decoded, retry_after)
            return decoded
        finally:
            connection.close()

    def healthz(self) -> Dict[str, Any]:
        """``GET /healthz``."""
        return self._request("GET", "/healthz")

    def metrics(self) -> Dict[str, Any]:
        """``GET /metrics``."""
        return self._request("GET", "/metrics")

    def call(self, endpoint: str,
             payload: Dict[str, Any]) -> Dict[str, Any]:
        """``POST /v1/<endpoint>`` with a JSON payload."""
        return self._request("POST", f"/v1/{endpoint}", payload)
