"""Single-flight coalescing and backpressure for the estimation service.

Monte-Carlo probes are expensive and content-addressed: two requests with
the same canonical key are *guaranteed* the same answer (that is the
cache's correctness contract), so running them concurrently is pure
waste.  The :class:`SingleFlightGate` holds a ``dict[key,
asyncio.Future]`` pending pool — the first request for a key becomes the
**leader** and computes; every request that arrives for the same key
while the leader is in flight becomes a **follower** and awaits the
leader's future, consuming no compute slot.

Backpressure is a bound on *leaders only*: a new computation beyond
``max_inflight`` is rejected with :class:`Overloaded` (the HTTP layer
renders a 429 with ``Retry-After``), while followers always attach —
rejecting a request whose answer is already being computed would be
strictly worse for everyone.

Shutdown support: :meth:`SingleFlightGate.drain` stops new leaders
(:class:`Draining`) and waits for every in-flight future, so a server can
finish the work it accepted before exiting.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, Dict, List, Tuple

__all__ = ["Draining", "Overloaded", "SingleFlightGate"]


class Overloaded(RuntimeError):
    """Too many distinct computations in flight (HTTP 429).

    ``retry_after`` is the hint, in seconds, rendered as the response's
    ``Retry-After`` header.
    """

    def __init__(self, inflight: int, limit: int,
                 retry_after: float = 1.0) -> None:
        super().__init__(
            f"{inflight} computations in flight (limit {limit}); "
            f"retry in {retry_after:g}s"
        )
        self.inflight = inflight
        self.limit = limit
        self.retry_after = retry_after


class Draining(RuntimeError):
    """The gate is shutting down and accepts no new computations."""

    def __init__(self) -> None:
        super().__init__("service is draining; no new computations "
                         "accepted")


class SingleFlightGate:
    """Coalesce concurrent identical computations; bound distinct ones."""

    def __init__(self, max_inflight: int) -> None:
        if max_inflight < 1:
            raise ValueError(
                f"max_inflight must be positive, got {max_inflight}"
            )
        self._max_inflight = max_inflight
        self._pending: Dict[str, "asyncio.Future[Any]"] = {}
        self._draining = False

    @property
    def inflight(self) -> int:
        """Number of distinct computations currently executing."""
        return len(self._pending)

    @property
    def max_inflight(self) -> int:
        return self._max_inflight

    @property
    def draining(self) -> bool:
        return self._draining

    async def run(self, key: str,
                  thunk: Callable[[], Awaitable[Any]]
                  ) -> Tuple[Any, bool]:
        """Run ``thunk`` under ``key``; returns ``(result, coalesced)``.

        ``coalesced`` is ``True`` when this call attached to another
        caller's in-flight computation instead of executing ``thunk``.
        A leader's exception propagates to every follower.  Raises
        :class:`Overloaded` when a *new* computation would exceed the
        inflight bound, and :class:`Draining` after :meth:`drain` began —
        followers are exempt from both.
        """
        existing = self._pending.get(key)
        if existing is not None:
            return await asyncio.shield(existing), True
        if self._draining:
            raise Draining()
        if len(self._pending) >= self._max_inflight:
            raise Overloaded(len(self._pending), self._max_inflight)
        future: "asyncio.Future[Any]" = \
            asyncio.get_running_loop().create_future()
        self._pending[key] = future
        try:
            result = await thunk()
        except BaseException as exc:
            future.set_exception(exc)
            # Retrieve once so a leader-only failure (zero followers)
            # never logs an "exception was never retrieved" warning.
            future.exception()
            raise
        else:
            future.set_result(result)
            return result, False
        finally:
            self._pending.pop(key, None)

    async def drain(self) -> None:
        """Refuse new leaders and wait for all in-flight computations.

        Idempotent; followers already attached to pending futures are
        unaffected and complete normally.
        """
        self._draining = True
        while self._pending:
            futures: List["asyncio.Future[Any]"] = \
                list(self._pending.values())
            await asyncio.gather(*futures, return_exceptions=True)
            # A leader removes its key only after its future resolves;
            # yield once so the pending pool reflects those removals.
            await asyncio.sleep(0)
