"""Mixture hard instances used in Sections 3 and 5.

* :class:`MixtureInstance` — a general finite mixture of hard instances.
* :func:`section3_mixture` — the ``s = 1`` hard distribution ``D``:
  ``D_1`` with probability 1/2 and ``D_{8ε}`` with probability 1/2.
* :func:`section5_mixture` — the distribution ``D̃`` used to remove the
  abundance assumption: ``D_1`` with probability 1/2, else ``D_{2^{-ℓ}}``
  for ``ℓ`` uniform in ``{1, …, L}``, ``L = log₂(1/ε) − 3``.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from ..utils.rng import RngLike, as_generator
from ..utils.validation import check_epsilon
from .dbeta import DBeta, HardDraw, HardInstance

__all__ = [
    "MixtureInstance",
    "section3_mixture",
    "section5_mixture",
    "section5_level_count",
]


class MixtureInstance(HardInstance):
    """A finite mixture of hard instances over the same ``(n, d)``.

    Parameters
    ----------
    components:
        The component distributions; all must share ``n`` and ``d``.
    weights:
        Mixing probabilities; uniform when omitted.
    """

    def __init__(self, components: Sequence[HardInstance],
                 weights: Optional[Sequence[float]] = None,
                 label: Optional[str] = None):
        if not components:
            raise ValueError("mixture needs at least one component")
        n, d = components[0].n, components[0].d
        for comp in components:
            if (comp.n, comp.d) != (n, d):
                raise ValueError(
                    "all mixture components must share (n, d); got "
                    f"({comp.n}, {comp.d}) vs ({n}, {d})"
                )
        super().__init__(n, d)
        self._components = list(components)
        if weights is None:
            weights = [1.0 / len(components)] * len(components)
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (len(components),):
            raise ValueError("one weight per component required")
        if np.any(weights < 0) or not math.isclose(weights.sum(), 1.0,
                                                   rel_tol=1e-9):
            raise ValueError("weights must be nonnegative and sum to 1")
        self._weights = weights
        self._label = label

    @property
    def components(self) -> list:
        return list(self._components)

    @property
    def weights(self) -> np.ndarray:
        return self._weights.copy()

    @property
    def name(self) -> str:
        if self._label:
            return self._label
        inner = ", ".join(c.name for c in self._components)
        return f"Mixture({inner})"

    def spec(self) -> dict:
        base = super().spec()
        base.update(
            components=[comp.spec() for comp in self._components],
            weights=[float(w) for w in self._weights],
        )
        return base

    def sample_draw(self, rng: RngLike = None) -> HardDraw:
        gen = as_generator(rng)
        index = int(gen.choice(len(self._components), p=self._weights))
        return self._components[index].sample_draw(gen)

    def sample_support(self, rng: RngLike = None):
        """Support-only draw: same component pick, then the component's
        own ``sample_support`` — stream-identical to :meth:`sample_draw`."""
        gen = as_generator(rng)
        index = int(gen.choice(len(self._components), p=self._weights))
        return self._components[index].sample_support(gen)


def section3_mixture(n: int, d: int, epsilon: float) -> MixtureInstance:
    """Section 3's hard distribution for ``s = 1``.

    ``D_1`` w.p. 1/2 and ``D_{8ε}`` w.p. 1/2; the latter's ``1/(8ε)``
    identity copies are rounded to the nearest integer.  Theorem 8 requires
    ``n ≥ K d²/(ε² δ)``; the caller chooses ``n`` (see
    :func:`repro.core.bounds.theorem8_n`).
    """
    epsilon = check_epsilon(epsilon, upper=1.0 / 8.0)
    reps = max(1, int(round(1.0 / (8.0 * epsilon))))
    d1 = DBeta(n=n, d=d, reps=1)
    d8eps = DBeta(n=n, d=d, reps=reps)
    return MixtureInstance([d1, d8eps], label=f"D_section3[eps={epsilon:g}]")


def section5_level_count(epsilon: float) -> int:
    """``L = log₂(1/ε) − 3`` (at least 1), the number of dyadic levels."""
    epsilon = check_epsilon(epsilon)
    return max(1, int(math.floor(math.log2(1.0 / epsilon))) - 3)


def section5_mixture(n: int, d: int, epsilon: float) -> MixtureInstance:
    """Section 5's hard distribution ``D̃`` for ``s ≤ 1/(9ε)``.

    With probability 1/2 draw from ``D_1``; with probability 1/2 draw from
    ``D_{2^{-ℓ}}`` for ``ℓ`` uniform over ``{1, …, L}``.
    """
    epsilon = check_epsilon(epsilon)
    levels = section5_level_count(epsilon)
    components = [DBeta(n=n, d=d, reps=1)]
    weights = [0.5]
    for level in range(1, levels + 1):
        components.append(DBeta(n=n, d=d, reps=2**level))
        weights.append(0.5 / levels)
    return MixtureInstance(components, weights,
                           label=f"D_tilde[eps={epsilon:g}, L={levels}]")
