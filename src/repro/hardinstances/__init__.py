"""Hard-instance distributions from the paper (Definition 2 and mixtures)."""

from .dbeta import DBeta, HardDraw, HardInstance
from .identity import PermutedIdentity, SpikedSubspace
from .mixtures import (
    MixtureInstance,
    section3_mixture,
    section5_level_count,
    section5_mixture,
)

__all__ = [
    "DBeta",
    "HardDraw",
    "HardInstance",
    "PermutedIdentity",
    "SpikedSubspace",
    "MixtureInstance",
    "section3_mixture",
    "section5_level_count",
    "section5_mixture",
]
