"""The paper's hard-instance distribution ``D_β`` (Definition 2).

``U = V W`` with ``V ∈ R^{n × d/β}`` having i.i.d. columns uniform over the
``n`` canonical basis vectors, and ``W ∈ R^{d/β × d}`` placing ``1/β``
Rademacher entries ``σ_j √β`` in column ``i`` at rows
``(i-1)/β + 1, …, i/β``.  Concretely: column ``i`` of ``U`` is a sum of
``1/β`` random signed canonical basis vectors scaled by ``√β`` — the
"replicated identity" instance described in Section 1.1.

We parameterize by the integer ``reps = 1/β`` (copies of the identity), so
``β = 1/reps`` is exact.  Conditioned on the ``V``-columns being distinct
(the paper's event ``B̄``), ``U`` is an isometry.  The sampler can enforce
distinctness directly (default, matching the conditioning) or sample
i.i.d. columns like the raw definition.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..utils.rng import RngLike, as_generator
from ..utils.validation import check_positive_int

__all__ = ["HardInstance", "HardDraw", "SupportDraw", "DBeta",
           "assemble_basis"]


def assemble_basis(n: int, d: int, rows: np.ndarray,
                   signs: np.ndarray, reps: int) -> np.ndarray:
    """Build ``U = VW`` directly from the support and signs.

    Equivalent to ``V @ W`` but linear-time: column ``i`` receives
    ``signs[j]/√reps`` at row ``rows[j]`` for each ``j`` in block ``i``.
    Coinciding rows within a block accumulate, matching ``U = VW``.
    Shared by the eager draw path and :class:`SupportDraw`'s lazy
    assembly so both produce bit-identical matrices.
    """
    u = np.zeros((n, d))
    scale = 1.0 / np.sqrt(reps)
    cols = np.repeat(np.arange(d), reps)
    np.add.at(u, (rows, cols), signs * scale)
    return u


@dataclass(frozen=True)
class HardDraw:
    """A sampled hard-instance matrix with its generating randomness.

    Attributes
    ----------
    u:
        The ``n × d`` matrix ``U = VW``.
    rows:
        Array of shape ``(reps * d,)``: ``rows[j]`` is the (single) nonzero
        row of column ``j`` of ``V`` — the indices the paper calls
        ``C_1, …, C_{d/β}``.
    signs:
        Array of shape ``(reps * d,)``: the Rademacher variables ``σ_j``.
    reps:
        Copies of the identity, ``1/β``.
    component:
        Label of the mixture component this draw came from (or ``None``).
    """

    u: np.ndarray
    rows: np.ndarray
    signs: np.ndarray
    reps: int
    component: Optional[str] = None
    #: True when ``u`` is fully determined by ``rows``/``signs``/``reps``
    #: (the ``D_β`` structure), enabling the fast sketched-basis path.
    structured: bool = True

    @property
    def n(self) -> int:
        return self.u.shape[0]

    @property
    def d(self) -> int:
        return self.u.shape[1]

    @property
    def beta(self) -> float:
        """The distribution parameter ``β = 1/reps``."""
        return 1.0 / self.reps

    def v_matrix(self) -> np.ndarray:
        """Materialize ``V ∈ R^{n × reps·d}`` (one 1 per column)."""
        v = np.zeros((self.n, self.rows.size))
        v[self.rows, np.arange(self.rows.size)] = 1.0
        return v

    def w_matrix(self) -> np.ndarray:
        """Materialize ``W ∈ R^{reps·d × d}``."""
        reps, d = self.reps, self.d
        w = np.zeros((reps * d, d))
        scale = 1.0 / np.sqrt(reps)
        for i in range(d):
            block = slice(i * reps, (i + 1) * reps)
            w[block, i] = self.signs[block] * scale
        return w

    def sketched_basis(self, pi) -> np.ndarray:
        """Compute ``ΠU`` without materializing ``U``.

        For structured draws, ``ΠU = (ΠV)W`` needs only the ``reps·d``
        columns of ``Π`` that ``V`` selects — a huge saving when the
        ambient dimension is large.  Falls back to the dense product for
        unstructured draws.
        """
        import scipy.sparse as sp  # local import to keep module light

        if not self.structured:
            product = pi @ self.u
            if sp.issparse(product):
                product = product.toarray()
            return np.asarray(product, dtype=float)
        if sp.issparse(pi):
            sub = np.asarray(pi.tocsc()[:, self.rows].toarray(), dtype=float)
        else:
            sub = np.asarray(pi, dtype=float)[:, self.rows]
        return self.combine_sketched_columns(sub)

    def combine_sketched_columns(self, sub: np.ndarray) -> np.ndarray:
        """Finish ``ΠU = (ΠV)W`` given the gathered columns ``ΠV``.

        ``sub`` must be the dense ``m × reps·d`` gather ``Π[:, rows]``.
        Kept as a separate step so matrix-free kernels can produce ``sub``
        their own way and still share this exact arithmetic (bit-for-bit).
        """
        scale = 1.0 / np.sqrt(self.reps)
        scaled = sub * (self.signs * scale)
        m = scaled.shape[0]
        return scaled.reshape(m, self.d, self.reps).sum(axis=2)


class SupportDraw:
    """A structured ``D_β`` draw that materializes ``u`` only on demand.

    Duck-type compatible with :class:`HardDraw` (``rows``/``signs``/
    ``reps``/``structured`` plus the sketched-basis arithmetic), but the
    ``n × d`` matrix — the one allocation a structured trial never needs —
    is assembled lazily on first access to :attr:`u`.  The batched trial
    engine samples these so a chunk of ``B`` draws costs ``B`` small index
    arrays instead of ``B`` dense matrices.

    Assembling on access uses :func:`assemble_basis`, so a ``SupportDraw``
    and a :class:`HardDraw` from the same stream hold bit-identical
    matrices.
    """

    #: Same flag :class:`HardDraw` carries: ``u`` is fully determined by
    #: ``rows``/``signs``/``reps``, enabling the fast sketched-basis path.
    structured = True

    def __init__(self, n: int, d: int, rows: np.ndarray, signs: np.ndarray,
                 reps: int, component: Optional[str] = None) -> None:
        self._n = int(n)
        self._d = int(d)
        self.rows = rows
        self.signs = signs
        self.reps = int(reps)
        self.component = component
        self._u: Optional[np.ndarray] = None

    @property
    def n(self) -> int:
        return self._n

    @property
    def d(self) -> int:
        return self._d

    @property
    def beta(self) -> float:
        """The distribution parameter ``β = 1/reps``."""
        return 1.0 / self.reps

    @property
    def u(self) -> np.ndarray:
        """The ``n × d`` matrix ``U = VW``, assembled on first access."""
        if self._u is None:
            self._u = assemble_basis(
                self._n, self._d, self.rows, self.signs, self.reps
            )
        return self._u

    # The pinned sketched-basis arithmetic is shared with HardDraw by
    # reusing its (plain-function) methods: they only touch the duck
    # interface above, and sharing rules out bit-level divergence.
    v_matrix = HardDraw.v_matrix
    w_matrix = HardDraw.w_matrix
    sketched_basis = HardDraw.sketched_basis
    combine_sketched_columns = HardDraw.combine_sketched_columns


class HardInstance(abc.ABC):
    """A distribution over ``n × d`` test matrices (hard instances)."""

    def __init__(self, n: int, d: int):
        self._n = check_positive_int(n, "n")
        self._d = check_positive_int(d, "d")

    @property
    def n(self) -> int:
        return self._n

    @property
    def d(self) -> int:
        return self._d

    @property
    def name(self) -> str:
        return type(self).__name__

    def spec(self) -> dict:
        """Canonical JSON-able description of this distribution.

        The hard-instance component of content-addressed cache keys
        (:mod:`repro.cache`): two instances with equal specs must be the
        same distribution, so subclasses with extra parameters extend the
        returned dictionary.
        """
        return {"type": type(self).__qualname__, "n": self._n, "d": self._d}

    @abc.abstractmethod
    def sample_draw(self, rng: RngLike = None) -> HardDraw:
        """Draw a matrix together with its generating randomness."""

    def sample_support(self, rng: RngLike = None):
        """Draw only the generating randomness, deferring ``u`` if possible.

        Consumes **exactly** the same random variates as
        :meth:`sample_draw` at the same stream (matrix assembly never
        draws randomness), so the two are interchangeable seed-for-seed.
        Structured instances override to return a :class:`SupportDraw`
        that skips the dense ``n × d`` allocation; this default simply
        falls back to the full draw.
        """
        return self.sample_draw(rng)

    def sample(self, rng: RngLike = None) -> np.ndarray:
        """Draw just the ``n × d`` matrix ``U``."""
        return self.sample_draw(rng).u

    def __repr__(self) -> str:
        return f"{self.name}(n={self._n}, d={self._d})"


class DBeta(HardInstance):
    """Definition 2's ``D_β`` with ``β = 1/reps``.

    Parameters
    ----------
    n, d:
        Ambient dimension and subspace dimension.
    reps:
        Number of identity copies, ``1/β``; ``reps = 1`` is ``D_1`` (the
        signed-permuted identity) and larger ``reps`` spreads each
        dimension's mass over ``reps`` coordinates of magnitude ``√β``.
    distinct_rows:
        When True (default), the ``reps·d`` rows are sampled without
        replacement, i.e. the draw is conditioned on the paper's event
        ``B̄`` and ``U`` is exactly an isometry.  When False, rows are
        i.i.d. uniform as in the raw Definition 2.
    """

    def __init__(self, n: int, d: int, reps: int = 1,
                 distinct_rows: bool = True):
        super().__init__(n, d)
        self._reps = check_positive_int(reps, "reps")
        if self._reps * self._d > self._n:
            raise ValueError(
                f"need n ≥ reps·d for an isometry, got n={n}, "
                f"reps·d={self._reps * self._d}"
            )
        self._distinct_rows = bool(distinct_rows)

    @property
    def reps(self) -> int:
        """Identity copies ``1/β``."""
        return self._reps

    @property
    def beta(self) -> float:
        """The distribution parameter ``β``."""
        return 1.0 / self._reps

    @property
    def distinct_rows(self) -> bool:
        return self._distinct_rows

    @property
    def name(self) -> str:
        return f"DBeta[reps={self._reps}]"

    def spec(self) -> dict:
        base = super().spec()
        base.update(reps=self._reps, distinct_rows=self._distinct_rows)
        return base

    @classmethod
    def from_beta(cls, n: int, d: int, beta: float,
                  distinct_rows: bool = True) -> "DBeta":
        """Construct from ``β``, rounding ``1/β`` to the nearest integer ≥ 1."""
        if not (0 < beta <= 1):
            raise ValueError(f"beta must lie in (0, 1], got {beta}")
        reps = max(1, int(round(1.0 / beta)))
        return cls(n=n, d=d, reps=reps, distinct_rows=distinct_rows)

    def sample_draw(self, rng: RngLike = None) -> HardDraw:
        gen = as_generator(rng)
        rows, signs = self._sample_support_arrays(gen)
        u = self._assemble(rows, signs)
        return HardDraw(u=u, rows=rows, signs=signs, reps=self._reps,
                        component=self.name)

    def sample_support(self, rng: RngLike = None) -> SupportDraw:
        """Structured draw without the dense ``U`` (see :class:`SupportDraw`).

        Identical RNG consumption to :meth:`sample_draw`; only the eager
        matrix assembly (which consumes no randomness) is skipped.
        """
        gen = as_generator(rng)
        rows, signs = self._sample_support_arrays(gen)
        return SupportDraw(n=self._n, d=self._d, rows=rows, signs=signs,
                           reps=self._reps, component=self.name)

    def _sample_support_arrays(self, gen: np.random.Generator):
        count = self._reps * self._d
        if self._distinct_rows:
            rows = gen.choice(self._n, size=count, replace=False)
        else:
            rows = gen.integers(0, self._n, size=count)
        signs = gen.choice((-1.0, 1.0), size=count)
        return rows, signs

    def _assemble(self, rows: np.ndarray, signs: np.ndarray) -> np.ndarray:
        """Build ``U`` from the support (see :func:`assemble_basis`)."""
        return assemble_basis(self._n, self._d, rows, signs, self._reps)
