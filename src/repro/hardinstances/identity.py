"""Simpler hard instances predating the paper, kept as baselines.

* :class:`PermutedIdentity` — the NN13b instance: ``U = S·V`` where ``V``
  is a row-permuted ``(I_d 0)ᵀ`` and ``S`` a Rademacher diagonal.  This is
  ``D_1`` in the paper's notation; it forces ``m = Ω(d²)`` for ``s = 1``
  via the birthday paradox but does not see the ``1/(ε²δ)`` factor.
* :class:`SpikedSubspace` — a planted instance interpolating between a
  coherent (canonical-coordinates) and an incoherent (random rotation)
  subspace; used to show that row sampling fails on coherent inputs while
  oblivious sketches do not care.
"""

from __future__ import annotations

import numpy as np

from ..linalg.subspace import orthonormal_basis
from ..utils.rng import RngLike, as_generator
from ..utils.validation import check_in_range
from .dbeta import DBeta, HardDraw, HardInstance

__all__ = ["PermutedIdentity", "SpikedSubspace"]


class PermutedIdentity(DBeta):
    """NN13b's hard instance — exactly ``D_1`` (one identity copy)."""

    def __init__(self, n: int, d: int):
        super().__init__(n=n, d=d, reps=1, distinct_rows=True)

    @property
    def name(self) -> str:
        return "PermutedIdentity"


class SpikedSubspace(HardInstance):
    """Interpolation between coherent and incoherent subspaces.

    With coherence weight ``alpha``, each basis column is
    ``√α · e_{r_i} + √(1-α) · g_i/‖g_i‖`` re-orthonormalized, where
    ``r_i`` are distinct random coordinates and ``g_i`` Gaussian.  ``α = 1``
    is the coherent extreme (a permuted identity), ``α = 0`` a random
    subspace.
    """

    def __init__(self, n: int, d: int, alpha: float = 0.5):
        super().__init__(n, d)
        if d > n:
            raise ValueError(f"d ({d}) must not exceed n ({n})")
        self._alpha = check_in_range(alpha, "alpha", 0.0, 1.0)

    @property
    def alpha(self) -> float:
        """Coherence weight in [0, 1]."""
        return self._alpha

    @property
    def name(self) -> str:
        return f"SpikedSubspace[alpha={self._alpha:g}]"

    def spec(self) -> dict:
        base = super().spec()
        base["alpha"] = self._alpha
        return base

    def sample_draw(self, rng: RngLike = None) -> HardDraw:
        gen = as_generator(rng)
        rows = gen.choice(self.n, size=self.d, replace=False)
        signs = gen.choice((-1.0, 1.0), size=self.d)
        spike = np.zeros((self.n, self.d))
        spike[rows, np.arange(self.d)] = signs
        if self._alpha >= 1.0:
            u = spike
        else:
            g = gen.standard_normal((self.n, self.d))
            g /= np.linalg.norm(g, axis=0, keepdims=True)
            mixed = np.sqrt(self._alpha) * spike + np.sqrt(1 - self._alpha) * g
            u = orthonormal_basis(mixed)
        return HardDraw(u=u, rows=rows, signs=signs, reps=1,
                        component=self.name,
                        structured=self._alpha >= 1.0)
