"""Distributed trial fan-out with deterministic shard merge.

Splits a Monte-Carlo workload across ``N`` shards so that each shard can
run in its own process (or machine), and the merged outcome is **byte
identical** to a serial run at the same seed.  The pieces:

* :func:`repro.utils.parallel.shard_spans` assigns shard ``k`` a
  contiguous slice of the trial budget; :func:`repro.utils.rng.spawn_slice`
  hands that slice the very child seed streams the serial loop would use,
  so shard boundaries never change which stream a trial consumes.
* ``failure_estimate`` / ``distortion_samples`` / ``minimal_m`` accept
  ``shard=`` (see :mod:`repro.core.tester`): resolved probes replay from
  the merged cache; the first unresolved probe computes only this shard's
  slice, stores it as a shard-partial :class:`~repro.cache.ProbeCache`
  record, and signals :class:`~repro.core.tester.ShardPending`.
* ``python -m repro.cache merge`` (:func:`repro.cache.merge_stores`)
  folds the shard stores: partial groups whose spans tile the trial range
  become the full records a serial run looks up.

:func:`sharded_call` drives the whole protocol in-process — rounds of
per-shard passes and merges until nothing is pending, then one serial
replay against the merged store whose returned values, RNG consumption,
and counter deltas are bit-identical to a never-sharded run.  Adaptive
searches (``minimal_m``) need one round per probe depth: the probe
schedule is a deterministic function of full probe outcomes, so each
round every shard replays the already-merged prefix and contributes its
slice of the next probe.

Crash recovery falls out of content addressing: a killed shard leaves at
worst a torn trailing JSONL line (tolerated on load); re-running just
that shard against the same directory skips every slice already on disk
and computes only what is missing.

Layout under ``directory``::

    shard-00/probes.jsonl   per-shard write stores (partial records)
    shard-01/probes.jsonl
    ...
    merged/probes.jsonl     folded store; the final replay reads this

Each shard pass reads through a :class:`~repro.cache.TieredProbeCache`
(its own store first, then the merged store), so re-runs and later
rounds never recompute a stored slice.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable, Optional, Tuple, Union

from .cache import ProbeCache, TieredProbeCache, merge_stores
from .core.tester import ShardPending
from .observe.counters import counters
from .observe.ledger import emit_event
from .utils.parallel import ShardSpec, normalize_shard
from .utils.validation import check_positive_int

__all__ = [
    "MERGED_DIRNAME",
    "merged_dir",
    "open_shard_cache",
    "shard_pass",
    "shard_store_dir",
    "sharded_call",
]

#: Subdirectory of a shard run's working directory holding the folded store.
MERGED_DIRNAME = "merged"

#: A sharded workload: receives a probe cache and this worker's
#: :class:`ShardSpec` (``None`` for the final serial replay) and returns
#: the run's result.  May raise :class:`ShardPending` when a probe is not
#: yet resolvable (``minimal_m`` absorbs it internally instead).
ShardedFn = Callable[[Any, Optional[ShardSpec]], Any]


def merged_dir(directory: Union[str, Path]) -> Path:
    """The folded-store directory of a shard run."""
    return Path(directory) / MERGED_DIRNAME


def shard_store_dir(directory: Union[str, Path], index: int) -> Path:
    """Shard ``index``'s private cache directory."""
    if index < 0:
        raise ValueError(f"shard index must be nonnegative, got {index}")
    return Path(directory) / f"shard-{index:02d}"


def open_shard_cache(directory: Union[str, Path],
                     index: int) -> TieredProbeCache:
    """The cache view one shard pass works through.

    Writes land in the shard's own store; lookups fall back to the merged
    store, so probes folded by earlier rounds resolve without recomputing.
    """
    return TieredProbeCache(
        ProbeCache(shard_store_dir(directory, index)),
        [ProbeCache(merged_dir(directory))],
    )


def shard_pass(fn: ShardedFn, shard: Any,
               directory: Union[str, Path]) -> Tuple[Any, int]:
    """Run one shard's pass of ``fn``; returns ``(result, pending)``.

    ``pending`` counts the probes this pass could not resolve (each has
    its slice stored for the next merge); ``result`` is ``None`` whenever
    ``pending > 0`` — a pending pass either raised
    :class:`ShardPending` outright or returned an incomplete result
    (``minimal_m`` with ``pending=True``), neither of which is usable.
    This is the unit a distributed launcher runs per worker; merging is a
    separate step (``python -m repro.cache merge``).
    """
    spec = normalize_shard(shard)
    index = 0 if spec is None else spec.index
    count = 1 if spec is None else spec.count
    cache = open_shard_cache(directory, index)
    before = counters().get("shard_pending")
    try:
        result = fn(cache, ShardSpec(index, count))
    except ShardPending:
        result = None
    finally:
        cache.close()
    pending = counters().get("shard_pending") - before
    if pending:
        result = None
    return result, pending


def sharded_call(fn: ShardedFn, shards: int, directory: Union[str, Path],
                 max_rounds: int = 256) -> Any:
    """Run ``fn`` as ``shards`` merge-coordinated passes, then replay.

    Each round runs every shard's pass (sequentially, in this process —
    a distributed launcher would run :func:`shard_pass` per worker
    instead) and folds the shard stores into the merged store.  Rounds
    repeat while any probe is pending; adaptive searches advance at least
    one probe per shard per round, so the round count is bounded by the
    deepest probe schedule.  The final call ``fn(merged_cache, None)``
    replays the whole workload serially against the fully folded store —
    every probe is a cache hit, and the returned result is byte-identical
    to a serial run at the same seed.
    """
    shards = check_positive_int(shards, "shards")
    check_positive_int(max_rounds, "max_rounds")
    directory = Path(directory)
    stores = [shard_store_dir(directory, k) for k in range(shards)]
    for round_number in range(1, max_rounds + 1):
        pending_total = 0
        for index in range(shards):
            _, pending = shard_pass(fn, ShardSpec(index, shards), directory)
            pending_total += pending
        report = merge_stores(stores, merged_dir(directory))
        emit_event(
            "shard_round", round=round_number, shards=shards,
            pending=pending_total, folded=report.folded_groups,
            unmerged=report.pending_groups,
        )
        if pending_total == 0:
            break
    else:
        raise RuntimeError(
            f"sharded workload did not settle within {max_rounds} merge "
            f"rounds — a probe schedule deeper than max_rounds, or a "
            f"shard that never contributes its slice"
        )
    cache = ProbeCache(merged_dir(directory))
    try:
        return fn(cache, None)
    finally:
        cache.close()
