"""Cache maintenance CLI: ``python -m repro.cache merge MERGED SHARD...``.

Folds shard probe stores (see :mod:`repro.shard`) into one merged cache
directory via :func:`repro.cache.merge.merge_stores`.  Exit codes:

* ``0`` — merge succeeded (possibly with probe groups still pending a
  missing shard; the report says which);
* ``2`` — conflict or corruption: stores disagree about a probe, a span
  tiling overlaps, or a record fails its content-address re-check.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .merge import MergeConflict, merge_stores

__all__ = ["main"]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cache",
        description="Probe-cache maintenance commands.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    merge = sub.add_parser(
        "merge",
        help="fold shard probe stores into one merged cache directory",
        description=(
            "Fold shard cache directories (or probes.jsonl paths) into "
            "OUTPUT. Existing OUTPUT records participate, so repeated "
            "merges accumulate; complete shard-span groups are folded "
            "into the full records a serial run would replay."
        ),
    )
    merge.add_argument("output", help="merged cache directory (created if needed)")
    merge.add_argument("inputs", nargs="+", metavar="shard",
                       help="shard cache directories to fold in")
    args = parser.parse_args(argv)
    if args.command == "merge":
        try:
            report = merge_stores(args.inputs, args.output)
        except (MergeConflict, ValueError) as exc:
            print(f"merge failed: {exc}", file=sys.stderr)
            return 2
        print(report.render())
        return 0
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
