"""Content-addressed probe cache and experiment checkpoint/resume.

Two layers, both keyed so that reuse is provably safe:

* :class:`ProbeCache` — caches individual Monte-Carlo probes
  (``failure_estimate`` results, ``distortion_samples`` arrays) by the
  SHA-256 of their canonical spec, which includes the caller's RNG seed
  fingerprint.  Threaded through :mod:`repro.core.tester` via the
  ``cache=`` parameter; ``minimal_m`` warm-starts its bracket from cached
  probes simply by replaying its deterministic search against the cache.
* :class:`ExperimentCheckpoint` — stores completed
  :class:`~repro.experiments.harness.ExperimentResult` JSON per
  ``(experiment, seed, scale)``; the CLI's ``--resume`` skips finished
  experiments and reuses their exact bytes.

The cardinal invariant, enforced by ``tests/test_cache.py``: cold-cache,
warm-cache, and cache-off runs at a fixed seed are **bit-identical** —
in returned values, in downstream RNG state, and in ``count_*`` metrics.
See :doc:`docs/caching` for the design.
"""

from .checkpoint import ExperimentCheckpoint
from .keys import cache_key, canonical_json
from .merge import MergeConflict, MergeReport, merge_stores
from .probes import CachedProbe, ProbeCache, ScopedProbeCache, TieredProbeCache
from .store import JsonlStore

__all__ = [
    "CachedProbe",
    "ExperimentCheckpoint",
    "JsonlStore",
    "MergeConflict",
    "MergeReport",
    "ProbeCache",
    "ScopedProbeCache",
    "TieredProbeCache",
    "cache_key",
    "canonical_json",
    "merge_stores",
]
