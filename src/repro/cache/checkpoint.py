"""Experiment-level checkpoint/resume on top of ``save_json``/``load_json``.

A checkpoint is the byte-exact ``ExperimentResult.save_json`` payload of a
*completed* experiment plus a small ``.meta.json`` sidecar recording the
run configuration it is valid for (seed, scale).  On ``--resume`` the CLI
skips any experiment with a matching checkpoint and copies the stored
bytes straight into ``--json-dir``, so a killed-midway run restarted with
``--resume`` produces JSON artifacts bit-identical to an uninterrupted
run (result JSON deliberately excludes wall-clock — see
:meth:`repro.experiments.harness.ExperimentResult.to_dict`).

Both files are written atomically (temp file + ``os.replace``) so a crash
mid-save can never leave a checkpoint that parses but lies.  Any mismatch
— different seed or scale, unreadable JSON, missing sidecar — makes
:meth:`ExperimentCheckpoint.load` return ``None`` and the experiment
simply re-runs; a stale checkpoint is never an error.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Optional, Union

from ..observe.counters import add_count
from ..observe.ledger import emit_event
from ..utils.serialization import json_default

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from ..experiments.harness import ExperimentResult

__all__ = ["ExperimentCheckpoint"]


def _atomic_write_text(path: Path, text: str) -> None:
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)


class ExperimentCheckpoint:
    """Store of completed-experiment results keyed by experiment id."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self._directory = Path(directory)

    @property
    def directory(self) -> Path:
        return self._directory

    def path_for(self, experiment_id: str) -> Path:
        """Result-JSON path for one experiment's checkpoint."""
        return self._directory / f"{experiment_id}.json"

    def _meta_path(self, experiment_id: str) -> Path:
        return self._directory / f"{experiment_id}.meta.json"

    def save(self, result: "ExperimentResult", *, seed: Optional[int],
             scale: float) -> Path:
        """Checkpoint a completed result for the given run configuration."""
        self._directory.mkdir(parents=True, exist_ok=True)
        path = self.path_for(result.experiment_id)
        # Must match ExperimentResult.save_json byte-for-byte, since
        # --resume copies these bytes into --json-dir.
        payload = json.dumps(
            result.to_dict(), indent=2, allow_nan=False, default=json_default,
        )
        _atomic_write_text(path, payload)
        meta: Dict[str, Any] = {
            "experiment_id": result.experiment_id,
            "seed": seed,
            "scale": scale,
        }
        _atomic_write_text(
            self._meta_path(result.experiment_id),
            json.dumps(meta, indent=2, sort_keys=True, allow_nan=False,
                       default=json_default),
        )
        add_count("checkpoint_save")
        emit_event("checkpoint_save", experiment=result.experiment_id,
                   seed=seed, scale=scale)
        return path

    def load(self, experiment_id: str, *, seed: Optional[int],
             scale: float) -> Optional["ExperimentResult"]:
        """Completed result for this exact (seed, scale), else ``None``."""
        from ..experiments.harness import ExperimentResult

        path = self.path_for(experiment_id)
        meta_path = self._meta_path(experiment_id)
        if not path.exists() or not meta_path.exists():
            return None
        try:
            meta = json.loads(meta_path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, OSError):
            return None
        if meta.get("seed") != seed or meta.get("scale") != scale:
            return None
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            result = ExperimentResult.from_dict(payload)
        except (json.JSONDecodeError, OSError, KeyError, ValueError):
            return None
        if result.experiment_id != experiment_id:
            return None
        return result

    def raw_bytes(self, experiment_id: str) -> bytes:
        """The checkpoint's exact on-disk JSON bytes (for ``--json-dir``)."""
        return self.path_for(experiment_id).read_bytes()

    def __repr__(self) -> str:
        return f"ExperimentCheckpoint({self._directory})"
