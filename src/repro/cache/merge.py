"""Deterministic folding of sharded probe stores into one cache.

A sharded run (:mod:`repro.shard`) leaves one probe store per shard, each
holding *shard-partial* records — the outcome of a contiguous trial slice
of some probe, tagged with a ``"shard": {count, index, span}`` field in
its spec.  :func:`merge_stores` folds those stores into a single cache
whose records a serial run can replay:

* partial groups whose spans tile the full trial range ``[0, trials)``
  are folded into the **full** record the serial run would have written —
  ``failure_estimate`` successes are summed, ``distortion_samples``
  values concatenated in span order, counter deltas summed — keyed by the
  parent spec (the shard field removed), i.e. byte-for-byte the key the
  serial computation uses;
* incomplete groups (a shard still missing) are carried through verbatim
  so a later merge round can finish them;
* every record is re-verified on the way in — its stored key must be the
  content address of its stored spec — and **conflicts** (two records
  with one key but different payloads, overlapping spans, shards
  disagreeing on the shard count) raise :class:`MergeConflict` instead of
  silently folding wrong numbers.

The output file is written atomically with records sorted by key, so
merging the same inputs in any order produces identical bytes and the
output may safely be one of the inputs (in-place re-merge).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from .keys import cache_key, canonical_json
from .probes import ProbeCache
from .store import JsonlStore

__all__ = ["MergeConflict", "MergeReport", "merge_stores"]


class MergeConflict(ValueError):
    """Two shard stores disagree about the same probe."""


@dataclass
class MergeReport:
    """What one merge pass did, for CLI reporting and tests."""

    records_in: int = 0
    full_records: int = 0
    partial_records: int = 0
    folded_groups: int = 0
    pending_groups: int = 0
    #: Parent keys (16-hex prefixes) of groups still missing spans.
    pending_keys: List[str] = field(default_factory=list)

    def render(self) -> str:
        lines = [
            f"merged {self.records_in} records: {self.full_records} full, "
            f"{self.partial_records} shard partials",
            f"folded {self.folded_groups} probe groups; "
            f"{self.pending_groups} still pending",
        ]
        for key in self.pending_keys:
            lines.append(f"  pending: {key}")
        return "\n".join(lines)


def _store_path(target: Union[str, Path]) -> Path:
    """Resolve a cache directory or a direct JSONL path to the file."""
    target = Path(target)
    if target.suffix == ".jsonl":
        return target
    return target / ProbeCache.FILENAME


def _verified_records(path: Path) -> List[Dict[str, Any]]:
    """Load one store, re-verifying every record's content address."""
    records = []
    for record in JsonlStore(path).load():
        kind, spec, key = record.get("kind"), record.get("spec"), record.get("key")
        if not isinstance(kind, str) or not isinstance(spec, dict) \
                or not isinstance(key, str):
            raise MergeConflict(
                f"{path}: malformed cache record (missing kind/spec/key)"
            )
        if cache_key(kind, spec) != key:
            raise MergeConflict(
                f"{path}: record key {key[:16]} is not the content "
                f"address of its stored spec"
            )
        records.append(record)
    return records


def _payload(record: Dict[str, Any]) -> str:
    """Canonical form of what a record asserts (value + counters)."""
    return canonical_json({
        "value": record.get("value", {}),
        "counters": record.get("counters", {}),
    })


def _parent_of(record: Dict[str, Any]) -> Tuple[str, Dict[str, Any], str]:
    """(kind, parent spec, parent key) of a shard-partial record."""
    spec = {k: v for k, v in record["spec"].items() if k != "shard"}
    kind = record["kind"]
    return kind, spec, cache_key(kind, spec)


def _fold_group(kind: str, parent_spec: Dict[str, Any],
                partials: List[Dict[str, Any]]
                ) -> Optional[Dict[str, Any]]:
    """Fold one probe's shard partials, or ``None`` while spans are missing.

    Raises :class:`MergeConflict` on overlapping spans or disagreeing
    shard counts — those are protocol violations, not pending work.
    """
    counts = {int(p["spec"]["shard"]["count"]) for p in partials}
    if len(counts) != 1:
        raise MergeConflict(
            f"probe {cache_key(kind, parent_spec)[:16]}: shards disagree "
            f"on the shard count ({sorted(counts)})"
        )
    trials = int(parent_spec["trials"])
    # Sort key includes the shard index so ties (two shards with empty
    # spans — more shards than work units) never fall through to
    # comparing the record dicts themselves.
    spans = sorted(
        ((tuple(int(x) for x in p["spec"]["shard"]["span"]),
          int(p["spec"]["shard"]["index"])), p)
        for p in partials
    )
    cursor = 0
    for ((lo, hi), _index), _ in spans:
        if lo == hi:
            continue  # empty slice: tiles nothing
        if lo < cursor:
            raise MergeConflict(
                f"probe {cache_key(kind, parent_spec)[:16]}: overlapping "
                f"shard spans at trial {lo}"
            )
        if lo > cursor:
            return None  # gap: a shard's partial has not arrived yet
        cursor = hi
    if cursor != trials:
        return None  # tail missing
    ordered = [p for _, p in spans]
    counters: Dict[str, int] = {}
    for partial in ordered:
        for name, count in partial.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + int(count)
    if kind == "failure_estimate":
        confidences = {
            float(p["value"]["confidence"]) for p in ordered
        }
        if len(confidences) != 1:
            raise MergeConflict(
                f"probe {cache_key(kind, parent_spec)[:16]}: shards "
                f"disagree on the confidence level ({sorted(confidences)})"
            )
        value: Dict[str, Any] = {
            "successes": sum(int(p["value"]["successes"]) for p in ordered),
            "trials": trials,
            "confidence": confidences.pop(),
        }
    elif kind == "distortion_samples":
        values: List[float] = []
        for partial in ordered:
            values.extend(float(v) for v in partial["value"]["values"])
        value = {"values": values}
    else:
        raise MergeConflict(
            f"cannot fold shard partials of unknown probe kind {kind!r}"
        )
    return {
        "key": cache_key(kind, parent_spec),
        "kind": kind,
        "spec": parent_spec,
        "value": value,
        "counters": counters,
    }


def merge_stores(inputs: Sequence[Union[str, Path]],
                 output: Union[str, Path]) -> MergeReport:
    """Fold shard probe stores into ``output`` (a cache directory).

    ``inputs`` are shard cache directories (or direct ``probes.jsonl``
    paths); the existing contents of ``output``, if any, participate in
    the merge as well, so repeated rounds accumulate monotonically.
    Returns a :class:`MergeReport`; raises :class:`MergeConflict` when
    stores disagree.
    """
    out_path = _store_path(output)
    sources = [out_path] + [_store_path(item) for item in inputs]
    report = MergeReport()
    by_key: Dict[str, Dict[str, Any]] = {}
    for source in sources:
        if not source.exists():
            continue
        for record in _verified_records(source):
            report.records_in += 1
            known = by_key.get(record["key"])
            if known is None:
                by_key[record["key"]] = record
            elif _payload(known) != _payload(record):
                raise MergeConflict(
                    f"key {record['key'][:16]} holds two different "
                    f"payloads across the merged stores"
                )
    partial_groups: Dict[str, List[Dict[str, Any]]] = {}
    merged: Dict[str, Dict[str, Any]] = {}
    for key, record in by_key.items():
        if "shard" in record["spec"]:
            report.partial_records += 1
            _, _, parent_key = _parent_of(record)
            partial_groups.setdefault(parent_key, []).append(record)
        else:
            report.full_records += 1
        merged[key] = record
    for parent_key, partials in partial_groups.items():
        kind, parent_spec, _ = _parent_of(partials[0])
        folded = _fold_group(kind, parent_spec, partials)
        if folded is None:
            report.pending_groups += 1
            report.pending_keys.append(parent_key[:16])
            continue
        known = merged.get(parent_key)
        if known is not None and _payload(known) != _payload(folded):
            raise MergeConflict(
                f"folded probe {parent_key[:16]} disagrees with the full "
                f"record already present in the merged store"
            )
        if known is None:
            merged[parent_key] = folded
            report.folded_groups += 1
    report.pending_keys.sort()
    out_path.parent.mkdir(parents=True, exist_ok=True)
    tmp = out_path.with_name(out_path.name + ".tmp")
    writer = JsonlStore(tmp)
    try:
        for key in sorted(merged):
            writer.append(merged[key])
    finally:
        writer.close()
    if not tmp.exists():
        tmp.write_text("", encoding="utf-8")
    os.replace(tmp, out_path)
    return report
