"""Append-only JSON-lines record store backing the probe cache.

The store holds one JSON object per line and only ever *appends*: records
are immutable facts ("probe X evaluated to Y"), so there is nothing to
update in place and a crash can at worst leave one torn trailing line,
which :meth:`JsonlStore.load` tolerates exactly like the run ledger's
:func:`repro.observe.ledger.read_events`.

Safety under the :class:`~repro.utils.parallel.TrialExecutor` process
pool comes from two properties:

* cache lookups and stores happen in the *parent* process (the trial
  functions shipped to workers never see the cache), and the store
  refuses appends from any process other than the one that opened it —
  a forked worker inheriting the handle cannot write duplicate or torn
  lines;
* each record is written as **one ``os.write`` of a whole
  ``\\n``-terminated line to an ``O_APPEND`` file descriptor**, so
  concurrent *separate* processes sharing one cache directory — a server
  worker and a CLI run, or N shard passes — append atomically and can
  never tear each other's lines (POSIX serializes the implicit
  seek+write of ``O_APPEND`` writes; buffered handles, by contrast, may
  flush a line in several syscalls and interleave fragments).  Duplicate
  keys are harmless — both lines hold the same value by construction and
  the loader keeps the last.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

from ..utils.serialization import json_default

__all__ = ["JsonlStore"]


class JsonlStore:
    """Append-only JSONL file with torn-trailing-line-tolerant loading."""

    def __init__(self, path: Union[str, Path]) -> None:
        self._path = Path(path)
        self._pid = os.getpid()
        self._fd: Optional[int] = None

    @property
    def path(self) -> Path:
        return self._path

    def load(self) -> List[Dict[str, Any]]:
        """All records currently on disk, oldest first.

        A torn trailing line (crash or concurrent writer mid-append) is
        skipped; an unparseable *earlier* line raises, since that means
        corruption rather than an interrupted write.
        """
        if not self._path.exists():
            return []
        lines = self._path.read_text(encoding="utf-8").splitlines()
        records: List[Dict[str, Any]] = []
        for number, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                if number == len(lines):
                    break
                raise ValueError(
                    f"{self._path}: unparseable cache line {number}: "
                    f"{line[:80]!r}"
                ) from None
        return records

    def append(self, record: Dict[str, Any]) -> None:
        """Append one record; a no-op in forked child processes.

        Serialized strictly: numpy scalars/arrays are converted via
        :func:`repro.utils.serialization.json_default`, and non-finite
        floats raise ``ValueError`` instead of writing ``NaN``/``Infinity``
        tokens — those are not JSON, and only Python's lenient parser
        would ever read the line back (``canonical_json`` already rejects
        them on the key side).  The line is serialized *before* touching
        the file, so a rejected record leaves the store unchanged.

        The write itself is a single ``os.write`` on an ``O_APPEND``
        descriptor: the kernel serializes the seek+write atomically, so
        records appended concurrently from several processes (a server
        worker plus a CLI run on the same cache directory) land as whole
        lines in some order, never interleaved mid-line.
        """
        if os.getpid() != self._pid:
            return
        line = json.dumps(record, sort_keys=True, allow_nan=False,
                          default=json_default)
        data = (line + "\n").encode("utf-8")
        self._path.parent.mkdir(parents=True, exist_ok=True)
        if self._fd is None:
            self._trim_torn_tail()
            self._fd = os.open(
                str(self._path),
                os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                0o666,
            )
        written = os.write(self._fd, data)
        while written < len(data):  # pragma: no cover - short regular-file
            # writes essentially never happen; loop for POSIX correctness.
            written += os.write(self._fd, data[written:])

    def _trim_torn_tail(self) -> None:
        """Drop a torn final line before the first append of this handle.

        A writer killed mid-append can leave a final line without its
        newline.  ``load`` skips that fragment, but appending *after* it
        would glue the next record onto the garbage and corrupt a line in
        the middle of the file — so the fragment is truncated away first.
        Appends from live processes are single whole-line writes, so a
        missing trailing newline can only mean a crashed writer, never an
        in-flight one.
        """
        if not self._path.exists():
            return
        data = self._path.read_bytes()
        if not data or data.endswith(b"\n"):
            return
        with open(self._path, "r+b") as handle:
            handle.truncate(data.rfind(b"\n") + 1)

    def close(self) -> None:
        """Release the append descriptor (idempotent; reopened on demand)."""
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return iter(self.load())

    def __repr__(self) -> str:
        return f"JsonlStore({self._path})"
