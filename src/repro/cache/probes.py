"""Disk-backed, content-addressed cache of Monte-Carlo probe results.

A :class:`ProbeCache` maps the canonical hash of a probe specification —
sketch-family spec, hard-instance spec, probe parameters, and the seed
fingerprint of the caller's RNG (:func:`repro.utils.rng.seed_fingerprint`)
— to the probe's result plus the operation-counter delta it accrued.

The cache is **invisible to results** by construction.  Because the seed
fingerprint pins the exact child-stream layout, a cached value is the
bit-identical outcome the computation would produce; the caller
(:mod:`repro.core.tester`) additionally replays the computation's
spawn-counter consumption and merges the stored counter delta, so a
cache-hit run leaves the RNG *and* the ``count_*`` metrics in exactly the
state a cache-miss (or cache-off) run would.  Only wall-clock and the
ledger's ``cache_hit``/``cache_miss`` events betray the difference.

Every lookup is reported through :mod:`repro.observe`: a ``cache_hit`` or
``cache_miss`` ledger event plus ``cache_hit``/``cache_miss`` counters
(excluded from result metrics — see
:data:`repro.experiments.harness.NON_RESULT_COUNTER_PREFIXES`), which is
how ``python -m repro.observe summarize`` computes hit rates and how the
tests certify that a warm re-run executed zero new trials.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, NamedTuple, Optional, Union

from ..observe.counters import add_count
from ..observe.ledger import emit_event
from .keys import cache_key, canonical_json
from .store import JsonlStore

__all__ = ["CachedProbe", "ProbeCache", "ScopedProbeCache"]

#: Counter names that describe the caching machinery itself; never stored
#: in cached records (merging them back would double-count bookkeeping).
_BOOKKEEPING_PREFIXES = ("cache_", "checkpoint_")


class CachedProbe(NamedTuple):
    """One cached probe result: the value plus its counter delta."""

    value: Dict[str, Any]
    counters: Dict[str, int]


class ProbeCache:
    """Content-addressed probe store over an append-only JSONL file.

    Parameters
    ----------
    directory:
        Cache directory; the record file is ``<directory>/probes.jsonl``.
        Created on first use.

    The in-memory index is loaded once at construction; records appended
    by *this* process are indexed as they are written.  Records appended
    concurrently by another process become visible to a fresh
    ``ProbeCache`` over the same directory (each CLI invocation opens its
    own).
    """

    FILENAME = "probes.jsonl"

    def __init__(self, directory: Union[str, Path]) -> None:
        self._directory = Path(directory)
        self._store = JsonlStore(self._directory / self.FILENAME)
        self._index: Dict[str, Dict[str, Any]] = {}
        for record in self._store.load():
            key = record.get("key")
            if isinstance(key, str):
                self._index[key] = record

    @property
    def directory(self) -> Path:
        return self._directory

    @property
    def path(self) -> Path:
        """The JSONL record file."""
        return self._store.path

    def get(self, kind: str, spec: Dict[str, Any]) -> Optional[CachedProbe]:
        """Look up a probe; emits ``cache_hit``/``cache_miss`` either way."""
        key = cache_key(kind, spec)
        record = self._index.get(key)
        if record is None:
            add_count("cache_miss")
            emit_event("cache_miss", cache_kind=kind, key=key[:16],
                       m=spec.get("m"), trials=spec.get("trials"))
            return None
        if record.get("spec") is not None and \
                canonical_json(record["spec"]) != canonical_json(spec):
            raise ValueError(
                f"probe cache corruption: key {key[:16]} holds a record "
                f"whose stored spec disagrees with the request"
            )
        add_count("cache_hit")
        emit_event("cache_hit", cache_kind=kind, key=key[:16],
                   m=spec.get("m"), trials=spec.get("trials"))
        return CachedProbe(
            value=dict(record.get("value", {})),
            counters={
                str(name): int(count)
                for name, count in record.get("counters", {}).items()
            },
        )

    def put(self, kind: str, spec: Dict[str, Any], value: Dict[str, Any],
            counters: Optional[Dict[str, int]] = None) -> None:
        """Record a computed probe (bookkeeping counters are stripped)."""
        key = cache_key(kind, spec)
        stored_counters = {
            name: int(count) for name, count in (counters or {}).items()
            if not name.startswith(_BOOKKEEPING_PREFIXES)
        }
        record = {
            "key": key,
            "kind": kind,
            "spec": spec,
            "value": value,
            "counters": stored_counters,
        }
        self._index[key] = record
        self._store.append(record)

    def scoped(self, **extra: Any) -> "ScopedProbeCache":
        """A view that folds ``extra`` into every spec it touches.

        Used by :func:`repro.core.tester.minimal_m` to include its
        ``decision`` rule in probe keys without widening the
        ``failure_estimate`` signature.
        """
        return ScopedProbeCache(self, extra)

    def close(self) -> None:
        self._store.close()

    def __len__(self) -> int:
        return len(self._index)

    def __repr__(self) -> str:
        return f"ProbeCache({self._directory}, {len(self._index)} records)"


class ScopedProbeCache:
    """A :class:`ProbeCache` view whose specs carry extra scope fields."""

    def __init__(self, base: ProbeCache, extra: Dict[str, Any]) -> None:
        self._base = base
        self._extra = dict(extra)

    def _scoped_spec(self, spec: Dict[str, Any]) -> Dict[str, Any]:
        merged = dict(spec)
        scope = dict(merged.get("scope", {}))
        scope.update(self._extra)
        merged["scope"] = scope
        return merged

    def get(self, kind: str, spec: Dict[str, Any]) -> Optional[CachedProbe]:
        return self._base.get(kind, self._scoped_spec(spec))

    def put(self, kind: str, spec: Dict[str, Any], value: Dict[str, Any],
            counters: Optional[Dict[str, int]] = None) -> None:
        self._base.put(kind, self._scoped_spec(spec), value, counters)

    def scoped(self, **extra: Any) -> "ScopedProbeCache":
        merged = dict(self._extra)
        merged.update(extra)
        return ScopedProbeCache(self._base, merged)

    def __repr__(self) -> str:
        return f"ScopedProbeCache({self._base!r}, extra={self._extra})"
