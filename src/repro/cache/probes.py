"""Disk-backed, content-addressed cache of Monte-Carlo probe results.

A :class:`ProbeCache` maps the canonical hash of a probe specification —
sketch-family spec, hard-instance spec, probe parameters, and the seed
fingerprint of the caller's RNG (:func:`repro.utils.rng.seed_fingerprint`)
— to the probe's result plus the operation-counter delta it accrued.

The cache is **invisible to results** by construction.  Because the seed
fingerprint pins the exact child-stream layout, a cached value is the
bit-identical outcome the computation would produce; the caller
(:mod:`repro.core.tester`) additionally replays the computation's
spawn-counter consumption and merges the stored counter delta, so a
cache-hit run leaves the RNG *and* the ``count_*`` metrics in exactly the
state a cache-miss (or cache-off) run would.  Only wall-clock and the
ledger's ``cache_hit``/``cache_miss`` events betray the difference.

Every lookup is reported through :mod:`repro.observe`: a ``cache_hit`` or
``cache_miss`` ledger event plus ``cache_hit``/``cache_miss`` counters
(excluded from result metrics — see
:data:`repro.experiments.harness.NON_RESULT_COUNTER_PREFIXES`), which is
how ``python -m repro.observe summarize`` computes hit rates and how the
tests certify that a warm re-run executed zero new trials.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, NamedTuple, Optional, Sequence, Union

from ..observe.counters import add_count
from ..observe.ledger import emit_event
from ..sanitize.hooks import record_cache_event
from .keys import cache_key, canonical_json
from .store import JsonlStore

__all__ = [
    "CachedProbe",
    "ProbeCache",
    "ScopedProbeCache",
    "TieredProbeCache",
]

#: Counter names that describe the caching machinery itself; never stored
#: in cached records (merging them back would double-count bookkeeping).
_BOOKKEEPING_PREFIXES = ("cache_", "checkpoint_", "shard_")


class CachedProbe(NamedTuple):
    """One cached probe result: the value plus its counter delta."""

    value: Dict[str, Any]
    counters: Dict[str, int]


def _observe_lookup(kind: str, spec: Dict[str, Any],
                    hit: Optional[CachedProbe]) -> None:
    """Report one logical lookup as a ``cache_hit``/``cache_miss``."""
    key = cache_key(kind, spec)
    name = "cache_hit" if hit is not None else "cache_miss"
    add_count(name)
    emit_event(name, cache_kind=kind, key=key[:16],
               m=spec.get("m"), trials=spec.get("trials"))
    record_cache_event(name, cache_kind=kind, key=key)


class ProbeCache:
    """Content-addressed probe store over an append-only JSONL file.

    Parameters
    ----------
    directory:
        Cache directory; the record file is ``<directory>/probes.jsonl``.
        Created on first use.

    The in-memory index is loaded once at construction; records appended
    by *this* process are indexed as they are written.  Records appended
    concurrently by another process become visible to a fresh
    ``ProbeCache`` over the same directory (each CLI invocation opens its
    own).
    """

    FILENAME = "probes.jsonl"

    def __init__(self, directory: Union[str, Path]) -> None:
        self._directory = Path(directory)
        self._store = JsonlStore(self._directory / self.FILENAME)
        self._index: Dict[str, Dict[str, Any]] = {}
        for record in self._store.load():
            key = record.get("key")
            if isinstance(key, str):
                self._index[key] = record

    @property
    def directory(self) -> Path:
        return self._directory

    @property
    def path(self) -> Path:
        """The JSONL record file."""
        return self._store.path

    def peek(self, kind: str, spec: Dict[str, Any]) -> Optional[CachedProbe]:
        """Silent lookup: no ``cache_hit``/``cache_miss`` observability.

        The building block for tiered lookups (:class:`TieredProbeCache`
        consults several stores but must report exactly one hit or miss);
        direct callers almost always want :meth:`get`.
        """
        key = cache_key(kind, spec)
        record = self._index.get(key)
        if record is None:
            return None
        if record.get("spec") is not None and \
                canonical_json(record["spec"]) != canonical_json(spec):
            raise ValueError(
                f"probe cache corruption: key {key[:16]} holds a record "
                f"whose stored spec disagrees with the request"
            )
        return CachedProbe(
            value=dict(record.get("value", {})),
            counters={
                str(name): int(count)
                for name, count in record.get("counters", {}).items()
            },
        )

    def get(self, kind: str, spec: Dict[str, Any]) -> Optional[CachedProbe]:
        """Look up a probe; emits ``cache_hit``/``cache_miss`` either way."""
        hit = self.peek(kind, spec)
        _observe_lookup(kind, spec, hit)
        return hit

    def put(self, kind: str, spec: Dict[str, Any], value: Dict[str, Any],
            counters: Optional[Dict[str, int]] = None) -> None:
        """Record a computed probe (bookkeeping counters are stripped)."""
        key = cache_key(kind, spec)
        stored_counters = {
            name: int(count) for name, count in (counters or {}).items()
            if not name.startswith(_BOOKKEEPING_PREFIXES)
        }
        record = {
            "key": key,
            "kind": kind,
            "spec": spec,
            "value": value,
            "counters": stored_counters,
        }
        self._index[key] = record
        self._store.append(record)
        record_cache_event("cache_put", cache_kind=kind, key=key)

    def scoped(self, **extra: Any) -> "ScopedProbeCache":
        """A view that folds ``extra`` into every spec it touches.

        Used by :func:`repro.core.tester.minimal_m` to include its
        ``decision`` rule in probe keys without widening the
        ``failure_estimate`` signature.
        """
        return ScopedProbeCache(self, extra)

    def close(self) -> None:
        self._store.close()

    def __len__(self) -> int:
        return len(self._index)

    def __repr__(self) -> str:
        return f"ProbeCache({self._directory}, {len(self._index)} records)"


class ScopedProbeCache:
    """A probe-cache view whose specs carry extra scope fields.

    ``base`` is any object with the probe-cache ``get``/``put`` surface —
    a :class:`ProbeCache` or a :class:`TieredProbeCache`.
    """

    def __init__(self, base: Any, extra: Dict[str, Any]) -> None:
        self._base = base
        self._extra = dict(extra)

    def _scoped_spec(self, spec: Dict[str, Any]) -> Dict[str, Any]:
        merged = dict(spec)
        scope = dict(merged.get("scope", {}))
        scope.update(self._extra)
        merged["scope"] = scope
        return merged

    def peek(self, kind: str, spec: Dict[str, Any]) -> Optional[CachedProbe]:
        """Silent scoped lookup (see :meth:`ProbeCache.peek`)."""
        return self._base.peek(kind, self._scoped_spec(spec))

    def get(self, kind: str, spec: Dict[str, Any]) -> Optional[CachedProbe]:
        return self._base.get(kind, self._scoped_spec(spec))

    def put(self, kind: str, spec: Dict[str, Any], value: Dict[str, Any],
            counters: Optional[Dict[str, int]] = None) -> None:
        self._base.put(kind, self._scoped_spec(spec), value, counters)

    def scoped(self, **extra: Any) -> "ScopedProbeCache":
        merged = dict(self._extra)
        merged.update(extra)
        return ScopedProbeCache(self._base, merged)

    def __repr__(self) -> str:
        return f"ScopedProbeCache({self._base!r}, extra={self._extra})"


class TieredProbeCache:
    """A writable :class:`ProbeCache` layered over read-only base stores.

    The shard runner's cache view (:mod:`repro.shard`): each shard writes
    its own records into ``write`` (its private shard store) while also
    seeing everything already folded into a merged base store — full
    records resolved by previous merge rounds resolve probes without
    re-executing trials.  Lookups consult ``write`` first, then each base
    in order; exactly one ``cache_hit``/``cache_miss`` is reported per
    logical lookup regardless of how many tiers were consulted.
    """

    def __init__(self, write: ProbeCache,
                 read_only: Sequence[ProbeCache] = ()) -> None:
        self._write = write
        self._read_only = list(read_only)

    @property
    def write_cache(self) -> ProbeCache:
        """The tier that receives :meth:`put` records."""
        return self._write

    def peek(self, kind: str, spec: Dict[str, Any]) -> Optional[CachedProbe]:
        """Silent lookup across all tiers, write tier first."""
        for tier in [self._write, *self._read_only]:
            hit = tier.peek(kind, spec)
            if hit is not None:
                return hit
        return None

    def get(self, kind: str, spec: Dict[str, Any]) -> Optional[CachedProbe]:
        """Tiered lookup reporting one ``cache_hit``/``cache_miss``."""
        hit = self.peek(kind, spec)
        _observe_lookup(kind, spec, hit)
        return hit

    def put(self, kind: str, spec: Dict[str, Any], value: Dict[str, Any],
            counters: Optional[Dict[str, int]] = None) -> None:
        """Record into the write tier only."""
        self._write.put(kind, spec, value, counters)

    def scoped(self, **extra: Any) -> ScopedProbeCache:
        """A scoped view over the whole tier stack."""
        return ScopedProbeCache(self, extra)

    def close(self) -> None:
        self._write.close()
        for tier in self._read_only:
            tier.close()

    def __repr__(self) -> str:
        return (f"TieredProbeCache(write={self._write!r}, "
                f"read_only={len(self._read_only)})")
