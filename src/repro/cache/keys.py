"""Canonical hashing of probe specifications.

A cache key must be a pure function of *what* is being computed — the
sketch-family spec, the hard-instance spec, the probe parameters, and the
seed fingerprint — and of nothing else (not dictionary insertion order,
not numpy scalar types, not the ``workers`` setting).  This module turns a
spec dictionary into a canonical JSON string and content-addresses it with
SHA-256.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict

from ..utils.serialization import to_builtin

__all__ = ["canonical_json", "cache_key"]


def canonical_json(spec: Dict[str, Any]) -> str:
    """Serialize ``spec`` into a canonical JSON string.

    Numpy scalars/arrays are coerced to builtins first, keys are sorted,
    and separators are fixed, so logically equal specs produce identical
    strings regardless of construction order or numeric wrapper types.
    Non-finite floats are rejected: a spec containing NaN cannot compare
    equal to itself and would poison the key space.
    """
    return json.dumps(
        to_builtin(spec), sort_keys=True, separators=(",", ":"),
        allow_nan=False,
    )


def cache_key(kind: str, spec: Dict[str, Any]) -> str:
    """Content address of a probe: SHA-256 over kind + canonical spec."""
    digest = hashlib.sha256()
    digest.update(kind.encode("utf-8"))
    digest.update(b"\n")
    digest.update(canonical_json(spec).encode("utf-8"))
    return digest.hexdigest()
