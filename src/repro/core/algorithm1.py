"""Algorithm 1 / Algorithm 2: finding disjoint good column pairs.

This is a faithful implementation of the paper's Algorithm 1 (Section 4.1)
and its Section 5 generalization Algorithm 2, which differ only in the
heavy threshold, the φ cutoff, and the iteration count — all exposed as
parameters of :class:`GreedyPairFinder`.

The algorithm receives the good columns ``C_1, …, C_g`` chosen by ``V`` (in
sampling order) and greedily outputs disjoint colliding pairs while
maintaining the invariant of Lemma 11: conditioned on the history, the
surviving ``{C_i}_{i ∈ S_k}`` are i.i.d. uniform over the surviving good
set ``G_k``.  Two breaking modes of the inner while-loop correspond to the
two probability bounds of Lemmas 12 and 13.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp

from ..utils.rng import RngLike, as_generator
from ..utils.validation import check_positive_int
from .heavy import heavy_mask

__all__ = [
    "PairEvent",
    "PairFinderResult",
    "GreedyPairFinder",
    "run_algorithm1",
    "run_algorithm2",
]

MatrixLike = Union[np.ndarray, sp.spmatrix]

#: The paper's η constant (Algorithm 1 sets η = 3).
ETA = 3.0


@dataclass(frozen=True)
class PairEvent:
    """One output of the algorithm.

    ``kind`` records which branch produced it:

    * ``"pair_heavy_row"`` — Line 23: two columns sampled from the same
      heavy row (the Lemma 12 case);
    * ``"pair_greedy"`` — Line 39: ``C_j`` paired with a colliding
      ``C_{j'}`` (the Lemma 13 case);
    * ``"row_removed"`` — Lines 15/27: output ``(ℓ, ⊥)``, a heavy row was
      retired;
    * ``"absent"`` — Line 34: output ``(⊥, ⊥)``, index ``j`` already used;
    * ``"no_collision"`` — Line 43: output ``(⊥, C_j)``, ``C_j`` collides
      with nothing.

    ``left``/``right`` are column indices of ``Π`` for pair events, ``row``
    is the retired heavy row for ``row_removed``.
    """

    kind: str
    left: Optional[int] = None
    right: Optional[int] = None
    row: Optional[int] = None
    k: int = 0


@dataclass
class PairFinderResult:
    """Full trace of one run.

    Attributes
    ----------
    events:
        Every output in order.
    pairs:
        The colliding column pairs ``(i, j)`` (indices into ``Π``).
    heavy_break_count / phi_break_count:
        How many for-iterations ended with the while-loop broken by the
        ``S'_k ≠ ∅`` event vs the small-φ event — the case split of
        Corollary 17.
    final_good_count / final_surviving:
        ``|G_k|`` and ``|S_k|`` at termination.
    """

    events: List[PairEvent] = field(default_factory=list)
    pairs: List[Tuple[int, int]] = field(default_factory=list)
    heavy_break_count: int = 0
    phi_break_count: int = 0
    final_good_count: int = 0
    final_surviving: int = 0

    @property
    def pair_count(self) -> int:
        return len(self.pairs)


class GreedyPairFinder:
    """Parametrized Algorithm 1/2 runner.

    Parameters
    ----------
    pi:
        The sketching matrix ``Π`` (dense or sparse).
    chosen_columns:
        The good columns chosen by ``V`` in sampling order — the paper's
        ``(C_1, …, C_g)``.  All must belong to ``good_set``.
    good_set:
        Indices of all good columns of ``Π`` (the paper's ``G``).
    theta:
        Heavy threshold (``√(8ε)`` for Algorithm 1, ``√(2^{-ℓ})`` for
        Algorithm 2).
    phi_threshold:
        The φ cutoff (``η/d`` for Algorithm 1,
        ``η/(ε^{δ'} d 2^{ℓ'})`` for Algorithm 2).
    iterations:
        Number of for-loop iterations (``d/16`` resp.
        ``ε^{δ'} d 2^{ℓ'}/16``).
    """

    def __init__(self, pi: MatrixLike, chosen_columns: Sequence[int],
                 good_set: Sequence[int], theta: float,
                 phi_threshold: float, iterations: int,
                 rng: RngLike = None):
        if theta <= 0:
            raise ValueError(f"theta must be positive, got {theta}")
        if phi_threshold <= 0:
            raise ValueError(
                f"phi_threshold must be positive, got {phi_threshold}"
            )
        self._iterations = check_positive_int(iterations, "iterations")
        self._theta = float(theta)
        self._phi_threshold = float(phi_threshold)
        self._rng = as_generator(rng)
        self._heavy = heavy_mask(pi, theta).tocsc()
        good = np.asarray(sorted(set(int(c) for c in good_set)), dtype=int)
        chosen = np.asarray(chosen_columns, dtype=int)
        if chosen.size and not np.all(np.isin(chosen, good)):
            raise ValueError("every chosen column must belong to good_set")
        self._chosen = chosen
        self._good_alive = dict.fromkeys(good.tolist(), True)
        self._collision_cache = None  # lazily recomputed on G_k change

    # -- collision structure over the current good set -------------------

    def _alive_good(self) -> np.ndarray:
        return np.asarray(
            [c for c, alive in self._good_alive.items() if alive], dtype=int
        )

    def _invalidate(self) -> None:
        self._collision_cache = None

    def _collision_structure(self):
        """(alive columns, col→pos map, boolean collision CSR, heavy sub)."""
        if self._collision_cache is None:
            alive = self._alive_good()
            sub = self._heavy[:, alive]
            counts = (sub.T @ sub).tocsr()
            counts.eliminate_zeros()
            positions = {int(c): idx for idx, c in enumerate(alive)}
            self._collision_cache = (alive, positions, counts, sub)
        return self._collision_cache

    def _phi_values(self) -> np.ndarray:
        """φ_{k,c} for every alive good column (uniform incl. ``c`` itself)."""
        alive, _, counts, _ = self._collision_structure()
        if alive.size == 0:
            return np.zeros(0)
        colliding = np.diff(counts.indptr)  # nonzeros per row = |{c' : c'↔c}|
        return colliding / alive.size

    def _heaviest_row(self) -> Tuple[int, np.ndarray]:
        """Row ℓ maximizing ``|G_k^ℓ|`` and that heavy set (column ids)."""
        alive, _, _, sub = self._collision_structure()
        row_sizes = np.asarray(sub.sum(axis=1)).ravel()
        best = int(np.argmax(row_sizes)) if row_sizes.size else 0
        csr = sub.tocsr()
        members = alive[csr.indices[csr.indptr[best]:csr.indptr[best + 1]]]
        return best, members

    def _collides(self, a: int, b: int) -> bool:
        """``a ↔ b`` for alive good columns ``a, b``."""
        _, positions, counts, _ = self._collision_structure()
        pa, pb = positions[a], positions[b]
        return counts[pa, pb] > 0

    def _colliding_set(self, c: int) -> np.ndarray:
        """All alive good columns colliding with ``c`` (including ``c``)."""
        alive, positions, counts, _ = self._collision_structure()
        row = counts.getrow(positions[c])
        return alive[row.indices]

    def _remove_good(self, columns: Sequence[int]) -> None:
        for c in columns:
            self._good_alive[int(c)] = False
        self._invalidate()

    # -- main loop --------------------------------------------------------

    def run(self) -> PairFinderResult:
        """Execute the algorithm and return the full trace."""
        result = PairFinderResult()
        surviving = set(range(self._chosen.size))  # the paper's S_k (0-based)
        k = 1

        for j in range(self._iterations):
            # ---- while-loop: retire rows until φ is small or S'_k hits --
            break_reason = None
            s_prime: set = set()
            while True:
                alive = self._alive_good()
                if alive.size == 0:
                    break_reason = "phi"
                    s_prime = set()
                    break
                phi = self._phi_values()
                row, members = self._heaviest_row()
                member_set = set(int(c) for c in members)
                s_prime = {
                    i for i in surviving
                    if int(self._chosen[i]) in member_set
                }
                if np.all(phi <= self._phi_threshold):
                    s_prime = set()
                    break_reason = "phi"
                    break
                if s_prime:
                    break_reason = "heavy"
                    break
                result.events.append(
                    PairEvent(kind="row_removed", row=row, k=k)
                )
                self._remove_good(members)
                k += 1

            if break_reason == "heavy":
                result.heavy_break_count += 1
            else:
                result.phi_break_count += 1

            # ---- for-loop body ------------------------------------------
            if s_prime:
                if len(s_prime) >= 2:
                    picked = self._rng.choice(
                        sorted(s_prime), size=2, replace=False
                    )
                    j1, j2 = int(picked[0]), int(picked[1])
                    ci, cj = int(self._chosen[j1]), int(self._chosen[j2])
                    result.events.append(PairEvent(
                        kind="pair_heavy_row", left=ci, right=cj, k=k,
                    ))
                    result.pairs.append((ci, cj))
                    surviving -= {j1, j2}
                else:
                    row, members = self._heaviest_row()
                    result.events.append(
                        PairEvent(kind="row_removed", row=row, k=k)
                    )
                    surviving -= s_prime
                    self._remove_good(members)
            elif j not in surviving:
                result.events.append(PairEvent(kind="absent", k=k))
            else:
                cj = int(self._chosen[j])
                candidates = [
                    i for i in surviving
                    if i != j and self._collides(int(self._chosen[i]), cj)
                ]
                if candidates:
                    j_prime = int(self._rng.choice(candidates))
                    ci = int(self._chosen[j_prime])
                    result.events.append(PairEvent(
                        kind="pair_greedy", left=ci, right=cj, k=k,
                    ))
                    result.pairs.append((ci, cj))
                    surviving -= {j, j_prime}
                else:
                    result.events.append(
                        PairEvent(kind="no_collision", right=cj, k=k)
                    )
                    surviving.discard(j)
                    self._remove_good(self._colliding_set(cj))
            k += 1

        result.final_good_count = int(self._alive_good().size)
        result.final_surviving = len(surviving)
        return result


def run_algorithm1(pi: MatrixLike, chosen_columns: Sequence[int],
                   good_set: Sequence[int], epsilon: float, d: int,
                   rng: RngLike = None) -> PairFinderResult:
    """Algorithm 1 with the paper's parameters.

    Heavy threshold ``√(8ε)``, φ cutoff ``η/d`` with ``η = 3``, and
    ``d/16`` iterations (at least 1).
    """
    if not (0 < epsilon < 1):
        raise ValueError(f"epsilon must lie in (0, 1), got {epsilon}")
    d = check_positive_int(d, "d")
    finder = GreedyPairFinder(
        pi=pi,
        chosen_columns=chosen_columns,
        good_set=good_set,
        theta=np.sqrt(8.0 * epsilon),
        phi_threshold=ETA / d,
        iterations=max(1, d // 16),
        rng=rng,
    )
    return finder.run()


def run_algorithm2(pi: MatrixLike, chosen_columns: Sequence[int],
                   good_set: Sequence[int], epsilon: float, d: int,
                   level: int, level_prime: int, delta_prime: float,
                   rng: RngLike = None) -> PairFinderResult:
    """Algorithm 2 (Section 5) with heavy threshold ``√(2^{-ℓ})``.

    φ cutoff ``η/(ε^{δ'} d 2^{ℓ'})`` and ``ε^{δ'} d 2^{ℓ'}/16`` iterations
    (at least 1).
    """
    if not (0 < epsilon < 1):
        raise ValueError(f"epsilon must lie in (0, 1), got {epsilon}")
    d = check_positive_int(d, "d")
    if level < 0 or level_prime < 0:
        raise ValueError("levels must be nonnegative")
    effective_d = epsilon**delta_prime * d * 2**level_prime
    finder = GreedyPairFinder(
        pi=pi,
        chosen_columns=chosen_columns,
        good_set=good_set,
        theta=np.sqrt(2.0 ** (-level)),
        phi_threshold=ETA / max(effective_d, 1.0),
        iterations=max(1, int(effective_d // 16)),
        rng=rng,
    )
    return finder.run()
