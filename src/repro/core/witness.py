"""Executable Lemma 4: from a large inner product to a failing unit vector.

Lemma 4 is the engine of every lower bound in the paper: if two columns
``p, q`` of ``A = ΠV`` satisfy ``|⟨A_p, A_q⟩| ≥ λε/β`` with ``λ > 2``, then
there is a unit vector ``u`` (an explicit two-coordinate vector) such that
``‖AWu‖² = ‖ΠUu‖²`` escapes ``[(1-ε)², (1+ε)²]`` with probability ≥ 1/4
over the Rademacher signs in ``W``.

This module *constructs* that witness for concrete ``Π`` and hard draws,
and measures the escape probability — exactly (enumerating the signs) when
the relevant sign count is small, by Monte Carlo otherwise.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np
import scipy.sparse as sp

from ..hardinstances.dbeta import HardDraw
from ..utils.rng import RngLike, as_generator
from ..utils.stats import BernoulliEstimate
from ..utils.validation import check_epsilon, check_positive_int

__all__ = [
    "witness_vector",
    "escape_probability",
    "find_large_inner_product",
    "WitnessReport",
    "lemma4_witness",
]

MatrixLike = Union[np.ndarray, sp.spmatrix]

#: Above this many relevant signs we Monte-Carlo instead of enumerating.
_MAX_EXACT_SIGNS = 14


def witness_vector(p: int, q: int, reps: int, d: int) -> np.ndarray:
    """The Lemma 4 unit vector ``u ∈ R^d`` for ``V``-columns ``p, q``.

    With the block layout of Definition 2, the ``W``-column supporting
    ``V``-column ``j`` is ``j // reps``.  Lemma 4 sets
    ``u = (e_{p'} + e_{q'})/√2`` when the blocks differ and ``u = e_{p'}``
    when they coincide.
    """
    reps = check_positive_int(reps, "reps")
    d = check_positive_int(d, "d")
    p_block, q_block = p // reps, q // reps
    if not (0 <= p_block < d and 0 <= q_block < d):
        raise ValueError(
            f"V-columns ({p}, {q}) map outside the {d} W-columns"
        )
    u = np.zeros(d)
    if p_block == q_block:
        u[p_block] = 1.0
    else:
        u[p_block] = u[q_block] = 1.0 / math.sqrt(2.0)
    return u


def _support_columns(p: int, q: int, reps: int) -> np.ndarray:
    """Indices of ``V``-columns appearing in ``Uu`` — the paper's set S."""
    p_block, q_block = p // reps, q // reps
    blocks = {p_block, q_block}
    return np.concatenate([
        np.arange(b * reps, (b + 1) * reps) for b in sorted(blocks)
    ])


def escape_probability(pi: MatrixLike, draw: HardDraw, p: int, q: int,
                       epsilon: float, trials: int = 4096,
                       rng: RngLike = None) -> BernoulliEstimate:
    """Probability that ``‖ΠUu‖²`` escapes ``[(1-ε)², (1+ε)²]``.

    ``u`` is the Lemma 4 witness for ``V``-columns ``p, q`` of ``draw``;
    the probability is over fresh Rademacher signs for the ``W`` blocks
    touching ``u`` (all other randomness of the draw is kept fixed, exactly
    as in the lemma's conditioning).  Exact enumeration when the number of
    relevant signs is ≤ 14, Monte Carlo with ``trials`` samples otherwise.
    """
    epsilon = check_epsilon(epsilon)
    reps, d = draw.reps, draw.d
    support = _support_columns(p, q, reps)
    beta = 1.0 / reps
    # ΠUu = coeff · Σ_{j ∈ support} σ_j Π_{*, C_j} with coeff √β (times
    # 1/√2 when the two blocks differ).
    two_blocks = (p // reps) != (q // reps)
    coeff = math.sqrt(beta) * (1.0 / math.sqrt(2.0) if two_blocks else 1.0)
    dense_pi = pi.tocsc() if sp.issparse(pi) else np.asarray(pi, dtype=float)
    cols = draw.rows[support]
    if sp.issparse(dense_pi):
        b = np.asarray(dense_pi[:, cols].toarray(), dtype=float)
    else:
        b = dense_pi[:, cols]
    b = coeff * b
    low, high = (1.0 - epsilon) ** 2, (1.0 + epsilon) ** 2

    def escapes(signs: np.ndarray) -> bool:
        value = float(np.sum((b @ signs) ** 2))
        return not (low <= value <= high)

    k = support.size
    if k <= _MAX_EXACT_SIGNS:
        outcomes = [
            escapes(np.array(signs, dtype=float))
            for signs in itertools.product((-1.0, 1.0), repeat=k)
        ]
        return BernoulliEstimate(sum(outcomes), len(outcomes))
    gen = as_generator(rng)
    trials = check_positive_int(trials, "trials")
    successes = sum(
        1 for _ in range(trials)
        if escapes(gen.choice((-1.0, 1.0), size=k))
    )
    return BernoulliEstimate(successes, trials)


def find_large_inner_product(pi: MatrixLike, draw: HardDraw,
                             threshold: float) -> Optional[Tuple[int, int, float]]:
    """Find ``V``-columns ``p ≠ q`` with ``|⟨Π_{*,C_p}, Π_{*,C_q}⟩| ≥ threshold``.

    Returns ``(p, q, inner_product)`` for the pair with the largest
    absolute inner product when one meets the threshold, else ``None``.
    This realizes the "there exist two columns of ΠV with a large inner
    product" step of the lower-bound proofs.
    """
    cols = draw.rows
    if sp.issparse(pi):
        a = np.asarray(pi.tocsc()[:, cols].toarray(), dtype=float)
    else:
        a = np.asarray(pi, dtype=float)[:, cols]
    gram = a.T @ a
    np.fill_diagonal(gram, 0.0)
    flat = int(np.argmax(np.abs(gram)))
    p, q = divmod(flat, gram.shape[1])
    value = float(gram[p, q])
    if abs(value) >= threshold:
        return int(p), int(q), value
    return None


@dataclass(frozen=True)
class WitnessReport:
    """A complete Lemma 4 witness against a sketch ``Π`` and a draw.

    Attributes
    ----------
    p, q:
        The ``V``-column indices with the large inner product.
    inner_product:
        ``⟨Π_{*,C_p}, Π_{*,C_q}⟩``.
    threshold:
        The inner-product threshold that was required (``λε/β``).
    u:
        The explicit unit witness vector in ``R^d``.
    escape:
        Measured probability that ``‖ΠUu‖²`` leaves the allowed interval.
    """

    p: int
    q: int
    inner_product: float
    threshold: float
    u: np.ndarray
    escape: BernoulliEstimate

    @property
    def meets_lemma4_bound(self) -> bool:
        """True when the measured escape probability is ≥ 1/4 (within CI)."""
        return self.escape.high >= 0.25


def lemma4_witness(pi: MatrixLike, draw: HardDraw, epsilon: float,
                   lam: float = 5.0, trials: int = 4096,
                   rng: RngLike = None) -> Optional[WitnessReport]:
    """Search for a Lemma 4 witness of ``Π`` failing on ``draw``'s ``V``.

    Looks for a pair of ``V``-columns with inner product at least
    ``λε/β`` (``λ > 2`` as required by the lemma) and, when found, builds
    the witness vector and measures its escape probability.  Returns
    ``None`` when no pair meets the threshold — in that case Lemma 4 is
    silent about ``Π``.
    """
    if lam <= 2.0:
        raise ValueError(f"Lemma 4 requires lambda > 2, got {lam}")
    epsilon = check_epsilon(epsilon)
    threshold = lam * epsilon * draw.reps  # λε/β with β = 1/reps
    found = find_large_inner_product(pi, draw, threshold)
    if found is None:
        return None
    p, q, value = found
    u = witness_vector(p, q, draw.reps, draw.d)
    escape = escape_probability(pi, draw, p, q, epsilon, trials=trials,
                                rng=rng)
    return WitnessReport(
        p=p, q=q, inner_product=value, threshold=threshold, u=u,
        escape=escape,
    )
