"""Heavy-entry statistics of sketching matrices.

The paper calls an entry ``θ-heavy`` when its absolute value is at least
``θ`` (Section 4), and its arguments revolve around how many heavy entries
the columns of ``Π`` can carry:

* Lemma 6 — for ``s = 1`` almost every column must have norm ``1 ± ε``;
* the "abundance assumption" of Theorem 9 — the average number of
  ``√(8ε)``-heavy entries is at least ``1/(12ε)``;
* Lemma 19 — for every dyadic level ``ℓ``, the average number of
  ``√(2^{-ℓ})``-heavy entries of a valid embedding is at most
  ``ε^{δ'} 2^ℓ`` (otherwise the ℓ₂ mass budget is blown).

This module computes all of those statistics for concrete matrices.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Union

import numpy as np
import scipy.sparse as sp

from ..linalg.gram import column_norms
from ..utils.validation import check_epsilon

__all__ = [
    "heavy_mask",
    "heavy_counts_per_column",
    "average_heavy_count",
    "good_columns",
    "HeavyProfile",
    "heavy_budget_profile",
    "column_mass_check",
]

MatrixLike = Union[np.ndarray, sp.spmatrix]


def heavy_mask(a: MatrixLike, theta: float) -> sp.csc_matrix:
    """Boolean CSC mask of the ``θ-heavy`` entries of ``a``.

    Entry ``(l, i)`` is True iff ``|a[l, i]| ≥ θ``, with a one-ulp-scale
    relative tolerance so that entries sitting exactly on the threshold
    (e.g. ``1/√2`` vs ``√(1/2)``) count as heavy regardless of rounding.
    """
    if theta <= 0:
        raise ValueError(f"theta must be positive, got {theta}")
    theta = theta * (1.0 - 1e-12)
    if sp.issparse(a):
        a_csc = a.tocsc()
        # Copy the index structure: eliminate_zeros() mutates it in place
        # and tocsc() may alias the caller's matrix.
        mask = sp.csc_matrix(
            (np.abs(a_csc.data) >= theta, a_csc.indices.copy(),
             a_csc.indptr.copy()),
            shape=a_csc.shape,
        )
        mask.eliminate_zeros()
        return mask
    dense_mask = np.abs(np.asarray(a, dtype=float)) >= theta
    return sp.csc_matrix(dense_mask)


def heavy_counts_per_column(a: MatrixLike, theta: float) -> np.ndarray:
    """Number of ``θ-heavy`` entries in each column."""
    mask = heavy_mask(a, theta)
    return np.diff(mask.indptr).astype(int)


def average_heavy_count(a: MatrixLike, theta: float) -> float:
    """Average number of ``θ-heavy`` entries over the columns.

    This is the paper's ``E_j[|{i : |A_{i,j}| ≥ θ}|]`` for
    ``j ~ Unif([n])`` — the quantity constrained by the abundance
    assumption (≥ ``1/(12ε)``) and by Lemma 19 (≤ ``ε^{δ'} 2^ℓ``).
    """
    counts = heavy_counts_per_column(a, theta)
    return float(counts.mean()) if counts.size else 0.0


def good_columns(pi: MatrixLike, epsilon: float, theta: float,
                 min_heavy: int) -> np.ndarray:
    """Indices of the paper's *good* columns.

    Section 4: a column is good when it has at least ``min_heavy``
    ``θ-heavy`` entries **and** its ℓ₂-norm is ``1 ± ε``.  The paper uses
    ``θ = √(8ε)`` and ``min_heavy = 1/(16ε)`` in Section 4, and
    ``θ = √(2^{-ℓ})`` with ``min_heavy = ε^{δ'} 2^ℓ / 3`` in Section 5.
    """
    epsilon = check_epsilon(epsilon)
    norms = column_norms(pi)
    counts = heavy_counts_per_column(pi, theta)
    norm_ok = (norms >= 1.0 - epsilon) & (norms <= 1.0 + epsilon)
    return np.flatnonzero(norm_ok & (counts >= min_heavy))


@dataclass(frozen=True)
class HeavyProfile:
    """Per-dyadic-level heavy-entry statistics of a matrix (Lemma 19 view).

    Attributes
    ----------
    levels:
        The dyadic levels ``ℓ = 0, 1, …, L``.
    thresholds:
        ``θ_ℓ = √(2^{-ℓ})`` for each level.
    averages:
        Average per-column count of ``θ_ℓ``-heavy entries.
    budgets:
        The Lemma 19 budget ``ε^{δ'} 2^ℓ`` for each level (what a valid
        embedding must respect).
    """

    levels: np.ndarray
    thresholds: np.ndarray
    averages: np.ndarray
    budgets: np.ndarray

    def violations(self) -> np.ndarray:
        """Levels at which the average exceeds the budget."""
        return self.levels[self.averages > self.budgets]

    def mass_upper_bound(self) -> float:
        """Upper bound on the average squared column norm implied by the
        profile.

        Entries with absolute value in ``[θ_{ℓ}, θ_{ℓ-1})`` contribute at
        most ``θ_{ℓ-1}² = 2^{-(ℓ-1)}`` each; entries below the lightest
        threshold contribute at most ``θ_L²`` times the column sparsity and
        are ignored here (the caller adds the ``s·(8ε)`` term as in
        Section 5).  The bound is ``Σ_ℓ avg_ℓ · 2^{-ℓ+1}`` with a telescoping
        correction; we use the simple, conservative form
        ``Σ_ℓ (avg_ℓ - avg_{ℓ-1})⁺ · 2^{-ℓ+1}`` where ``avg_{-1} = 0``.
        """
        bound = 0.0
        previous = 0.0
        for level, avg in zip(self.levels, self.averages):
            marginal = max(0.0, float(avg) - previous)
            # Entries heavy at level ℓ but not at ℓ-1 have magnitude
            # < √(2^{-(ℓ-1)}), i.e. squared value < 2^{-ℓ+1}.
            bound += marginal * 2.0 ** (-int(level) + 1)
            previous = max(previous, float(avg))
        return bound


def heavy_budget_profile(pi: MatrixLike, epsilon: float,
                         delta_prime: float = None) -> HeavyProfile:
    """Compute the Lemma 19 heavy-entry profile of ``Π``.

    ``δ'`` defaults to the paper's ``log log(1/ε^72) / log(1/ε)``.
    Levels run over ``ℓ = 0, …, L`` with ``L = log₂(1/ε) − 3`` (at least
    0).
    """
    epsilon = check_epsilon(epsilon)
    if delta_prime is None:
        delta_prime = (
            math.log(math.log(1.0 / epsilon**72))
            / math.log(1.0 / epsilon)
        )
    level_top = max(0, int(math.floor(math.log2(1.0 / epsilon))) - 3)
    levels = np.arange(0, level_top + 1)
    thresholds = np.sqrt(2.0 ** (-levels.astype(float)))
    averages = np.array([
        average_heavy_count(pi, float(theta)) for theta in thresholds
    ])
    budgets = epsilon**delta_prime * 2.0 ** levels.astype(float)
    return HeavyProfile(levels=levels, thresholds=thresholds,
                        averages=averages, budgets=budgets)


def column_mass_check(pi: MatrixLike, epsilon: float,
                      sparsity: int) -> float:
    """Section 5's ℓ₂-mass accounting: bound on the average squared norm.

    Returns ``profile.mass_upper_bound() + sparsity · 8ε`` — the quantity
    the paper shows is ``< (1-ε)²`` when every Lemma 19 budget holds,
    contradicting Lemma 6.  Callers compare the result against
    ``(1-ε)²``.
    """
    profile = heavy_budget_profile(pi, epsilon)
    return profile.mass_upper_bound() + sparsity * 8.0 * epsilon
