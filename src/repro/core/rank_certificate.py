"""NN13b's rank argument (footnote 1 of the paper).

Nelson–Nguyễn's original `m = Ω(d²)` proof for ``s = 1`` observes that a
collision makes ``rank(ΠU) < d``: two columns of ``U`` hashed into the
same bucket become collinear after sketching, so some direction of the
subspace is annihilated entirely (distortion 1).  The paper's footnote
notes this argument "seems difficult to apply to more complicated hard
instances", which is why Li–Liu develop the interval/anti-concentration
machinery instead.

This module implements the rank test so the two arguments can be compared
on concrete draws (the E4 ablation): for ``s = 1`` and ``β = 1`` every
collision is a rank drop, but already for ``reps > 1`` (or ``s > 1``) a
collision usually perturbs norms *without* killing a direction — the
interval test still fires while the rank test goes blind, which is the
footnote's point made computational.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np
import scipy.sparse as sp

from ..hardinstances.dbeta import HardDraw
from ..utils.validation import check_epsilon

__all__ = ["RankCertificate", "rank_certificate"]

MatrixLike = Union[np.ndarray, sp.spmatrix]


@dataclass(frozen=True)
class RankCertificate:
    """Outcome of the NN13b rank test on one draw.

    Attributes
    ----------
    rank:
        Numerical rank of ``ΠU``.
    d:
        Subspace dimension (full rank means ``rank == d``).
    rank_deficient:
        True when a direction of the subspace is annihilated — the NN13b
        failure certificate.
    interval_failure:
        True when the (strictly stronger) singular-interval test fails
        at the given ε, i.e. some singular value of ``ΠU`` leaves
        ``[1-ε, 1+ε]``.
    """

    rank: int
    d: int
    rank_deficient: bool
    interval_failure: bool

    @property
    def detected_by_rank_only(self) -> bool:
        """Failure visible to NN13b's argument."""
        return self.rank_deficient

    @property
    def detected_by_interval_only(self) -> bool:
        """Failure the interval test sees but the rank test misses."""
        return self.interval_failure and not self.rank_deficient


def rank_certificate(pi: MatrixLike, draw: HardDraw, epsilon: float,
                     tol: float = 1e-9) -> RankCertificate:
    """Run both failure tests (rank and singular interval) on one draw."""
    epsilon = check_epsilon(epsilon)
    product = draw.sketched_basis(pi)
    sigma = np.linalg.svd(product, compute_uv=False)
    d = draw.d
    scale = max(float(sigma[0]), 1.0) if sigma.size else 1.0
    rank = int(np.sum(sigma > tol * scale))
    if product.shape[0] < d:
        rank = min(rank, product.shape[0])
    smallest = float(sigma[-1]) if product.shape[0] >= d else 0.0
    largest = float(sigma[0]) if sigma.size else 0.0
    interval_failure = (
        smallest < 1.0 - epsilon or largest > 1.0 + epsilon
    )
    return RankCertificate(
        rank=rank,
        d=d,
        rank_deficient=rank < d,
        interval_failure=interval_failure,
    )
