"""End-to-end lower-bound certification of a concrete sketching matrix.

Given one *fixed* matrix ``Π`` (the deterministic object of Yao's minimax
principle), a hard instance distribution, and ``(ε, δ)``, decide whether
``Π`` can be an ``(ε, δ)``-subspace-embedding for the instance and, when it
cannot, produce evidence:

* the measured failure probability over the instance (with CI), and
* an explicit Lemma 4 witness — a colliding column pair of ``ΠV`` with a
  large inner product plus the unit vector whose sketched norm
  anti-concentrates — extracted from a failing draw.

Three strategies are available, matching the DESIGN.md ablation:

* ``"svd"`` — exact distortion through singular values (the ground truth);
* ``"witness"`` — only the Lemma 4 construction (sound but incomplete:
  it can miss failures the SVD sees);
* ``"algorithm1"`` — drive the pair search with the paper's Algorithm 1
  before invoking Lemma 4 (the proof's actual pipeline).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np
import scipy.sparse as sp

from ..hardinstances.dbeta import HardDraw, HardInstance
from ..linalg.distortion import distortion_of_product
from ..utils.rng import RngLike, as_generator, spawn
from ..utils.stats import BernoulliEstimate
from ..utils.validation import check_epsilon, check_positive_int, check_probability
from .algorithm1 import run_algorithm1, run_algorithm2
from .bounds import delta_prime as default_delta_prime
from .heavy import good_columns
from .lemmas import KAPPA
from .witness import WitnessReport, escape_probability, lemma4_witness, witness_vector

__all__ = [
    "Certificate",
    "certify",
    "witness_from_algorithm1",
    "witness_from_algorithm2",
]

MatrixLike = Union[np.ndarray, sp.spmatrix]

_STRATEGIES = ("svd", "witness", "algorithm1")


@dataclass(frozen=True)
class Certificate:
    """Verdict on one concrete ``Π`` against one instance.

    Attributes
    ----------
    failure:
        Estimated ``P_U[Π fails to ε-embed U]``.
    delta:
        The failure budget ``δ`` the verdict is judged against.
    refuted:
        True when the lower confidence limit of ``failure`` exceeds ``δ``
        — ``Π`` is certifiably not an ``(ε, δ)``-embedding for the
        instance.
    witness:
        A Lemma 4 witness from some failing draw, when one was found.
    strategy:
        Which detection strategy produced ``failure``.
    """

    failure: BernoulliEstimate
    delta: float
    refuted: bool
    witness: Optional[WitnessReport]
    strategy: str

    def __str__(self) -> str:
        verdict = "REFUTED" if self.refuted else "not refuted"
        tail = ""
        if self.witness is not None:
            tail = (
                f"; witness pair ({self.witness.p}, {self.witness.q}) with "
                f"inner product {self.witness.inner_product:.4f}"
            )
        return (
            f"{verdict} at delta={self.delta:g} "
            f"(failure {self.failure}, strategy={self.strategy}){tail}"
        )


def _strongest_pair(pi: MatrixLike, pairs) -> Optional[tuple]:
    """``(ci, cj, <Π_ci, Π_cj>)`` maximizing ``|<Π_ci, Π_cj>|`` over pairs.

    Sparse inputs densify the union of referenced columns exactly once,
    up front, so the scoring loop itself stays free of per-pair
    ``toarray`` calls; the inner products are bit-identical to slicing
    and densifying inside the loop.
    """
    if sp.issparse(pi):
        cols = sorted({int(c) for pair in pairs for c in pair})
        lookup = {c: k for k, c in enumerate(cols)}
        # F-order keeps each column contiguous, matching the memory layout
        # (and therefore the BLAS accumulation) of a per-pair
        # ``dense[:, c].toarray().ravel()``.
        block = np.asarray(
            pi.tocsc()[:, cols].toarray(), dtype=float, order="F"
        )

        def column(c: int) -> np.ndarray:
            return block[:, lookup[int(c)]]
    else:
        arr = np.asarray(pi, dtype=float)

        def column(c: int) -> np.ndarray:
            return arr[:, int(c)]

    best = None
    for ci, cj in pairs:
        value = float(column(ci) @ column(cj))
        if best is None or abs(value) > abs(best[2]):
            best = (ci, cj, value)
    return best


def witness_from_algorithm1(pi: MatrixLike, draw: HardDraw, epsilon: float,
                            trials: int = 2048,
                            rng: RngLike = None) -> Optional[WitnessReport]:
    """Run Algorithm 1 on a draw and convert its best pair into a witness.

    The paper's pipeline: find disjoint colliding good-column pairs of
    ``Π`` among the columns chosen by ``V``; for a pair with inner product
    at least ``(8-κ)ε/β`` invoke Lemma 4.  Returns ``None`` when no output
    pair reaches the threshold.
    """
    epsilon = check_epsilon(epsilon)
    gen = as_generator(rng)
    theta = math.sqrt(8.0 * epsilon)
    min_heavy = max(1, int(1.0 / (16.0 * epsilon)))
    good = good_columns(pi, epsilon, theta, min_heavy)
    if good.size == 0:
        return None
    good_set = set(int(c) for c in good)
    chosen_positions = [
        j for j, c in enumerate(draw.rows) if int(c) in good_set
    ]
    if len(chosen_positions) < 2:
        return None
    chosen_cols = draw.rows[chosen_positions]
    result = run_algorithm1(
        pi, chosen_cols, good, epsilon, d=draw.d, rng=spawn(gen)
    )
    if not result.pairs:
        return None
    # Map output column pairs back to V-column indices and test Lemma 4's
    # threshold (λ = 8 − κ > 2) on the strongest pair.
    threshold = (8.0 - KAPPA) * epsilon * draw.reps
    col_to_vpos = {}
    for j, c in enumerate(draw.rows):
        col_to_vpos.setdefault(int(c), j)
    best = _strongest_pair(pi, result.pairs)
    if best is None or abs(best[2]) < threshold:
        return None
    ci, cj, value = best
    p, q = col_to_vpos[ci], col_to_vpos[cj]
    u = witness_vector(p, q, draw.reps, draw.d)
    escape = escape_probability(
        pi, draw, p, q, epsilon, trials=trials, rng=spawn(gen)
    )
    return WitnessReport(
        p=p, q=q, inner_product=value, threshold=threshold, u=u,
        escape=escape,
    )


def witness_from_algorithm2(pi: MatrixLike, draw: HardDraw, epsilon: float,
                            level: int, level_prime: int,
                            dprime: Optional[float] = None,
                            trials: int = 2048,
                            rng: RngLike = None) -> Optional[WitnessReport]:
    """Section 5 pipeline: Algorithm 2 at dyadic level ``ℓ`` + Lemma 4.

    The draw should come from ``D_{2^{-ℓ'}}`` (``reps = 2^{ℓ'}``); column
    collisions are measured at heavy threshold ``√(2^{-ℓ})`` and a pair
    with inner product at least ``2^{-ℓ} − κε`` is converted into a
    Lemma 4 witness, provided the pair's inner product also clears the
    lemma's ``λε/β`` hypothesis with ``λ > 2``.  ``dprime`` defaults to
    the paper's ``δ' = log log(1/ε^{72}) / log(1/ε)``.
    """
    epsilon = check_epsilon(epsilon)
    if level < 0 or level_prime < 0:
        raise ValueError("levels must be nonnegative")
    if draw.reps != 2**level_prime:
        raise ValueError(
            f"draw has reps={draw.reps} but level_prime={level_prime} "
            f"requires reps={2**level_prime}"
        )
    if dprime is None:
        dprime = default_delta_prime(epsilon)
    gen = as_generator(rng)
    theta = math.sqrt(2.0 ** (-level))
    min_heavy = max(1, int(epsilon**dprime * 2**level / 3.0))
    good = good_columns(pi, epsilon, theta, min_heavy)
    if good.size == 0:
        return None
    good_set = set(int(c) for c in good)
    chosen_positions = [
        j for j, c in enumerate(draw.rows) if int(c) in good_set
    ]
    if len(chosen_positions) < 2:
        return None
    chosen_cols = draw.rows[chosen_positions]
    result = run_algorithm2(
        pi, chosen_cols, good, epsilon, d=draw.d, level=level,
        level_prime=level_prime, delta_prime=dprime, rng=spawn(gen),
    )
    if not result.pairs:
        return None
    # Lemma 4's hypothesis with beta = 2^{-l'}: need lam*eps/beta with
    # lam > 2; the Section 5 chain guarantees inner products of size
    # ~2^{-l} >= 8 eps * 2^{l'} = (8 eps)/beta on successful pairs.
    threshold = max(2.0 ** (-level) - KAPPA * epsilon,
                    2.5 * epsilon * draw.reps)
    col_to_vpos = {}
    for j, c in enumerate(draw.rows):
        col_to_vpos.setdefault(int(c), j)
    best = _strongest_pair(pi, result.pairs)
    if best is None or abs(best[2]) < threshold:
        return None
    ci, cj, value = best
    p, q = col_to_vpos[ci], col_to_vpos[cj]
    u = witness_vector(p, q, draw.reps, draw.d)
    escape = escape_probability(
        pi, draw, p, q, epsilon, trials=trials, rng=spawn(gen)
    )
    return WitnessReport(
        p=p, q=q, inner_product=value, threshold=threshold, u=u,
        escape=escape,
    )


def certify(pi: MatrixLike, instance: HardInstance, epsilon: float,
            delta: float, trials: int = 200, strategy: str = "svd",
            witness_trials: int = 2048,
            rng: RngLike = None) -> Certificate:
    """Certify (or fail to certify) that ``Π`` is not an ``(ε, δ)``-OSE.

    Draws ``trials`` subspaces from ``instance`` and counts failures
    according to ``strategy``; also extracts one Lemma 4 witness from the
    failing draws when possible (regardless of strategy, so the SVD path
    still produces interpretable evidence).
    """
    epsilon = check_epsilon(epsilon)
    delta = check_probability(delta, "delta")
    trials = check_positive_int(trials, "trials")
    if strategy not in _STRATEGIES:
        raise ValueError(
            f"strategy must be one of {_STRATEGIES}, got {strategy!r}"
        )
    if pi.shape[1] != instance.n:
        raise ValueError(
            f"Pi has ambient dimension {pi.shape[1]} but instance has "
            f"{instance.n}"
        )
    gen = as_generator(rng)
    failures = 0
    witness: Optional[WitnessReport] = None
    for _ in range(trials):
        draw = instance.sample_draw(spawn(gen))
        failed = False
        if strategy == "svd":
            failed = distortion_of_product(draw.sketched_basis(pi)) > epsilon
        elif strategy == "witness":
            report = lemma4_witness(
                pi, draw, epsilon, trials=witness_trials, rng=spawn(gen)
            )
            failed = report is not None and report.escape.point >= 0.25
            if failed and witness is None:
                witness = report
        else:  # algorithm1
            report = witness_from_algorithm1(
                pi, draw, epsilon, trials=witness_trials, rng=spawn(gen)
            )
            failed = report is not None and report.escape.point >= 0.25
            if failed and witness is None:
                witness = report
        if failed:
            failures += 1
            if witness is None and strategy == "svd":
                witness = lemma4_witness(
                    pi, draw, epsilon, trials=witness_trials, rng=spawn(gen)
                )
    failure = BernoulliEstimate(failures, trials)
    return Certificate(
        failure=failure,
        delta=delta,
        refuted=failure.low > delta,
        witness=witness,
        strategy=strategy,
    )
